//! Run the paper's generated 8×6 register kernel on the simulated ARMv8
//! machine: show the assembly-level stream, execute it functionally and
//! cycle-wise, and read the performance counters the paper reads from
//! `perf`.
//!
//! ```sh
//! cargo run --release --example simulate_machine
//! ```

use armsim::core::CoreSim;
use armsim::isa::render_asm;
use armsim::machine::SimMachine;
use kernels::regkernel::{
    generate_microkernel_call, padded_a_bytes, padded_b_bytes, GebpAddrs, KernelSpec,
};

fn main() {
    let kc = 512usize;
    let spec = KernelSpec::paper_8x6(Some((kc * 6 * 8) as i64));
    println!(
        "8x6 register kernel: rotation period {}, min reuse distance {}, \
         min RAW distance {} slots",
        spec.scheme().period(),
        spec.scheme().min_reuse_distance(),
        spec.schedule().min_raw_distance()
    );

    // set up packed slivers in simulated memory
    let mut core = CoreSim::new(0, 16 << 20);
    let a = core.mem.alloc(padded_a_bytes(8, kc), 64);
    let b = core.mem.alloc(padded_b_bytes(6, kc), 64);
    let c = core.mem.alloc(8 * 6 * 8, 64);
    for i in 0..8 * kc {
        core.mem.write_f64(a + 8 * i as u64, (i % 97) as f64 * 0.01);
    }
    for i in 0..6 * kc {
        core.mem
            .write_f64(b + 8 * i as u64, (i % 89) as f64 * 0.01 - 0.4);
    }
    let addrs = GebpAddrs {
        a,
        b,
        c,
        ldc_bytes: 64,
    };
    let stream = generate_microkernel_call(&spec, kc, &addrs);

    println!("\nfirst instructions of the generated stream (cf. paper Figure 8):");
    print!("{}", render_asm(&stream[..24.min(stream.len())]));
    println!("    ... {} instructions total\n", stream.len());

    // run against the full cache hierarchy (cold caches)
    let mut machine = SimMachine::xgene();
    let report = core.run(&stream, &mut machine);
    println!("cold-cache run:");
    println!("  cycles        {}", report.cycles);
    println!("  flops         {}", report.pipe.flops);
    println!(
        "  loads/stores  {}/{}",
        report.pipe.loads, report.pipe.stores
    );
    println!(
        "  L1/L2/L3/mem  {}/{}/{}/{}",
        report.mem.l1_hits, report.mem.l2_hits, report.mem.l3_hits, report.mem.mem_accesses
    );
    println!(
        "  efficiency    {:.1}% of the 4.8 Gflops core peak ({:.2} Gflops at 2.4 GHz)",
        100.0 * report.efficiency(2.0),
        report.gflops(2.4)
    );

    // steady state: warm L1 (the paper's Table IV setting)
    let mut core2 = core.clone();
    let warm = core2.run_perfect_l1(&stream, 4);
    println!("\nwarm (all-L1-hit) run:");
    println!("  cycles        {}", warm.cycles);
    println!(
        "  efficiency    {:.1}%  (paper's micro-benchmark bound for 7:24 is 91.5%)",
        100.0 * warm.efficiency(2.0)
    );

    // verify the numerics against a plain triple loop
    let got = core.mem.load_slice(c, 48);
    let av = core.mem.load_slice(a, 8 * kc);
    let bv = core.mem.load_slice(b, 6 * kc);
    let mut want = vec![0.0f64; 48];
    for k in 0..kc {
        for j in 0..6 {
            for i in 0..8 {
                want[i + j * 8] += av[k * 8 + i] * bv[k * 6 + j];
            }
        }
    }
    let err = got
        .iter()
        .zip(&want)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    println!("\nnumerics vs triple loop: max |diff| = {err:.3e}");
    assert!(err < 1e-9);
    println!("the generated assembly computes the right answer.");
}
