//! 2-D convolution via im2col + GEMM — the classic trick that turns a
//! neural-network/stencil workload into exactly the dense matrix
//! multiplication the paper optimizes, with the tall-skinny shapes
//! (`K = C·kh·kw`, huge `N = out_h·out_w`) that stress the blocking.
//!
//! ```sh
//! cargo run --release --example conv2d_im2col
//! ```

use armv8_dgemm::prelude::*;
use dgemm_core::matrix::Matrix;
use dgemm_core::util::gemm_flops;
use std::time::Instant;

/// Input tensor laid out as `C × (H·W)` column-major per channel row.
struct Image {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f64>,
}

impl Image {
    fn random(c: usize, h: usize, w: usize, seed: u64) -> Self {
        let m = Matrix::random(c * h * w, 1, seed);
        Image {
            c,
            h,
            w,
            data: m.as_slice().to_vec(),
        }
    }

    fn get(&self, ch: usize, y: usize, x: usize) -> f64 {
        self.data[ch * self.h * self.w + y * self.w + x]
    }
}

/// im2col: each output pixel becomes a column of `C·kh·kw` input values.
fn im2col(img: &Image, kh: usize, kw: usize) -> Matrix {
    let oh = img.h - kh + 1;
    let ow = img.w - kw + 1;
    Matrix::from_fn(img.c * kh * kw, oh * ow, |row, col| {
        let ch = row / (kh * kw);
        let ky = (row / kw) % kh;
        let kx = row % kw;
        let oy = col / ow;
        let ox = col % ow;
        img.get(ch, oy + ky, ox + kx)
    })
}

/// Direct convolution for validation.
fn conv_direct(img: &Image, filters: &Matrix, kh: usize, kw: usize) -> Matrix {
    let oh = img.h - kh + 1;
    let ow = img.w - kw + 1;
    let f = filters.rows(); // filters are F x (C*kh*kw)
    Matrix::from_fn(f, oh * ow, |fi, col| {
        let oy = col / ow;
        let ox = col % ow;
        let mut acc = 0.0;
        for ch in 0..img.c {
            for ky in 0..kh {
                for kx in 0..kw {
                    let widx = ch * kh * kw + ky * kw + kx;
                    acc += filters.get(fi, widx) * img.get(ch, oy + ky, ox + kx);
                }
            }
        }
        acc
    })
}

fn main() {
    // a representative early-CNN layer: 64 filters of 3x3 over 32
    // channels at 64x64 resolution
    let (c, h, w) = (32usize, 64usize, 64usize);
    let (f, kh, kw) = (64usize, 3usize, 3usize);
    println!("conv2d: {f} filters {c}x{kh}x{kw} over a {c}x{h}x{w} input");

    let img = Image::random(c, h, w, 1);
    let filters = Matrix::random(f, c * kh * kw, 2);

    let t0 = Instant::now();
    let cols = im2col(&img, kh, kw);
    let t_im2col = t0.elapsed().as_secs_f64();
    let (m, k, n) = (f, cols.rows(), cols.cols());
    println!(
        "im2col:  {:.1} ms -> GEMM of {m} x {k} x {n}",
        t_im2col * 1e3
    );

    let mut out = Matrix::zeros(m, n);
    let cfg = GemmConfig::default();
    let t0 = Instant::now();
    dgemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &filters.view(),
        &cols.view(),
        0.0,
        &mut out.view_mut(),
        &cfg,
    )
    .unwrap();
    let t_gemm = t0.elapsed().as_secs_f64();
    println!(
        "GEMM:    {:.1} ms = {:.2} Gflops with the {} kernel",
        t_gemm * 1e3,
        gemm_flops(m, n, k) / t_gemm / 1e9,
        cfg.kernel.label()
    );

    let t0 = Instant::now();
    let want = conv_direct(&img, &filters, kh, kw);
    let t_direct = t0.elapsed().as_secs_f64();
    println!(
        "direct:  {:.1} ms (naive loops, for validation)",
        t_direct * 1e3
    );

    let err = out.max_abs_diff(&want);
    println!("max |diff| vs direct convolution: {err:.3e}");
    assert!(err < 1e-9);
    println!(
        "im2col+GEMM is {:.1}x faster than the direct loops",
        t_direct / (t_im2col + t_gemm)
    );
}
