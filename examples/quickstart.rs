//! Quickstart: multiply two matrices with the paper's 8×6 DGEMM, check
//! the result against the naive oracle, and time it on this host.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use armv8_dgemm::prelude::*;
use dgemm_core::reference::naive_gemm;
use dgemm_core::telemetry::{self, GemmReport};
use dgemm_core::util::{gemm_flops, gemm_tolerance};
use std::time::Instant;

fn main() {
    let (m, n, k) = (768usize, 768usize, 768usize);
    println!("C := alpha * A * B + beta * C  with A {m}x{k}, B {k}x{n}");

    let a = Matrix::random(m, k, 1);
    let b = Matrix::random(k, n, 2);
    let c0 = Matrix::random(m, n, 3);
    let (alpha, beta) = (1.25, -0.5);

    // the paper's serial configuration: 8x6 kernel, kc x mc x nc =
    // 512 x 56 x 1920 solved from the ARMv8 cache geometry
    let cfg = GemmConfig::default();
    println!(
        "kernel {}, blocking {}",
        cfg.kernel.label(),
        cfg.blocks.label()
    );

    let mut c = c0.clone();
    telemetry::reset();
    let t0 = Instant::now();
    dgemm(
        Transpose::No,
        Transpose::No,
        alpha,
        &a.view(),
        &b.view(),
        beta,
        &mut c.view_mut(),
        &cfg,
    )
    .unwrap();
    let elapsed = t0.elapsed();
    let dt = elapsed.as_secs_f64();
    println!(
        "blocked DGEMM: {:.1} ms = {:.2} Gflops on this host",
        dt * 1e3,
        gemm_flops(m, n, k) / dt / 1e9
    );
    // Where the cycles went, per the counters, next to the model's view.
    let snap = telemetry::snapshot();
    let report = GemmReport::from_run((m, n, k), 1, 1, elapsed, &cfg.blocks, &snap);
    println!("{}", report.summary_line());
    telemetry::emit(&report, &snap);

    // verify against the naive triple loop
    let mut want = c0.clone();
    let t0 = Instant::now();
    naive_gemm(
        Transpose::No,
        Transpose::No,
        alpha,
        &a.view(),
        &b.view(),
        beta,
        &mut want.view_mut(),
    );
    let dt_naive = t0.elapsed().as_secs_f64();
    println!(
        "naive oracle:  {:.1} ms = {:.2} Gflops",
        dt_naive * 1e3,
        gemm_flops(m, n, k) / dt_naive / 1e9
    );

    let err = c.max_abs_diff(&want);
    let tol = gemm_tolerance(k, 1.0);
    println!("max |diff| = {err:.3e} (tolerance {tol:.3e})");
    assert!(err < tol, "results must agree");
    println!("results agree; speedup over naive: {:.1}x", dt_naive / dt);

    // the same engine in single precision. (The analytic optimum for
    // the ARMv8 *target* is the 12x8 kernel — SgemmConfig::default();
    // this x86 build host has half the vector registers, where the same
    // analysis favours smaller blocks, so the demo uses 8x8.)
    let a32: Matrix<f32> = Matrix::random(m, k, 4);
    let b32: Matrix<f32> = Matrix::random(k, n, 5);
    let mut c32: Matrix<f32> = Matrix::zeros(m, n);
    let scfg = SgemmConfig::for_kernel(SgemmKernelKind::Sk8x8, 1);
    let t0 = Instant::now();
    sgemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a32.view(),
        &b32.view(),
        0.0,
        &mut c32.view_mut(),
        &scfg,
    )
    .unwrap();
    let dt32 = t0.elapsed().as_secs_f64();
    println!(
        "SGEMM ({} / {}): {:.1} ms = {:.2} Gflops ({:.2}x the DGEMM rate)",
        scfg.kernel.label(),
        scfg.blocks.label(),
        dt32 * 1e3,
        gemm_flops(m, n, k) / dt32 / 1e9,
        dt / dt32
    );
}
