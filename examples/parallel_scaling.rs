//! Parallel scaling, two ways:
//!
//! 1. the **native** library run with 1..8 threads on this host (on a
//!    single-core machine the OS serializes them — the API and the
//!    layer-3 partitioning still get exercised end to end);
//! 2. the **simulated** ARMv8 eight-core machine (Figure 14), where the
//!    paper's scalability claim is actually evaluated.
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```

use armv8_dgemm::prelude::*;
use dgemm_core::telemetry::{self, GemmReport};
use dgemm_core::util::gemm_flops;
use simgemm::estimate::{Estimator, SimConfig};
use simgemm::kernelsim::KernelVariant;
use std::time::Instant;

fn main() {
    let n = 512usize;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);

    // honor DGEMM_NUM_THREADS like a BLAS would
    match GemmConfig::auto() {
        Ok(cfg) => println!(
            "auto config: {} thread(s), {:?}, blocks {}",
            cfg.threads(),
            cfg.parallelism,
            cfg.blocks.label()
        ),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    println!();

    println!("native layer-3 threading on this host (n = {n}):");
    let mut serial = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads);
        let mut c = Matrix::zeros(n, n);
        telemetry::reset();
        let t0 = Instant::now();
        dgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap();
        let elapsed = t0.elapsed();
        let dt = elapsed.as_secs_f64();
        let gf = gemm_flops(n, n, n) / dt / 1e9;
        let speedup = serial.get_or_insert(dt).max(1e-12) / dt;
        println!(
            "  {threads} thread(s): {:7.1} ms  {:6.2} Gflops  speedup {speedup:4.2}x  (blocks {})",
            dt * 1e3,
            gf,
            cfg.blocks.label()
        );
        let snap = telemetry::snapshot();
        let report = GemmReport::from_run((n, n, n), 1, threads, elapsed, &cfg.blocks, &snap);
        println!("    {}", report.summary_line());
        telemetry::emit(&report, &snap);
    }

    // the persistent pool vs the legacy spawn-per-GEPP runtime, same
    // degree: the gap is the amortized thread-spawn + buffer-alloc cost
    println!();
    println!("runtime comparison at 4-way parallelism (n = {n}):");
    for (label, par) in [
        ("pool (persistent)", Parallelism::Pool(4)),
        ("scoped (spawning)", Parallelism::Scoped(4)),
    ] {
        let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 4).with_parallelism(par);
        let mut c = Matrix::zeros(n, n);
        // warm-up populates the pool and the packing arenas
        for _ in 0..2 {
            dgemm(
                Transpose::No,
                Transpose::No,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut c.view_mut(),
                &cfg,
            )
            .unwrap();
        }
        telemetry::reset();
        let t0 = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            dgemm(
                Transpose::No,
                Transpose::No,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut c.view_mut(),
                &cfg,
            )
            .unwrap();
        }
        let elapsed = t0.elapsed();
        let dt = elapsed.as_secs_f64() / reps as f64;
        println!(
            "  {label}: {:7.1} ms  {:6.2} Gflops",
            dt * 1e3,
            gemm_flops(n, n, n) / dt / 1e9
        );
        let snap = telemetry::snapshot();
        let report = GemmReport::from_run((n, n, n), reps, 4, elapsed, &cfg.blocks, &snap);
        println!("    {}", report.summary_line());
        telemetry::emit(&report, &snap);
    }
    println!(
        "  (host parallel speedup is bounded by this machine's core count: {})",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );

    println!();
    println!("simulated ARMv8 eight-core machine (paper Figure 14, n = 2560):");
    let mut est = Estimator::new();
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, threads);
        let p = est.estimate(&cfg, 2560);
        let speedup = p.gflops / *base.get_or_insert(p.gflops);
        println!(
            "  {threads} thread(s): {:6.2} Gflops  efficiency {:5.1}%  speedup {speedup:4.2}x  (blocks {})",
            p.gflops,
            100.0 * p.efficiency,
            cfg.blocks.label()
        );
    }
    println!("  paper: 4.19 Gflops serial, 32.7 Gflops with eight threads.");
}
