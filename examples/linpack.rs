//! LINPACK-style driver — the workload the paper's introduction names as
//! DGEMM's purpose: factor a random dense system with blocked,
//! partially-pivoted LU (whose flops flow through the GEBP engine) and
//! validate the solve with the HPL residual test.
//!
//! ```sh
//! cargo run --release --example linpack [n]
//! ```

use armv8_dgemm::prelude::*;
use dgemm_core::lu::{hpl_residual, lu_factor, lu_flops};
use dgemm_core::matrix::Matrix;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    println!("LINPACK-style solve of a {n}x{n} dense system");

    // HPL-style random system with a well-conditioned twist on the
    // diagonal so the residual test is about the solver, not the matrix
    let r = Matrix::random(n, n, 42);
    let a = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            r.get(i, j) + 4.0
        } else {
            r.get(i, j)
        }
    });
    let x_true = Matrix::random(n, 1, 43);
    let mut b = Matrix::zeros(n, 1);
    dgemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &x_true.view(),
        0.0,
        &mut b.view_mut(),
        &GemmConfig::default(),
    )
    .unwrap();

    let cfg = GemmConfig::default();
    println!(
        "factoring with kernel {}, blocking {}",
        cfg.kernel.label(),
        cfg.blocks.label()
    );
    let t0 = Instant::now();
    let factors = lu_factor(&a, &cfg).expect("matrix is nonsingular");
    let t_factor = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let x = factors.solve(&b, &cfg).expect("solve succeeds");
    let t_solve = t0.elapsed().as_secs_f64();

    let gflops = lu_flops(n) / t_factor / 1e9;
    println!(
        "factor: {:.1} ms  ({gflops:.2} Gflops at 2n³/3)",
        t_factor * 1e3
    );
    println!("solve:  {:.2} ms", t_solve * 1e3);

    let resid = hpl_residual(&a, &x, &b);
    println!("HPL scaled residual ‖Ax−b‖/(ε‖A‖n) = {resid:.3}  (accept < 16)");
    assert!(resid < 16.0, "residual check failed");
    let err = x.max_abs_diff(&x_true);
    println!("max |x − x_true| = {err:.3e}");
    println!("PASSED");
}
