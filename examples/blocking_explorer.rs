//! Blocking explorer: apply the paper's analytic machinery (Sections
//! III–IV) to the ARMv8 machine — and to a hypothetical machine — to see
//! how register blocks, cache blocks and prefetch distances fall out of
//! the cache geometry.
//!
//! ```sh
//! cargo run --release --example blocking_explorer
//! ```

use armv8_dgemm::prelude::*;
use perfmodel::prefetch::prefetch_distances;
use perfmodel::ratio::{gamma_gebp, gamma_register};
use perfmodel::MachineDesc;

fn explore(name: &str, m: &MachineDesc) {
    println!("--- {name} ---");
    println!(
        "L1 {} KB/{}-way, L2 {} KB/{}-way, L3 {} MB/{}-way, {} cores",
        m.l1.size / 1024,
        m.l1.assoc,
        m.l2.size / 1024,
        m.l2.assoc,
        m.l3.size / (1024 * 1024),
        m.l3.assoc,
        m.cores
    );
    let reg = optimize_register_block(m);
    println!(
        "register block: {}x{} (nrf {}), gamma = {:.3}",
        reg.mr, reg.nr, reg.nrf, reg.gamma
    );
    for threads in [1, m.cores] {
        match solve_blocking(reg.mr, reg.nr, threads, m) {
            Ok(b) => {
                let pf = prefetch_distances(&b, 2, 8, m.element_bytes);
                println!(
                    "{} thread(s): {}  gamma_GEBP = {:.3}  PREFA {} B, PREFB {} B",
                    threads,
                    b.label(),
                    gamma_gebp(b.mr, b.nr, b.kc, b.mc),
                    pf.prefa_bytes,
                    pf.prefb_bytes
                );
            }
            Err(e) => println!("{threads} thread(s): no feasible blocking ({e})"),
        }
    }
    println!();
}

fn main() {
    // the paper's platform
    explore("ARMv8 eight-core (paper)", &MachineDesc::xgene());

    // a what-if: double the L1, halve its associativity
    let mut big_l1 = MachineDesc::xgene();
    big_l1.l1.size = 64 * 1024;
    big_l1.l1.assoc = 2;
    explore("hypothetical: 64 KB 2-way L1", &big_l1);

    // a what-if: twice the registers (an SVE-class register file)
    let mut big_rf = MachineDesc::xgene();
    big_rf.nf = 64;
    explore("hypothetical: 64 vector registers", &big_rf);

    println!("gamma of the paper's candidate register blocks (eq. 8):");
    for (mr, nr) in [(8, 6), (8, 4), (4, 4), (5, 5)] {
        println!("  {mr}x{nr}: {:.3}", gamma_register(mr, nr));
    }
}
