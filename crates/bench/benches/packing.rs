//! Criterion benchmarks of the packing routines (Figure 3): A-block and
//! B-panel packing at the paper's block sizes, straight and transposed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dgemm_core::matrix::Matrix;
use dgemm_core::pack::{PackedA, PackedB};
use dgemm_core::Transpose;
use std::hint::black_box;

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    let (mc, kc, nc) = (56usize, 512usize, 768usize);
    let a: Matrix = Matrix::random(mc, kc, 1);
    let at = a.transposed();
    let b: Matrix = Matrix::random(kc, nc, 2);

    group.throughput(Throughput::Bytes((mc * kc * 8) as u64));
    group.bench_function("pack_a_56x512", |bench| {
        let mut p = PackedA::new(8);
        bench.iter(|| {
            p.pack(&a.view(), Transpose::No, 0, 0, mc, kc);
            black_box(p.buf()[0])
        });
    });
    group.bench_function("pack_a_56x512_transposed", |bench| {
        let mut p = PackedA::new(8);
        bench.iter(|| {
            p.pack(&at.view(), Transpose::Yes, 0, 0, mc, kc);
            black_box(p.buf()[0])
        });
    });

    group.throughput(Throughput::Bytes((kc * nc * 8) as u64));
    group.bench_function("pack_b_512x768", |bench| {
        let mut p = PackedB::new(6);
        bench.iter(|| {
            p.pack(&b.view(), Transpose::No, 0, 0, kc, nc);
            black_box(p.buf()[0])
        });
    });
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
