//! Runtime-overhead benchmark: the persistent pool vs spawn-per-GEPP
//! scoped threads vs the serial walk, same kernel and blocking.
//!
//! The pool's whole point is to amortize what the scoped runtime pays on
//! every `(jj, kk)` macro-iteration — thread spawns and packing-buffer
//! allocations — so the interesting sizes are **small** ones where that
//! fixed cost dominates. 256³ is the headline comparison; the paper-scale
//! 2000³ run is gated behind `DGEMM_BENCH_LARGE=1` (minutes per sample on
//! a small host). A repeated-small-GEMM case models the batch-of-tiny
//! workload where amortization matters most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::Parallelism;
use dgemm_core::telemetry::{self, GemmReport};
use dgemm_core::util::gemm_flops;
use dgemm_core::Transpose;
use std::hint::black_box;
use std::time::Instant;

/// Measure one pooled configuration with the telemetry counters on and
/// write the attribution report (`GemmReport::to_json`) next to the
/// criterion JSON: `$BENCH_JSON_DIR/TELEM_<group>.json`. Also honors
/// `DGEMM_TELEMETRY=summary|json` on stderr. Works with the `telemetry`
/// feature disabled too — the report then carries the analytic FLOP
/// count and empty per-thread detail.
fn export_telemetry(
    group: &str,
    dims: (usize, usize, usize),
    calls: u64,
    threads: usize,
    cfg: &GemmConfig,
    mut one_call: impl FnMut(),
) {
    telemetry::reset();
    let t0 = Instant::now();
    for _ in 0..calls {
        one_call();
    }
    let elapsed = t0.elapsed();
    let snap = telemetry::snapshot();
    let report = GemmReport::from_run(dims, calls, threads, elapsed, &cfg.blocks, &snap);
    telemetry::emit(&report, &snap);
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
    let path = format!("{dir}/TELEM_{group}.json");
    let _ = std::fs::create_dir_all(&dir);
    if let Err(e) = std::fs::write(&path, report.to_json(&snap) + "\n") {
        eprintln!("telemetry export failed for {path}: {e}");
    }
}

fn runtimes(threads: usize) -> [(&'static str, Parallelism); 3] {
    [
        ("serial", Parallelism::Serial),
        ("scoped_spawn", Parallelism::Scoped(threads)),
        ("pool", Parallelism::Pool(threads)),
    ]
}

fn bench_square(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let mut sizes = vec![256usize];
    if std::env::var("DGEMM_BENCH_LARGE").is_ok_and(|v| v == "1") {
        sizes.push(2000);
    }
    let mut group = c.benchmark_group("pool_overhead");
    for &n in &sizes {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        group.throughput(Throughput::Elements(gemm_flops(n, n, n) as u64));
        for (label, par) in runtimes(threads) {
            let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads.max(2))
                .with_parallelism(par);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    gemm(
                        Transpose::No,
                        Transpose::No,
                        1.0,
                        &a.view(),
                        &b.view(),
                        0.0,
                        &mut cmat.view_mut(),
                        &cfg,
                    );
                    black_box(cmat.get(0, 0))
                });
            });
        }
    }
    group.finish();

    // Attribution dump for the headline pooled size.
    let n = sizes[0];
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads.max(2))
        .with_parallelism(Parallelism::Pool(threads));
    let mut cmat = Matrix::zeros(n, n);
    export_telemetry("pool_overhead", (n, n, n), 3, threads, &cfg, || {
        gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut cmat.view_mut(),
            &cfg,
        );
        black_box(cmat.get(0, 0));
    });
}

fn bench_small_stream(c: &mut Criterion) {
    // 32 back-to-back 64x64x64 GEMMs: fixed per-call runtime cost is a
    // large fraction of the work, so this isolates spawn/alloc overhead.
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let n = 64usize;
    let reps = 32usize;
    let a = Matrix::random(n, n, 3);
    let b = Matrix::random(n, n, 4);
    let mut group = c.benchmark_group("pool_small_stream");
    group.throughput(Throughput::Elements(
        (reps as f64 * gemm_flops(n, n, n)) as u64,
    ));
    for (label, par) in runtimes(threads) {
        let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads.max(2))
            .with_blocks(64, 24, 48)
            .with_parallelism(par);
        group.bench_function(BenchmarkId::new(label, format!("{reps}x{n}")), |bench| {
            let mut cmat = Matrix::zeros(n, n);
            bench.iter(|| {
                for _ in 0..reps {
                    gemm(
                        Transpose::No,
                        Transpose::No,
                        1.0,
                        &a.view(),
                        &b.view(),
                        0.0,
                        &mut cmat.view_mut(),
                        &cfg,
                    );
                }
                black_box(cmat.get(0, 0))
            });
        });
    }
    group.finish();

    // Attribution dump for the pooled small-stream case (one "call" =
    // the full 32-GEMM burst, the shape the <2% overhead budget is
    // judged on).
    let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads.max(2))
        .with_blocks(64, 24, 48)
        .with_parallelism(Parallelism::Pool(threads));
    let mut cmat = Matrix::zeros(n, n);
    export_telemetry(
        "pool_small_stream",
        (n, n, n),
        3 * reps as u64,
        threads,
        &cfg,
        || {
            gemm(
                Transpose::No,
                Transpose::No,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut cmat.view_mut(),
                &cfg,
            );
            black_box(cmat.get(0, 0));
        },
    );
}

criterion_group!(benches, bench_square, bench_small_stream);
criterion_main!(benches);
