//! Runtime-overhead benchmark: the persistent pool vs spawn-per-GEPP
//! scoped threads vs the serial walk, same kernel and blocking.
//!
//! The pool's whole point is to amortize what the scoped runtime pays on
//! every `(jj, kk)` macro-iteration — thread spawns and packing-buffer
//! allocations — so the interesting sizes are **small** ones where that
//! fixed cost dominates. 256³ is the headline comparison; the paper-scale
//! 2000³ run is gated behind `DGEMM_BENCH_LARGE=1` (minutes per sample on
//! a small host). A repeated-small-GEMM case models the batch-of-tiny
//! workload where amortization matters most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::Parallelism;
use dgemm_core::util::gemm_flops;
use dgemm_core::Transpose;
use std::hint::black_box;

fn runtimes(threads: usize) -> [(&'static str, Parallelism); 3] {
    [
        ("serial", Parallelism::Serial),
        ("scoped_spawn", Parallelism::Scoped(threads)),
        ("pool", Parallelism::Pool(threads)),
    ]
}

fn bench_square(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let mut sizes = vec![256usize];
    if std::env::var("DGEMM_BENCH_LARGE").is_ok_and(|v| v == "1") {
        sizes.push(2000);
    }
    let mut group = c.benchmark_group("pool_overhead");
    for &n in &sizes {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        group.throughput(Throughput::Elements(gemm_flops(n, n, n) as u64));
        for (label, par) in runtimes(threads) {
            let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads.max(2))
                .with_parallelism(par);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    gemm(
                        Transpose::No,
                        Transpose::No,
                        1.0,
                        &a.view(),
                        &b.view(),
                        0.0,
                        &mut cmat.view_mut(),
                        &cfg,
                    );
                    black_box(cmat.get(0, 0))
                });
            });
        }
    }
    group.finish();
}

fn bench_small_stream(c: &mut Criterion) {
    // 32 back-to-back 64x64x64 GEMMs: fixed per-call runtime cost is a
    // large fraction of the work, so this isolates spawn/alloc overhead.
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let n = 64usize;
    let reps = 32usize;
    let a = Matrix::random(n, n, 3);
    let b = Matrix::random(n, n, 4);
    let mut group = c.benchmark_group("pool_small_stream");
    group.throughput(Throughput::Elements(
        (reps as f64 * gemm_flops(n, n, n)) as u64,
    ));
    for (label, par) in runtimes(threads) {
        let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads.max(2))
            .with_blocks(64, 24, 48)
            .with_parallelism(par);
        group.bench_function(BenchmarkId::new(label, format!("{reps}x{n}")), |bench| {
            let mut cmat = Matrix::zeros(n, n);
            bench.iter(|| {
                for _ in 0..reps {
                    gemm(
                        Transpose::No,
                        Transpose::No,
                        1.0,
                        &a.view(),
                        &b.view(),
                        0.0,
                        &mut cmat.view_mut(),
                        &cfg,
                    );
                }
                black_box(cmat.get(0, 0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_square, bench_small_stream);
criterion_main!(benches);
