//! Serving-layer overhead benchmark: the admission-controlled
//! [`GemmService`] vs direct pooled `gemm()` on the same weight-reuse
//! stream (one weight matrix, a stream of activations — the workload
//! the service's coalescing and per-tenant pack cache are built for).
//!
//! The acceptance gate (held by CI's chaos-soak job): on a healthy
//! pool, the service's queue/coalesce/dispatch ladder may cost at most
//! **5%** throughput vs calling the pooled GEMM directly. Submissions
//! are pipelined (submit the stream, then collect) — the serving
//! pattern the layer exists for; a submit-wait-submit ping-pong would
//! measure channel round-trip latency instead of throughput.
//!
//! Besides the criterion lines, one accounting line with the measured
//! ratio is appended to `BENCH_service.json`, the service's scrapeable
//! `dgemm-telem-v1` status snapshot is written to
//! `STATUS_service.json`, and the phase-attribution report for the
//! accounting pass (`GemmReport::to_json`, the same artifact the other
//! pooled benches emit) goes to `TELEM_service.json`. With the default
//! `trace` feature on, the accounting pass therefore measures the
//! ring-mode tracing overhead too — the 5% gate covers it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::Parallelism;
use dgemm_core::service::{GemmService, ServiceConfig};
use dgemm_core::telemetry::{self, GemmReport};
use dgemm_core::util::gemm_flops;
use dgemm_core::Transpose;
use std::hint::black_box;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

const STREAM: usize = 32;
const M: usize = 128;
const N: usize = 256;
const K: usize = 256;

fn gemm_cfg(threads: usize) -> GemmConfig {
    GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads)
        .with_parallelism(Parallelism::Pool(threads))
        .with_pack_cache(true)
}

fn service_cfg(threads: usize) -> ServiceConfig {
    ServiceConfig {
        // Let the whole pipelined stream coalesce into as few shared-B
        // batches as the queue depth allows at pickup time.
        coalesce: STREAM,
        gemm: gemm_cfg(threads),
        ..ServiceConfig::default()
    }
}

/// Direct path: the stream against the pooled GEMM, pack cache on.
/// Allocates one owned result per call — the same work product the
/// service hands back, so the comparison is apples-to-apples.
fn run_direct(a_stream: &[Matrix], b: &Matrix, cfg: &GemmConfig) {
    let results: Vec<Matrix> = a_stream
        .iter()
        .map(|a| {
            let mut cmat = Matrix::zeros(M, N);
            gemm(
                Transpose::No,
                Transpose::No,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut cmat.view_mut(),
                cfg,
            );
            cmat
        })
        .collect();
    black_box(results[0].get(0, 0));
}

/// Service path: pipeline the stream through the admission queue.
fn run_service(svc: &GemmService, a_stream: &[Arc<Matrix>], b: &Arc<Matrix>) {
    let tickets: Vec<_> = a_stream
        .iter()
        .map(|a| {
            svc.submit("bench", 1.0, Arc::clone(a), Transpose::No, Arc::clone(b))
                .expect("healthy pool admits the stream")
        })
        .collect();
    for t in tickets {
        let c = t.wait().expect("healthy pool serves the stream");
        black_box(c.get(0, 0));
    }
}

fn bench_service(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let b = Matrix::random(K, N, 2);
    let a_stream: Vec<Matrix> = (0..STREAM)
        .map(|i| Matrix::random(M, K, 10 + i as u64))
        .collect();
    let b_arc = Arc::new(Matrix::random(K, N, 2));
    let a_arcs: Vec<Arc<Matrix>> = a_stream.iter().cloned().map(Arc::new).collect();
    let cfg = gemm_cfg(threads);
    let svc = GemmService::new(service_cfg(threads));

    let mut group = c.benchmark_group("service");
    group.throughput(Throughput::Elements(
        (STREAM as f64 * gemm_flops(M, N, K)) as u64,
    ));
    group.bench_function(
        BenchmarkId::new("direct", format!("pool/{STREAM}x{M}x{N}x{K}")),
        |bench| bench.iter(|| run_direct(&a_stream, &b, &cfg)),
    );
    group.bench_function(
        BenchmarkId::new("service", format!("pool/{STREAM}x{M}x{N}x{K}")),
        |bench| bench.iter(|| run_service(&svc, &a_arcs, &b_arc)),
    );
    group.finish();

    // Accounting pass for the ≤5% gate: same streams, back-to-back
    // paired reps (the reported per-path ns are the min over reps).
    const REPS: usize = 16;
    run_direct(&a_stream, &b, &cfg); // warm pool + pack cache
    run_service(&svc, &a_arcs, &b_arc);
    telemetry::reset();
    let telem_t0 = Instant::now();
    let mut direct_ns = u128::MAX;
    let mut service_ns = u128::MAX;
    let mut ratios = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t0 = Instant::now();
        run_direct(&a_stream, &b, &cfg);
        let d = t0.elapsed().as_nanos();
        let t0 = Instant::now();
        run_service(&svc, &a_arcs, &b_arc);
        let s = t0.elapsed().as_nanos();
        direct_ns = direct_ns.min(d);
        service_ns = service_ns.min(s);
        ratios.push(s as f64 / d.max(1) as f64);
    }
    // The gate measures the *structural* cost of the service ladder, so
    // the estimator is the median of back-to-back paired reps:
    // machine-wide drift (a noisy neighbour slowing both phases of a
    // pair) cancels within the pair, and the median discards the
    // outlier pairs it cannot cancel in either direction.
    let telem_elapsed = telem_t0.elapsed();
    let snap = telemetry::snapshot();
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[REPS / 2];
    eprintln!(
        "service overhead: direct {direct_ns} ns vs service {service_ns} ns \
         per {STREAM}-call stream (ratio {ratio:.4}, gate 1.05)"
    );
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
    let _ = std::fs::create_dir_all(&dir);
    let line = format!(
        "{{\"group\":\"service\",\"bench\":\"overhead_accounting/{STREAM}x{M}x{N}x{K}\",\
         \"direct_ns\":{direct_ns},\"service_ns\":{service_ns},\
         \"overhead_ratio\":{ratio:.6},\"gate\":1.05}}\n"
    );
    let path = format!("{dir}/BENCH_service.json");
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = f.write_all(line.as_bytes());
        }
        Err(e) => eprintln!("accounting export failed for {path}: {e}"),
    }
    // Phase attribution for the accounting pass (both paths together:
    // 2 × REPS × STREAM calls), same artifact shape as the other pooled
    // benches so downstream tooling reads one schema.
    let report = GemmReport::from_run(
        (M, N, K),
        2 * (REPS as u64) * (STREAM as u64),
        threads,
        telem_elapsed,
        &cfg.blocks,
        &snap,
    );
    telemetry::emit(&report, &snap);
    let telem_path = format!("{dir}/TELEM_service.json");
    if let Err(e) = std::fs::write(&telem_path, report.to_json(&snap) + "\n") {
        eprintln!("telemetry export failed for {telem_path}: {e}");
    }
    // The scrapeable status snapshot (schema dgemm-telem-v1).
    let status_path = format!("{dir}/STATUS_service.json");
    if let Err(e) = std::fs::write(&status_path, svc.status_json() + "\n") {
        eprintln!("status export failed for {status_path}: {e}");
    }
    svc.shutdown();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
