//! Criterion benchmarks of the bare micro-kernels: one GESS call
//! (`mr×nr` tile, full `kc` depth) per kernel shape — the native
//! analogue of the paper's register-kernel study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::{run_microkernel, MicroKernelKind};
use dgemm_core::pack::{PackedA, PackedB};
use dgemm_core::tile::TileMut;
use dgemm_core::Transpose;
use std::hint::black_box;

fn bench_microkernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel");
    for kind in MicroKernelKind::ALL {
        let (mr, nr) = (kind.mr(), kind.nr());
        let kc = 512usize;
        let a = Matrix::random(mr, kc, 1);
        let b = Matrix::random(kc, nr, 2);
        let mut pa = PackedA::new(mr);
        pa.pack(&a.view(), Transpose::No, 0, 0, mr, kc);
        let mut pb = PackedB::new(nr);
        pb.pack(&b.view(), Transpose::No, 0, 0, kc, nr);
        let flops = 2 * mr * nr * kc;
        group.throughput(Throughput::Elements(flops as u64));
        group.bench_with_input(BenchmarkId::new(kind.label(), kc), &kc, |bench, _| {
            let mut cbuf = vec![0.0f64; mr * nr];
            bench.iter(|| {
                let mut tile = TileMut::from_slice(mr, nr, mr, &mut cbuf);
                run_microkernel(kind, kc, pa.sliver(0), pb.sliver(0), 1.0, &mut tile, mr, nr);
                black_box(cbuf[0])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_microkernels);
criterion_main!(benches);
