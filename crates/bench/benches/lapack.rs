//! Criterion benchmarks of the factorization layer built on the GEBP
//! engine: LU (the LINPACK core), Cholesky and the triangular solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgemm_core::cholesky::{cholesky, cholesky_flops};
use dgemm_core::gemm::GemmConfig;
use dgemm_core::level3::{dtrsm, Diag, UpLo};
use dgemm_core::lu::{lu_factor, lu_flops};
use dgemm_core::matrix::Matrix;
use dgemm_core::reference::naive_gemm;
use dgemm_core::Transpose;
use std::hint::black_box;

fn well_conditioned(n: usize, seed: u64) -> Matrix {
    let r = Matrix::random(n, n, seed);
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            n as f64 + r.get(i, j)
        } else {
            r.get(i, j)
        }
    })
}

fn spd(n: usize, seed: u64) -> Matrix {
    let g = Matrix::random(n, n, seed);
    let mut ggt = Matrix::zeros(n, n);
    naive_gemm(
        Transpose::No,
        Transpose::Yes,
        1.0,
        &g.view(),
        &g.view(),
        0.0,
        &mut ggt.view_mut(),
    );
    Matrix::from_fn(n, n, |i, j| {
        ggt.get(i, j) + if i == j { n as f64 } else { 0.0 }
    })
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_factor");
    let cfg = GemmConfig::default();
    for &n in &[128usize, 256, 512] {
        let a = well_conditioned(n, 1);
        group.throughput(Throughput::Elements(lu_flops(n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(lu_factor(&a, &cfg).unwrap().pivots[0]));
        });
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    let cfg = GemmConfig::default();
    for &n in &[128usize, 256, 512] {
        let a = spd(n, 2);
        group.throughput(Throughput::Elements(cholesky_flops(n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(cholesky(&a, &cfg).unwrap().get(0, 0)));
        });
    }
    group.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtrsm");
    let cfg = GemmConfig::default();
    let m = 384usize;
    let nrhs = 128usize;
    let base: Matrix = Matrix::random(m, m, 3);
    let tri = Matrix::from_fn(m, m, |i, j| {
        if i == j {
            3.0 + base.get(i, j).abs()
        } else if i > j {
            0.5 * base.get(i, j)
        } else {
            0.0
        }
    });
    let b = Matrix::random(m, nrhs, 4);
    group.throughput(Throughput::Elements((m * m * nrhs) as u64));
    group.bench_function("lower_384x128", |bench| {
        bench.iter(|| {
            let mut x = b.clone();
            dtrsm(
                UpLo::Lower,
                Transpose::No,
                Diag::NonUnit,
                1.0,
                &tri.view(),
                &mut x.view_mut(),
                &cfg,
            )
            .unwrap();
            black_box(x.get(0, 0))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lu, bench_cholesky, bench_trsm);
criterion_main!(benches);
