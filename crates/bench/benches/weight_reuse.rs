//! Weight-reuse benchmark: a stream of N activations multiplied against
//! one weight matrix, with the pre-packed-B cache off vs on.
//!
//! The paper's γ = F/W analysis amortizes the packed-B traffic over one
//! multiplication; with a reused weight the cache amortizes it over the
//! whole stream instead, so the packed-B bytes moved should drop to
//! ~1/N of the uncached stream (the one insert-miss re-packs, every
//! other call hits). The skinny-activation shape (`m = 8`) is where the
//! saved packing is a large fraction of the wall clock; the medium
//! shape shows the effect fading as compute dominates.
//!
//! Besides the criterion timing lines, one extra JSON line with the
//! exact byte accounting (`bench: "packed_b_accounting/..."`) is
//! appended to `BENCH_weight_reuse.json` — that line is the 1/N
//! acceptance evidence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::{Parallelism, PoolScalar};
use dgemm_core::telemetry;
use dgemm_core::util::gemm_flops;
use dgemm_core::Transpose;
use std::hint::black_box;
use std::io::Write as _;

/// Stream length: the N in the ~1/N packed-byte claim.
const STREAM: usize = 16;

fn stream_cfg(par: Parallelism, cached: bool) -> GemmConfig {
    GemmConfig::for_kernel(MicroKernelKind::Mk8x6, par.degree())
        .with_blocks(64, 24, 48)
        .with_parallelism(par)
        .with_pack_cache(cached)
}

/// Run the whole activation stream once against the shared weight.
fn run_stream(a_stream: &[Matrix], b: &Matrix, cmat: &mut Matrix, cfg: &GemmConfig) {
    for a in a_stream {
        gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut cmat.view_mut(),
            cfg,
        );
    }
    black_box(cmat.get(0, 0));
}

fn bench_weight_reuse(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let shapes = [
        ("skinny", 8usize, 256usize, 256usize),
        ("medium", 96, 128, 96),
    ];

    let mut group = c.benchmark_group("weight_reuse");
    for (shape, m, n, k) in shapes {
        let b = Matrix::random(k, n, 2);
        let a_stream: Vec<Matrix> = (0..STREAM)
            .map(|i| Matrix::random(m, k, 10 + i as u64))
            .collect();
        group.throughput(Throughput::Elements(
            (STREAM as f64 * gemm_flops(m, n, k)) as u64,
        ));
        for (label, cached) in [("uncached", false), ("cached", true)] {
            for par in [Parallelism::Serial, Parallelism::Pool(threads)] {
                let rt = match par {
                    Parallelism::Serial => "serial",
                    _ => "pool",
                };
                let cfg = stream_cfg(par, cached);
                group.bench_function(
                    BenchmarkId::new(label, format!("{rt}/{shape}/{STREAM}x{m}x{n}x{k}")),
                    |bench| {
                        let mut cmat = Matrix::zeros(m, n);
                        bench.iter(|| run_stream(&a_stream, &b, &mut cmat, &cfg));
                    },
                );
            }
        }
        f64::pack_cache().invalidate(&b.view());
    }
    group.finish();

    // Exact byte accounting for one skinny stream, appended after the
    // criterion lines (group.finish() created the file).
    let (m, n, k) = (8usize, 256usize, 256usize);
    let b = Matrix::random(k, n, 2);
    let a_stream: Vec<Matrix> = (0..STREAM)
        .map(|i| Matrix::random(m, k, 10 + i as u64))
        .collect();
    let mut cmat = Matrix::zeros(m, n);

    telemetry::reset();
    run_stream(
        &a_stream,
        &b,
        &mut cmat,
        &stream_cfg(Parallelism::Serial, false),
    );
    let uncached_bytes = telemetry::snapshot().total_packed_b_bytes();

    telemetry::reset();
    run_stream(
        &a_stream,
        &b,
        &mut cmat,
        &stream_cfg(Parallelism::Serial, true),
    );
    let snap = telemetry::snapshot();
    let cached_bytes = snap.total_packed_b_bytes();
    f64::pack_cache().invalidate(&b.view());

    let ratio = cached_bytes as f64 / uncached_bytes.max(1) as f64;
    let line = format!(
        "{{\"group\":\"weight_reuse\",\"bench\":\"packed_b_accounting/{STREAM}x{m}x{n}x{k}\",\
         \"calls\":{STREAM},\"uncached_packed_b_bytes\":{uncached_bytes},\
         \"cached_packed_b_bytes\":{cached_bytes},\"ratio\":{ratio:.6},\
         \"pack_cache\":{{\"hits\":{},\"misses\":{},\"bytes_saved\":{}}}}}\n",
        snap.cache.hits, snap.cache.misses, snap.cache.bytes_saved,
    );
    eprintln!(
        "packed-B bytes: uncached {uncached_bytes}, cached {cached_bytes} \
         (ratio {ratio:.4}, ideal {:.4})",
        1.0 / STREAM as f64
    );
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
    let path = format!("{dir}/BENCH_weight_reuse.json");
    match std::fs::OpenOptions::new().append(true).open(&path) {
        Ok(mut f) => {
            let _ = f.write_all(line.as_bytes());
        }
        Err(e) => eprintln!("accounting export failed for {path}: {e}"),
    }
}

criterion_group!(benches, bench_weight_reuse);
criterion_main!(benches);
