//! Shape-adaptive dispatch benchmark (DESIGN.md §13): the shapes the
//! dispatcher exists for, each run under forced-serial, forced-pool
//! (which engages the 2-D `(mc × nc)` task grid) and `auto` dispatch on
//! the *same* pool-configured `GemmConfig`.
//!
//! The three cases mirror the acceptance criteria:
//!
//! - `skinny_cached` — the PR-4 weight-reuse stream (16 × 8×256×256,
//!   pack cache on) where the 1-D pooled schedule used to lose to
//!   serial; `auto` must match the winner (serial) within noise.
//! - `small_stream` — 32 back-to-back 64³ GEMMs, the pool-overhead
//!   shape with the same property.
//! - `square` — 256³, a shape the pool genuinely wins; `auto` must not
//!   regress against forced pool by more than the CI gate's 5%.
//!
//! CI parses `results/BENCH_dispatch.json` (written by the criterion
//! harness when `BENCH_JSON_DIR` is set) and fails if `auto` is >5%
//! slower than the best forced runtime on any case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgemm_core::dispatch::DispatchMode;
use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::{Parallelism, PoolScalar};
use dgemm_core::util::gemm_flops;
use dgemm_core::Transpose;
use std::hint::black_box;

/// Activation-stream length for the skinny cached case.
const SKINNY_STREAM: usize = 16;
/// Back-to-back repetitions for the small-stream case.
const SMALL_REPS: usize = 32;

const MODES: [(&str, DispatchMode); 3] = [
    ("serial", DispatchMode::Serial),
    ("pool", DispatchMode::Pool),
    ("auto", DispatchMode::Auto),
];

fn one_gemm(a: &Matrix, b: &Matrix, cmat: &mut Matrix, cfg: &GemmConfig) {
    gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &b.view(),
        0.0,
        &mut cmat.view_mut(),
        cfg,
    );
}

fn bench_dispatch(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let mut group = c.benchmark_group("dispatch");

    // Case 1: skinny cached stream — 16 activations against one cached
    // weight, the shape where the M-band pool lost to serial.
    {
        let (m, n, k) = (8usize, 256usize, 256usize);
        let b = Matrix::random(k, n, 2);
        let a_stream: Vec<Matrix> = (0..SKINNY_STREAM)
            .map(|i| Matrix::random(m, k, 10 + i as u64))
            .collect();
        group.throughput(Throughput::Elements(
            (SKINNY_STREAM as f64 * gemm_flops(m, n, k)) as u64,
        ));
        for (label, mode) in MODES {
            let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads)
                .with_blocks(64, 24, 48)
                .with_parallelism(Parallelism::Pool(threads))
                .with_pack_cache(true)
                .with_dispatch(mode);
            group.bench_function(
                BenchmarkId::new(label, format!("skinny_cached/{SKINNY_STREAM}x{m}x{n}x{k}")),
                |bench| {
                    let mut cmat = Matrix::zeros(m, n);
                    bench.iter(|| {
                        for a in &a_stream {
                            one_gemm(a, &b, &mut cmat, &cfg);
                        }
                        black_box(cmat.get(0, 0))
                    });
                },
            );
        }
        f64::pack_cache().invalidate(&b.view());
    }

    // Case 2: small stream — 32 × 64³, fixed per-call runtime cost
    // dominates, serial should win and auto must follow it.
    {
        let n = 64usize;
        let a = Matrix::random(n, n, 3);
        let b = Matrix::random(n, n, 4);
        group.throughput(Throughput::Elements(
            (SMALL_REPS as f64 * gemm_flops(n, n, n)) as u64,
        ));
        for (label, mode) in MODES {
            let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads)
                .with_blocks(64, 24, 48)
                .with_parallelism(Parallelism::Pool(threads))
                .with_dispatch(mode);
            group.bench_function(
                BenchmarkId::new(label, format!("small_stream/{SMALL_REPS}x{n}")),
                |bench| {
                    let mut cmat = Matrix::zeros(n, n);
                    bench.iter(|| {
                        for _ in 0..SMALL_REPS {
                            one_gemm(&a, &b, &mut cmat, &cfg);
                        }
                        black_box(cmat.get(0, 0))
                    });
                },
            );
        }
    }

    // Case 3: square 256³ — the pool's home turf; auto must keep
    // picking it (the no-regression guard).
    {
        let n = 256usize;
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        group.throughput(Throughput::Elements(gemm_flops(n, n, n) as u64));
        for (label, mode) in MODES {
            let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads)
                .with_parallelism(Parallelism::Pool(threads))
                .with_dispatch(mode);
            group.bench_function(BenchmarkId::new(label, format!("square/{n}")), |bench| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    one_gemm(&a, &b, &mut cmat, &cfg);
                    black_box(cmat.get(0, 0))
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
