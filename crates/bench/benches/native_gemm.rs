//! Criterion benchmarks of the portable DGEMM on the host machine:
//! all four kernels vs the naive reference across sizes, plus the
//! paper's blocking against the half-cache heuristic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::{MicroKernelKind, SgemmKernelKind};
use dgemm_core::reference::naive_gemm;
use dgemm_core::sgemm::{sgemm, SgemmConfig};
use dgemm_core::util::gemm_flops;
use dgemm_core::Transpose;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_dgemm");
    for &n in &[96usize, 192, 384] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        group.throughput(Throughput::Elements(gemm_flops(n, n, n) as u64));
        for kind in MicroKernelKind::ALL {
            let cfg = GemmConfig::for_kernel(kind, 1);
            group.bench_with_input(BenchmarkId::new(kind.label(), n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    gemm(
                        Transpose::No,
                        Transpose::No,
                        1.0,
                        &a.view(),
                        &b.view(),
                        0.0,
                        &mut cmat.view_mut(),
                        &cfg,
                    );
                    black_box(cmat.get(0, 0))
                });
            });
        }
        // the naive oracle for scale (only at the smallest size: O(n^3)
        // without blocking gets slow fast)
        if n <= 96 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
                let mut cmat = Matrix::zeros(n, n);
                bench.iter(|| {
                    naive_gemm(
                        Transpose::No,
                        Transpose::No,
                        1.0,
                        &a.view(),
                        &b.view(),
                        0.0,
                        &mut cmat.view_mut(),
                    );
                    black_box(cmat.get(0, 0))
                });
            });
        }
    }
    group.finish();
}

fn bench_blocking_choice(c: &mut Criterion) {
    // Table VI, native edition: the paper's analytic serial blocking vs
    // the half-cache heuristic, same 8x6 kernel.
    let mut group = c.benchmark_group("blocking_choice");
    let n = 384usize;
    let a = Matrix::random(n, n, 3);
    let b = Matrix::random(n, n, 4);
    group.throughput(Throughput::Elements(gemm_flops(n, n, n) as u64));
    let ours = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1);
    let goto = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1).with_blocks(320, 96, 1536);
    for (label, cfg) in [("paper_512x56x1920", ours), ("goto_320x96x1536", goto)] {
        group.bench_function(label, |bench| {
            let mut cmat = Matrix::zeros(n, n);
            bench.iter(|| {
                gemm(
                    Transpose::No,
                    Transpose::No,
                    1.0,
                    &a.view(),
                    &b.view(),
                    0.0,
                    &mut cmat.view_mut(),
                    &cfg,
                );
                black_box(cmat.get(0, 0))
            });
        });
    }
    group.finish();
}

fn bench_precisions(c: &mut Criterion) {
    // SGEMM (12x8 kernel from the same analytic design) vs DGEMM (8x6)
    // at equal element counts: single precision should push roughly
    // twice the flops/sec through the same engine.
    let mut group = c.benchmark_group("precision");
    let n = 384usize;
    group.throughput(Throughput::Elements(gemm_flops(n, n, n) as u64));

    let a64: Matrix = Matrix::random(n, n, 1);
    let b64: Matrix = Matrix::random(n, n, 2);
    let cfg64 = GemmConfig::default();
    group.bench_function("dgemm_8x6_384", |bench| {
        let mut c64: Matrix = Matrix::zeros(n, n);
        bench.iter(|| {
            gemm(
                Transpose::No,
                Transpose::No,
                1.0,
                &a64.view(),
                &b64.view(),
                0.0,
                &mut c64.view_mut(),
                &cfg64,
            );
            black_box(c64.get(0, 0))
        });
    });

    let a32: Matrix<f32> = Matrix::random(n, n, 3);
    let b32: Matrix<f32> = Matrix::random(n, n, 4);
    for kind in SgemmKernelKind::ALL {
        let cfg32 = SgemmConfig::for_kernel(kind, 1);
        group.bench_with_input(BenchmarkId::new(kind.label(), n), &n, |bench, _| {
            let mut c32: Matrix<f32> = Matrix::zeros(n, n);
            bench.iter(|| {
                sgemm(
                    Transpose::No,
                    Transpose::No,
                    1.0,
                    &a32.view(),
                    &b32.view(),
                    0.0,
                    &mut c32.view_mut(),
                    &cfg32,
                )
                .unwrap();
                black_box(c32.get(0, 0))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_blocking_choice,
    bench_precisions
);
criterion_main!(benches);
