//! Shared plumbing for the per-table/figure reproduction binaries.
//!
//! Every binary under `src/bin/` regenerates one artifact of the paper's
//! Section V (see DESIGN.md §2 for the index) and prints it as an
//! aligned text table, with the paper's published numbers alongside
//! where the paper states them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simgemm::experiments::{paper_sizes, quick_sizes};

/// Command-line options shared by the sweep binaries.
#[derive(Clone, Debug)]
pub struct SweepArgs {
    /// Problem sizes to evaluate.
    pub sizes: Vec<usize>,
    /// Optional CSV output path (`--csv file.csv`).
    pub csv: Option<std::path::PathBuf>,
}

impl SweepArgs {
    /// Parse `--quick` (step-512 grid), `--sizes a,b,c`, or default to
    /// the paper's 256..6400 step-128 grid.
    #[must_use]
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut sizes = None;
        let mut csv = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => sizes = Some(quick_sizes()),
                "--sizes" => {
                    i += 1;
                    let list = args
                        .get(i)
                        .expect("--sizes needs a comma-separated list")
                        .split(',')
                        .map(|s| s.trim().parse().expect("size must be an integer"))
                        .collect();
                    sizes = Some(list);
                }
                "--csv" => {
                    i += 1;
                    csv = Some(std::path::PathBuf::from(
                        args.get(i).expect("--csv needs a path"),
                    ));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --quick | --sizes a,b,c | --csv out.csv                           (default: paper grid 256..6400 step 128)"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        SweepArgs {
            sizes: sizes.unwrap_or_else(paper_sizes),
            csv,
        }
    }

    /// Write curves as CSV (`n,<label1>,<label2>,...`) if `--csv` was
    /// given; prints the destination on success.
    pub fn maybe_write_csv(
        &self,
        curves: &[simgemm::experiments::Curve],
        value: impl Fn(&simgemm::estimate::SimPoint) -> f64,
    ) {
        let Some(path) = &self.csv else { return };
        let mut out = String::new();
        out.push('n');
        for c in curves {
            out.push(',');
            out.push_str(&c.label.replace(',', ";"));
        }
        out.push('\n');
        for (i, n) in self.sizes.iter().enumerate() {
            out.push_str(&n.to_string());
            for c in curves {
                out.push_str(&format!(",{:.6}", value(&c.points[i])));
            }
            out.push('\n');
        }
        std::fs::write(path, out).expect("writing CSV");
        println!("\n(csv written to {})", path.display());
    }
}

/// Print a header banner naming the artifact being reproduced.
pub fn banner(artifact: &str, summary: &str) {
    println!("================================================================");
    println!("{artifact}");
    println!("{summary}");
    println!("(simulated ARMv8 machine; see EXPERIMENTS.md for paper-vs-measured notes)");
    println!("================================================================");
}

/// Format a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}

/// Render curves as a size-indexed table (one column per curve).
pub fn print_curves(
    sizes: &[usize],
    curves: &[simgemm::experiments::Curve],
    value: impl Fn(&simgemm::estimate::SimPoint) -> f64,
    unit: &str,
) {
    print!("{:>6}", "n");
    for c in curves {
        print!("  {:>18}", c.label);
    }
    println!("   [{unit}]");
    for (i, n) in sizes.iter().enumerate() {
        print!("{n:>6}");
        for c in curves {
            print!("  {:>18.3}", value(&c.points[i]));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.8725), " 87.2%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
