//! E4 / Table III — analytically derived block sizes for the three GEBP
//! implementations, serial and eight-thread (equations (15), (17)–(20)).

use dgemm_bench::banner;
use perfmodel::cacheblock::solve_blocking;
use perfmodel::MachineDesc;

fn main() {
    banner(
        "Table III — block sizes (mr x nr x kc x mc x nc)",
        "solved from the cache geometry with set-associativity/LRU constraints",
    );
    let m = MachineDesc::xgene();
    println!(
        "{:<10} {:<26} {:<26} (way splits k1/k2/k3)",
        "kernel", "one thread", "eight threads"
    );
    for (mr, nr) in [(8usize, 6usize), (8, 4), (4, 4)] {
        let s = solve_blocking(mr, nr, 1, &m).unwrap();
        let p = solve_blocking(mr, nr, 8, &m).unwrap();
        println!(
            "{:<10} {:<26} {:<26} serial {}/{}/{}, parallel {}/{}/{}",
            format!("{mr}x{nr}"),
            s.label(),
            p.label(),
            s.k1,
            s.k2,
            s.k3,
            p.k1,
            p.k2,
            p.k3
        );
    }
    println!();
    println!("paper Table III:  8x6: 8x6x512x56x1920 / 8x6x512x24x1792");
    println!("                  8x4: 8x4x768x32x1280 / 8x4x768x16x1192");
    println!("                  4x4: 4x4x768x32x1280 / 4x4x768x16x1192");
    println!();
    println!("Figure 14 intermediate thread counts (8x6):");
    for t in [2usize, 4] {
        let b = solve_blocking(8, 6, t, &m).unwrap();
        println!("  {t} threads: {}", b.label());
    }
    println!("paper Figure 14:  2 threads 8x6x512x56x1920, 4 threads 8x6x512x56x1792");
}
