//! Extension — applying the paper's analytic method to single precision.
//!
//! The paper's whole point is that the performance-critical parameters
//! fall out of the machine description in closed form. This binary runs
//! the identical machinery with `element = 4` bytes (f32, 4 lanes per
//! 128-bit register) and prints the complete SGEMM design — register
//! block, cache blocking for 1 and 8 threads, prefetch distances — in
//! milliseconds, where ATLAS would re-run an empirical search.

use dgemm_bench::banner;
use perfmodel::cacheblock::solve_blocking;
use perfmodel::prefetch::prefetch_distances;
use perfmodel::ratio::gamma_gebp;
use perfmodel::regblock::{optimize_register_block, vector_registers_needed};
use perfmodel::MachineDesc;

fn design(label: &str, m: &MachineDesc) {
    println!("--- {label} (element = {} bytes) ---", m.element_bytes);
    let reg = optimize_register_block(m);
    println!(
        "register block: {}x{} (nrf {}), gamma = {:.3}, {} of 32 vector registers",
        reg.mr,
        reg.nr,
        reg.nrf,
        reg.gamma,
        vector_registers_needed(reg.mr, reg.nr, reg.nrf, m)
    );
    for threads in [1usize, 8] {
        let b = solve_blocking(reg.mr, reg.nr, threads, m).unwrap();
        let pf = prefetch_distances(&b, 2, 8, m.element_bytes);
        println!(
            "  {threads} thread(s): {}  gamma_GEBP {:.3}  PREFA {} B  PREFB {} B",
            b.label(),
            gamma_gebp(b.mr, b.nr, b.kc, b.mc),
            pf.prefa_bytes,
            pf.prefb_bytes
        );
    }
    println!(
        "  theoretical peak: {:.1} Gflops/core ({} flops per FMA)",
        m.freq_ghz * m.flops_per_cycle,
        2 * (m.vreg_bytes / m.element_bytes)
    );
    println!();
}

fn main() {
    banner(
        "Extension — SGEMM design from the same analytic model",
        "the paper's method re-applied with element = 4 bytes; zero tuning runs",
    );
    let dgemm = MachineDesc::xgene();
    design("DGEMM (the paper)", &dgemm);
    let mut sgemm = MachineDesc::xgene();
    sgemm.element_bytes = 4;
    // one 128-bit FMA now does 8 flops: 4 flops/cycle at II=2
    sgemm.flops_per_cycle = 4.0;
    design("SGEMM (derived here)", &sgemm);

    println!("Observations:");
    println!("- four f32 lanes per register relax eq. (9): the optimal block grows");
    println!("  from 8x6 (gamma 6.857) to 12x8 (gamma 9.6) — more reuse per load,");
    println!("  which the wider SGEMM peak (9.6 Gflops/core) needs;");
    println!("- halving the element size doubles kc (eq. 15 is in bytes), keeping the");
    println!("  B sliver at 3/4 of the L1 exactly as in the paper;");
    println!("- the instruction-ratio bound improves: 12x8 issues 48 FMA slots per 5");
    println!("  loads vs the paper's 24 per 7 — the 2F+L model predicts ~95% of peak.");
}
