//! E2 / Table I — the software register-rotation scheme for the 8×6
//! kernel (equation (12)).

use dgemm_bench::banner;
use perfmodel::rotation::{optimal_rotation, KernelShape, RotationScheme};

fn main() {
    banner(
        "Table I — software-implemented register rotation (8x6 kernel)",
        "registers {v0..v7} assigned to the A/B operands across the 8 unrolled copies",
    );
    let shape = KernelShape::paper_8x6();
    let scheme = optimal_rotation(shape, 8);
    println!("{scheme}");
    println!(
        "minimum reuse distance (eq. 12, FMA positions): {}",
        scheme.min_reuse_distance()
    );
    let identity = RotationScheme::identity(shape, 8);
    println!(
        "without rotation (one register to spare):       {}",
        identity.min_reuse_distance()
    );
    println!(
        "registers reused between consecutive copies: {} (nrf = 6 in the paper)",
        scheme.reused_registers_between_copies()
    );
    println!(
        "rotation period: {} copies (the paper unrolls by 8)",
        scheme.period()
    );
    println!();
    println!("paper: the published scheme achieves a distance of 7; the exhaustive");
    println!("search over all single-8-cycle rotations finds the value above.");
}
