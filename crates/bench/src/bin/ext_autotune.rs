//! Extension (paper Section VI future work): block-size auto-tuning —
//! run the coordinate-descent tuner from a bad corner and compare its
//! optimum with the paper's analytic blocking, validating the paper's
//! model-over-tuning thesis.

use dgemm_bench::{banner, pct};
use perfmodel::cacheblock::solve_blocking;
use perfmodel::MachineDesc;
use simgemm::autotune::{autotune, TuneOptions};
use simgemm::estimate::{Estimator, SimConfig};
use simgemm::kernelsim::KernelVariant;

fn main() {
    banner(
        "Extension — auto-tuning vs the analytic model",
        "coordinate descent over (kc, mc, nc) on the simulated machine, n = 2048",
    );
    let mut est = Estimator::new();
    let opts = TuneOptions {
        n: 2048,
        threads: 1,
        max_sweeps: 3,
    };
    println!("starting from the deliberately bad corner 128x8x256 ...");
    let result = autotune(&mut est, KernelVariant::OpenBlas8x6, (128, 8, 256), &opts);
    println!(
        "tuned optimum:   {}x{}x{} at {} ({} evaluations)",
        result.best.kc,
        result.best.mc,
        result.best.nc,
        pct(result.best.efficiency),
        result.evaluations
    );

    let analytic = solve_blocking(8, 6, 1, &MachineDesc::xgene()).unwrap();
    let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, 1).with_blocks(
        analytic.kc,
        analytic.mc,
        analytic.nc,
    );
    let analytic_eff = est.estimate(&cfg, opts.n).efficiency;
    println!(
        "analytic choice: {}x{}x{} at {} (zero search)",
        analytic.kc,
        analytic.mc,
        analytic.nc,
        pct(analytic_eff)
    );
    println!();
    let delta = 100.0 * (result.best.efficiency - analytic_eff);
    println!("the model's closed-form blocking is within {delta:+.2} percentage points of a",);
    println!(
        "{}-evaluation search — the paper's argument for analytic selection over",
        result.evaluations
    );
    println!("ATLAS-style empirical tuning. (What little the search finds is n-specific:");
    println!("e.g. an nc equal to the probe size avoids one ragged panel — a gain that");
    println!("evaporates at other sizes, while the analytic choice is size-robust.)");

    println!();
    println!("search trajectory (best-so-far):");
    let mut best = 0.0f64;
    for (i, p) in result.trace.iter().enumerate() {
        if p.efficiency > best {
            best = p.efficiency;
            println!(
                "  eval {:>3}: {:>4}x{:<3}x{:<5} -> {}",
                i,
                p.kc,
                p.mc,
                p.nc,
                pct(p.efficiency)
            );
        }
    }
}
