//! Extension — the closed-loop autotuner on the native engine
//! (DESIGN.md §14): for each swept shape class, measure the analytic
//! (untuned) configuration, run the model-seeded sweep
//! ([`dgemm_core::autotune::tune_and_store_f64`]), persist the winner
//! in the tuning DB, then re-measure with the tuned configuration the
//! DB now serves to `GemmConfig::auto()`.
//!
//! Emits `BENCH_autotune.json` (schema `dgemm-autotune-v1`) into
//! `$BENCH_JSON_DIR` (default `results/`) for the CI gate: tuned must
//! be ≥ untuned on every swept class, within the 5% noise allowance.
//!
//! Options: `--quick` (small shapes, small budget — the CI smoke
//! configuration); `DGEMM_TUNE_DB`, `DGEMM_AUTOTUNE_BUDGET`,
//! `DGEMM_AUTOTUNE_REPS` are honored like everywhere else.

use dgemm_core::autotune::{self, AutotuneMode, TuneOptions};
use dgemm_core::gemm::{try_gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::util::gemm_flops;
use dgemm_core::Transpose;
use perfmodel::tuning::ShapeClass;
use std::path::PathBuf;
use std::time::Instant;

/// Minimum wall time per timing sample. Small shapes run a fraction of
/// a millisecond per call; a single-call sample is dominated by host
/// scheduling noise, so calls are batched until a sample is this long.
const SAMPLE_SECS: f64 = 0.025;

/// Interleaved GFLOPS measurement of two configurations at one shape:
/// alternating batched samples (untuned, tuned, untuned, ...) so that
/// bursty host contention hits both configs equally, median per config.
fn measure_pair(
    cfg_a: &GemmConfig,
    cfg_b: &GemmConfig,
    m: usize,
    n: usize,
    k: usize,
    samples: usize,
) -> (f64, f64) {
    let a = Matrix::random(m, k, 0x51);
    let b = Matrix::random(k, n, 0x52);
    let mut c = Matrix::zeros(m, n);
    let flops = gemm_flops(m, n, k) as f64;
    let run = |cfg: &GemmConfig, c: &mut Matrix<f64>| {
        try_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            cfg,
        )
        .expect("gemm failed during measurement");
    };
    // Warm-up both (arena growth, pool spin-up) and size the batch so
    // one sample is long enough to time reliably.
    let mut iters = 1usize;
    for cfg in [cfg_a, cfg_b] {
        let t = Instant::now();
        run(cfg, &mut c);
        let per_call = t.elapsed().as_secs_f64().max(1e-9);
        iters = iters.max((SAMPLE_SECS / per_call).ceil() as usize);
    }
    let mut times_a = Vec::new();
    let mut times_b = Vec::new();
    for _ in 0..samples.max(3) {
        for (cfg, times) in [(cfg_a, &mut times_a), (cfg_b, &mut times_b)] {
            let t = Instant::now();
            for _ in 0..iters {
                run(cfg, &mut c);
            }
            times.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }
    let median = |times: &mut Vec<f64>| {
        times.sort_by(f64::total_cmp);
        flops / times[times.len() / 2] / 1e9
    };
    (median(&mut times_a), median(&mut times_b))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = std::env::var("DGEMM_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });

    // The sweep budget: env wins, otherwise a rich budget for the full
    // run and a tight one for --quick / CI.
    let mut opts = TuneOptions::from_env().unwrap_or_default();
    if quick && std::env::var_os("DGEMM_AUTOTUNE_BUDGET").is_none() {
        opts.budget = 6;
    }
    if quick && std::env::var_os("DGEMM_AUTOTUNE_REPS").is_none() {
        opts.reps = 1;
    }

    // Resolve (and pin) the DB path so the tune/apply halves of the
    // loop agree even when no DGEMM_TUNE_DB was exported.
    let db: PathBuf = match autotune::db_path() {
        Ok(Some(p)) => p,
        Ok(None) => PathBuf::from("tune.json"),
        Err(e) => {
            eprintln!("bad tuning-DB environment: {e}");
            std::process::exit(2);
        }
    };
    std::env::set_var("DGEMM_TUNE_DB", &db);

    let shapes: &[(usize, usize, usize)] = if quick {
        &[(96, 96, 96), (160, 160, 160), (8, 192, 192)]
    } else {
        &[
            (256, 256, 256),
            (512, 512, 512),
            (1024, 1024, 1024),
            (8, 512, 512),
            (512, 512, 64),
        ]
    };
    let reps = if quick { 2 } else { 3 };

    // Native measurement (not the simulator), so not dgemm_bench::banner.
    println!("================================================================");
    println!("Extension — closed-loop autotuning on the native engine");
    println!("model-seeded sweep per shape class, winners persisted per host");
    println!("(native host measurement; see DESIGN.md §14 and EXPERIMENTS.md)");
    println!("================================================================");
    println!("host {:?}, {} thread(s)", autotune::cpu_id(), threads);
    println!(
        "db {} | budget {} configs/class, {} rep(s)/config",
        db.display(),
        opts.budget,
        opts.reps
    );
    println!();
    println!(
        "{:>5} {:>5} {:>5}  {:<18} {:>9} {:>9} {:>8}  winner",
        "m", "n", "k", "class", "untuned", "tuned", "speedup"
    );

    let mut rows = Vec::new();
    for &(m, n, k) in shapes {
        let class = ShapeClass::of(m, n, k);
        let untuned_cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads);

        let Some(entry) =
            autotune::tune_and_store_f64(&db, untuned_cfg.kernel, threads, class, &opts)
        else {
            eprintln!("sweep produced no winner for {}", class.label());
            continue;
        };
        // Measure exactly what auto() will now serve for this class,
        // interleaved against the untuned baseline.
        let tuned_cfg =
            autotune::tuned_f64(&untuned_cfg.with_autotune(AutotuneMode::Read), m, n, k);
        let (untuned, tuned) = measure_pair(&untuned_cfg, &tuned_cfg, m, n, k, reps);

        let winner = format!("{} {}", tuned_cfg.blocks.label(), entry.runtime);
        println!(
            "{m:>5} {n:>5} {k:>5}  {:<18} {untuned:>9.3} {tuned:>9.3} {:>7.3}x  {winner}",
            class.label(),
            tuned / untuned.max(1e-12),
        );
        rows.push(format!(
            "{{\"m\":{m},\"n\":{n},\"k\":{k},\"class\":\"{}\",\
             \"untuned_gflops\":{untuned:.4},\"tuned_gflops\":{tuned:.4},\
             \"speedup\":{:.4},\"winner\":\"{}\",\"runtime\":\"{}\",\
             \"sweep_gflops\":{:.4},\"sweep_untuned_gflops\":{:.4},\
             \"achieved_vs_bound\":{:.4},\"candidates\":{}}}",
            class.label(),
            tuned / untuned.max(1e-12),
            entry.blocks().label(),
            entry.runtime,
            entry.gflops,
            entry.untuned_gflops,
            entry.achieved_vs_bound,
            entry.candidates
        ));
    }

    // Persist the dispatcher calibration the measurements produced, so
    // the next process on this host predicts accurately from call one.
    if let Err(e) = autotune::persist_calibration(&db) {
        eprintln!("warning: could not persist calibration: {e}");
    }

    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| "results".into());
    let _ = std::fs::create_dir_all(&dir);
    let path = format!("{dir}/BENCH_autotune.json");
    let json = format!(
        "{{\"schema\":\"dgemm-autotune-v1\",\"cpu\":\"{}\",\"threads\":{threads},\
         \"budget\":{},\"reps\":{},\"db\":\"{}\",\"shapes\":[{}]}}\n",
        autotune::cpu_id(),
        opts.budget,
        opts.reps,
        db.display().to_string().replace('\\', "/"),
        rows.join(",")
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("\n(json written to {path})"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }

    println!();
    println!("The sweep is model-seeded, never brute force: candidates come from the");
    println!("analytic solve (eqs. 15-20), the Goto heuristic, and Table-VI-axis");
    println!("neighbors, pruned by the eq. (4) bound before anything is timed. On the");
    println!("paper's machine the analytic choice usually wins outright (its thesis);");
    println!("on other hosts the loop recovers whatever the closed form leaves behind,");
    println!("and the DB remembers it per (cpu, dtype, shape-class).");
}
