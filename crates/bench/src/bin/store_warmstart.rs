//! Store-conformance bench: proves the weight store's two headline
//! claims with numbers (DESIGN.md §17).
//!
//! 1. **Zero-pack warm start** — a service booted with a populated
//!    `DGEMM_WEIGHT_STORE` serves its first request per weight with
//!    `packed_b_bytes == 0` (telemetry delta across the serve phase),
//!    and its time-to-first-result beats the cold service that has to
//!    pack live.
//! 2. **Corruption is typed** — a seeded fuzzer over real on-disk
//!    blobs: every mutation decodes to `GemmError::BadStore`, never a
//!    panic, never an `Ok`.
//!
//! Modes (combinable; no mode flag runs all three in-process):
//!
//! * `--build`   — pack the fixed weight set and save blobs to the
//!   store directory. Run in its *own process* by CI so the serve
//!   process demonstrates cross-process reuse through the page cache.
//! * `--serve`   — measure cold (no store) vs warm (store-backed)
//!   boot + first-call latency and pack telemetry; writes
//!   `$BENCH_JSON_DIR/BENCH_store.json`.
//! * `--fuzz N`  — replay N seeded mutations against the first blob
//!   on disk; exits nonzero if any mutation decodes `Ok` or with a
//!   non-`BadStore` error.
//! * `--dir D`   — store directory (default: `$DGEMM_WEIGHT_STORE`,
//!   else a temp dir).
//!
//! The CI `store-conformance` job gates on the emitted JSON:
//! `warm.pack_b_bytes == 0`, `warm.total_first_call_ns <
//! cold.total_first_call_ns`, and `fuzz.typed == fuzz.mutations ≥ 64`.

use dgemm_core::gemm::GemmConfig;
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::prepack::PrepackedB;
use dgemm_core::service::{GemmService, ServiceConfig};
use dgemm_core::store;
use dgemm_core::{GemmError, Transpose};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// The fixed weight set: serving-shaped problems (fat weights, thin
/// activations) where pack cost dominates the first call.
const WEIGHTS: usize = 3;
const K: usize = 640;
const N: usize = 512;
const M: usize = 8;
const WEIGHT_SEED: u64 = 9100;

fn gemm_cfg() -> GemmConfig {
    GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1).with_pack_cache(true)
}

fn weight(i: usize) -> Matrix {
    Matrix::random(K, N, WEIGHT_SEED + i as u64)
}

fn blob_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("w{i}.dgemmpb"))
}

fn total_packed_b_bytes() -> u64 {
    dgemm_core::telemetry::snapshot()
        .threads
        .iter()
        .map(|t| t.packed_b_bytes)
        .sum()
}

/// SplitMix64, seeded: the same mutation schedule the store test
/// battery and the CI replay sweep use.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn build(dir: &Path) -> (u64, Vec<u64>) {
    std::fs::create_dir_all(dir).expect("create store dir");
    let cfg = gemm_cfg();
    let t0 = Instant::now();
    let mut blob_bytes = Vec::new();
    for i in 0..WEIGHTS {
        let b = weight(i);
        let pre = PrepackedB::from_matrix(&cfg, &b.view()).expect("prepack weight");
        let path = blob_path(dir, i);
        store::save(&path, &pre).expect("save blob");
        blob_bytes.push(std::fs::metadata(&path).expect("stat blob").len());
    }
    let build_ns = t0.elapsed().as_nanos() as u64;
    eprintln!(
        "store_warmstart: built {WEIGHTS} blobs ({} bytes) in {} in {:.2} ms",
        blob_bytes.iter().sum::<u64>(),
        dir.display(),
        build_ns as f64 / 1e6
    );
    (build_ns, blob_bytes)
}

struct Phase {
    boot_ns: u64,
    first_call_ns: Vec<u64>,
    pack_b_bytes: u64,
    /// Store-counter deltas across this phase only (loads,
    /// load_failures, verifies, verify_failures, attaches).
    store: [u64; 5],
}

fn store_counters() -> [u64; 5] {
    let s = dgemm_core::telemetry::snapshot().store;
    [
        s.loads,
        s.load_failures,
        s.verifies,
        s.verify_failures,
        s.attaches,
    ]
}

/// Boot a service (with or without the store) and time the first
/// request against each weight. The weights are freshly allocated
/// `Arc<Matrix>`es with the same *contents* as the stored set — the
/// attach path verifies by source digest, not pointer identity.
fn serve_phase(label: &str, weight_store: Option<PathBuf>) -> Phase {
    let pack0 = total_packed_b_bytes();
    let store0 = store_counters();
    let t0 = Instant::now();
    let svc = GemmService::new(ServiceConfig {
        weight_store,
        gemm: gemm_cfg(),
        ..ServiceConfig::default()
    });
    let boot_ns = t0.elapsed().as_nanos() as u64;
    let mut first_call_ns = Vec::new();
    for i in 0..WEIGHTS {
        let a = Arc::new(Matrix::random(M, K, 7_000 + i as u64));
        let b = Arc::new(weight(i));
        let t = Instant::now();
        let c = svc
            .submit(
                &format!("{label}-{i}"),
                1.0,
                Arc::clone(&a),
                Transpose::No,
                Arc::clone(&b),
            )
            .expect("admitted")
            .wait()
            .expect("served");
        first_call_ns.push(t.elapsed().as_nanos() as u64);
        std::hint::black_box(c.get(0, 0));
    }
    svc.shutdown();
    let pack_b_bytes = total_packed_b_bytes() - pack0;
    let store1 = store_counters();
    let mut store = [0u64; 5];
    for (d, (a, b)) in store.iter_mut().zip(store1.iter().zip(store0)) {
        *d = a - b;
    }
    eprintln!(
        "store_warmstart: {label}: boot {:.2} ms, first calls {:?} us, packed B {pack_b_bytes} bytes",
        boot_ns as f64 / 1e6,
        first_call_ns
            .iter()
            .map(|ns| ns / 1_000)
            .collect::<Vec<_>>()
    );
    Phase {
        boot_ns,
        first_call_ns,
        pack_b_bytes,
        store,
    }
}

struct Fuzz {
    mutations: usize,
    typed: usize,
    decoded_ok: usize,
}

/// Replay `n` seeded mutations against the first blob on disk. Every
/// mutated blob must decode to `Err(BadStore)`.
fn fuzz(dir: &Path, n: usize) -> Fuzz {
    let blob = std::fs::read(blob_path(dir, 0)).expect("read blob 0 for fuzzing");
    let mut rng = SplitMix64(0x5eed_0123_4567_89ab);
    let (mut typed, mut decoded_ok) = (0usize, 0usize);
    for i in 0..n {
        let mut bad = blob.clone();
        match i % 4 {
            0 => {
                let pos = rng.below(bad.len());
                bad[pos] ^= (rng.next() as u8) | 1;
            }
            1 => {
                let pos = rng.below(store::HEADER_LEN);
                bad[pos] ^= (rng.next() as u8) | 1;
            }
            2 => bad.truncate(rng.below(bad.len())),
            _ => bad.extend(std::iter::repeat_n(0xA5, 1 + rng.below(64))),
        }
        match store::decode::<f64>(&bad) {
            Err(GemmError::BadStore(_)) => typed += 1,
            Err(e) => eprintln!("store_warmstart: fuzz {i}: non-store error {e}"),
            Ok(_) => {
                decoded_ok += 1;
                eprintln!("store_warmstart: fuzz {i}: mutated blob decoded Ok");
            }
        }
    }
    eprintln!("store_warmstart: fuzz: {typed}/{n} typed, {decoded_ok} decoded Ok");
    Fuzz {
        mutations: n,
        typed,
        decoded_ok,
    }
}

fn json_list(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = std::env::var("DGEMM_WEIGHT_STORE").ok().map(PathBuf::from);
    let (mut do_build, mut do_serve) = (false, false);
    let mut fuzz_n: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--build" => do_build = true,
            "--serve" => do_serve = true,
            "--fuzz" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fuzz takes a mutation count");
                fuzz_n = Some(n);
            }
            "--dir" => {
                dir = Some(PathBuf::from(it.next().expect("--dir takes a path")));
            }
            other => panic!("unknown argument {other}"),
        }
    }
    if !do_build && !do_serve && fuzz_n.is_none() {
        (do_build, do_serve, fuzz_n) = (true, true, Some(96));
    }
    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("dgemm-store-bench-{}", std::process::id()))
    });

    let (build_ns, mut blob_bytes) = if do_build {
        build(&dir)
    } else {
        (0, Vec::new())
    };
    if blob_bytes.is_empty() {
        blob_bytes = (0..WEIGHTS)
            .filter_map(|i| std::fs::metadata(blob_path(&dir, i)).ok().map(|m| m.len()))
            .collect();
    }

    let serve = do_serve.then(|| {
        let cold = serve_phase("cold", None);
        let warm = serve_phase("warm", Some(dir.clone()));
        (cold, warm)
    });
    let fz = fuzz_n.map(|n| fuzz(&dir, n));

    // Failure of either claim is this binary's exit code, so the CI
    // job fails even before the JSON gate parses anything.
    if let Some(f) = &fz {
        assert_eq!(f.typed, f.mutations, "every mutation must be typed");
        assert_eq!(f.decoded_ok, 0, "no mutation may decode Ok");
    }

    if let Some((cold, warm)) = &serve {
        let dirjson = dir.display().to_string().replace('\\', "/");
        let fuzz_json = fz.as_ref().map_or("null".to_string(), |f| {
            format!(
                "{{\"mutations\":{},\"typed\":{},\"decoded_ok\":{}}}",
                f.mutations, f.typed, f.decoded_ok
            )
        });
        let json = format!(
            "{{\"schema\":\"dgemm-store-v1\",\"weights\":{WEIGHTS},\"m\":{M},\"n\":{N},\"k\":{K},\
             \"store_dir\":\"{dirjson}\",\"blob_bytes\":{},\"build_ns\":{build_ns},\
             \"cold\":{{\"boot_ns\":{},\"first_call_ns\":{},\"total_first_call_ns\":{},\"pack_b_bytes\":{}}},\
             \"warm\":{{\"boot_ns\":{},\"first_call_ns\":{},\"total_first_call_ns\":{},\"pack_b_bytes\":{},\
             \"loads\":{},\"load_failures\":{},\"verifies\":{},\"verify_failures\":{},\"attaches\":{}}},\
             \"fuzz\":{fuzz_json}}}\n",
            json_list(&blob_bytes),
            cold.boot_ns,
            json_list(&cold.first_call_ns),
            cold.first_call_ns.iter().sum::<u64>(),
            cold.pack_b_bytes,
            warm.boot_ns,
            json_list(&warm.first_call_ns),
            warm.first_call_ns.iter().sum::<u64>(),
            warm.pack_b_bytes,
            warm.store[0],
            warm.store[1],
            warm.store[2],
            warm.store[3],
            warm.store[4],
        );
        let out = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| "results".into());
        std::fs::create_dir_all(&out).expect("create artifact dir");
        let path = format!("{out}/BENCH_store.json");
        std::fs::write(&path, &json).expect("write BENCH_store.json");
        eprintln!("store_warmstart: wrote {path}");
        print!("{json}");
    }
}
