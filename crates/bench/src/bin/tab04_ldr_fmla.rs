//! E5 / Table IV — pipeline efficiency under varying LDR:FMLA ratios
//! (the micro-benchmark that establishes the per-kernel upper bounds).

use dgemm_bench::{banner, pct};
use kernels::microbench::{table4, PAPER_EFFICIENCIES, PAPER_RATIOS};

fn main() {
    banner(
        "Table IV — efficiency vs LDR:FMLA ratio",
        "independent, evenly distributed instructions; all loads L1-resident",
    );
    let rows = table4(Default::default());
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "LDR:FMLA", "measured", "paper", "delta"
    );
    for (i, r) in rows.iter().enumerate() {
        let (l, f) = PAPER_RATIOS[i];
        let paper = PAPER_EFFICIENCIES[i] / 100.0;
        println!(
            "{:>10} {:>14} {:>14} {:>+9.1}pp",
            format!("{l}:{f}"),
            pct(r.efficiency),
            pct(paper),
            100.0 * (r.efficiency - paper)
        );
    }
    println!();
    println!("kernel-relevant ratios: 1:2 = 4x4 kernel, 6:16 = 8x4, 7:24 = 8x6.");
    println!("The simulated core charges one NEON write-back cycle per vector load");
    println!("(2F+L cycles when FMA-bound), slightly compressing the hardware's curve;");
    println!("ordering and monotonicity — what the paper's argument needs — match.");
}
