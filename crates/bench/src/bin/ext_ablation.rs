//! Extension — ablation of the paper's individual optimizations at the
//! kernel level: what does each design decision of Section IV buy?
//!
//! Dimensions ablated:
//! 1. software prefetching of the A stream (`PLDL1KEEP`),
//! 2. register rotation (eq. 12),
//! 3. load scheduling slack under realistic L1 misses,
//! 4. the register block size itself (8×6 vs 8×4 vs 4×4),
//! 5. the NEON write-back port steal (machine property, for context).

use armsim::core::CoreSim;
use armsim::machine::SimMachine;
use armsim::pipeline::PipelineConfig;
use dgemm_bench::{banner, pct};
use kernels::regkernel::{
    generate_microkernel_call, padded_a_bytes, padded_b_bytes, GebpAddrs, KernelSpec,
};
use simgemm::kernelsim::{profile_with_misses, KernelVariant, MissModel};

/// Steady-state kernel efficiency under a miss model.
fn kernel_eff(spec: &KernelSpec, miss: Option<MissModel>) -> f64 {
    let kc = 512;
    let shape = spec.shape();
    let addrs = GebpAddrs {
        a: 4096,
        b: 4096 + padded_a_bytes(shape.mr, kc) as u64 + 64,
        c: 8 << 20,
        ldc_bytes: (shape.mr * 8) as u64,
    };
    let stream = generate_microkernel_call(spec, kc, &addrs);
    let mut core = CoreSim::new(0, 16 << 20);
    let r = match miss {
        None => core.run_perfect_l1(&stream, 4),
        Some(m) => core.run_with_periodic_miss(&stream, 4, m.latency, m.period),
    };
    r.efficiency(2.0)
}

/// Demand L1 misses of one GEBP kernel run with/without PLDL1KEEP.
fn prefetch_ablation() -> (u64, u64) {
    use simgemm::trace::{trace_gebp, trace_macro_iteration, CoreLayout};
    let blocks = perfmodel::cacheblock::BlockSizes::custom(8, 6, 512, 56, 1920);
    let run = |prefa: u64| {
        let layout = CoreLayout::for_core(0, 4096, &blocks);
        let mut machine = SimMachine::xgene();
        let warm = trace_macro_iteration(&layout, &blocks, 56, 512, 384, prefa, 24576);
        machine.run_trace(0, &warm);
        machine.reset_stats();
        let t = trace_gebp(&layout, &blocks, 56, 512, 384, prefa, 24576);
        let r = machine.run_trace(0, &t);
        r.accesses - r.l1_hits
    };
    (run(1024), run(0))
}

fn main() {
    banner(
        "Extension — ablation of the Section IV optimizations",
        "each row removes one design decision; kernel-level steady state",
    );
    let miss = Some(MissModel::gebp_steady_state());

    println!("register block size (perfect L1):");
    for v in [
        KernelVariant::OpenBlas8x6,
        KernelVariant::OpenBlas8x4,
        KernelVariant::OpenBlas4x4,
        KernelVariant::Atlas5x5,
    ] {
        let p = profile_with_misses(v, None);
        println!(
            "  {:<20} gamma {:>5.2}  body efficiency {}",
            v.label(),
            v.portable_kind().gamma(),
            pct(p.body_efficiency)
        );
    }

    println!();
    println!("register rotation (under the steady-state miss model, 1-in-9 loads at L2):");
    let rot = kernel_eff(&KernelSpec::paper_8x6(None), miss);
    let norot = kernel_eff(&KernelSpec::paper_8x6_no_rotation(None), miss);
    println!("  with rotation        {}", pct(rot));
    println!(
        "  without rotation     {}  (Δ {:+.2} pp)",
        pct(norot),
        100.0 * (norot - rot)
    );

    println!();
    println!("A-stream software prefetch (PLDL1KEEP), demand L1 misses per GEBP:");
    let (with_pf, without_pf) = prefetch_ablation();
    println!("  with prefetch        {with_pf:>8}");
    println!(
        "  without prefetch     {without_pf:>8}  ({:.1}x more demand misses)",
        without_pf as f64 / with_pf.max(1) as f64
    );

    println!();
    println!("NEON write-back port steal (the machine constraint behind Table IV):");
    for (label, steal) in [
        ("with steal (real)", true),
        ("without (hypothetical)", false),
    ] {
        let mut core = CoreSim::new(0, 1 << 20);
        core.set_pipeline_config(PipelineConfig {
            load_wb_steals_neon: steal,
            ..PipelineConfig::default()
        });
        let base = core.mem.alloc(64, 64);
        let stream = kernels::microbench::ldr_fmla_stream(7, 24, 200, base);
        let r = core.run_perfect_l1(&stream, 4);
        println!("  {:<20} 7:24 ratio at {}", label, pct(r.efficiency(2.0)));
    }

    println!();
    println!("miss-latency tolerance of the schedules (efficiency under 1-in-N L2-latency loads):");
    println!("  {:>10} {:>12} {:>12}", "1 in N", "rotated", "unrotated");
    for period in [32u64, 16, 9, 6, 4] {
        let m = Some(MissModel {
            period,
            latency: 14,
        });
        println!(
            "  {:>10} {:>12} {:>12}",
            period,
            pct(kernel_eff(&KernelSpec::paper_8x6(None), m)),
            pct(kernel_eff(&KernelSpec::paper_8x6_no_rotation(None), m))
        );
    }
    let _ = padded_b_bytes(6, 512); // (api symmetry; padding documented there)
}
