//! E11 / Table VI — OpenBLAS-8x6 performance under different block
//! sizes: the paper's associativity-aware choices vs the conventional
//! half-cache heuristic (serial) and vs non-adjusted blocks (parallel).

use dgemm_bench::{banner, pct, SweepArgs};
use simgemm::estimate::Estimator;
use simgemm::experiments::table6;

fn main() {
    let args = SweepArgs::parse();
    banner(
        "Table VI — OpenBLAS-8x6 under different kc x mc x nc",
        "paper: serial 87.2 vs 86.4 peak; parallel 85.3/85.2/80.4/80.1 peak",
    );
    let mut est = Estimator::new();
    let rows = table6(&mut est, &args.sizes);
    println!(
        "{:<22} {:<16} {:>6} {:>12} {:>12}",
        "setting", "kc x mc x nc", "ours", "peak eff", "avg eff"
    );
    for r in &rows {
        println!(
            "{:<22} {:<16} {:>6} {:>12} {:>12}",
            r.setting,
            r.blocks,
            if r.ours { "yes" } else { "" },
            pct(r.peak),
            pct(r.avg)
        );
    }
    println!();
    println!("The parallel mc=56 rows double each module's A-block footprint past the");
    println!("shared 256 KB L2 (eq. 19), which the simulated hierarchy punishes the");
    println!("same way the hardware does.");
}
