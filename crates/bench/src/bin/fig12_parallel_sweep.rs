//! E7 / Figure 12 — eight-thread DGEMM performance of the four
//! implementations across the size grid.

use dgemm_bench::{banner, pct, print_curves, SweepArgs};
use simgemm::estimate::Estimator;
use simgemm::experiments::performance_sweep;

fn main() {
    let args = SweepArgs::parse();
    banner(
        "Figure 12 — DGEMM performance, eight threads (Gflops vs matrix size)",
        "paper peaks: OpenBLAS-8x6 32.7 (85.3%), ATLAS-5x5 30.4 (79.2%)",
    );
    let mut est = Estimator::new();
    let curves = performance_sweep(&mut est, &args.sizes, 8);
    print_curves(&args.sizes, &curves, |p| p.gflops, "Gflops");
    args.maybe_write_csv(&curves, |p| p.gflops);
    println!();
    for c in &curves {
        println!(
            "{:<20} peak {:.2} Gflops ({}), average efficiency {}",
            c.label,
            c.peak_gflops(),
            pct(c.peak_efficiency()),
            pct(c.avg_efficiency())
        );
    }
}
