//! Extension (paper Section VI future work): TLB analysis of the GEBP
//! blocking. Replays one macro-iteration per configuration through the
//! simulated 48-entry data TLB and reports page-walk counts — showing
//! how the block sizes determine the TLB working set, which is the
//! study the paper defers.

use armsim::machine::SimMachine;
use dgemm_bench::banner;
use perfmodel::cacheblock::BlockSizes;
use simgemm::trace::{trace_gebp, trace_macro_iteration, CoreLayout};

fn study(label: &str, blocks: &BlockSizes) {
    let (mc, kc, nc) = (blocks.mc, blocks.kc, blocks.nc);
    let layout = CoreLayout::for_core(0, 4096, blocks);
    let mut machine = SimMachine::xgene();
    let prefa = 1024u64;
    let prefb = (kc * blocks.nr * 8) as u64;
    // warm, then measure one GEBP
    let warm = trace_macro_iteration(&layout, blocks, mc, kc, nc, prefa, prefb);
    machine.run_trace(0, &warm);
    machine.reset_stats();
    let t = trace_gebp(&layout, blocks, mc, kc, nc, prefa, prefb);
    let r = machine.run_trace(0, &t);
    let flops = 2.0 * mc as f64 * kc as f64 * nc as f64;
    let a_pages = (mc * kc * 8).div_ceil(4096);
    let b_pages = (kc * nc * 8).div_ceil(4096);
    println!(
        "{label:<28} {:>5}x{:<4}x{:<5} A:{a_pages:>4}p B:{b_pages:>5}p  walks/GEBP {:>8}  walks/Mflop {:>7.1}",
        kc, mc, nc,
        r.tlb_misses,
        r.tlb_misses as f64 / (flops / 1e6)
    );
}

fn main() {
    banner(
        "Extension — data-TLB behaviour of the GEBP blocking (48-entry, 4 KB)",
        "the analysis the paper's Section VI defers to future work",
    );
    println!(
        "{:<28} {:<17} {:<14} {:>18} {:>15}",
        "configuration", "kc x mc x nc", "footprint", "", ""
    );
    study(
        "paper serial (8x6)",
        &BlockSizes::custom(8, 6, 512, 56, 1920),
    );
    study(
        "paper parallel (8x6)",
        &BlockSizes::custom(8, 6, 512, 24, 1792),
    );
    study(
        "Goto heuristic (8x6)",
        &BlockSizes::custom(8, 6, 320, 96, 1536),
    );
    study("serial, mc=40", &BlockSizes::custom(8, 6, 512, 40, 1920));
    study("serial, mc=32", &BlockSizes::custom(8, 6, 512, 32, 1920));
    study(
        "TLB-fit serial, mc=24",
        &BlockSizes::custom(8, 6, 512, 24, 1920),
    );
    study("small nc", &BlockSizes::custom(8, 6, 512, 56, 384));
    study("tiny kc", &BlockSizes::custom(8, 6, 128, 56, 1920));
    println!();
    println!("Reading: each B-sliver pass touches the A block's mc*kc*8/4096 pages");
    println!("(recurring) plus ~6 fresh B-sliver and ~6 fresh C-tile pages. Under LRU");
    println!("the A pages survive only if  A_pages + 2*(B+C turnover) <= 48 entries,");
    println!("i.e. mc <= 24: at mc=56/40/32 every A page re-walks each pass (~198-224");
    println!("walks/Mflop), while at mc=24 walks collapse to the compulsory ~12 pages");
    println!("per pass (81 walks/Mflop, a 2.4x drop) — the paper's *parallel* blocking");
    println!("is accidentally TLB-optimal, its serial blocking is not. This is the");
    println!("'analyze the TLB misses and improve our selection of block sizes'");
    println!("refinement Section VI defers: a TLB-aware solver adds the constraint");
    println!("above and trades a little gamma (eq. 16's 2/mc term) for eliminating");
    println!("page walks.");
}
