//! E13 / Table VII — L1 cache miss rates of the three OpenBLAS kernels
//! on one and eight cores.

use dgemm_bench::{banner, pct, SweepArgs};
use simgemm::estimate::Estimator;
use simgemm::experiments::l1_study;

fn main() {
    let mut args = SweepArgs::parse();
    // miss rates saturate quickly; a few representative sizes suffice
    if args.sizes.len() > 8 {
        args.sizes = args
            .sizes
            .iter()
            .copied()
            .step_by(args.sizes.len() / 8)
            .collect();
    }
    banner(
        "Table VII — L1 load miss rates",
        "paper: 8x6 5.2%/3.6%, 8x4 4.3%/3.2%, 4x4 5.7%/5.0% (1T/8T)",
    );
    let mut est = Estimator::new();
    let rows = l1_study(&mut est, &args.sizes);
    println!("{:<18} {:>8} {:>14}", "kernel", "threads", "miss rate");
    for r in &rows {
        let avg: f64 = r.points.iter().map(|p| p.2).sum::<f64>() / r.points.len() as f64;
        println!("{:<18} {:>8} {:>14}", r.label, r.threads, pct(avg));
    }
    println!();
    println!("The simulated LRU L1 re-misses the whole B sliver once per A-sliver pass");
    println!("(the worst case; hardware lands at about half that), so absolute rates run");
    println!("~2x the paper's — but the ordering across kernels matches, and so does the");
    println!("paper's conclusion: 8x6 wins on *fewer loads*, not on miss rate.");
}
