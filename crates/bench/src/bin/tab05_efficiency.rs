//! E8 / Table V — peak and average efficiencies of the four DGEMM
//! implementations, serial and eight-thread.

use dgemm_bench::{banner, pct, SweepArgs};
use simgemm::estimate::Estimator;
use simgemm::experiments::table5;

fn main() {
    let args = SweepArgs::parse();
    banner(
        "Table V — efficiencies of four DGEMM implementations",
        "paper: peak 87.2/84.6/78.2/80.9 (1T), 85.3/81.0/73.7/79.2 (8T) for 8x6/8x4/4x4/5x5",
    );
    let mut est = Estimator::new();
    let rows = table5(&mut est, &args.sizes);
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}",
        "", "peak 1T", "peak 8T", "avg 1T", "avg 8T"
    );
    for r in &rows {
        println!(
            "{:<20} {:>12} {:>12} {:>12} {:>12}",
            r.label,
            pct(r.peak_serial),
            pct(r.peak_parallel),
            pct(r.avg_serial),
            pct(r.avg_parallel)
        );
    }
    println!();
    println!("paper Table V (for reference):");
    println!("  peak:    8x6 87.2/85.3  8x4 84.6/81.0  4x4 78.2/73.7  ATLAS 80.9/79.2");
    println!("  average: 8x6 86.3/83.2  8x4 83.6/77.7  4x4 77.6/72.3  ATLAS 79.5/75.1");
}
