//! E1 / Figure 5 — surface of the register kernel's compute-to-memory
//! access ratio over (mr, nrf), equations (8)–(11).

use dgemm_bench::{banner, pct};
use perfmodel::regblock::{gamma_surface, optimize_register_block};
use perfmodel::MachineDesc;

fn main() {
    banner(
        "Figure 5 — register-kernel gamma surface",
        "z = best gamma over even nr subject to eqs (9)-(11); paper peak: X=8, Y=6, Z=6.857",
    );
    let m = MachineDesc::xgene();
    let surface = gamma_surface(&m, 16, 8);

    // grid: rows nrf (descending like the figure), columns mr
    let mrs: Vec<usize> = (2..=16).step_by(2).collect();
    print!("{:>6}", "nrf\\mr");
    for mr in &mrs {
        print!("{mr:>8}");
    }
    println!();
    for nrf in (0..=8usize).rev() {
        print!("{nrf:>6}");
        for mr in &mrs {
            let p = surface
                .iter()
                .find(|p| p.mr == *mr && p.nrf == nrf)
                .expect("grid point");
            if p.gamma > 0.0 {
                print!("{:>8.3}", p.gamma);
            } else {
                print!("{:>8}", "-");
            }
        }
        println!();
    }

    let best = optimize_register_block(&m);
    println!();
    println!(
        "optimum: mr x nr = {}x{}, nrf = {}, gamma = {:.3}  (paper: 8x6, nrf 6, 6.857)",
        best.mr, best.nr, best.nrf, best.gamma
    );
    println!(
        "micro-kernel arithmetic fraction at the optimum: {} of issued instructions are FMA",
        pct((best.mr * best.nr) as f64
            / 2.0
            / ((best.mr * best.nr) as f64 / 2.0 + (best.mr + best.nr) as f64 / 2.0))
    );
}
