//! CI smoke for the observability surface (DESIGN.md §16): stand up a
//! [`GemmService`] with a deliberately small queue, push a burst of
//! mixed-tenant requests through it (some of which shed), optionally
//! inject one seeded fault, then scrape the loopback `/metrics` and
//! `/status` endpoint over real TCP and export everything for the
//! workflow's parser gate:
//!
//! * `$BENCH_JSON_DIR/METRICS_service.prom` — the raw `/metrics` body
//!   (Prometheus text exposition format).
//! * `$BENCH_JSON_DIR/STATUS_smoke.json` — the raw `/status` body
//!   (`dgemm-telem-v1`).
//! * `$BENCH_JSON_DIR/TRACE_service.json` — a chrome-trace
//!   (`trace_events`) export of the run, openable in Perfetto or
//!   `chrome://tracing`.
//!
//! With the `fault-injection` feature compiled in, `DGEMM_FAULT_SEED`
//! selects the fault ([`FaultPlan::from_seed_service`] — the same
//! mapping the chaos-soak suite sweeps); unset, a default seed that
//! arms a service-layer site is used so the health journal always has
//! a `fault_injected` entry to assert against. The binary exits
//! nonzero if the scrape fails, the journal lost the fault, or the
//! trace chain of a served request is missing its lifecycle events.

use dgemm_core::gemm::GemmConfig;
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::Parallelism;
use dgemm_core::service::{GemmService, ServiceConfig, ServiceError};
use dgemm_core::trace::{self, HealthEventKind, TraceKind};
use dgemm_core::Transpose;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const TENANTS: [&str; 3] = ["tenant-a", "tenant-b", "tenant-c"];
const REQUESTS: usize = 100;
const M: usize = 96;
const N: usize = 128;
const K: usize = 128;

/// Default `from_seed_service` seed when `DGEMM_FAULT_SEED` is unset:
/// chosen (stable, asserted in core's fault tests' 7-way mapping) to
/// arm a *service-layer* site so the fault fires under this binary's
/// workload and lands in the health journal with a trace ID.
#[cfg(feature = "fault-injection")]
const DEFAULT_SEED: u64 = 5;

fn scrape(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect to metricsd");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("socket timeout");
    write!(s, "GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n").expect("send request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    let (head, body) = out
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("malformed response head for {path}: {out:?}"));
    (head.to_string(), body.to_string())
}

/// Returns the seed and whether the armed site fires inside a request
/// context (service scheduler or a pool job carrying a trace), i.e.
/// whether its journal entry must carry a nonzero trace ID.
#[cfg(feature = "fault-injection")]
fn install_fault() -> (u64, bool) {
    use dgemm_core::faults::{self, FaultPlan};
    let seed = std::env::var("DGEMM_FAULT_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let plan = FaultPlan::from_seed_service(seed);
    eprintln!("metrics_smoke: DGEMM_FAULT_SEED={seed} -> {plan:?}");
    let request_scoped = plan.service_stall.is_some()
        || plan.service_panic.is_some()
        || plan.worker_panic.is_some()
        || plan.slow_worker.is_some();
    faults::install(plan);
    (seed, request_scoped)
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().clamp(2, 4));
    #[cfg(feature = "fault-injection")]
    let (seed, fault_request_scoped) = install_fault();

    // Small queue + tight per-tenant quota: the 100-request burst below
    // must overrun them, so the shed paths (and their health-journal
    // entries) are exercised on every run.
    let svc = GemmService::new(ServiceConfig {
        queue_limit: 24,
        tenant_quota: 10,
        coalesce: 8,
        shards: 1,
        gemm: GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads)
            .with_parallelism(Parallelism::Pool(threads))
            .with_pack_cache(true),
        ..ServiceConfig::default()
    });
    let endpoint = match std::env::var("DGEMM_METRICS_ADDR") {
        Ok(_) => svc
            .serve_metrics_from_env()
            .expect("bind DGEMM_METRICS_ADDR")
            .expect("DGEMM_METRICS_ADDR is set"),
        Err(_) => svc.serve_metrics("127.0.0.1:0").expect("bind loopback"),
    };
    let addr = endpoint.local_addr();
    eprintln!("metrics_smoke: scrape endpoint on {addr}");

    let b = Arc::new(Matrix::random(K, N, 2));
    let a_mats: Vec<Arc<Matrix>> = (0..8)
        .map(|i| Arc::new(Matrix::random(M, K, 100 + i)))
        .collect();

    // Burst the whole batch before waiting on any ticket so the queue
    // bound and tenant quotas actually bite.
    let mut tickets = Vec::new();
    let (mut shed, mut rejected) = (0usize, 0usize);
    for i in 0..REQUESTS {
        let tenant = TENANTS[i % TENANTS.len()];
        match svc.submit(
            tenant,
            1.0,
            Arc::clone(&a_mats[i % a_mats.len()]),
            Transpose::No,
            Arc::clone(&b),
        ) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::Overloaded { .. }) => shed += 1,
            Err(e) => {
                eprintln!("unexpected submit error: {e}");
                rejected += 1;
            }
        }
    }
    let mut served = 0usize;
    let mut failed = 0usize;
    let mut served_ticket_id = None;
    for t in tickets {
        let id = t.id();
        match t.wait() {
            Ok(c) => {
                std::hint::black_box(c.get(0, 0));
                served += 1;
                served_ticket_id.get_or_insert(id);
            }
            Err(_) => failed += 1,
        }
    }
    eprintln!(
        "metrics_smoke: {served} served, {shed} shed, {failed} failed, {rejected} rejected \
         of {REQUESTS} submitted"
    );
    assert!(served > 0, "smoke must serve some requests");
    assert!(shed > 0, "the burst must overrun the small queue");

    // Scrape over real TCP (the point of the smoke: the endpoint, not
    // just the renderer).
    let (head, metrics_body) = scrape(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "metrics scrape: {head}");
    assert!(
        metrics_body.contains("dgemm_service_admitted_total"),
        "metrics body missing service counters"
    );
    let (head, status_body) = scrape(addr, "/status");
    assert!(head.starts_with("HTTP/1.1 200"), "status scrape: {head}");
    assert!(
        status_body.starts_with("{\"schema\":\"dgemm-telem-v1\""),
        "status body is not dgemm-telem-v1: {}",
        &status_body[..status_body.len().min(80)]
    );
    let (head, _) = scrape(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "404 route: {head}");

    // The journal must carry the shed events; with fault-injection on,
    // the injected fault too (the point of the chaos leg: a failure
    // observed by the user is attributable in the journal).
    let counts = trace::health_counts();
    let shed_total = counts
        .iter()
        .find(|(k, _)| *k == HealthEventKind::Shed)
        .map_or(0, |(_, n)| *n);
    assert!(
        shed_total as usize >= shed,
        "journal lost shed events: {shed_total} < {shed}"
    );
    #[cfg(feature = "fault-injection")]
    {
        let events = trace::health_events();
        let injected: Vec<_> = events
            .iter()
            .filter(|e| e.kind == HealthEventKind::FaultInjected)
            .collect();
        eprintln!(
            "metrics_smoke: seed {seed}: {} fault_injected journal entries",
            injected.len()
        );
        assert!(
            !injected.is_empty(),
            "seeded fault (seed {seed}) never fired under the smoke workload"
        );
        if fault_request_scoped && trace::enabled() {
            assert!(
                injected.iter().any(|e| e.trace != 0),
                "request-scoped fault lost its trace ID: {injected:?}"
            );
        }
    }

    // Trace-chain sanity on one served request (only meaningful while
    // the ring actually records).
    if trace::enabled() && trace::mode() != trace::TraceMode::Off {
        let id = served_ticket_id.expect("served > 0");
        let chain = svc.trace_of(id);
        for kind in [
            TraceKind::Submitted,
            TraceKind::Admitted,
            TraceKind::Resolved,
        ] {
            assert!(
                chain.iter().any(|e| e.kind == kind),
                "trace {id} chain missing {kind:?}: {chain:?}"
            );
        }
        assert!(
            chain.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
            "trace {id} timestamps not monotone: {chain:?}"
        );
    }

    // Artifacts for the workflow's parser gate + Perfetto.
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| "results".into());
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    std::fs::write(format!("{dir}/METRICS_service.prom"), &metrics_body)
        .expect("write metrics artifact");
    std::fs::write(format!("{dir}/STATUS_smoke.json"), status_body + "\n")
        .expect("write status artifact");
    let chrome = trace::chrome_trace_json(&trace::recent_events(8192));
    std::fs::write(format!("{dir}/TRACE_service.json"), chrome + "\n")
        .expect("write chrome-trace artifact");
    eprintln!("metrics_smoke: artifacts in {dir}/ (METRICS_service.prom, STATUS_smoke.json, TRACE_service.json)");

    drop(endpoint);
    svc.shutdown();
}
