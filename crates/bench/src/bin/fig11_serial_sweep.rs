//! E6 / Figure 11 — serial DGEMM performance of the four implementations
//! across the size grid.

use dgemm_bench::{banner, pct, print_curves, SweepArgs};
use simgemm::estimate::Estimator;
use simgemm::experiments::performance_sweep;

fn main() {
    let args = SweepArgs::parse();
    banner(
        "Figure 11 — DGEMM performance, one thread (Gflops vs matrix size)",
        "paper peaks: OpenBLAS-8x6 4.19 (87.2%), 8x4 ~4.06, 4x4 ~3.75, ATLAS-5x5 3.88 (80.9%)",
    );
    let mut est = Estimator::new();
    let curves = performance_sweep(&mut est, &args.sizes, 1);
    print_curves(&args.sizes, &curves, |p| p.gflops, "Gflops");
    args.maybe_write_csv(&curves, |p| p.gflops);
    println!();
    for c in &curves {
        println!(
            "{:<20} peak {:.2} Gflops ({}), average efficiency {}",
            c.label,
            c.peak_gflops(),
            pct(c.peak_efficiency()),
            pct(c.avg_efficiency())
        );
    }
}
