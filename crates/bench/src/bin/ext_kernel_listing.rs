//! Extension — full annotated listing of the generated 8×6 register
//! kernel (the complete version of the paper's Figure 8 snippet):
//! prologue, the first rotated/scheduled copies, and the epilogue, with
//! the rotation table and scheduling metrics.

use armsim::isa::Instr;
use dgemm_bench::banner;
use kernels::regkernel::{
    generate_microkernel_call, generate_microkernel_loop, GebpAddrs, KernelSpec,
};

fn main() {
    banner(
        "Extension — generated 8x6 register-kernel listing",
        "the full version of the paper's Figure 8 assembly snippet",
    );
    let spec = KernelSpec::paper_8x6(Some(24576));
    println!("register rotation (paper Table I):");
    println!("{}", spec.scheme());
    println!(
        "reuse distance (eq. 12): {}   RAW distance (eq. 13): {} slots",
        spec.scheme().min_reuse_distance(),
        spec.schedule().min_raw_distance()
    );
    println!();

    let kc = 16; // short depth so the listing stays readable
    let addrs = GebpAddrs {
        a: 0x1000,
        b: 0x9000,
        c: 0x20000,
        ldc_bytes: 8 * 256, // a 256-row C matrix
    };
    let stream = generate_microkernel_call(&spec, kc, &addrs);

    let prologue_len = 2 + 6 + 24 + 7; // movs + C col ptrs + C loads + preloads
    println!(
        "prologue ({} instructions — base pointers, C tile, operand preload):",
        prologue_len
    );
    for ins in &stream[..prologue_len] {
        println!("    {}", ins.asm());
    }
    println!();

    let per_copy = spec.instrs_per_copy();
    println!("copy #0 of the unrolled body ({per_copy} instructions):");
    for ins in &stream[prologue_len..prologue_len + per_copy] {
        println!("    {}", ins.asm());
    }
    println!();
    println!("copy #1 (note the rotated operand registers):");
    for ins in &stream[prologue_len + per_copy..prologue_len + 2 * per_copy] {
        println!("    {}", ins.asm());
    }
    println!();

    let epilogue_start = stream.len() - 24;
    println!("epilogue (store the C tile):");
    for ins in &stream[epilogue_start..epilogue_start + 6] {
        println!("    {}", ins.asm());
    }
    println!("    ... ({} stores total)", 24);
    println!();

    let fmla = stream.iter().filter(|i| i.is_fp_arith()).count();
    let ldr = stream
        .iter()
        .filter(|i| matches!(i, Instr::LdrQOff { .. } | Instr::LdrQ { .. }))
        .count();
    let prfm = stream
        .iter()
        .filter(|i| matches!(i, Instr::Prfm { .. }))
        .count();
    println!(
        "totals at kc = {kc}: {} instructions — {fmla} fmla, {ldr} ldr, {prfm} prfm",
        stream.len()
    );
    println!("per body copy: 24 fmla + 7 ldr + 1-2 prfm, as in the paper's Figure 8.");

    // the loop form (how the real assembly is written)
    let looped = generate_microkernel_loop(&spec, 512, &addrs);
    let line = generate_microkernel_call(&spec, 512, &addrs);
    println!();
    println!(
        "loop form at kc = 512: {} instructions (one rotation period + cbnz back-edge)",
        looped.len()
    );
    println!(
        "vs {} straight-line — {:.0}x smaller, same results bit for bit",
        line.len(),
        line.len() as f64 / looped.len() as f64
    );
    let tail = &looped[looped.len() - 28..looped.len() - 24];
    println!("loop back-edge:");
    for ins in tail {
        println!("    {}", ins.asm());
    }
}
