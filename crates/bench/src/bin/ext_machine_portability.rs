//! Extension — portability of the analytic method: re-derive the whole
//! kernel/blocking design for a range of machine geometries in closed
//! form. This is the practical payoff the paper claims over ATLAS-style
//! search: a new machine description is a few struct fields, not a
//! tuning campaign.

use dgemm_bench::banner;
use perfmodel::arch::CacheLevel;
use perfmodel::cacheblock::solve_blocking;
use perfmodel::ratio::gamma_gebp;
use perfmodel::regblock::optimize_register_block;
use perfmodel::MachineDesc;

struct Preset {
    name: &'static str,
    desc: MachineDesc,
}

fn presets() -> Vec<Preset> {
    let paper = MachineDesc::xgene();

    let mut small_l1 = paper.clone();
    small_l1.l1 = CacheLevel {
        size: 16 * 1024,
        assoc: 4,
        line: 64,
    };

    let mut big_l2 = paper.clone();
    big_l2.l2 = CacheLevel {
        size: 1024 * 1024,
        assoc: 16,
        line: 64,
    };

    let mut wide_regs = paper.clone();
    wide_regs.nf = 64; // an SVE-class register file

    let mut mobile = paper.clone();
    mobile.l1 = CacheLevel {
        size: 32 * 1024,
        assoc: 2,
        line: 64,
    };
    mobile.l2 = CacheLevel {
        size: 512 * 1024,
        assoc: 16,
        line: 64,
    };
    mobile.l3 = CacheLevel {
        size: 2 * 1024 * 1024,
        assoc: 16,
        line: 64,
    };
    mobile.cores = 4;

    vec![
        Preset {
            name: "paper X-Gene class",
            desc: paper,
        },
        Preset {
            name: "16 KB L1 (embedded)",
            desc: small_l1,
        },
        Preset {
            name: "1 MB L2 (server)",
            desc: big_l2,
        },
        Preset {
            name: "64 vector registers",
            desc: wide_regs,
        },
        Preset {
            name: "quad-core mobile",
            desc: mobile,
        },
    ]
}

fn main() {
    banner(
        "Extension — the analytic design across machine geometries",
        "register block + serial/parallel blocking derived in closed form per machine",
    );
    println!(
        "{:<22} {:>9} {:>7} {:>20} {:>20} {:>9}",
        "machine", "reg blk", "gamma", "serial kcxmcxnc", "all-cores kcxmcxnc", "gebp g"
    );
    for p in presets() {
        let m = &p.desc;
        let reg = optimize_register_block(m);
        let serial = solve_blocking(reg.mr, reg.nr, 1, m);
        let parallel = solve_blocking(reg.mr, reg.nr, m.cores, m);
        let fmt = |r: &Result<perfmodel::cacheblock::BlockSizes, _>| match r {
            Ok(b) => format!("{}x{}x{}", b.kc, b.mc, b.nc),
            Err(_) => "infeasible".to_string(),
        };
        let gebp = serial
            .as_ref()
            .map(|b| gamma_gebp(b.mr, b.nr, b.kc, b.mc))
            .unwrap_or(0.0);
        println!(
            "{:<22} {:>9} {:>7.3} {:>20} {:>20} {:>9.3}",
            p.name,
            format!("{}x{}", reg.mr, reg.nr),
            reg.gamma,
            fmt(&serial),
            fmt(&parallel),
            gebp
        );
    }
    println!();
    println!("Every row is the full Section IV procedure — register block from the");
    println!("register file (eqs. 8-11), kc/mc/nc from the cache way-partitions");
    println!("(eqs. 15-20) — evaluated in microseconds per machine. The shapes respond");
    println!("sensibly: a halved L1 halves kc; a quadrupled L2 quadruples mc; doubling");
    println!("the register file grows the register block (and gamma) by ~1.5x.");
}
