//! E12 / Figure 15 — number of L1-dcache-loads performed by the three
//! OpenBLAS kernels, serial and eight-thread.

use dgemm_bench::{banner, SweepArgs};
use simgemm::estimate::Estimator;
use simgemm::experiments::l1_study;

fn main() {
    let args = SweepArgs::parse();
    banner(
        "Figure 15 — L1-dcache-loads vs matrix size (x 1e10)",
        "paper: 8x6 issues the fewest loads; 4x4 the most (the key to Table VII's story)",
    );
    let mut est = Estimator::new();
    let rows = l1_study(&mut est, &args.sizes);
    print!("{:>6}", "n");
    for r in &rows {
        print!("  {:>22}", format!("{} ({}T)", r.label, r.threads));
    }
    println!();
    for (i, n) in args.sizes.iter().enumerate() {
        print!("{n:>6}");
        for r in &rows {
            print!("  {:>22.4}", r.points[i].1 / 1e10);
        }
        println!();
    }
    println!();
    println!("loads counted analytically from the blocking (operand loads per rank-1");
    println!("update + C tile traffic + packing), the same population perf's");
    println!("L1-dcache-loads counter samples.");
}
