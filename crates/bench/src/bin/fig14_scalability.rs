//! E10 / Figure 14 — scalability of OpenBLAS-8x6 under 1/2/4/8 threads,
//! each with its analytically derived blocking.

use dgemm_bench::{banner, pct, print_curves, SweepArgs};
use simgemm::estimate::Estimator;
use simgemm::experiments::figure14;

fn main() {
    let args = SweepArgs::parse();
    banner(
        "Figure 14 — OpenBLAS-8x6 under 1/2/4/8 threads",
        "block sizes per thread count: 56x1920 / 56x1920 / 56x1792 / 24x1792 (kc=512)",
    );
    let mut est = Estimator::new();
    let curves = figure14(&mut est, &args.sizes);
    print_curves(&args.sizes, &curves, |p| p.gflops, "Gflops");
    args.maybe_write_csv(&curves, |p| p.gflops);
    println!();
    let base = curves[0].peak_gflops();
    for (c, t) in curves.iter().zip([1usize, 2, 4, 8]) {
        println!(
            "{:<34} peak {:>6.2} Gflops, speedup {:>4.2}x over 1 thread, efficiency {}",
            c.label,
            c.peak_gflops(),
            c.peak_gflops() / base,
            pct(c.peak_efficiency())
        );
        let _ = t;
    }
}
