//! E9 / Figure 13 — effectiveness of software register rotation: the 8×6
//! kernel with and without rotation, serial and eight-thread.

use dgemm_bench::{banner, pct, SweepArgs};
use simgemm::estimate::Estimator;
use simgemm::experiments::figure13;

fn main() {
    let args = SweepArgs::parse();
    banner(
        "Figure 13 — 8x6 vs 8x6 without register rotation",
        "kernels profiled under the steady-state L1-miss model (see module docs)",
    );
    let mut est = Estimator::new();
    let curves = figure13(&mut est, &args.sizes);
    print!("{:>6}", "n");
    for c in &curves {
        print!("  {:>28}", c.label);
    }
    println!("   [Gflops]");
    for (i, n) in args.sizes.iter().enumerate() {
        print!("{n:>6}");
        for c in &curves {
            print!("  {:>28.3}", c.points[i].gflops);
        }
        println!();
    }
    args.maybe_write_csv(&curves, |p| p.gflops);
    println!();
    for pair in curves.chunks(2) {
        let with = &pair[0];
        let without = &pair[1];
        let gap =
            100.0 * (with.avg_efficiency() - without.avg_efficiency()) / without.avg_efficiency();
        println!(
            "{:<32} vs {:<34}: rotation wins by {:.2}% on average (peak {} vs {})",
            with.label,
            without.label,
            gap,
            pct(with.peak_efficiency()),
            pct(without.peak_efficiency())
        );
    }
}
