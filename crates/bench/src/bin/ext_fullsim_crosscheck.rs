//! Extension — cross-check of the hybrid estimator against full
//! instruction-level simulation: for block-sized GEBPs every micro-kernel
//! call is executed as generated A64 instructions on the simulated core
//! (shared caches across calls), and the resulting cycles are compared
//! with the estimator's kernel-profile arithmetic.

use dgemm_bench::{banner, pct};
use dgemm_core::matrix::Matrix;
use dgemm_core::pack::{PackedA, PackedB};
use dgemm_core::Transpose;
use kernels::regkernel::KernelSpec;
use simgemm::fullsim::simulate_gebp_full;
use simgemm::kernelsim::{profile, KernelVariant};

fn check(label: &str, spec: &KernelSpec, variant: KernelVariant, mc: usize, kc: usize, nc: usize) {
    let (mr, nr) = (spec.shape().mr, spec.shape().nr);
    let a = Matrix::random(mc, kc, 11);
    let b = Matrix::random(kc, nc, 12);
    let c0 = Matrix::random(mc, nc, 13);
    let mut pa = PackedA::new(mr);
    pa.pack(&a.view(), Transpose::No, 0, 0, mc, kc);
    let mut pb = PackedB::new(nr);
    pb.pack(&b.view(), Transpose::No, 0, 0, kc, nc);

    let mut machine = armsim::machine::SimMachine::xgene();
    // warm pass then measured pass
    let _ = simulate_gebp_full(
        spec,
        kc,
        mc,
        nc,
        pa.buf(),
        pb.buf(),
        c0.as_slice(),
        &mut machine,
    );
    let warm = simulate_gebp_full(
        spec,
        kc,
        mc,
        nc,
        pa.buf(),
        pb.buf(),
        c0.as_slice(),
        &mut machine,
    );

    let prof = profile(variant);
    let predicted = prof.call_cycles(kc) * warm.calls as f64;
    println!(
        "{label:<22} {mc:>3}x{kc:>3}x{nc:>4}  inst-level {:>9} cyc ({})  estimator {:>9.0} cyc  ratio {:>5.3}",
        warm.cycles,
        pct(warm.efficiency()),
        predicted,
        warm.cycles as f64 / predicted
    );
}

fn main() {
    banner(
        "Extension — estimator vs instruction-level ground truth",
        "every micro-kernel call of a block-sized GEBP executed as A64 IR",
    );
    println!(
        "{:<22} {:<13} {:>28} {:>21} {:>11}",
        "kernel", "mc x kc x nc", "", "", ""
    );
    let spec86 = KernelSpec::paper_8x6(None);
    check("8x6 small", &spec86, KernelVariant::OpenBlas8x6, 16, 64, 12);
    check(
        "8x6 medium",
        &spec86,
        KernelVariant::OpenBlas8x6,
        24,
        128,
        24,
    );
    check(
        "8x6 kc=512 (paper)",
        &spec86,
        KernelVariant::OpenBlas8x6,
        16,
        512,
        12,
    );
    let spec84 = KernelSpec::paper_8x4();
    check(
        "8x4 medium",
        &spec84,
        KernelVariant::OpenBlas8x4,
        24,
        128,
        24,
    );
    let spec44 = KernelSpec::paper_4x4();
    check(
        "4x4 medium",
        &spec44,
        KernelVariant::OpenBlas4x4,
        24,
        128,
        24,
    );
    println!();
    println!("Ratios near 1.0 mean the hybrid estimator's kernel-cycle arithmetic");
    println!("(overhead + rate * kc, fitted from two pipeline runs) reproduces the");
    println!("fully simulated execution; the residual is warm-cache effects the");
    println!("perfect-L1 profile does not model.");
}
