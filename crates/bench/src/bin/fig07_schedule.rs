//! E3 / Figure 7 — instruction scheduling of the 8×6 register kernel
//! (equation (13)): loads interleaved among the FMAs with maximized RAW
//! distance.

use dgemm_bench::banner;
use perfmodel::rotation::{optimal_rotation, KernelShape, RotationScheme};
use perfmodel::schedule::{schedule_kernel, ScheduleOptions, SlotInstr};

fn describe(copy: &[SlotInstr]) -> String {
    copy.iter()
        .map(|s| match s {
            SlotInstr::Fmla { .. } => "fmla",
            SlotInstr::Load { .. } => "ldr ",
            SlotInstr::PrefetchA => "prfA",
            SlotInstr::PrefetchB => "prfB",
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    banner(
        "Figure 7 — load/FMA interleaving with optimal RAW distance",
        "one unrolled copy = 24 fmla + 7 ldr + 1 prfm; loads placed ASAP after the",
    );
    let shape = KernelShape::paper_8x6();
    let rotated = schedule_kernel(&optimal_rotation(shape, 8), &ScheduleOptions::default());
    let identity = schedule_kernel(
        &RotationScheme::identity(shape, 8),
        &ScheduleOptions::default(),
    );

    println!("rotated schedule, copy #0 (row-major like the figure):");
    for chunk in rotated.copies()[0].chunks(8) {
        println!("  {}", describe(chunk));
    }
    println!();
    println!(
        "min RAW distance, rotated:   {:>3} instruction slots (paper: 9)",
        rotated.min_raw_distance()
    );
    println!(
        "min RAW distance, unrotated: {:>3} instruction slots",
        identity.min_raw_distance()
    );
    let mix = rotated.mix();
    println!(
        "instruction mix per period: {} fmla, {} ldr, {} prfm ({:.1}% arithmetic)",
        mix.fmla,
        mix.ldr,
        mix.prfm,
        100.0 * mix.arithmetic_fraction()
    );
}
