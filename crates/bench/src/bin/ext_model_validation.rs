//! Extension — validation of the Section III performance model, the
//! check the paper runs in Section V-B: "the compute-to-memory-ratios of
//! their register kernels are estimated by (8) as 6.86, 5.33, 4, 5 ...
//! The larger this compute-to-memory access ratio is, the higher the
//! efficiency of a DGEMM implementation will be."
//!
//! We fit the single free parameter of the overlap factor ψ(γ) on the
//! 8×6 point and check that the eq.(6) lower bound tracks the measured
//! efficiency of every other kernel.

use dgemm_bench::{banner, pct};
use perfmodel::model::{efficiency_lower_bound, MachineCosts, OverlapFactor};
use simgemm::estimate::{Estimator, SimConfig};
use simgemm::kernelsim::KernelVariant;

fn main() {
    banner(
        "Extension — performance-model validation (eqs. (6) and (8))",
        "gamma of the register kernel vs measured DGEMM efficiency, serial, n = 2048",
    );
    let mut est = Estimator::new();
    let n = 2048;

    // measure all four kernels
    let mut rows: Vec<(KernelVariant, f64, f64)> = KernelVariant::FIGURE11
        .iter()
        .map(|&v| {
            let cfg = SimConfig::paper(v, 1);
            let gamma = v.portable_kind().gamma();
            let eff = est.estimate(&cfg, n).efficiency;
            (v, gamma, eff)
        })
        .collect();

    // fit psi's slope c on the 8x6 point: per eq. (6),
    // eff = mu / (mu + (1+kappa)·pi·psi(gamma)/gamma), Rational psi
    let costs = MachineCosts::xgene_cycles();
    let (_, g86, e86) = rows[0];
    let c = {
        let psi_at_g = (costs.mu / e86 - costs.mu) * g86 / ((1.0 + costs.kappa) * costs.pi);
        (1.0 / psi_at_g - 1.0) / g86
    };
    let psi = OverlapFactor::Rational { c };

    println!(
        "{:<20} {:>8} {:>16} {:>16}",
        "kernel", "gamma", "eq.(6) bound", "measured"
    );
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let mut last_bound = f64::INFINITY;
    let mut last_eff = f64::INFINITY;
    let mut monotone = true;
    for (v, gamma, eff) in &rows {
        let bound = efficiency_lower_bound(*gamma, &costs, &psi);
        println!(
            "{:<20} {:>8.3} {:>16} {:>16}",
            v.label(),
            gamma,
            pct(bound),
            pct(*eff)
        );
        if bound > last_bound + 1e-9 || *eff > last_eff + 0.02 {
            monotone = false;
        }
        last_bound = bound;
        last_eff = *eff;
    }
    println!();
    println!("fitted overlap factor: psi(gamma) = 1/(1 + {c:.3}*gamma)");
    println!(
        "monotone (larger gamma => higher efficiency): {}",
        if monotone {
            "yes"
        } else {
            "NO — model violated"
        }
    );
    println!();
    println!("This is the paper's Section V-B argument: one scalar fitted on one");
    println!("kernel, and the gamma ordering of eq. (8) predicts the efficiency");
    println!("ordering of all four implementations.");
}
