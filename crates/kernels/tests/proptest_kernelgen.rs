//! Property tests of the kernel generator: for arbitrary even shapes,
//! rotation schemes and depths, the generated A64 stream must compute
//! exactly the rank-kc update the triple loop computes, and its
//! instruction mix must match the analytic counts.

use armsim::core::CoreSim;
use armsim::isa::Instr;
use armsim::machine::SimMachine;
use kernels::regkernel::{
    generate_microkernel_call, padded_a_bytes, padded_b_bytes, GebpAddrs, KernelSpec,
};
use perfmodel::rotation::{optimal_rotation, KernelShape, RotationScheme};
use proptest::prelude::*;

fn deterministic_data(n: usize, seed: u64) -> Vec<f64> {
    let mut x = seed.wrapping_mul(2654435761).wrapping_add(1) | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1999) as f64 / 999.5 - 1.0
        })
        .collect()
}

fn run_and_check(spec: &KernelSpec, kc: usize, seed: u64) -> Result<(), TestCaseError> {
    let shape = spec.shape();
    let (mr, nr) = (shape.mr, shape.nr);
    let a = deterministic_data(mr * kc, seed);
    let b = deterministic_data(nr * kc, seed + 1);
    let c0 = deterministic_data(mr * nr, seed + 2);

    let mut core = CoreSim::new(0, 16 << 20);
    let a_addr = core.mem.alloc(padded_a_bytes(mr, kc), 64);
    let b_addr = core.mem.alloc(padded_b_bytes(nr, kc), 64);
    let c_addr = core.mem.alloc(mr * nr * 8, 64);
    core.mem.store_slice(a_addr, &a);
    core.mem.store_slice(b_addr, &b);
    core.mem.store_slice(c_addr, &c0);
    let stream = generate_microkernel_call(
        spec,
        kc,
        &GebpAddrs {
            a: a_addr,
            b: b_addr,
            c: c_addr,
            ldc_bytes: (mr * 8) as u64,
        },
    );

    // instruction mix: fmla count is exact
    let fmla = stream.iter().filter(|i| i.is_fp_arith()).count();
    prop_assert_eq!(fmla, mr * nr / 2 * kc);
    let loads = stream
        .iter()
        .filter(|i| matches!(i, Instr::LdrQ { .. } | Instr::LdrQOff { .. }))
        .count();
    prop_assert_eq!(loads, (mr + nr) / 2 * kc + mr * nr / 2 + (mr + nr) / 2);

    let mut machine = SimMachine::xgene();
    let report = core.run(&stream, &mut machine);
    prop_assert_eq!(report.pipe.flops, (2 * mr * nr * kc) as u64);

    let got = core.mem.load_slice(c_addr, mr * nr);
    let mut want = c0.clone();
    for k in 0..kc {
        for j in 0..nr {
            for i in 0..mr {
                want[i + j * mr] += a[k * mr + i] * b[k * nr + j];
            }
        }
    }
    for (g, w) in got.iter().zip(&want) {
        prop_assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()), "{g} vs {w}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rotated kernels of arbitrary even shape compute correctly at
    /// arbitrary depth (including depths not divisible by the period).
    #[test]
    fn generated_rotated_kernels_compute_correctly(
        half_mr in 1usize..5,
        half_nr in 1usize..4,
        kc in 1usize..70,
        seed in 0u64..10_000,
    ) {
        let shape = KernelShape { mr: 2 * half_mr, nr: 2 * half_nr };
        let pool = (shape.n_values() + 1).min(9);
        let scheme = optimal_rotation(shape, pool);
        let spec = KernelSpec::new(scheme, 1024, None);
        run_and_check(&spec, kc, seed)?;
    }

    /// Ping-pong (double-buffered) kernels likewise.
    #[test]
    fn generated_ping_pong_kernels_compute_correctly(
        half_mr in 1usize..4,
        half_nr in 1usize..3,
        kc in 1usize..70,
        seed in 0u64..10_000,
    ) {
        let shape = KernelShape { mr: 2 * half_mr, nr: 2 * half_nr };
        prop_assume!(2 * shape.n_values() + shape.mr * shape.nr / 2 <= 32);
        let scheme = RotationScheme::ping_pong(shape);
        let spec = KernelSpec::new(scheme, 512, None);
        run_and_check(&spec, kc, seed)?;
    }

    /// The identity (no-rotation) scheme computes the same numbers as
    /// the rotated scheme on identical inputs.
    #[test]
    fn rotation_does_not_change_numerics(
        kc in 1usize..50,
        seed in 0u64..10_000,
    ) {
        let rotated = KernelSpec::paper_8x6(None);
        let unrotated = KernelSpec::paper_8x6_no_rotation(None);
        run_and_check(&rotated, kc, seed)?;
        run_and_check(&unrotated, kc, seed)?;
    }
}
