//! The Table IV micro-benchmark: efficiency as a function of the
//! `LDR:FMLA` instruction ratio.
//!
//! Following Section V-A: "we have written a micro-benchmark, in which
//! the instructions are independent and evenly distributed, to avoid any
//! effect of instruction latency on our experiments. This micro-benchmark
//! can always keep the data in the L1 cache." The generated streams
//! therefore use FMAs whose sources are never load targets, loads that
//! cycle through a one-line working set, and interleave the two kinds as
//! evenly as possible.

use armsim::core::CoreSim;
use armsim::isa::Instr;
use armsim::pipeline::PipelineConfig;

/// The `LDR : FMLA` ratios of the paper's Table IV, in its column order.
pub const PAPER_RATIOS: [(usize, usize); 7] =
    [(1, 1), (1, 2), (6, 16), (1, 3), (7, 24), (1, 4), (1, 5)];

/// The efficiencies the paper measured for [`PAPER_RATIOS`] (percent).
pub const PAPER_EFFICIENCIES: [f64; 7] = [63.0, 80.9, 87.7, 88.7, 91.5, 94.2, 95.2];

/// Generate `groups` repetitions of an independent, evenly interleaved
/// group of `fmla` FMAs and `ldr` loads.
///
/// Register discipline: accumulators cycle `v8..v24` reading constants
/// `v0`/`v4`; load targets cycle `v24..v32`; loads read offsets within a
/// single cache line at `a_base` (held in `x14`), so after the first
/// touch every load hits L1.
#[must_use]
pub fn ldr_fmla_stream(ldr: usize, fmla: usize, groups: usize, a_base: u64) -> Vec<Instr> {
    assert!(ldr > 0 && fmla > 0);
    let mut out = Vec::with_capacity(2 + groups * (ldr + fmla));
    out.push(Instr::MovX {
        xd: 14,
        imm: a_base,
    });
    let mut acc = 0u64;
    let mut ldt = 0u64;
    for _ in 0..groups {
        // even distribution: walk the longer kind, dropping the shorter
        // kind in at evenly spaced positions
        let total = ldr + fmla;
        let mut placed_l = 0usize;
        for s in 0..total {
            // place a load when we cross the next 1/ldr boundary
            let want_l = ((s + 1) * ldr) / total;
            if want_l > placed_l {
                out.push(Instr::LdrQOff {
                    qd: (24 + (ldt % 8)) as u8,
                    base: 14,
                    off: ((ldt % 4) * 16) as i64,
                });
                ldt += 1;
                placed_l += 1;
            } else {
                out.push(Instr::Fmla {
                    vd: (8 + (acc % 16)) as u8,
                    vn: 0,
                    vm: 4,
                    lane: Some(0),
                });
                acc += 1;
            }
        }
    }
    out
}

/// One row of the Table IV reproduction.
#[derive(Clone, Copy, Debug)]
pub struct RatioPoint {
    /// Loads per group.
    pub ldr: usize,
    /// FMAs per group.
    pub fmla: usize,
    /// Measured efficiency (fraction of FMA peak).
    pub efficiency: f64,
}

/// Measure the efficiency of one `LDR:FMLA` ratio on the pipeline model
/// (perfect L1, as in the paper's setup).
#[must_use]
pub fn measure_ratio(ldr: usize, fmla: usize, cfg: PipelineConfig) -> RatioPoint {
    let groups = 4000 / (ldr + fmla) + 50;
    let mut core = CoreSim::new(0, 1 << 16);
    core.set_pipeline_config(cfg);
    let base = core.mem.alloc(64, 64);
    let stream = ldr_fmla_stream(ldr, fmla, groups, base);
    let report = core.run_perfect_l1(&stream, 4);
    let peak = 4.0 / cfg.fma_ii as f64;
    RatioPoint {
        ldr,
        fmla,
        efficiency: report.pipe.flops as f64 / (report.cycles as f64 * peak),
    }
}

/// Reproduce the whole Table IV sweep.
#[must_use]
pub fn table4(cfg: PipelineConfig) -> Vec<RatioPoint> {
    PAPER_RATIOS
        .iter()
        .map(|&(l, f)| measure_ratio(l, f, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_has_requested_mix() {
        let s = ldr_fmla_stream(7, 24, 10, 4096);
        let loads = s
            .iter()
            .filter(|i| matches!(i, Instr::LdrQOff { .. }))
            .count();
        let fmlas = s.iter().filter(|i| i.is_fp_arith()).count();
        assert_eq!(loads, 70);
        assert_eq!(fmlas, 240);
    }

    #[test]
    fn stream_is_independent() {
        // no FMA reads a load target; no load writes an FMA source
        let s = ldr_fmla_stream(1, 1, 100, 4096);
        for ins in &s {
            match *ins {
                Instr::Fmla { vn, vm, vd, .. } => {
                    assert!(vn < 8 && vm < 8);
                    assert!((8..24).contains(&vd));
                }
                Instr::LdrQOff { qd, .. } => assert!(qd >= 24),
                _ => {}
            }
        }
    }

    #[test]
    fn loads_evenly_distributed() {
        // 6:16 -> no two adjacent loads
        let s = ldr_fmla_stream(6, 16, 5, 4096);
        let mut prev_load = false;
        for ins in &s {
            let is_load = matches!(ins, Instr::LdrQOff { .. });
            assert!(!(is_load && prev_load), "loads must not cluster");
            prev_load = is_load;
        }
    }

    #[test]
    fn table4_is_monotone_and_ordered_like_paper() {
        let rows = table4(PipelineConfig::default());
        // Paper order is by increasing arithmetic fraction; efficiency
        // must increase along it.
        let mut last = 0.0;
        for r in &rows {
            assert!(
                r.efficiency > last,
                "{}:{} gave {}, not above {last}",
                r.ldr,
                r.fmla,
                r.efficiency
            );
            last = r.efficiency;
        }
    }

    #[test]
    fn table4_endpoints_match_structural_model() {
        // deterministic 2F+L model: 1:1 -> 2/3, 1:5 -> 10/11
        let rows = table4(PipelineConfig::default());
        assert!(
            (rows[0].efficiency - 2.0 / 3.0).abs() < 0.02,
            "{}",
            rows[0].efficiency
        );
        assert!(
            (rows[6].efficiency - 10.0 / 11.0).abs() < 0.02,
            "{}",
            rows[6].efficiency
        );
        // the three kernel-relevant ratios keep the paper's ordering:
        // 4x4 (1:2) < 8x4 (6:16) < 8x6 (7:24)
        assert!(rows[1].efficiency < rows[2].efficiency);
        assert!(rows[2].efficiency < rows[4].efficiency);
    }

    #[test]
    fn kernel_bound_close_to_paper_within_model_error() {
        // 7:24 measured 91.5% on hardware; the structural model gives
        // 48/55 = 87.3%. Assert we land in a sane band around it.
        let r = measure_ratio(7, 24, PipelineConfig::default());
        assert!((0.85..0.93).contains(&r.efficiency), "{}", r.efficiency);
    }
}
