//! # kernels
//!
//! The register-kernel generator: turns the analytic results of
//! `perfmodel` (register rotation, load scheduling, prefetch distances)
//! into executable A64-subset instruction streams for the `armsim`
//! machine model — the same streams the paper writes by hand in assembly
//! (Figure 8), minus instruction encoding.
//!
//! - [`regkernel`] — generates a complete GEBP micro-kernel invocation:
//!   C-tile load prologue, `kc` unrolled-and-rotated rank-1 update copies
//!   with scheduled operand loads and prefetches, C-tile store epilogue.
//! - [`microbench`] — generates the independent `LDR:FMLA` ratio streams
//!   of the paper's Table IV micro-benchmark.

//!
//! ## Quick example
//!
//! ```
//! use kernels::regkernel::KernelSpec;
//!
//! let spec = KernelSpec::paper_8x6(None);
//! // the rotation rests one register per copy over an 8-copy period
//! assert_eq!(spec.scheme().period(), 8);
//! // the schedule hides at least the paper's published RAW distance
//! assert!(spec.schedule().min_raw_distance() >= 9);
//! // per unrolled copy: 24 fmla + 7 ldr + 1 prfm (Figure 8)
//! assert_eq!(spec.instrs_per_copy(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;
pub mod regkernel;
