//! GEBP micro-kernel code generation.
//!
//! One generated stream performs what the paper's hand-written assembly
//! does for a single GESS call (layer 6/7 of Figure 2):
//!
//! 1. **prologue** — load the `mr×nr` C tile into the top accumulator
//!    registers and preload the copy-0 A/B operand registers;
//! 2. **body** — `kc` copies of the rank-1 update, register-rotated with
//!    period `scheme.period()` and load-scheduled per equation (13),
//!    with `PLDL1KEEP` A-stream prefetches (and optionally `PLDL2KEEP`
//!    B-stream prefetches);
//! 3. **epilogue** — store the C tile back.
//!
//! Register conventions match the paper (Figures 6 and 10): operand
//! registers are the low pool (`v0…`), C accumulators are top-aligned
//! (`v8–v31` for 8×6, `v16–v31` for 8×4, `v24–v31` for 4×4). The C
//! element at row-pair `p`, column `j` lives in `v(c_base + j·mr/2 + p)`.
//!
//! Operand loads address the packed slivers with absolute offsets from
//! fixed base registers (`x14` = A sliver, `x15` = B sliver), so the
//! scheduled loads may execute in any order; the base registers never
//! move. The loads of the **last** copy prefetch the column *after* the
//! sliver, exactly like the real kernel — callers must pad each sliver
//! buffer with one extra column ([`padded_a_bytes`]/[`padded_b_bytes`]).

use armsim::isa::{Instr, PrfOp, VReg, XReg};
use perfmodel::rotation::{KernelShape, RotationScheme, Value};
use perfmodel::schedule::{ScheduleOptions, ScheduledKernel, SlotInstr};

/// Base register holding the packed A sliver address.
pub const A_BASE: XReg = 14;
/// Base register holding the packed B sliver address.
pub const B_BASE: XReg = 15;
/// First of the per-column C base registers (`x0 … x(nr-1)`).
pub const C_COL_BASE: XReg = 0;

/// A fully specified micro-kernel to generate.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    shape: KernelShape,
    scheme: RotationScheme,
    schedule: ScheduledKernel,
    /// A-stream prefetch distance in bytes (0 disables).
    pub prefa: i64,
    /// B-stream prefetch distance in bytes (`None` disables).
    pub prefb: Option<i64>,
}

impl KernelSpec {
    /// Build a spec from a rotation scheme; the load schedule is derived
    /// by the equation-(13) scheduler.
    #[must_use]
    pub fn new(scheme: RotationScheme, prefa: i64, prefb: Option<i64>) -> Self {
        let opts = ScheduleOptions {
            prefetch_a: prefa > 0,
            prefetch_b: prefb.is_some(),
            ..ScheduleOptions::default()
        };
        let schedule = perfmodel::schedule::schedule_kernel(&scheme, &opts);
        KernelSpec {
            shape: scheme.shape(),
            scheme,
            schedule,
            prefa,
            prefb,
        }
    }

    /// The paper's 8×6 kernel: exhaustively optimal rotation over the
    /// 8-register pool, `PREFA = 1024` bytes, B prefetched to L2 one
    /// sliver ahead when `prefb_bytes` is provided.
    #[must_use]
    pub fn paper_8x6(prefb_bytes: Option<i64>) -> Self {
        let scheme = perfmodel::rotation::optimal_rotation(KernelShape::paper_8x6(), 8);
        Self::new(scheme, 1024, prefb_bytes)
    }

    /// The 8×6 kernel **without** register rotation (Figure 13's
    /// `OpenBLAS-8x6w/oRR` baseline): same shape, identity scheme.
    #[must_use]
    pub fn paper_8x6_no_rotation(prefb_bytes: Option<i64>) -> Self {
        let scheme = RotationScheme::identity(KernelShape::paper_8x6(), 8);
        Self::new(scheme, 1024, prefb_bytes)
    }

    /// The 8×4 comparison kernel (double-buffered operands, Figure 10).
    #[must_use]
    pub fn paper_8x4() -> Self {
        let scheme = RotationScheme::ping_pong(KernelShape { mr: 8, nr: 4 });
        Self::new(scheme, 1024, None)
    }

    /// The 4×4 comparison kernel (double-buffered operands, Figure 10).
    #[must_use]
    pub fn paper_4x4() -> Self {
        let scheme = RotationScheme::ping_pong(KernelShape { mr: 4, nr: 4 });
        Self::new(scheme, 512, None)
    }

    /// Kernel shape.
    #[must_use]
    pub fn shape(&self) -> KernelShape {
        self.shape
    }

    /// The rotation scheme in use.
    #[must_use]
    pub fn scheme(&self) -> &RotationScheme {
        &self.scheme
    }

    /// The derived load schedule.
    #[must_use]
    pub fn schedule(&self) -> &ScheduledKernel {
        &self.schedule
    }

    /// First C accumulator register: top-aligned block of `mr·nr/2`.
    #[must_use]
    pub fn c_base(&self) -> VReg {
        (32 - self.shape.mr * self.shape.nr / 2) as VReg
    }

    /// Accumulator register of C row-pair `p`, column `j`.
    #[must_use]
    pub fn c_reg(&self, p: usize, j: usize) -> VReg {
        debug_assert!(p < self.shape.n_a() && j < self.shape.nr);
        self.c_base() + (j * self.shape.n_a() + p) as VReg
    }

    /// Instructions per body copy (FMAs + loads + prefetches).
    #[must_use]
    pub fn instrs_per_copy(&self) -> usize {
        self.schedule.slots_per_period() / self.scheme.period()
    }
}

/// Bytes to allocate for a packed `mr×kc` A sliver, including the one
/// column of padding the final copy's lookahead loads touch.
#[must_use]
pub fn padded_a_bytes(mr: usize, kc: usize) -> usize {
    mr * (kc + 1) * 8
}

/// Bytes to allocate for a packed `kc×nr` B sliver, including padding.
#[must_use]
pub fn padded_b_bytes(nr: usize, kc: usize) -> usize {
    nr * (kc + 1) * 8
}

/// Addresses of the operands in simulated memory.
#[derive(Clone, Copy, Debug)]
pub struct GebpAddrs {
    /// Base of the packed A sliver (`mr×(kc+1)` doubles).
    pub a: u64,
    /// Base of the packed B sliver (`(kc+1)×nr` doubles).
    pub b: u64,
    /// Base of the C tile (column-major).
    pub c: u64,
    /// C leading dimension in bytes.
    pub ldc_bytes: u64,
}

/// Emit the slots of schedule copy `copy_idx` with A/B offsets relative
/// to the *current* cursor positions (`a_cur`/`b_cur` bytes past the
/// base registers).
fn emit_copy(spec: &KernelSpec, copy_idx: usize, a_cur: i64, b_cur: i64, out: &mut Vec<Instr>) {
    let shape = spec.shape();
    let a_col_bytes = (shape.mr * 8) as i64;
    let b_row_bytes = (shape.nr * 8) as i64;
    for slot in &spec.schedule.copies()[copy_idx] {
        match *slot {
            SlotInstr::Fmla {
                b: Value::B(q),
                lane,
                a_reg,
                b_reg,
                a: Value::A(p),
            } => {
                out.push(Instr::Fmla {
                    vd: spec.c_reg(p, 2 * q + lane),
                    vn: a_reg as VReg,
                    vm: b_reg as VReg,
                    lane: Some(lane as u8),
                });
            }
            SlotInstr::Fmla { .. } => unreachable!("fmla always pairs A with B"),
            SlotInstr::Load { reg, value } => match value {
                Value::A(p) => out.push(Instr::LdrQOff {
                    qd: reg as VReg,
                    base: A_BASE,
                    off: a_cur + a_col_bytes + (p * 16) as i64,
                }),
                Value::B(q) => out.push(Instr::LdrQOff {
                    qd: reg as VReg,
                    base: B_BASE,
                    off: b_cur + b_row_bytes + (q * 16) as i64,
                }),
            },
            SlotInstr::PrefetchA => {
                if spec.prefa > 0 {
                    out.push(Instr::Prfm {
                        op: PrfOp::Pldl1Keep,
                        base: A_BASE,
                        off: a_cur + spec.prefa,
                    });
                }
            }
            SlotInstr::PrefetchB => {
                if let Some(d) = spec.prefb {
                    out.push(Instr::Prfm {
                        op: PrfOp::Pldl2Keep,
                        base: B_BASE,
                        off: b_cur + d,
                    });
                }
            }
        }
    }
}

/// Generate the complete instruction stream of one micro-kernel call:
/// `C(mr×nr) += A_sliver(mr×kc) · B_sliver(kc×nr)`.
#[must_use]
pub fn generate_microkernel_call(spec: &KernelSpec, kc: usize, addrs: &GebpAddrs) -> Vec<Instr> {
    let shape = spec.shape();
    let (mr, nr) = (shape.mr, shape.nr);
    let n_a = shape.n_a();
    let a_col_bytes = (mr * 8) as i64;
    let b_row_bytes = (nr * 8) as i64;
    let period = spec.scheme.period();
    let mut out = Vec::with_capacity(kc * spec.instrs_per_copy() + 4 * mr * nr);

    // ---- prologue: base pointers ----
    out.push(Instr::MovX {
        xd: A_BASE,
        imm: addrs.a,
    });
    out.push(Instr::MovX {
        xd: B_BASE,
        imm: addrs.b,
    });
    for j in 0..nr {
        out.push(Instr::MovX {
            xd: C_COL_BASE + j as XReg,
            imm: addrs.c + j as u64 * addrs.ldc_bytes,
        });
    }
    // load the C tile
    for j in 0..nr {
        for p in 0..n_a {
            out.push(Instr::LdrQOff {
                qd: spec.c_reg(p, j),
                base: C_COL_BASE + j as XReg,
                off: (p * 16) as i64,
            });
        }
    }
    // preload copy-0 operands (assignment of copy 0 is slot = register)
    for v in shape.values() {
        let reg = spec.scheme.register_of(v, 0) as VReg;
        match v {
            Value::A(p) => out.push(Instr::LdrQOff {
                qd: reg,
                base: A_BASE,
                off: (p * 16) as i64,
            }),
            Value::B(q) => out.push(Instr::LdrQOff {
                qd: reg,
                base: B_BASE,
                off: (q * 16) as i64,
            }),
        }
    }

    // ---- body: kc copies, straight line ----
    for g in 0..kc {
        emit_copy(
            spec,
            g % period,
            g as i64 * a_col_bytes,
            g as i64 * b_row_bytes,
            &mut out,
        );
    }

    // ---- epilogue: store the C tile ----
    for j in 0..nr {
        for p in 0..n_a {
            out.push(Instr::StrQOff {
                qs: spec.c_reg(p, j),
                base: C_COL_BASE + j as XReg,
                off: (p * 16) as i64,
            });
        }
    }
    out
}

/// Generate the β = 0 variant of the micro-kernel call: identical body,
/// but the prologue *zeroes* the accumulators (`movi v.2d, #0`) instead
/// of loading the C tile, and the epilogue's stores overwrite C — saving
/// `mr·nr/2` loads per call. Real OpenBLAS kernels ship this variant for
/// the `C := A·B` case; the driver selects it when β = 0 made the
/// pre-scaled C all zeros anyway.
#[must_use]
pub fn generate_microkernel_call_beta0(
    spec: &KernelSpec,
    kc: usize,
    addrs: &GebpAddrs,
) -> Vec<Instr> {
    let mut out = generate_microkernel_call(spec, kc, addrs);
    let shape = spec.shape();
    let (mr, nr) = (shape.mr, shape.nr);
    let c_regs = mr * nr / 2;
    // prologue layout: 2 movs + nr C-column movs + c_regs C loads + preloads
    let c_loads_start = 2 + nr;
    for (i, slot) in out[c_loads_start..c_loads_start + c_regs]
        .iter_mut()
        .enumerate()
    {
        let Instr::LdrQOff { qd, .. } = *slot else {
            unreachable!("prologue C loads expected at fixed offsets");
        };
        debug_assert_eq!(qd as usize, spec.c_base() as usize + i);
        *slot = Instr::MovIZero { vd: qd };
    }
    out
}

/// Loop counter register of the looped kernel form.
pub const LOOP_COUNTER: XReg = 16;

/// Generate the micro-kernel as a *loop*, the way the real assembly is
/// written (Figure 8's snippet sits inside one): a prologue, one
/// rotation period as the loop body with advancing A/B cursors and a
/// `cbnz` back-edge, and a straight-line remainder for
/// `kc mod period` columns.
///
/// Computes exactly what [`generate_microkernel_call`] computes, in
/// `O(period)` code instead of `O(kc)` — the code-size realism a loop
/// buys on hardware (and in instruction caches).
#[must_use]
pub fn generate_microkernel_loop(spec: &KernelSpec, kc: usize, addrs: &GebpAddrs) -> Vec<Instr> {
    let shape = spec.shape();
    let (mr, nr) = (shape.mr, shape.nr);
    let n_a = shape.n_a();
    let period = spec.scheme.period();
    let iters = kc / period;
    let rem = kc % period;
    let a_col_bytes = (mr * 8) as i64;
    let b_row_bytes = (nr * 8) as i64;
    let mut out = Vec::new();

    // ---- prologue (same as the straight-line form) ----
    out.push(Instr::MovX {
        xd: A_BASE,
        imm: addrs.a,
    });
    out.push(Instr::MovX {
        xd: B_BASE,
        imm: addrs.b,
    });
    for j in 0..nr {
        out.push(Instr::MovX {
            xd: C_COL_BASE + j as XReg,
            imm: addrs.c + j as u64 * addrs.ldc_bytes,
        });
    }
    for j in 0..nr {
        for p in 0..n_a {
            out.push(Instr::LdrQOff {
                qd: spec.c_reg(p, j),
                base: C_COL_BASE + j as XReg,
                off: (p * 16) as i64,
            });
        }
    }
    for v in shape.values() {
        let reg = spec.scheme.register_of(v, 0) as VReg;
        match v {
            Value::A(p) => out.push(Instr::LdrQOff {
                qd: reg,
                base: A_BASE,
                off: (p * 16) as i64,
            }),
            Value::B(q) => out.push(Instr::LdrQOff {
                qd: reg,
                base: B_BASE,
                off: (q * 16) as i64,
            }),
        }
    }

    // ---- the loop over whole periods ----
    if iters > 0 {
        out.push(Instr::MovX {
            xd: LOOP_COUNTER,
            imm: iters as u64,
        });
        let body_start = out.len();
        for g in 0..period {
            emit_copy(
                spec,
                g,
                g as i64 * a_col_bytes,
                g as i64 * b_row_bytes,
                &mut out,
            );
        }
        // advance the cursors by one period and loop
        out.push(Instr::AddX {
            xd: A_BASE,
            xn: A_BASE,
            imm: period as i64 * a_col_bytes,
        });
        out.push(Instr::AddX {
            xd: B_BASE,
            xn: B_BASE,
            imm: period as i64 * b_row_bytes,
        });
        out.push(Instr::AddX {
            xd: LOOP_COUNTER,
            xn: LOOP_COUNTER,
            imm: -1,
        });
        let back = body_start as i64 - out.len() as i64;
        out.push(Instr::CbnzX {
            xn: LOOP_COUNTER,
            offset: back,
        });
    }

    // ---- remainder copies, straight line off the advanced cursors ----
    for g in 0..rem {
        emit_copy(
            spec,
            g,
            g as i64 * a_col_bytes,
            g as i64 * b_row_bytes,
            &mut out,
        );
    }

    // ---- epilogue ----
    for j in 0..nr {
        for p in 0..n_a {
            out.push(Instr::StrQOff {
                qs: spec.c_reg(p, j),
                base: C_COL_BASE + j as XReg,
                off: (p * 16) as i64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use armsim::core::CoreSim;
    use armsim::machine::SimMachine;

    /// Set up simulated memory with a packed A sliver, packed B sliver
    /// and C tile, run the generated kernel, and return (C_out, report).
    fn run_kernel(
        spec: &KernelSpec,
        kc: usize,
        a_packed: &[f64],
        b_packed: &[f64],
        c_init: &[f64],
        machine: &mut SimMachine,
    ) -> (Vec<f64>, armsim::core::RunReport) {
        let shape = spec.shape();
        let (mr, nr) = (shape.mr, shape.nr);
        assert_eq!(a_packed.len(), mr * kc);
        assert_eq!(b_packed.len(), nr * kc);
        assert_eq!(c_init.len(), mr * nr);
        let mut core = CoreSim::new(0, 16 << 20);
        let a = core.mem.alloc(padded_a_bytes(mr, kc), 64);
        let b = core.mem.alloc(padded_b_bytes(nr, kc), 64);
        let c = core.mem.alloc(mr * nr * 8, 64);
        core.mem.store_slice(a, a_packed);
        core.mem.store_slice(b, b_packed);
        core.mem.store_slice(c, c_init);
        let addrs = GebpAddrs {
            a,
            b,
            c,
            ldc_bytes: (mr * 8) as u64,
        };
        let stream = generate_microkernel_call(spec, kc, &addrs);
        let report = core.run(&stream, machine);
        (core.mem.load_slice(c, mr * nr), report)
    }

    /// The oracle: what the portable microkernel computes.
    fn expected(mr: usize, nr: usize, kc: usize, a: &[f64], b: &[f64], c: &[f64]) -> Vec<f64> {
        let mut out = c.to_vec();
        for k in 0..kc {
            for j in 0..nr {
                for i in 0..mr {
                    out[i + j * mr] += a[k * mr + i] * b[k * nr + j];
                }
            }
        }
        out
    }

    fn rnd(n: usize, seed: u64) -> Vec<f64> {
        // deterministic xorshift-ish fill without a dependency
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 2000) as f64 / 1000.0 - 1.0
            })
            .collect()
    }

    fn check_numerics(spec: &KernelSpec, kc: usize) {
        let shape = spec.shape();
        let (mr, nr) = (shape.mr, shape.nr);
        let a = rnd(mr * kc, 1);
        let b = rnd(nr * kc, 2);
        let c = rnd(mr * nr, 3);
        let mut machine = SimMachine::xgene();
        let (got, report) = run_kernel(spec, kc, &a, &b, &c, &mut machine);
        let want = expected(mr, nr, kc, &a, &b, &c);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "kernel numerics diverge: {g} vs {w}");
        }
        assert_eq!(report.pipe.flops, (2 * mr * nr * kc) as u64);
    }

    #[test]
    fn kernel_8x6_computes_correctly() {
        check_numerics(&KernelSpec::paper_8x6(Some(512)), 64);
    }

    #[test]
    fn kernel_8x6_no_rotation_computes_correctly() {
        check_numerics(&KernelSpec::paper_8x6_no_rotation(None), 64);
    }

    #[test]
    fn kernel_8x4_computes_correctly() {
        check_numerics(&KernelSpec::paper_8x4(), 48);
    }

    #[test]
    fn kernel_4x4_computes_correctly() {
        check_numerics(&KernelSpec::paper_4x4(), 32);
    }

    #[test]
    fn kc_not_multiple_of_period() {
        // kc = 13 with period 8: rotation state must still line up
        check_numerics(&KernelSpec::paper_8x6(None), 13);
        check_numerics(&KernelSpec::paper_8x6(None), 1);
    }

    #[test]
    fn instruction_mix_matches_figure8() {
        // per copy: 24 fmla + 7 ldr + 1 prfm (A prefetch only)
        let spec = KernelSpec::paper_8x6(None);
        let kc = 32;
        let addrs = GebpAddrs {
            a: 4096,
            b: 65536,
            c: 131072,
            ldc_bytes: 64,
        };
        let stream = generate_microkernel_call(&spec, kc, &addrs);
        let fmla = stream.iter().filter(|i| i.is_fp_arith()).count();
        let prfm = stream
            .iter()
            .filter(|i| matches!(i, Instr::Prfm { .. }))
            .count();
        let loads = stream
            .iter()
            .filter(|i| matches!(i, Instr::LdrQOff { .. } | Instr::LdrQ { .. }))
            .count();
        assert_eq!(fmla, 24 * kc);
        assert_eq!(prfm, kc);
        // body loads (7/copy) + C tile (24) + operand preload (7)
        assert_eq!(loads, 7 * kc + 24 + 7);
    }

    #[test]
    fn rotated_kernel_is_fast_with_l1_hits() {
        // steady state, perfect L1: efficiency should approach the 7:24
        // structural bound of ~87% (2F+L model)
        let spec = KernelSpec::paper_8x6(None);
        let addrs = GebpAddrs {
            a: 4096,
            b: 262144,
            c: 524288,
            ldc_bytes: 64,
        };
        let stream = generate_microkernel_call(&spec, 512, &addrs);
        let mut core = CoreSim::new(0, 16 << 20);
        let report = core.run_perfect_l1(&stream, 4);
        let eff = report.efficiency(2.0);
        assert!(
            eff > 0.82,
            "8x6 kernel should run near the 87% structural bound, got {eff}"
        );
    }

    #[test]
    fn c_register_layout_matches_figure6() {
        let spec = KernelSpec::paper_8x6(None);
        assert_eq!(spec.c_base(), 8);
        assert_eq!(spec.c_reg(0, 0), 8); // C00/v8
        assert_eq!(spec.c_reg(1, 0), 9); // C10/v9
        assert_eq!(spec.c_reg(0, 1), 12); // C01/v12
        assert_eq!(spec.c_reg(3, 5), 31); // C35/v31
        let spec84 = KernelSpec::paper_8x4();
        assert_eq!(spec84.c_base(), 16); // Figure 10: c00/v16
    }

    #[test]
    fn beta0_variant_overwrites_instead_of_accumulating() {
        let spec = KernelSpec::paper_8x6(None);
        let kc = 40;
        let a = rnd(8 * kc, 31);
        let b = rnd(6 * kc, 32);
        let garbage = vec![f64::NAN; 48]; // C full of junk: must not be read
        let mut core = CoreSim::new(0, 16 << 20);
        let a_addr = core.mem.alloc(padded_a_bytes(8, kc), 64);
        let b_addr = core.mem.alloc(padded_b_bytes(6, kc), 64);
        let c_addr = core.mem.alloc(48 * 8, 64);
        core.mem.store_slice(a_addr, &a);
        core.mem.store_slice(b_addr, &b);
        core.mem.store_slice(c_addr, &garbage);
        let addrs = GebpAddrs {
            a: a_addr,
            b: b_addr,
            c: c_addr,
            ldc_bytes: 64,
        };
        let stream = generate_microkernel_call_beta0(&spec, kc, &addrs);
        let mut machine = SimMachine::xgene();
        let r = core.run(&stream, &mut machine);
        let got = core.mem.load_slice(c_addr, 48);
        let want = expected(8, 6, kc, &a, &b, &vec![0.0; 48]);
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g - w).abs() < 1e-9,
                "{g} vs {w} (NaN would mean C was read)"
            );
        }
        // 24 fewer loads than the accumulating form
        let normal = generate_microkernel_call(&spec, kc, &addrs);
        let count_loads = |s: &[Instr]| {
            s.iter()
                .filter(|i| matches!(i, Instr::LdrQOff { .. } | Instr::LdrQ { .. }))
                .count()
        };
        assert_eq!(count_loads(&stream) + 24, count_loads(&normal));
        assert_eq!(r.pipe.flops, (2 * 8 * 6 * kc) as u64);
    }

    /// The looped form computes exactly what the straight-line form
    /// computes, in O(period) code.
    #[test]
    fn looped_kernel_matches_straight_line() {
        for (spec, kc) in [
            (KernelSpec::paper_8x6(Some(512)), 64usize),
            (KernelSpec::paper_8x6(None), 13), // remainder path (13 % 8 = 5)
            (KernelSpec::paper_8x4(), 33),
            (KernelSpec::paper_4x4(), 7), // iters=3 (period 2) + remainder 1
        ] {
            let shape = spec.shape();
            let (mr, nr) = (shape.mr, shape.nr);
            let a = rnd(mr * kc, 21);
            let b = rnd(nr * kc, 22);
            let c0 = rnd(mr * nr, 23);

            let run = |stream: &[Instr]| -> (Vec<f64>, u64, usize) {
                let mut core = CoreSim::new(0, 16 << 20);
                let a_addr = core.mem.alloc(padded_a_bytes(mr, kc), 64);
                let b_addr = core.mem.alloc(padded_b_bytes(nr, kc), 64);
                let c_addr = core.mem.alloc(mr * nr * 8, 64);
                core.mem.store_slice(a_addr, &a);
                core.mem.store_slice(b_addr, &b);
                core.mem.store_slice(c_addr, &c0);
                // note: both generators take addrs; rebuild with these
                let addrs = GebpAddrs {
                    a: a_addr,
                    b: b_addr,
                    c: c_addr,
                    ldc_bytes: (mr * 8) as u64,
                };
                let stream = if stream.is_empty() {
                    generate_microkernel_loop(&spec, kc, &addrs)
                } else {
                    generate_microkernel_call(&spec, kc, &addrs)
                };
                let mut core2 = core.clone();
                let r = core2.run_perfect_l1(&stream, 4);
                (
                    core2.mem.load_slice(c_addr, mr * nr),
                    r.cycles,
                    stream.len(),
                )
            };
            let (c_line, cy_line, len_line) = run(&[Instr::Nop]);
            let (c_loop, cy_loop, len_loop) = run(&[]);
            for (l, o) in c_line.iter().zip(&c_loop) {
                assert_eq!(l.to_bits(), o.to_bits(), "loop and line must agree bitwise");
            }
            // the loop form is drastically smaller once kc >> period
            if kc >= 4 * spec.scheme().period() {
                assert!(len_loop * 2 < len_line, "{len_loop} vs {len_line}");
            }
            // and costs at most a few percent more cycles (cursor updates)
            let ratio = cy_loop as f64 / cy_line as f64;
            assert!(ratio < 1.08, "loop overhead too high: {ratio}");
        }
    }

    #[test]
    fn looped_kernel_code_size_is_constant_in_kc() {
        let spec = KernelSpec::paper_8x6(None);
        let addrs = GebpAddrs {
            a: 4096,
            b: 65536,
            c: 131072,
            ldc_bytes: 64,
        };
        let small = generate_microkernel_loop(&spec, 64, &addrs).len();
        let large = generate_microkernel_loop(&spec, 512, &addrs).len();
        assert_eq!(small, large, "whole-period loops share one body");
        let line = generate_microkernel_call(&spec, 512, &addrs).len();
        assert!(large * 10 < line, "loop {large} vs line {line}");
    }

    #[test]
    fn prefetches_stay_in_padded_range_of_next_sliver() {
        // PLDL1KEEP offsets walk ahead of the A stream by PREFA
        let spec = KernelSpec::paper_8x6(None);
        let kc = 16;
        let addrs = GebpAddrs {
            a: 0,
            b: 65536,
            c: 131072,
            ldc_bytes: 64,
        };
        let stream = generate_microkernel_call(&spec, kc, &addrs);
        for ins in &stream {
            if let Instr::Prfm { op, off, .. } = ins {
                assert_eq!(*op, PrfOp::Pldl1Keep);
                assert!(*off >= 1024);
                assert!(*off < (kc as i64) * 64 + 1024 + 64);
            }
        }
    }
}
