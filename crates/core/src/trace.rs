//! Request-scoped tracing, latency histograms and the health-event
//! journal (DESIGN.md §16).
//!
//! [`crate::telemetry`] answers "where did *this process's* cycles go";
//! this module answers the serving-side question — "where did *this
//! request's* milliseconds go". Three cooperating pieces:
//!
//! 1. **Trace spans** — every [`crate::service::GemmService`] ticket is
//!    assigned a process-unique trace ID at submission and accumulates a
//!    timestamped lifecycle chain (submitted → admitted/shed → queued →
//!    coalesced → dispatched → pack/compute → retry/degrade → resolved)
//!    in one bounded, process-global, lock-free ring. The pack/compute
//!    entries are *bridged* from the PR-3 phase spans: a thread-local
//!    current-trace context travels from the service scheduler through
//!    [`crate::pool`] job closures to the workers, so a worker's
//!    `Phase::Compute` span lands on the request that caused it.
//! 2. **Latency histograms** — log2-bucketed, atomic, fixed-size
//!    [`LatencyHistogram`]s with p50/p90/p99 extraction. The service
//!    keys them by `(tenant, perfmodel shape-class)` for total latency,
//!    queue wait, compute and pack time; `status_json()` and the
//!    `/metrics` endpoint ([`crate::metricsd`]) render them.
//! 3. **Health journal** — a bounded, typed event log (shed, retry,
//!    quarantine, watchdog-fire, degrade-to-serial, contained faults,
//!    injected faults) carrying a cause string and the trace ID that was
//!    current at emission, replacing the count-only view of the degrade
//!    ladder. Always compiled (cold paths only), like the `SVC`
//!    counters.
//!
//! ## Feature gating and overhead
//!
//! Span recording (the ring, the thread-local context, the phase
//! bridge) is compiled under the `trace` cargo feature (on by default);
//! disabled, every recording call is an `#[inline(always)]` no-op and
//! the context guards are zero-sized — the PR-3 bar. When compiled in,
//! `DGEMM_TRACE=off|ring|json` selects runtime behaviour (default
//! `ring`): `off` records nothing, `ring` records into the bounded ring
//! (scrape via [`crate::service::GemmService::trace_of`] or the chrome
//! exporter), `json` additionally prints one chrome-trace JSON object
//! per resolved request to stderr. A process that never touches the
//! service layer pays one thread-local read per phase span — within
//! noise. The ring holds `DGEMM_TRACE_RING` entries (default 8192,
//! clamped to 256..=1048576, rounded up to a power of two; ~64 B each)
//! and overwrites oldest — the drop policy is *overwrite*, never block.
//!
//! The histograms, the health journal and the monotonic process clock
//! ([`uptime_ms`]) are always compiled: they are touched only at
//! request resolution and fault sites, exactly like the always-on
//! service counters, and the scrape surface must work in every build.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

// ---------------------------------------------------------------------
// Process-wide monotonic clock (always compiled).
// ---------------------------------------------------------------------

/// Nanoseconds since the process-wide monotonic epoch (first use).
/// Shared by the telemetry spans and the trace ring so bridged phase
/// spans and lifecycle spans are directly comparable.
pub(crate) fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let elapsed = EPOCH.get_or_init(Instant::now).elapsed();
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

/// Milliseconds since the process-wide monotonic epoch. Exported in
/// `status_json()` so scrapers have a staleness/restart signal.
#[must_use]
pub fn uptime_ms() -> u64 {
    now_ns() / 1_000_000
}

// ---------------------------------------------------------------------
// Trace identifiers and runtime mode.
// ---------------------------------------------------------------------

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique trace ID (never 0; 0 means "no trace").
/// Always available — ticket IDs exist even in `--no-default-features`
/// builds; only span *recording* is feature-gated.
#[must_use]
pub fn next_trace_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// What the trace layer does at runtime (`DGEMM_TRACE`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing (also the only mode when the `trace` feature is
    /// compiled out).
    Off,
    /// Record spans into the bounded ring (the default).
    #[default]
    Ring,
    /// Ring recording plus one chrome-trace JSON object per resolved
    /// request printed to stderr.
    Json,
}

/// The runtime trace mode: `DGEMM_TRACE=off|ring|json`, read once per
/// process (default `ring`; unrecognized values fall back to `ring`).
/// Always [`TraceMode::Off`] when the `trace` feature is compiled out.
#[must_use]
pub fn mode() -> TraceMode {
    if !enabled() {
        return TraceMode::Off;
    }
    static MODE: OnceLock<TraceMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("DGEMM_TRACE") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" | "0" => TraceMode::Off,
            "json" => TraceMode::Json,
            _ => TraceMode::Ring,
        },
        Err(_) => TraceMode::Ring,
    })
}

/// Whether span recording is compiled in (the `trace` cargo feature).
#[must_use]
pub fn enabled() -> bool {
    cfg!(feature = "trace")
}

// ---------------------------------------------------------------------
// Span taxonomy.
// ---------------------------------------------------------------------

/// Number of distinct [`TraceKind`]s (the length of [`TraceKind::ALL`]).
pub const TRACE_KINDS: usize = 19;

/// One step of a request's lifecycle (or a bridged execution phase).
///
/// Lifecycle kinds are recorded by [`crate::service`]; the phase kinds
/// (`PackA`..`Recovery`) are bridged from [`crate::telemetry`] spans on
/// whichever thread carried the request's context at the time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// The request arrived at `submit` (point event).
    Submitted,
    /// Admission control accepted the request (point event).
    Admitted,
    /// Shed at admission: global queue bound (point; terminal).
    ShedOverload,
    /// Shed at admission: tenant quota (point; terminal).
    ShedQuota,
    /// Refused: shapes, shutdown, cancellation, exhausted retries
    /// (point event).
    Rejected,
    /// Time between admission and scheduler pickup (span; `dur_ns` is
    /// the queue wait).
    Queued,
    /// Folded into a coalesced batch (`arg0` = batch ID — the group
    /// leader's trace ID — and `arg1` = batch size; point event).
    Coalesced,
    /// Handed to an execution shard (`arg0` = shard index, `arg1` = 1
    /// for the pooled runtime, 0 for serial; point event).
    Dispatched,
    /// The batch execution the request rode in (span; wall clock of the
    /// whole group attempt chain).
    Executed,
    /// One retry of the group after a recoverable pool fault
    /// (`arg0` = attempt number; point event).
    Retry,
    /// The group degraded to the serial runtime (point event).
    Degrade,
    /// Per-request serial recovery after a contained panic (point).
    SerialRecovery,
    /// The request resolved (`arg0`: 0 ok, 1 overloaded, 2 deadline,
    /// 3 rejected; point event).
    Resolved,
    /// Bridged [`crate::telemetry::Phase::PackA`] span.
    PackA,
    /// Bridged [`crate::telemetry::Phase::PackB`] span.
    PackB,
    /// Bridged [`crate::telemetry::Phase::Compute`] span.
    Compute,
    /// Bridged [`crate::telemetry::Phase::Barrier`] span.
    Barrier,
    /// Bridged [`crate::telemetry::Phase::Watchdog`] span.
    Watchdog,
    /// Bridged [`crate::telemetry::Phase::Recovery`] span.
    Recovery,
}

impl TraceKind {
    /// Every kind, in stable schema order (`index` order).
    pub const ALL: [TraceKind; TRACE_KINDS] = [
        TraceKind::Submitted,
        TraceKind::Admitted,
        TraceKind::ShedOverload,
        TraceKind::ShedQuota,
        TraceKind::Rejected,
        TraceKind::Queued,
        TraceKind::Coalesced,
        TraceKind::Dispatched,
        TraceKind::Executed,
        TraceKind::Retry,
        TraceKind::Degrade,
        TraceKind::SerialRecovery,
        TraceKind::Resolved,
        TraceKind::PackA,
        TraceKind::PackB,
        TraceKind::Compute,
        TraceKind::Barrier,
        TraceKind::Watchdog,
        TraceKind::Recovery,
    ];

    /// Stable lowercase label (used by the JSON exporters).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Submitted => "submitted",
            TraceKind::Admitted => "admitted",
            TraceKind::ShedOverload => "shed_overload",
            TraceKind::ShedQuota => "shed_quota",
            TraceKind::Rejected => "rejected",
            TraceKind::Queued => "queued",
            TraceKind::Coalesced => "coalesced",
            TraceKind::Dispatched => "dispatched",
            TraceKind::Executed => "executed",
            TraceKind::Retry => "retry",
            TraceKind::Degrade => "degrade",
            TraceKind::SerialRecovery => "serial_recovery",
            TraceKind::Resolved => "resolved",
            TraceKind::PackA => "pack_a",
            TraceKind::PackB => "pack_b",
            TraceKind::Compute => "compute",
            TraceKind::Barrier => "barrier",
            TraceKind::Watchdog => "watchdog",
            TraceKind::Recovery => "recovery",
        }
    }

    /// Position in [`TraceKind::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        TraceKind::ALL
            .iter()
            .position(|k| *k == self)
            .unwrap_or_default()
    }

    /// The bridged-phase kind for a telemetry phase index
    /// ([`crate::telemetry::Phase::ALL`] order).
    #[must_use]
    pub(crate) fn from_phase_index(idx: usize) -> Option<TraceKind> {
        TraceKind::ALL.get(TraceKind::PackA.index() + idx).copied()
    }
}

/// One recorded trace event, decoded from the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEventRec {
    /// The request's trace ID.
    pub trace: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific argument (see [`TraceKind`] docs).
    pub arg0: u64,
    /// Kind-specific argument (see [`TraceKind`] docs).
    pub arg1: u64,
    /// Event start, nanoseconds on the process monotonic clock.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for point events).
    pub dur_ns: u64,
}

/// Render a set of trace events as a chrome-trace (`trace_events`)
/// JSON object, openable in Perfetto / `chrome://tracing`. Spans become
/// `ph:"X"` complete events, points become `ph:"i"` instants; the trace
/// ID is the `tid`, so one request reads as one timeline row.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEventRec]) -> String {
    let mut s = String::with_capacity(64 + events.len() * 96);
    s.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let ts_us = e.start_ns as f64 / 1e3;
        if e.dur_ns > 0 {
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"dgemm\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"arg0\":{},\"arg1\":{}}}}}",
                e.kind.label(),
                ts_us,
                e.dur_ns as f64 / 1e3,
                e.trace,
                e.arg0,
                e.arg1,
            ));
        } else {
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"dgemm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"arg0\":{},\"arg1\":{}}}}}",
                e.kind.label(),
                ts_us,
                e.trace,
                e.arg0,
                e.arg1,
            ));
        }
    }
    s.push_str("]}");
    s
}

// ---------------------------------------------------------------------
// Log2-bucketed latency histograms (always compiled; cold paths only).
// ---------------------------------------------------------------------

/// Number of finite histogram buckets; bucket `i` has upper edge
/// `2^i` µs (1 µs .. ~134 s), larger samples land in the overflow
/// (`+Inf`) bucket.
pub const HIST_BUCKETS: usize = 28;

/// A fixed-size, lock-free, log2-bucketed latency histogram in
/// microseconds. Bucket `i` counts samples `v` with
/// `2^(i-1) < v <= 2^i` (bucket 0 takes `v <= 1`); samples above
/// `2^(HIST_BUCKETS-1)` land in the overflow bucket. Recording is one
/// relaxed `fetch_add` per field — safe to call from any thread.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    overflow: AtomicU64,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        // `[const { ... }; N]` array-of-atomics initialization.
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            overflow: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The bucket index a microsecond value lands in, or
    /// `HIST_BUCKETS` for the overflow bucket.
    #[must_use]
    pub fn bucket_index(us: u64) -> usize {
        if us <= 1 {
            0
        } else {
            let idx = (64 - (us - 1).leading_zeros()) as usize;
            idx.min(HIST_BUCKETS)
        }
    }

    /// Upper edge (µs) of finite bucket `i`: `2^i`.
    #[must_use]
    pub fn bucket_edge(i: usize) -> u64 {
        1u64 << i.min(63)
    }

    /// Record one sample (microseconds).
    pub fn record_us(&self, us: u64) {
        let idx = Self::bucket_index(us);
        if idx < HIST_BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, microseconds.
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts for the finite buckets.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Samples above the last finite bucket edge.
    #[must_use]
    pub fn overflow_count(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// The upper bucket edge (µs) under which fraction `q` of samples
    /// fall — the histogram's quantile estimate, always an upper bound
    /// on the true quantile (within one log2 bucket). `None` when empty
    /// or when the quantile lands in the overflow bucket.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for i in 0..HIST_BUCKETS {
            cum += self.buckets[i].load(Ordering::Relaxed);
            if cum >= target {
                return Some(Self::bucket_edge(i));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Health-event journal (always compiled; cold paths only).
// ---------------------------------------------------------------------

/// Number of distinct [`HealthEventKind`]s.
pub const HEALTH_KINDS: usize = 8;

/// A typed entry in the structured health journal — the degrade
/// ladder's events with causes, replacing the count-only view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HealthEventKind {
    /// A request was shed at admission (overload or quota).
    Shed,
    /// A group execution was retried after a recoverable pool fault.
    Retry,
    /// A shard entered quarantine (cooldown before pooled retry).
    Quarantine,
    /// The epoch watchdog expired and the caller recovered serially.
    WatchdogFire,
    /// A group ran on the serial runtime because its shard was
    /// unhealthy (graceful degradation).
    DegradeSerial,
    /// The pool contained a worker fault by recomputing a block.
    FaultContained,
    /// The service contained a panic with per-request serial recovery.
    PanicContained,
    /// A deterministic fault-injection site fired (`fault-injection`
    /// builds only).
    FaultInjected,
}

impl HealthEventKind {
    /// Every kind, in stable schema order.
    pub const ALL: [HealthEventKind; HEALTH_KINDS] = [
        HealthEventKind::Shed,
        HealthEventKind::Retry,
        HealthEventKind::Quarantine,
        HealthEventKind::WatchdogFire,
        HealthEventKind::DegradeSerial,
        HealthEventKind::FaultContained,
        HealthEventKind::PanicContained,
        HealthEventKind::FaultInjected,
    ];

    /// Stable lowercase label (JSON schema and `/metrics` label value).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HealthEventKind::Shed => "shed",
            HealthEventKind::Retry => "retry",
            HealthEventKind::Quarantine => "quarantine",
            HealthEventKind::WatchdogFire => "watchdog_fire",
            HealthEventKind::DegradeSerial => "degrade_serial",
            HealthEventKind::FaultContained => "fault_contained",
            HealthEventKind::PanicContained => "panic_contained",
            HealthEventKind::FaultInjected => "fault_injected",
        }
    }

    fn index(self) -> usize {
        HealthEventKind::ALL
            .iter()
            .position(|k| *k == self)
            .unwrap_or_default()
    }
}

/// One journal entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthEvent {
    /// Monotone sequence number since process start (never reused, so
    /// scrapers can detect gaps after ring overwrite).
    pub seq: u64,
    /// Emission time, nanoseconds on the process monotonic clock.
    pub ts_ns: u64,
    /// What happened.
    pub kind: HealthEventKind,
    /// The trace ID current on the emitting thread (0 = none).
    pub trace: u64,
    /// Kind-specific detail (shard index, retry attempt, missing-block
    /// count, ...).
    pub detail: u64,
    /// Human-readable cause, a static string (no allocation on the
    /// emission path beyond the journal slot itself).
    pub cause: &'static str,
}

/// Journal entries kept; older entries are dropped (their monotone
/// `seq` reveals the gap).
const JOURNAL_LEN: usize = 512;

struct Journal {
    seq: u64,
    ring: VecDeque<HealthEvent>,
}

static JOURNAL: Mutex<Journal> = Mutex::new(Journal {
    seq: 0,
    ring: VecDeque::new(),
});

/// Monotone per-kind totals since process start (survive journal
/// overwrite; the `/metrics` counters).
static HEALTH_COUNTS: [AtomicU64; HEALTH_KINDS] = [const { AtomicU64::new(0) }; HEALTH_KINDS];

/// Append a typed event to the health journal. `trace` 0 means "no
/// request context". Cold paths only (fault handling, shedding,
/// degradation) — takes a mutex.
pub(crate) fn health_event(kind: HealthEventKind, trace: u64, detail: u64, cause: &'static str) {
    HEALTH_COUNTS[kind.index()].fetch_add(1, Ordering::Relaxed);
    let mut j = JOURNAL.lock().unwrap_or_else(PoisonError::into_inner);
    let seq = j.seq;
    j.seq += 1;
    if j.ring.len() >= JOURNAL_LEN {
        j.ring.pop_front();
    }
    j.ring.push_back(HealthEvent {
        seq,
        ts_ns: now_ns(),
        kind,
        trace,
        detail,
        cause,
    });
}

/// The surviving tail of the health journal, oldest first.
#[must_use]
pub fn health_events() -> Vec<HealthEvent> {
    let j = JOURNAL.lock().unwrap_or_else(PoisonError::into_inner);
    j.ring.iter().copied().collect()
}

/// Monotone per-kind event totals since process start, in
/// [`HealthEventKind::ALL`] order (unlike the journal ring, these never
/// forget).
#[must_use]
pub fn health_counts() -> [(HealthEventKind, u64); HEALTH_KINDS] {
    std::array::from_fn(|i| {
        (
            HealthEventKind::ALL[i],
            HEALTH_COUNTS[i].load(Ordering::Relaxed),
        )
    })
}

// ---------------------------------------------------------------------
// Span recording (feature-gated hot path).
// ---------------------------------------------------------------------

pub(crate) use rec::{adopt, bridge_phase, capture, current_id, record_event, record_span};
pub use rec::{events_for, recent_events};

#[cfg(feature = "trace")]
pub(crate) use rec::TraceCtx;

#[cfg(not(feature = "trace"))]
pub(crate) use rec::TraceCtx;

#[cfg(feature = "trace")]
mod rec {
    use super::{now_ns, TraceEventRec, TraceKind, TraceMode};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, OnceLock};

    /// Per-request phase accumulators: exact pack/compute nanoseconds
    /// bridged from telemetry spans across every thread that carried
    /// this request's context. Feeds the per-request histograms without
    /// scanning the ring.
    #[derive(Debug, Default)]
    pub(crate) struct PhaseAcc {
        pack_ns: AtomicU64,
        compute_ns: AtomicU64,
    }

    /// The request context a thread carries: trace ID plus the shared
    /// phase accumulator. Cloning is one `Arc` bump.
    #[derive(Clone, Debug)]
    pub(crate) struct TraceCtx {
        pub(crate) id: u64,
        acc: Arc<PhaseAcc>,
    }

    impl TraceCtx {
        /// A fresh context for trace `id`.
        pub(crate) fn new(id: u64) -> Self {
            TraceCtx {
                id,
                acc: Arc::new(PhaseAcc::default()),
            }
        }

        /// Accumulated bridged pack time (A + B), nanoseconds.
        pub(crate) fn pack_ns(&self) -> u64 {
            self.acc.pack_ns.load(Ordering::Relaxed)
        }

        /// Accumulated bridged GEBP compute time, nanoseconds.
        pub(crate) fn compute_ns(&self) -> u64 {
            self.acc.compute_ns.load(Ordering::Relaxed)
        }
    }

    thread_local! {
        static CURRENT: RefCell<Option<TraceCtx>> = const { RefCell::new(None) };
    }

    /// Install `ctx` as the thread's current trace for the guard's
    /// lifetime (restores the previous context on drop, panic-safe).
    pub(crate) struct TraceScope {
        prev: Option<TraceCtx>,
    }

    impl Drop for TraceScope {
        fn drop(&mut self) {
            let prev = self.prev.take();
            let _ = CURRENT.try_with(|c| {
                if let Ok(mut cur) = c.try_borrow_mut() {
                    *cur = prev;
                }
            });
        }
    }

    /// Enter `ctx` on the calling thread.
    pub(crate) fn enter(ctx: &TraceCtx) -> TraceScope {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx.clone()));
        TraceScope { prev }
    }

    /// Snapshot the calling thread's current context (for shipping into
    /// a pool job closure).
    pub(crate) fn capture() -> Option<TraceCtx> {
        CURRENT
            .try_with(|c| c.try_borrow().ok().and_then(|cur| cur.clone()))
            .ok()
            .flatten()
    }

    /// Adopt a captured context on a worker thread for the guard's
    /// lifetime. `None` installs nothing and the guard is inert.
    pub(crate) fn adopt(ctx: Option<TraceCtx>) -> Option<TraceScope> {
        ctx.as_ref().map(enter)
    }

    /// The trace ID current on this thread (0 = none).
    pub(crate) fn current_id() -> u64 {
        capture().map_or(0, |c| c.id)
    }

    // -- the ring ------------------------------------------------------

    #[derive(Default)]
    struct Slot {
        /// Write index + 1 (0 = never written). Stored last, `Release`.
        stamp: AtomicU64,
        trace: AtomicU64,
        kind: AtomicU64,
        arg0: AtomicU64,
        arg1: AtomicU64,
        start_ns: AtomicU64,
        dur_ns: AtomicU64,
    }

    struct Ring {
        slots: Vec<Slot>,
        head: AtomicU64,
    }

    fn ring() -> &'static Ring {
        static RING: OnceLock<Ring> = OnceLock::new();
        RING.get_or_init(|| {
            let n = std::env::var("DGEMM_TRACE_RING")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(8192)
                .clamp(256, 1 << 20)
                .next_power_of_two();
            Ring {
                slots: (0..n).map(|_| Slot::default()).collect(),
                head: AtomicU64::new(0),
            }
        })
    }

    fn push(trace: u64, kind: TraceKind, arg0: u64, arg1: u64, start_ns: u64, dur_ns: u64) {
        let r = ring();
        let idx = r.head.fetch_add(1, Ordering::Relaxed);
        let slot = &r.slots[(idx as usize) & (r.slots.len() - 1)];
        slot.trace.store(trace, Ordering::Relaxed);
        slot.kind.store(kind.index() as u64, Ordering::Relaxed);
        slot.arg0.store(arg0, Ordering::Relaxed);
        slot.arg1.store(arg1, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.stamp.store(idx + 1, Ordering::Release);
    }

    fn scan(mut keep: impl FnMut(&TraceEventRec) -> bool) -> Vec<TraceEventRec> {
        let r = ring();
        let mut out = Vec::new();
        for slot in &r.slots {
            if slot.stamp.load(Ordering::Acquire) == 0 {
                continue;
            }
            let kind_idx = slot.kind.load(Ordering::Relaxed) as usize;
            let Some(kind) = TraceKind::ALL.get(kind_idx).copied() else {
                continue;
            };
            let e = TraceEventRec {
                trace: slot.trace.load(Ordering::Relaxed),
                kind,
                arg0: slot.arg0.load(Ordering::Relaxed),
                arg1: slot.arg1.load(Ordering::Relaxed),
                start_ns: slot.start_ns.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
            };
            if keep(&e) {
                out.push(e);
            }
        }
        out.sort_by_key(|e| (e.start_ns, e.kind.index()));
        out
    }

    // -- recording entry points ---------------------------------------

    /// Record a point event at "now" for `trace`.
    #[inline]
    pub(crate) fn record_event(trace: u64, kind: TraceKind, arg0: u64, arg1: u64) {
        if trace == 0 || super::mode() == TraceMode::Off {
            return;
        }
        push(trace, kind, arg0, arg1, now_ns(), 0);
    }

    /// Record a completed span for `trace`.
    #[inline]
    pub(crate) fn record_span(
        trace: u64,
        kind: TraceKind,
        start_ns: u64,
        dur_ns: u64,
        arg0: u64,
        arg1: u64,
    ) {
        if trace == 0 || super::mode() == TraceMode::Off {
            return;
        }
        push(trace, kind, arg0, arg1, start_ns, dur_ns);
    }

    /// Bridge one telemetry phase span onto the thread's current trace
    /// (no-op without a current context — the common, non-service
    /// path pays exactly one thread-local read).
    #[inline]
    pub(crate) fn bridge_phase(phase_idx: usize, start_ns: u64, dur_ns: u64) {
        let Some(ctx) = capture() else { return };
        match phase_idx {
            // PackA, PackB
            0 | 1 => {
                ctx.acc.pack_ns.fetch_add(dur_ns, Ordering::Relaxed);
            }
            // Compute
            2 => {
                ctx.acc.compute_ns.fetch_add(dur_ns, Ordering::Relaxed);
            }
            _ => {}
        }
        if super::mode() == TraceMode::Off {
            return;
        }
        if let Some(kind) = TraceKind::from_phase_index(phase_idx) {
            push(ctx.id, kind, 0, 0, start_ns, dur_ns);
        }
    }

    /// Every surviving ring event for one trace, oldest first.
    #[must_use]
    pub fn events_for(trace: u64) -> Vec<TraceEventRec> {
        if trace == 0 {
            return Vec::new();
        }
        scan(|e| e.trace == trace)
    }

    /// The newest `max` surviving ring events across every trace,
    /// oldest first (the chrome-trace artifact export).
    #[must_use]
    pub fn recent_events(max: usize) -> Vec<TraceEventRec> {
        let mut all = scan(|_| true);
        if all.len() > max {
            all.drain(..all.len() - max);
        }
        all
    }
}

#[cfg(not(feature = "trace"))]
mod rec {
    //! No-op recording: every site compiles to nothing; guards are
    //! zero-sized.
    use super::{TraceEventRec, TraceKind};

    /// Zero-sized stand-in carrying only the trace ID.
    #[derive(Clone, Copy, Debug)]
    pub(crate) struct TraceCtx {
        pub(crate) id: u64,
    }

    impl TraceCtx {
        pub(crate) fn new(id: u64) -> Self {
            TraceCtx { id }
        }

        pub(crate) fn pack_ns(&self) -> u64 {
            0
        }

        pub(crate) fn compute_ns(&self) -> u64 {
            0
        }
    }

    /// Zero-sized stand-in for the enabled build's context guard.
    pub(crate) struct TraceScope;

    #[inline(always)]
    pub(crate) fn capture() -> Option<TraceCtx> {
        None
    }

    #[inline(always)]
    pub(crate) fn adopt(_ctx: Option<TraceCtx>) -> Option<TraceScope> {
        None
    }

    #[inline(always)]
    pub(crate) fn current_id() -> u64 {
        0
    }

    #[inline(always)]
    pub(crate) fn record_event(_trace: u64, _kind: TraceKind, _arg0: u64, _arg1: u64) {}

    #[inline(always)]
    pub(crate) fn record_span(
        _trace: u64,
        _kind: TraceKind,
        _start_ns: u64,
        _dur_ns: u64,
        _arg0: u64,
        _arg1: u64,
    ) {
    }

    #[inline(always)]
    pub(crate) fn bridge_phase(_phase_idx: usize, _start_ns: u64, _dur_ns: u64) {}

    /// Always empty without the `trace` feature.
    #[must_use]
    pub fn events_for(_trace: u64) -> Vec<TraceEventRec> {
        Vec::new()
    }

    /// Always empty without the `trace` feature.
    #[must_use]
    pub fn recent_events(_max: usize) -> Vec<TraceEventRec> {
        Vec::new()
    }
}

/// Print one chrome-trace JSON object for `trace` to stderr (the
/// `DGEMM_TRACE=json` per-request emission; no-op in other modes or
/// when the trace recorded nothing).
pub(crate) fn emit_json(trace: u64) {
    if mode() != TraceMode::Json {
        return;
    }
    let events = events_for(trace);
    if !events.is_empty() {
        eprintln!("{}", chrome_trace_json(&events));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_and_labels_are_stable() {
        for (i, k) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(TraceKind::Submitted.label(), "submitted");
        assert_eq!(TraceKind::Resolved.label(), "resolved");
        // Phase bridging: telemetry phase order maps onto PackA..Recovery.
        assert_eq!(TraceKind::from_phase_index(0), Some(TraceKind::PackA));
        assert_eq!(TraceKind::from_phase_index(2), Some(TraceKind::Compute));
        assert_eq!(TraceKind::from_phase_index(5), Some(TraceKind::Recovery));
        assert_eq!(TraceKind::from_phase_index(6), None);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn histogram_buckets_are_exact_log2() {
        // v <= 1 -> bucket 0; 2^(i-1) < v <= 2^i -> bucket i.
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(5), 3);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(LatencyHistogram::bucket_index(1025), 11);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            HIST_BUCKETS,
            "huge samples land in the overflow bucket"
        );
    }

    #[test]
    fn histogram_quantiles_are_bucket_edge_bounded() {
        let h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 100, 1000, 5000] {
            h.record_us(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 6106);
        // p50: the 3rd sample (3 µs) lives in bucket 2, edge 4.
        assert_eq!(h.quantile_us(0.5), Some(4));
        // p100: 5000 µs lives in bucket 13, edge 8192.
        assert_eq!(h.quantile_us(1.0), Some(8192));
        // Every quantile is >= the true value and within one bucket.
        assert!(h.quantile_us(0.99).unwrap_or(0) >= 5000);
    }

    #[test]
    fn health_journal_records_and_counts() {
        let before = health_counts()[HealthEventKind::Quarantine.index()].1;
        health_event(HealthEventKind::Quarantine, 42, 3, "test cause");
        let events = health_events();
        let mine = events
            .iter()
            .rev()
            .find(|e| e.kind == HealthEventKind::Quarantine && e.trace == 42)
            .copied();
        let e = mine.unwrap_or_else(|| panic!("journal lost the event: {events:?}"));
        assert_eq!(e.detail, 3);
        assert_eq!(e.cause, "test cause");
        let after = health_counts()[HealthEventKind::Quarantine.index()].1;
        assert!(after > before);
    }

    #[test]
    fn chrome_trace_renders_spans_and_instants() {
        let events = [
            TraceEventRec {
                trace: 7,
                kind: TraceKind::Queued,
                arg0: 0,
                arg1: 0,
                start_ns: 1000,
                dur_ns: 2000,
            },
            TraceEventRec {
                trace: 7,
                kind: TraceKind::Resolved,
                arg0: 0,
                arg1: 0,
                start_ns: 3000,
                dur_ns: 0,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"name\":\"queued\""), "{json}");
        assert!(json.ends_with("]}"), "{json}");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ring_records_and_scopes_nest() {
        // Default mode is Ring unless the environment says otherwise;
        // skip under DGEMM_TRACE=off.
        if mode() == TraceMode::Off {
            return;
        }
        let id = next_trace_id();
        let ctx = TraceCtx::new(id);
        {
            let _g = adopt(Some(ctx));
            assert_eq!(current_id(), id);
            let inner = TraceCtx::new(next_trace_id());
            {
                let _g2 = adopt(Some(inner.clone()));
                assert_eq!(current_id(), inner.id);
            }
            assert_eq!(current_id(), id, "scope restores the outer context");
            record_event(id, TraceKind::Submitted, 0, 0);
            record_span(id, TraceKind::Queued, now_ns(), 5, 0, 0);
        }
        assert_eq!(current_id(), 0);
        let events = events_for(id);
        assert!(
            events.iter().any(|e| e.kind == TraceKind::Submitted),
            "{events:?}"
        );
        assert!(
            events.iter().any(|e| e.kind == TraceKind::Queued),
            "{events:?}"
        );
        // events_for filters strictly by trace id.
        assert!(events.iter().all(|e| e.trace == id));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn bridge_accumulates_pack_and_compute() {
        let ctx = TraceCtx::new(next_trace_id());
        {
            let _g = adopt(Some(ctx.clone()));
            bridge_phase(0, now_ns(), 100); // PackA
            bridge_phase(1, now_ns(), 50); // PackB
            bridge_phase(2, now_ns(), 1000); // Compute
            bridge_phase(3, now_ns(), 77); // Barrier: not accumulated
        }
        assert_eq!(ctx.pack_ns(), 150);
        assert_eq!(ctx.compute_ns(), 1000);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_guards_are_zero_sized_and_empty() {
        assert_eq!(core::mem::size_of::<rec::TraceScope>(), 0);
        assert_eq!(mode(), TraceMode::Off);
        assert!(events_for(1).is_empty());
        assert!(recent_events(10).is_empty());
    }
}
