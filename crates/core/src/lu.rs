//! Blocked LU factorization with partial pivoting — the LINPACK/HPL
//! workload the paper names as DGEMM's raison d'être ("as the core part
//! of the LINPACK benchmark, DGEMM has been an important kernel for
//! measuring the potential performance of a HPC platform").
//!
//! Right-looking algorithm: for each `nb`-wide panel,
//!
//! 1. factor the panel with unblocked, partially pivoted LU;
//! 2. apply the panel's row swaps to the rest of the matrix;
//! 3. `U₁₂ ← L₁₁⁻¹·A₁₂` via [`crate::level3::dtrsm`] (unit lower);
//! 4. `A₂₂ ← A₂₂ − L₂₁·U₁₂` via [`crate::gemm::gemm`] — where ~all the
//!    `2n³/3` flops go, through the paper's GEBP engine.

#![forbid(unsafe_code)]

use crate::gemm::{try_gemm, GemmConfig};
use crate::level3::{dtrsm, Diag, UpLo};
use crate::matrix::Matrix;
use crate::{GemmError, Transpose};

/// The factorization result: `P·A = L·U` stored compactly in `lu`
/// (unit-lower L below the diagonal, U on and above), with the pivot row
/// chosen at each step in `pivots`.
#[derive(Clone, Debug)]
pub struct LuFactors {
    /// Packed L\U matrix.
    pub lu: Matrix,
    /// `pivots[k] = r` means rows `k` and `r` were swapped at step `k`.
    pub pivots: Vec<usize>,
}

/// Numerical failure of the factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Singular {
    /// Column at which no usable pivot was found.
    pub column: usize,
}

impl core::fmt::Display for Singular {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for Singular {}

/// Any failure of the blocked factorization: numerical (no usable
/// pivot) or a GEMM runtime fault propagated from the update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LuError {
    /// No usable pivot at some column.
    Singular(Singular),
    /// The trailing GEMM/TRSM update reported a runtime fault.
    Gemm(GemmError),
}

impl core::fmt::Display for LuError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LuError::Singular(s) => s.fmt(f),
            LuError::Gemm(e) => write!(f, "LU update failed: {e}"),
        }
    }
}

impl std::error::Error for LuError {}

impl From<Singular> for LuError {
    fn from(s: Singular) -> Self {
        LuError::Singular(s)
    }
}

impl From<GemmError> for LuError {
    fn from(e: GemmError) -> Self {
        LuError::Gemm(e)
    }
}

impl LuError {
    /// The column of a singular failure, if that is what this is.
    #[must_use]
    pub fn singular_column(&self) -> Option<usize> {
        match self {
            LuError::Singular(s) => Some(s.column),
            LuError::Gemm(_) => None,
        }
    }
}

/// Panel width for the blocked factorization: the paper's `nr`-aligned
/// choice keeps the GEMM update's K dimension a multiple of the register
/// block.
const DEFAULT_NB: usize = 48;

/// Factor a square matrix: `P·A = L·U` with partial pivoting.
pub fn lu_factor(a: &Matrix, cfg: &GemmConfig) -> Result<LuFactors, LuError> {
    assert_eq!(a.rows(), a.cols(), "LU needs a square matrix");
    let n = a.rows();
    let mut lu = a.clone();
    let mut pivots = vec![0usize; n];
    let nb = DEFAULT_NB;

    let mut j0 = 0usize;
    while j0 < n {
        let w = nb.min(n - j0);
        // 1) unblocked factorization of the panel rows j0..n, cols j0..j0+w
        #[allow(clippy::needless_range_loop)] // k walks rows, cols and pivots together
        for k in j0..j0 + w {
            // pivot search in column k, rows k..n
            let mut piv = k;
            let mut best = lu.get(k, k).abs();
            for r in k + 1..n {
                let v = lu.get(r, k).abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best == 0.0 {
                return Err(Singular { column: k }.into());
            }
            pivots[k] = piv;
            if piv != k {
                swap_rows(&mut lu, k, piv);
            }
            // eliminate below the pivot within the panel
            let pivval = lu.get(k, k);
            for r in k + 1..n {
                let l = lu.get(r, k) / pivval;
                lu.set(r, k, l);
                for c in k + 1..j0 + w {
                    let v = lu.get(r, c) - l * lu.get(k, c);
                    lu.set(r, c, v);
                }
            }
        }

        let rest = n - (j0 + w);
        if rest > 0 {
            // 2) the panel's swaps were already applied to the whole row
            //    by swap_rows above.
            // 3) U12 = L11^{-1} A12 (unit lower triangular solve)
            let l11 = lu_sub(&lu, j0, j0, w, w);
            let mut a12 = lu_sub(&lu, j0, j0 + w, w, rest);
            {
                let mut view = a12.view_mut();
                dtrsm(
                    UpLo::Lower,
                    Transpose::No,
                    Diag::Unit,
                    1.0,
                    &l11.view(),
                    &mut view,
                    cfg,
                )?;
            }
            copy_back(&mut lu, j0, j0 + w, &a12);

            // 4) A22 -= L21 * U12 — the GEMM that dominates LINPACK
            let l21 = lu_sub(&lu, j0 + w, j0, rest, w);
            let mut a22 = lu_sub(&lu, j0 + w, j0 + w, rest, rest);
            try_gemm(
                Transpose::No,
                Transpose::No,
                -1.0,
                &l21.view(),
                &a12.view(),
                1.0,
                &mut a22.view_mut(),
                cfg,
            )?;
            copy_back(&mut lu, j0 + w, j0 + w, &a22);
        }
        j0 += w;
    }
    Ok(LuFactors { lu, pivots })
}

fn swap_rows(m: &mut Matrix, r1: usize, r2: usize) {
    if r1 == r2 {
        return;
    }
    for c in 0..m.cols() {
        let a = m.get(r1, c);
        let b = m.get(r2, c);
        m.set(r1, c, b);
        m.set(r2, c, a);
    }
}

fn lu_sub(m: &Matrix, i0: usize, j0: usize, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| m.get(i0 + i, j0 + j))
}

fn copy_back(m: &mut Matrix, i0: usize, j0: usize, src: &Matrix) {
    for j in 0..src.cols() {
        for i in 0..src.rows() {
            m.set(i0 + i, j0 + j, src.get(i, j));
        }
    }
}

impl LuFactors {
    /// Matrix order.
    #[must_use]
    pub fn n(&self) -> usize {
        self.lu.rows()
    }

    /// Apply the pivot permutation to a right-hand-side matrix in place
    /// (forward order, as in LAPACK `laswp`).
    pub fn apply_pivots(&self, b: &mut Matrix) {
        for (k, &p) in self.pivots.iter().enumerate() {
            if p != k {
                swap_rows(b, k, p);
            }
        }
    }

    /// Solve `A·X = B` using the factorization (B has one column per
    /// right-hand side). `Err` propagates a GEMM runtime fault from the
    /// triangular solves.
    pub fn solve(&self, b: &Matrix, cfg: &GemmConfig) -> Result<Matrix, GemmError> {
        assert_eq!(b.rows(), self.n(), "rhs rows must match");
        let mut x = b.clone();
        self.apply_pivots(&mut x);
        // L y = Pb (unit lower), then U x = y
        dtrsm(
            UpLo::Lower,
            Transpose::No,
            Diag::Unit,
            1.0,
            &self.lu.view(),
            &mut x.view_mut(),
            cfg,
        )?;
        dtrsm(
            UpLo::Upper,
            Transpose::No,
            Diag::NonUnit,
            1.0,
            &self.lu.view(),
            &mut x.view_mut(),
            cfg,
        )?;
        Ok(x)
    }

    /// Reconstruct `P⁻¹·L·U` (which must equal the original A).
    #[must_use]
    pub fn reconstruct(&self) -> Matrix {
        let n = self.n();
        let l = Matrix::from_fn(n, n, |i, j| {
            use core::cmp::Ordering;
            match i.cmp(&j) {
                Ordering::Greater => self.lu.get(i, j),
                Ordering::Equal => 1.0,
                Ordering::Less => 0.0,
            }
        });
        let u = Matrix::from_fn(n, n, |i, j| if i <= j { self.lu.get(i, j) } else { 0.0 });
        let mut pa = Matrix::zeros(n, n);
        crate::reference::naive_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &l.view(),
            &u.view(),
            0.0,
            &mut pa.view_mut(),
        );
        // undo the pivoting: apply swaps in reverse
        for k in (0..n).rev() {
            let p = self.pivots[k];
            if p != k {
                swap_rows(&mut pa, k, p);
            }
        }
        pa
    }
}

/// Flops of an LU factorization (`2n³/3`, the LINPACK convention).
#[must_use]
pub fn lu_flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(3) / 3.0
}

/// The HPL-style scaled residual `‖Ax − b‖∞ / (ε·‖A‖∞·n)`; a solve is
/// conventionally accepted when this is O(10) or less.
#[must_use]
pub fn hpl_residual(a: &Matrix, x: &Matrix, b: &Matrix) -> f64 {
    let n = a.rows();
    let mut ax = Matrix::zeros(n, x.cols());
    crate::reference::naive_gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &x.view(),
        0.0,
        &mut ax.view_mut(),
    );
    let resid = ax.max_abs_diff(b);
    let norm_a = (0..n)
        .map(|i| (0..n).map(|j| a.get(i, j).abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    resid / (f64::EPSILON * norm_a * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_conditioned(n: usize, seed: u64) -> Matrix {
        let r = Matrix::random(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                n as f64 + r.get(i, j)
            } else {
                r.get(i, j)
            }
        })
    }

    #[test]
    fn reconstruct_small() {
        let a = well_conditioned(17, 1);
        let f = lu_factor(&a, &GemmConfig::default()).unwrap();
        let pa = f.reconstruct();
        assert!(pa.max_abs_diff(&a) < 1e-10, "{}", pa.max_abs_diff(&a));
    }

    #[test]
    fn reconstruct_crosses_panels() {
        // n > DEFAULT_NB exercises trsm + gemm updates
        for n in [49, 96, 130] {
            let a = well_conditioned(n, n as u64);
            let f = lu_factor(&a, &GemmConfig::default()).unwrap();
            assert!(f.reconstruct().max_abs_diff(&a) < 1e-9);
        }
    }

    #[test]
    fn pivoting_actually_pivots() {
        // a matrix needing row exchanges (zero leading pivot)
        let mut a = well_conditioned(8, 3);
        a.set(0, 0, 0.0);
        let f = lu_factor(&a, &GemmConfig::default()).unwrap();
        assert!(f.pivots[0] != 0, "must pivot away from the zero");
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::zeros(5, 5);
        let err = lu_factor(&a, &GemmConfig::default()).unwrap_err();
        assert_eq!(err.singular_column(), Some(0));
        // rank-1 matrix fails at the second column
        let r1 = Matrix::from_fn(6, 6, |i, j| ((i + 1) * (j + 1)) as f64);
        let err = lu_factor(&r1, &GemmConfig::default()).unwrap_err();
        assert!(err.singular_column().expect("numerical failure") >= 1);
    }

    #[test]
    fn solve_recovers_solution() {
        let n = 120;
        let a = well_conditioned(n, 7);
        let x_true = Matrix::random(n, 3, 8);
        let mut b = Matrix::zeros(n, 3);
        crate::reference::naive_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &x_true.view(),
            0.0,
            &mut b.view_mut(),
        );
        let f = lu_factor(&a, &GemmConfig::default()).unwrap();
        let x = f.solve(&b, &GemmConfig::default()).unwrap();
        assert!(
            x.max_abs_diff(&x_true) < 1e-8,
            "{}",
            x.max_abs_diff(&x_true)
        );
        assert!(hpl_residual(&a, &x, &b) < 10.0);
    }

    #[test]
    fn solve_with_threads_matches() {
        let n = 100;
        let a = well_conditioned(n, 9);
        let b = Matrix::random(n, 2, 10);
        let serial = lu_factor(&a, &GemmConfig::default())
            .unwrap()
            .solve(&b, &GemmConfig::default())
            .unwrap();
        let cfg = GemmConfig::default().with_parallelism(crate::pool::Parallelism::from_threads(4));
        let parallel = lu_factor(&a, &cfg).unwrap().solve(&b, &cfg).unwrap();
        assert!(serial.max_abs_diff(&parallel) < 1e-10);
    }

    #[test]
    fn flops_convention() {
        assert!((lu_flops(1000) - 2.0e9 / 3.0).abs() < 1.0);
    }
}
