//! Dependency-free metrics scrape endpoint (DESIGN.md §16).
//!
//! A minimal HTTP/1.x responder on a std [`TcpListener`] — no async
//! runtime, no HTTP crate — serving exactly two read-only routes:
//!
//! * `GET /metrics` — Prometheus text exposition format
//!   (`text/plain; version=0.0.4`), rendered by the
//!   [`MetricsSource`] (for a service:
//!   [`crate::service::GemmService::metrics_text`]).
//! * `GET /status` — the `dgemm-telem-v1` JSON snapshot
//!   (for a service: [`crate::service::GemmService::status_json`]).
//!
//! Everything else answers `404`. Connections are `Connection: close`,
//! one request per connection, with short read/write timeouts so a
//! stuck scraper cannot wedge the acceptor. The endpoint is explicitly
//! *not* a general web server: it binds where told
//! ([`crate::service::GemmService::serve_metrics`], or
//! `DGEMM_METRICS_ADDR` via
//! [`crate::service::GemmService::serve_metrics_from_env`]) and shuts
//! down when the [`MetricsServer`] handle drops.

#![forbid(unsafe_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// What the endpoint serves. Implemented by the service layer; any
/// other component can expose itself the same way.
pub trait MetricsSource: Send + Sync + 'static {
    /// The `/metrics` body: Prometheus text exposition format.
    fn metrics_text(&self) -> String;
    /// The `/status` body: `dgemm-telem-v1` JSON.
    fn status_json(&self) -> String;
}

/// A running scrape endpoint. Dropping it stops the acceptor thread
/// (best-effort nudge + join).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl core::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Per-connection IO timeout: generous for a loopback scrape, short
/// enough that a wedged peer cannot hold the single-threaded acceptor
/// for long.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9464"`; port 0 picks a free port —
    /// read it back with [`MetricsServer::local_addr`]) and start the
    /// acceptor thread serving `source`.
    pub fn spawn(addr: &str, source: Arc<dyn MetricsSource>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let acceptor = thread::Builder::new()
            .name("dgemm-metricsd".into())
            .spawn(move || accept_loop(&listener, &stop2, source.as_ref()))
            .map_err(std::io::Error::other)?;
        Ok(MetricsServer {
            addr: local,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The address actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Nudge the blocking accept() with a throwaway connection so the
        // acceptor observes the stop flag promptly.
        if let Ok(s) = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT) {
            drop(s);
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, source: &dyn MetricsSource) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = conn else { continue };
        // One bad connection must not kill the endpoint.
        let _ = serve_one(stream, source);
    }
}

/// Read one request head, answer, close. Bodies are ignored — both
/// routes are GET-shaped reads; any method works (scrapers send GET,
/// health checkers sometimes send HEAD — answering the body anyway is
/// harmless).
fn serve_one(mut stream: TcpStream, source: &dyn MetricsSource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    // Read until the end of the request head (or the buffer fills — a
    // head that big is not a scraper; the path is in the first line).
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf[..len].contains(&b'\n') && len >= 4 {
            // Tolerate bare-LF clients once the request line is in.
            if buf[..len].windows(2).any(|w| w == b"\n\n") {
                break;
            }
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            source.metrics_text(),
        ),
        "/status" => ("200 OK", "application/json", source.status_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "404: try /metrics or /status\n".to_string(),
        ),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Resolve `DGEMM_METRICS_ADDR`: `Ok(None)` when unset or empty,
/// `Err` when set but unresolvable (typed at startup, not at scrape
/// time).
pub(crate) fn addr_from_env() -> std::io::Result<Option<String>> {
    match std::env::var("DGEMM_METRICS_ADDR") {
        Ok(v) if !v.trim().is_empty() => {
            let addr = v.trim().to_string();
            // Fail fast on garbage; actual binding happens in spawn().
            addr.to_socket_addrs()?;
            Ok(Some(addr))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;

    impl MetricsSource for Fixed {
        fn metrics_text(&self) -> String {
            "# TYPE dgemm_up gauge\ndgemm_up 1\n".to_string()
        }

        fn status_json(&self) -> String {
            "{\"schema\":\"dgemm-telem-v1\"}".to_string()
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").unwrap_or((out.as_str(), ""));
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_status_and_404() {
        let srv = MetricsServer::spawn("127.0.0.1:0", Arc::new(Fixed)).unwrap();
        let addr = srv.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert_eq!(body, "# TYPE dgemm_up gauge\ndgemm_up 1\n");

        let (head, body) = get(addr, "/status");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert_eq!(body, "{\"schema\":\"dgemm-telem-v1\"}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        // Query strings are tolerated.
        let (head, _) = get(addr, "/metrics?x=1");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");

        drop(srv); // joins the acceptor
    }

    #[test]
    fn addr_env_parses_or_errors() {
        // Uses the dispatch env lock to serialize env mutation with
        // other tests in this binary.
        let _guard = crate::dispatch::env_lock();
        std::env::remove_var("DGEMM_METRICS_ADDR");
        assert!(addr_from_env().unwrap().is_none());
        std::env::set_var("DGEMM_METRICS_ADDR", "127.0.0.1:0");
        assert_eq!(addr_from_env().unwrap().as_deref(), Some("127.0.0.1:0"));
        std::env::set_var("DGEMM_METRICS_ADDR", "not an address");
        assert!(addr_from_env().is_err());
        std::env::remove_var("DGEMM_METRICS_ADDR");
    }
}
