//! Naive netlib-style reference DGEMM — the correctness oracle.
//!
//! Deliberately straightforward (jik triple loop, no blocking, no
//! packing): slow, obviously correct, and exactly what the original
//! netlib BLAS does, which the paper cites as the non-hierarchy-aware
//! baseline in Section II-B.

#![forbid(unsafe_code)]

use crate::matrix::{MatrixView, MatrixViewMut};
use crate::scalar::Scalar;
use crate::Transpose;

/// `C := α·op(A)·op(B) + β·C`, naive triple loop (any precision).
///
/// Panics on dimension mismatch (use [`crate::blas::dgemm`] for checked
/// errors); this function is the oracle, not the API.
pub fn naive_gemm<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    beta: T,
    c: &mut MatrixViewMut<'_, T>,
) {
    let (m, ka) = transa.apply_dims(a.rows(), a.cols());
    let (kb, n) = transb.apply_dims(b.rows(), b.cols());
    assert_eq!(ka, kb, "inner dimensions differ");
    assert_eq!((c.rows(), c.cols()), (m, n), "output shape differs");
    let k = ka;

    let get_a = |i: usize, p: usize| match transa {
        Transpose::No => a.get(i, p),
        Transpose::Yes => a.get(p, i),
    };
    let get_b = |p: usize, j: usize| match transb {
        Transpose::No => b.get(p, j),
        Transpose::Yes => b.get(j, p),
    };

    for j in 0..n {
        for i in 0..m {
            let mut dot = T::ZERO;
            for p in 0..k {
                dot += get_a(i, p) * get_b(p, j);
            }
            let old = c.get(i, j);
            c.set(i, j, alpha * dot + beta * old);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn two_by_two_by_hand() {
        let a = Matrix::from_fn(2, 2, |i, j| (1 + i * 2 + j) as f64); // [[1,2],[3,4]]
        let b = Matrix::from_fn(2, 2, |i, j| (5 + i * 2 + j) as f64); // [[5,6],[7,8]]
        let mut c = Matrix::zeros(2, 2);
        naive_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
        );
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(5, 5, 9);
        let id = Matrix::identity(5);
        let mut c = Matrix::zeros(5, 5);
        naive_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &id.view(),
            0.0,
            &mut c.view_mut(),
        );
        assert!(a.max_abs_diff(&c) < 1e-15);
    }

    #[test]
    fn transpose_flags() {
        let a = Matrix::random(3, 4, 1);
        let b = Matrix::random(5, 4, 2);
        // C = A * B^T : 3x5
        let mut c1 = Matrix::zeros(3, 5);
        naive_gemm(
            Transpose::No,
            Transpose::Yes,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c1.view_mut(),
        );
        let bt = b.transposed();
        let mut c2 = Matrix::zeros(3, 5);
        naive_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &bt.view(),
            0.0,
            &mut c2.view_mut(),
        );
        assert!(c1.max_abs_diff(&c2) < 1e-15);
    }

    #[test]
    fn alpha_beta_combine() {
        let a = Matrix::random(4, 3, 3);
        let b = Matrix::random(3, 4, 4);
        let c0 = Matrix::random(4, 4, 5);
        let mut c = c0.clone();
        naive_gemm(
            Transpose::No,
            Transpose::No,
            2.0,
            &a.view(),
            &b.view(),
            -1.0,
            &mut c.view_mut(),
        );
        // check one element by hand
        let dot: f64 = (0..3).map(|p| a.get(1, p) * b.get(p, 2)).sum();
        assert!((c.get(1, 2) - (2.0 * dot - c0.get(1, 2))).abs() < 1e-12);
    }

    #[test]
    fn k_zero_scales_only() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        naive_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.5,
            &mut c.view_mut(),
        );
        assert_eq!(c.get(2, 1), 1.5);
    }
}
