//! Blocked Cholesky factorization (`dpotrf`-style): `A = L·Lᵀ` for a
//! symmetric positive-definite matrix — the second classic LINPACK-class
//! consumer of the paper's Level-3 stack. The trailing update runs
//! through [`crate::level3::dsyrk`], the panel
//! scaling through [`crate::level3::dtrsm`]: every flop beyond the tiny
//! diagonal factorizations goes through the GEBP engine.

#![forbid(unsafe_code)]

use crate::gemm::GemmConfig;
use crate::level3::{dsyrk, dtrsm, Diag, UpLo};
use crate::matrix::Matrix;
use crate::{GemmError, Transpose};

/// Failure: the matrix is not positive definite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Column at which the pivot turned non-positive.
    pub column: usize,
}

impl core::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "matrix not positive definite at column {}", self.column)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Any failure of the blocked factorization: numerical (matrix not
/// positive definite) or a GEMM runtime fault from the trailing update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CholeskyError {
    /// A diagonal pivot turned non-positive.
    NotPositiveDefinite(NotPositiveDefinite),
    /// The panel solve or trailing update reported a runtime fault.
    Gemm(GemmError),
}

impl core::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite(e) => e.fmt(f),
            CholeskyError::Gemm(e) => write!(f, "Cholesky update failed: {e}"),
        }
    }
}

impl std::error::Error for CholeskyError {}

impl From<NotPositiveDefinite> for CholeskyError {
    fn from(e: NotPositiveDefinite) -> Self {
        CholeskyError::NotPositiveDefinite(e)
    }
}

impl From<GemmError> for CholeskyError {
    fn from(e: GemmError) -> Self {
        CholeskyError::Gemm(e)
    }
}

impl CholeskyError {
    /// The column of a numerical failure, if that is what this is.
    #[must_use]
    pub fn indefinite_column(&self) -> Option<usize> {
        match self {
            CholeskyError::NotPositiveDefinite(e) => Some(e.column),
            CholeskyError::Gemm(_) => None,
        }
    }
}

const NB: usize = 48;

/// Factor a symmetric positive-definite matrix (lower triangle read):
/// returns `L` (lower triangular) with `A = L·Lᵀ`.
pub fn cholesky(a: &Matrix, cfg: &GemmConfig) -> Result<Matrix, CholeskyError> {
    assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
    let n = a.rows();
    // work on a full copy; the strict upper triangle is zeroed at the end
    let mut l = a.clone();

    let mut j0 = 0usize;
    while j0 < n {
        let w = NB.min(n - j0);
        // 1) unblocked Cholesky of the diagonal block
        for k in j0..j0 + w {
            let mut d = l.get(k, k);
            for c in j0..k {
                d -= l.get(k, c) * l.get(k, c);
            }
            if d <= 0.0 {
                return Err(NotPositiveDefinite { column: k }.into());
            }
            let d = d.sqrt();
            l.set(k, k, d);
            for r in k + 1..j0 + w {
                let mut v = l.get(r, k);
                for c in j0..k {
                    v -= l.get(r, c) * l.get(k, c);
                }
                l.set(r, k, v / d);
            }
        }

        let rest = n - (j0 + w);
        if rest > 0 {
            // 2) panel below the diagonal: L21 = A21 * L11^{-T}
            //    i.e. solve X * L11^T = A21  <=>  L11 * X^T = A21^T.
            //    Using the left-solver: transpose in, transpose out.
            let a21t = Matrix::from_fn(w, rest, |i, j| l.get(j0 + w + j, j0 + i));
            let mut xt = a21t;
            dtrsm(
                UpLo::Lower,
                Transpose::No,
                Diag::NonUnit,
                1.0,
                &Matrix::from_fn(w, w, |i, j| l.get(j0 + i, j0 + j)).view(),
                &mut xt.view_mut(),
                cfg,
            )?;
            for j in 0..rest {
                for i in 0..w {
                    l.set(j0 + w + j, j0 + i, xt.get(i, j));
                }
            }

            // 3) trailing update: A22 -= L21 * L21^T (lower triangle)
            let l21 = Matrix::from_fn(rest, w, |i, j| l.get(j0 + w + i, j0 + j));
            let mut a22 = Matrix::from_fn(rest, rest, |i, j| l.get(j0 + w + i, j0 + w + j));
            dsyrk(
                UpLo::Lower,
                Transpose::No,
                -1.0,
                &l21.view(),
                1.0,
                &mut a22.view_mut(),
                cfg,
            )?;
            for j in 0..rest {
                for i in j..rest {
                    l.set(j0 + w + i, j0 + w + j, a22.get(i, j));
                }
            }
        }
        j0 += w;
    }
    // zero the strict upper triangle
    for j in 1..n {
        for i in 0..j {
            l.set(i, j, 0.0);
        }
    }
    Ok(l)
}

/// Solve `A·X = B` given the Cholesky factor `L` (`A = L·Lᵀ`).
pub fn cholesky_solve(l: &Matrix, b: &Matrix, cfg: &GemmConfig) -> Result<Matrix, GemmError> {
    let mut x = b.clone();
    dtrsm(
        UpLo::Lower,
        Transpose::No,
        Diag::NonUnit,
        1.0,
        &l.view(),
        &mut x.view_mut(),
        cfg,
    )?;
    dtrsm(
        UpLo::Lower,
        Transpose::Yes,
        Diag::NonUnit,
        1.0,
        &l.view(),
        &mut x.view_mut(),
        cfg,
    )?;
    Ok(x)
}

/// Flops of a Cholesky factorization (`n³/3`).
#[must_use]
pub fn cholesky_flops(n: usize) -> f64 {
    (n as f64).powi(3) / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_gemm;

    /// A random SPD matrix: G·Gᵀ + n·I.
    fn spd(n: usize, seed: u64) -> Matrix {
        let g = Matrix::random(n, n, seed);
        let mut ggt = Matrix::zeros(n, n);
        naive_gemm(
            Transpose::No,
            Transpose::Yes,
            1.0,
            &g.view(),
            &g.view(),
            0.0,
            &mut ggt.view_mut(),
        );
        Matrix::from_fn(n, n, |i, j| {
            ggt.get(i, j) + if i == j { n as f64 } else { 0.0 }
        })
    }

    fn check_factor(n: usize, seed: u64) {
        let a = spd(n, seed);
        let l = cholesky(&a, &GemmConfig::default()).unwrap();
        // strict upper triangle is zero
        for j in 1..n {
            for i in 0..j {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
        // L * L^T == A
        let mut llt = Matrix::zeros(n, n);
        naive_gemm(
            Transpose::No,
            Transpose::Yes,
            1.0,
            &l.view(),
            &l.view(),
            0.0,
            &mut llt.view_mut(),
        );
        let err = llt.max_abs_diff(&a);
        let scale = a.frobenius_norm();
        assert!(err < 1e-10 * scale.max(1.0), "n={n}: err {err}");
    }

    #[test]
    fn factor_small() {
        check_factor(5, 1);
        check_factor(17, 2);
    }

    #[test]
    fn factor_crosses_panels() {
        check_factor(49, 3);
        check_factor(96, 4);
        check_factor(131, 5);
    }

    #[test]
    fn not_spd_detected() {
        let mut a = spd(6, 6);
        a.set(3, 3, -5.0); // break positive definiteness
        let err = cholesky(&a, &GemmConfig::default()).unwrap_err();
        assert!(err.indefinite_column().expect("numerical failure") <= 3);
    }

    #[test]
    fn solve_recovers() {
        let n = 80;
        let a = spd(n, 7);
        let x_true = Matrix::random(n, 3, 8);
        let mut b = Matrix::zeros(n, 3);
        naive_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &x_true.view(),
            0.0,
            &mut b.view_mut(),
        );
        let l = cholesky(&a, &GemmConfig::default()).unwrap();
        let x = cholesky_solve(&l, &b, &GemmConfig::default()).unwrap();
        assert!(
            x.max_abs_diff(&x_true) < 1e-8,
            "{}",
            x.max_abs_diff(&x_true)
        );
    }

    #[test]
    fn flops_convention() {
        assert!((cholesky_flops(300) - 9.0e6).abs() < 1.0);
    }
}
