//! Persistent worker-pool runtime for layer 3 (Section IV-C, Figure 9).
//!
//! The original parallel path spawned a fresh set of OS threads for
//! *every* `(jj, kk)` macro-iteration — one `thread::scope` per GEPP —
//! and every band allocated its own packed-A buffer. For the large
//! problems of the paper's evaluation that overhead vanishes, but for
//! the small/batched GEMMs layered workloads issue (LU panels, im2col
//! convolutions, batched inference) the spawn + allocate cost dominates.
//! This module replaces that with a process-wide pool of persistent
//! workers and per-caller-thread buffer arenas:
//!
//! - **[`WorkerPool`]**: lazily started, detached worker threads parked
//!   on an MPMC channel. A GEMM call enqueues one *job* per grid cell
//!   (or per static band) and workers race to pull them — dynamic
//!   scheduling that load-balances ragged tails, falling back to the
//!   static contiguous-band assignment of [`crate::parallel::partition_rows`]
//!   when the blocks divide evenly. Steady state spawns **zero** threads.
//! - **2-D task grid** (DESIGN.md §13): each `(jj, kk)` epoch splits
//!   into cells `(mc-row-block) × (nr-aligned column chunk)`. The
//!   column split (`n_split`, chosen by [`crate::dispatch`]) gives
//!   skinny-m/fat-n shapes enough cells to occupy every worker: cells
//!   share the one packed (or [`PrepackedB`]-cached) panel and each
//!   computes its own whole-sliver range of it
//!   ([`crate::gebp::gebp_slivers`]). `n_split == 1` is exactly the
//!   historical M-band schedule.
//! - **[`GemmArena`]**: a thread-local free list of [`BlockSlot`]s
//!   (packed-A buffer + C staging buffer) and packed-B panels, recycled
//!   across `mc`-blocks, macro-iterations, GEMM calls and batch entries.
//!   Steady state performs **zero** packing-buffer allocations.
//!
//! ## Ownership-transfer epochs
//!
//! Persistent workers outlive any one GEMM call, so (in safe Rust) the
//! closures they execute cannot borrow the caller's matrices. The
//! runtime therefore splits each `(jj, kk)` macro-iteration into an
//! *epoch* built only from owned data:
//!
//! 1. the **caller** packs the shared B panel into a pool-recycled
//!    buffer and wraps it in an [`Arc`];
//! 2. per `mc`-block, the caller packs A into a recycled [`BlockSlot`]
//!    (which also stages that block's rows of the C panel) and sends the
//!    slot — owned — through the job channel;
//! 3. **workers** run GEBP on the slot's owned buffers against the
//!    shared panel and send the slot back on a per-call done channel;
//! 4. the caller *helps drain the queue* while waiting at the epoch
//!    barrier, then reclaims the panel via [`Arc::try_unwrap`].
//!
//! Packing is thus pipelined against worker compute (the caller
//! dispatches each block as soon as it is packed), in place of the
//! paper's pack-everything-then-barrier. C blocks are staged in once
//! per `jj` panel, accumulate across all `kk` epochs and are written
//! back once, which keeps the floating-point accumulation order — and
//! therefore every output bit — identical to the serial path.
//!
//! ## Fault tolerance (DESIGN.md §10)
//!
//! The paper assumes every thread finishes its band; this runtime does
//! not. Failures are contained at the block level and the epoch always
//! completes:
//!
//! - **Worker panics**: each block run executes under `catch_unwind`;
//!   the slot comes back flagged, the caller re-stages the block's rows
//!   from C (untouched until the panel's `stage_out`) and recomputes all
//!   epochs so far serially — bit-identical, because every per-element
//!   accumulation is replayed in the same order with the same kernel
//!   calls. Only a panicking *retry* surfaces as
//!   [`GemmError::WorkerFault`].
//! - **Dead workers**: every worker holds a guard that records its death;
//!   [`WorkerPool::ensure_workers`] (called at every epoch start)
//!   respawns up to the wanted count. [`WorkerPool::status`] exposes the
//!   live count, deaths, respawns and faults contained.
//! - **Stalled epochs**: with an `epoch_timeout` configured, the caller
//!   stops waiting at the deadline, recomputes the missing blocks
//!   serially from C (same bit-identical replay), finishes the call
//!   inline and reports [`GemmError::EpochTimeout`]. Late completions
//!   from an abandoned epoch carry a stale sequence number and are
//!   recycled, never mixed into a newer epoch.
//! - **Allocation failures**: staging and packing buffers grow with
//!   `try_reserve`; on failure the runtime degrades — smaller packing
//!   chunks (bit-identical: each (A-sliver, B-sliver) pair still gets
//!   exactly one kernel call per epoch), or a serial walk straight on C
//!   — and only reports [`GemmError::AllocFailure`] when even the
//!   minimal chunk cannot be allocated.

#![forbid(unsafe_code)]

use crate::gebp::gebp_slivers;
use crate::matrix::{MatrixView, MatrixViewMut};
use crate::microkernel::KernelSet;
use crate::pack::{PackedA, PackedB};
use crate::prepack::{PackCache, PrepackedB};
use crate::scalar::Scalar;
use crate::telemetry::{self, Phase, RT};
use crate::tile::TileMut;
use crate::{GemmError, Transpose};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use perfmodel::cacheblock::BlockSizes;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// How a GEMM call executes layer 3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Single-threaded on the calling thread, no staging copies.
    #[default]
    Serial,
    /// Legacy spawn-per-GEPP path: a `thread::scope` of `n` threads per
    /// macro-iteration (kept as the baseline the pool is measured
    /// against; see `crates/bench/benches/pool_overhead.rs`).
    Scoped(usize),
    /// The persistent worker pool with `n`-way parallelism (the calling
    /// thread participates, so `Pool(n)` keeps at most `n − 1` workers
    /// busy plus itself).
    Pool(usize),
}

impl Parallelism {
    /// Idiomatic mapping from a BLAS-style thread count: `n <= 1` is
    /// [`Parallelism::Serial`], anything larger uses the pool.
    #[must_use]
    pub fn from_threads(n: usize) -> Self {
        if n <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Pool(n)
        }
    }

    /// The parallel degree: how many threads participate in layer 3.
    #[must_use]
    pub fn degree(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Scoped(n) | Parallelism::Pool(n) => n.max(1),
        }
    }

    /// Reject degenerate configurations (`Scoped(0)` / `Pool(0)`), the
    /// checked entry points' counterpart of the old `threads == 0` test.
    pub fn validate(self) -> Result<(), GemmError> {
        match self {
            Parallelism::Scoped(0) | Parallelism::Pool(0) => {
                Err(GemmError::BadConfig("thread count must be positive"))
            }
            _ => Ok(()),
        }
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Lifecycle counters shared between a [`WorkerPool`] and its worker
/// threads (the workers outlive the pool value only during the brief
/// drain after a shard is retired, so the counters live behind an
/// `Arc`). Per-instance, so shards report their own health instead of
/// aliasing every failure domain onto one set of process totals.
struct PoolShared {
    /// Live worker threads (decremented by a worker's drop guard).
    alive: AtomicUsize,
    /// Workers of *this* pool that exited their loop.
    deaths: AtomicU64,
    /// Replacement workers spawned for this pool's dead ones.
    respawns: AtomicU64,
    /// Worker spawn attempts for this pool that failed.
    spawn_failures: AtomicU64,
    /// Set when the owning pool is dropped: worker exits stop counting
    /// as deaths (a retired shard winding down is not a fault).
    retired: AtomicBool,
}

impl PoolShared {
    fn new() -> Arc<PoolShared> {
        Arc::new(PoolShared {
            alive: AtomicUsize::new(0),
            deaths: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            spawn_failures: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        })
    }
}

/// A pool of persistent layer-3 workers.
///
/// Workers are detached threads parked on the job channel; they are
/// spawned lazily by [`WorkerPool::ensure_workers`], which also
/// respawns replacements for any that died. Jobs are pure compute over
/// owned buffers, executed under `catch_unwind`, which keeps the
/// caller's help-while-waiting drain loop deadlock-free and a panicking
/// job from taking a worker (or the process) down with it.
///
/// Pools are **multi-instance**: [`WorkerPool::global`] is the default
/// process-wide pool every `gemm()` call uses, and
/// [`WorkerPool::new_shard`] creates an independent pool with its own
/// workers, job channel and health counters — an isolated failure
/// domain (a panic-storm or stall in one shard never delays another).
/// [`with_pool`] routes the pooled runtime of everything in a closure
/// to a specific shard; the service layer (`crate::service`) uses this
/// to give tenants separate shards.
pub struct WorkerPool {
    injector: Sender<Task>,
    stealer: Receiver<Task>,
    shared: Arc<PoolShared>,
    /// Monotonic id source for worker thread names.
    spawn_seq: AtomicUsize,
    grow: Mutex<()>,
    /// Shard label baked into worker thread names (empty = global pool).
    label: String,
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Runs for shards only (the global pool lives in a static).
        // Marking the pool retired first means the worker exits that
        // follow — their `iter()` ends when `injector` drops right
        // after this — are a clean wind-down, not deaths.
        self.shared.retired.store(true, Ordering::Release);
    }
}

/// A snapshot of the pool's scheduling counters (see [`stats`]).
#[deprecated(
    since = "0.4.0",
    note = "use `telemetry::snapshot().runtime` — one counter system"
)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently alive.
    pub workers: usize,
    /// Jobs enqueued over the pool's lifetime.
    pub tasks: u64,
    /// Epochs scheduled dynamically (workers race per `mc`-block).
    pub dynamic_epochs: u64,
    /// Epochs that fell back to static contiguous-band assignment.
    pub static_epochs: u64,
}

/// Health snapshot of the pool runtime (see [`WorkerPool::status`]):
/// the observability half of the fault-tolerance layer.
///
/// Not `Eq`: [`PoolStatus::last_dispatch`] carries the dispatcher's
/// predicted timings as `f64`s.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PoolStatus {
    /// Worker threads currently alive.
    pub workers_alive: usize,
    /// Worker threads started over the pool's lifetime.
    pub workers_started: u64,
    /// Workers that exited their loop (panic containment keeps panicking
    /// workers alive, so deaths normally stay zero).
    pub deaths: u64,
    /// Replacement workers spawned for dead ones.
    pub respawns: u64,
    /// Worker spawn attempts that failed (the pool runs smaller; the
    /// caller's drain loop still guarantees progress).
    pub spawn_failures: u64,
    /// Layer-3 epochs served by the pool.
    pub epochs_served: u64,
    /// Blocks whose worker panicked or went missing and were recomputed
    /// serially by the caller.
    pub faults_contained: u64,
    /// Epochs abandoned at the watchdog deadline.
    pub timeouts: u64,
    /// The most recent shape-adaptive dispatch decision (shape, chosen
    /// runtime, predicted vs measured time) — `None` until a call runs
    /// with a non-`Fixed` [`crate::dispatch::DispatchMode`].
    pub last_dispatch: Option<crate::dispatch::DispatchDecision>,
}

/// Counter snapshot of the global pool — observability for tests and
/// the steady-state acceptance criteria (worker count must stabilize
/// after warm-up).
///
/// Deprecated shim over the telemetry counters: the scheduling counters
/// now live in [`crate::telemetry`] (one counter system, not two); this
/// reads the same atomics [`telemetry::snapshot`] reports.
#[deprecated(
    since = "0.4.0",
    note = "use `telemetry::snapshot().runtime` — one counter system"
)]
#[allow(deprecated)] // the shim itself must still name PoolStats
#[must_use]
pub fn stats() -> PoolStats {
    let rt = crate::telemetry::snapshot().runtime;
    PoolStats {
        workers: WorkerPool::global().workers(),
        tasks: rt.tasks,
        dynamic_epochs: rt.dynamic_epochs,
        static_epochs: rt.static_epochs,
    }
}

/// Health snapshot of the global pool ([`WorkerPool::status`]).
#[must_use]
pub fn status() -> PoolStatus {
    WorkerPool::global().status()
}

/// Worker-loop drop guard: records the death no matter how the loop
/// ends, so [`WorkerPool::ensure_workers`] knows to respawn. Exits of a
/// retired shard's workers are a clean wind-down, not deaths.
struct WorkerGuard(Arc<PoolShared>);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.0.alive.fetch_sub(1, Ordering::AcqRel);
        if !self.0.retired.load(Ordering::Acquire) {
            self.0.deaths.fetch_add(1, Ordering::Relaxed);
            RT.deaths.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn worker_main(stealer: Receiver<Task>, shared: Arc<PoolShared>) {
    let _guard = WorkerGuard(shared);
    for task in stealer.iter() {
        // Containment: a panicking job must not kill the worker (nor
        // reach the detached thread boundary and abort the process).
        let _ = catch_unwind(AssertUnwindSafe(task));
        if crate::faults::take_worker_kill() {
            break; // injected death: exercised by the respawn tests
        }
    }
}

thread_local! {
    /// Shard override installed by [`with_pool`]: when set, the pooled
    /// runtime on this thread submits to the shard instead of the
    /// global pool.
    static CURRENT_POOL: RefCell<Option<Arc<WorkerPool>>> = const { RefCell::new(None) };
}

/// Run `f` with every pooled GEMM on this thread routed to `pool`
/// instead of the global pool. Nests (the previous override is
/// restored on exit) and is panic-safe via a restore guard.
pub fn with_pool<R>(pool: &Arc<WorkerPool>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<WorkerPool>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_POOL.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT_POOL.with(|c| c.borrow_mut().replace(Arc::clone(pool)));
    let _restore = Restore(prev);
    f()
}

/// The shard override installed by [`with_pool`] on this thread, if any.
fn current_pool_override() -> Option<Arc<WorkerPool>> {
    CURRENT_POOL.with(|c| c.borrow().clone())
}

impl WorkerPool {
    /// The lazily-initialized process-wide pool.
    #[must_use]
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let (injector, stealer) = channel::unbounded();
            WorkerPool {
                injector,
                stealer,
                shared: PoolShared::new(),
                spawn_seq: AtomicUsize::new(0),
                grow: Mutex::new(()),
                label: String::new(),
            }
        })
    }

    /// Create an independent pool shard: its own workers, job channel
    /// and health counters — an isolated failure domain. Workers are
    /// named `dgemm-pool-<label>-<id>` (the `dgemm-pool-` prefix keeps
    /// the fault-injection sites and telemetry attribution working).
    ///
    /// Dropping the last `Arc` retires the shard: the job channel
    /// disconnects and its workers exit cleanly (not counted as
    /// deaths).
    #[must_use]
    pub fn new_shard(label: &str) -> Arc<WorkerPool> {
        let (injector, stealer) = channel::unbounded();
        Arc::new(WorkerPool {
            injector,
            stealer,
            shared: PoolShared::new(),
            spawn_seq: AtomicUsize::new(0),
            grow: Mutex::new(()),
            label: label.to_owned(),
        })
    }

    /// Worker threads currently alive.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shared.alive.load(Ordering::Acquire)
    }

    /// Health snapshot: live workers now plus lifetime totals. The
    /// worker lifecycle counters (started/deaths/respawns/spawn
    /// failures) are **per pool instance** — a shard reports its own
    /// failure domain. The epoch counters (epochs served, faults
    /// contained, timeouts) are process-wide totals from the telemetry
    /// runtime counters, which [`crate::telemetry::reset`] never
    /// zeroes.
    #[must_use]
    pub fn status(&self) -> PoolStatus {
        let rt = crate::telemetry::snapshot().runtime;
        let alive = self.workers();
        let deaths = self.shared.deaths.load(Ordering::Relaxed);
        PoolStatus {
            workers_alive: alive,
            workers_started: alive as u64 + deaths,
            deaths,
            respawns: self.shared.respawns.load(Ordering::Relaxed),
            spawn_failures: self.shared.spawn_failures.load(Ordering::Relaxed),
            epochs_served: rt.epochs_served(),
            faults_contained: rt.faults_contained,
            timeouts: rt.timeouts,
            last_dispatch: crate::dispatch::last_decision(),
        }
    }

    /// Upper bound on pool size: callers participate too, so there is
    /// no point holding more workers than a small multiple of the
    /// hardware concurrency even if callers over-subscribe. Also the
    /// clamp applied to absurd `DGEMM_NUM_THREADS` values.
    #[must_use]
    pub fn max_workers() -> usize {
        static CAP: OnceLock<usize> = OnceLock::new();
        *CAP.get_or_init(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .saturating_mul(4)
        })
    }

    /// Grow the pool back to at least `want` live workers (clamped to
    /// [`WorkerPool::max_workers`]), respawning replacements for any
    /// that died. Idempotent and cheap once satisfied: the fast path is
    /// one atomic load — called at every epoch start as the health
    /// check. Spawn failures are counted, not fatal: the pool simply
    /// runs smaller and the caller's drain loop guarantees progress.
    pub fn ensure_workers(&self, want: usize) {
        // Fast path first — one atomic load, no clamp: this runs at
        // every epoch start as the dead-worker health check.
        if self.workers() >= want {
            return;
        }
        let want = want.min(Self::max_workers());
        if self.workers() >= want {
            return;
        }
        let _guard = self.grow.lock().unwrap_or_else(PoisonError::into_inner);
        let have = self.workers();
        for _ in have..want {
            if crate::faults::fail_spawn() {
                self.shared.spawn_failures.fetch_add(1, Ordering::Relaxed);
                RT.spawn_failures.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let id = self.spawn_seq.fetch_add(1, Ordering::Relaxed);
            let name = if self.label.is_empty() {
                format!("dgemm-pool-{id}")
            } else {
                format!("dgemm-pool-{}-{id}", self.label)
            };
            let stealer = self.stealer.clone();
            let shared = Arc::clone(&self.shared);
            match std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_main(stealer, shared))
            {
                Ok(_) => {
                    self.shared.alive.fetch_add(1, Ordering::AcqRel);
                    let deaths = self.shared.deaths.load(Ordering::Relaxed);
                    if deaths > self.shared.respawns.load(Ordering::Relaxed) {
                        self.shared.respawns.fetch_add(1, Ordering::Relaxed);
                        RT.respawns.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    self.shared.spawn_failures.fetch_add(1, Ordering::Relaxed);
                    RT.spawn_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn submit(&self, task: Task) {
        RT.tasks.fetch_add(1, Ordering::Relaxed);
        // The pool keeps a receiver alive forever, so send cannot fail;
        // if it somehow does, degrade to running the job inline rather
        // than losing it (its done message keeps the barrier sound).
        if let Err(channel::SendError(task)) = self.injector.send(task) {
            let _ = catch_unwind(AssertUnwindSafe(task));
        }
    }

    /// Pop one queued job and run it on the current thread. Used by
    /// callers waiting at an epoch barrier so the queue drains even when
    /// every worker is busy (including when the pool has zero workers).
    /// Panics are contained exactly as on a worker.
    pub fn try_run_one(&self) -> bool {
        match self.stealer.try_recv() {
            Ok(task) => {
                telemetry::count_steal();
                let _ = catch_unwind(AssertUnwindSafe(task));
                true
            }
            Err(_) => false,
        }
    }
}

/// One grid cell's worth of owned working memory: the packed-A buffer
/// plus the staged sub-block of the current C panel. Slots are recycled
/// through [`GemmArena`] and travel caller → worker → caller by value.
#[derive(Debug)]
pub struct BlockSlot<T: Scalar> {
    pa: PackedA<T>,
    /// Staged `mc_eff × ncols` C cell, column-major with `ld = mc_eff`.
    staging: Vec<T>,
    /// Which batch entry this cell belongs to.
    entry: usize,
    /// First row of `op(A)` / C covered by this cell.
    row0: usize,
    /// Rows covered (`<= mc`).
    mc_eff: usize,
    /// First column of the cell *within its `jj` panel* (sliver-aligned:
    /// a multiple of `nr`, so the cell addresses the shared panel as a
    /// whole-sliver range). 0 in 1-D (M-band) mode.
    col0: usize,
    /// Columns covered (`<= nc_eff`; all of them in 1-D mode).
    ncols: usize,
}

impl<T: Scalar> BlockSlot<T> {
    /// The slot's packed-A buffer — the serial path borrows it as its
    /// hoisted per-call block buffer.
    pub(crate) fn pa_mut(&mut self) -> &mut PackedA<T> {
        &mut self.pa
    }
}

/// Thread-local free lists of packing buffers, so steady-state GEMM
/// calls allocate nothing: block slots and B panels are taken at the
/// start of a panel/epoch and returned when it completes. The serial
/// path draws its (single) hoisted packed-A/packed-B pair from the same
/// arena.
#[derive(Debug, Default)]
pub struct GemmArena<T: Scalar> {
    slots: Vec<BlockSlot<T>>,
    panels: Vec<PackedB<T>>,
    fresh: u64,
}

impl<T: Scalar> GemmArena<T> {
    fn new() -> Self {
        GemmArena {
            slots: Vec::new(),
            panels: Vec::new(),
            fresh: 0,
        }
    }

    /// Buffers constructed from scratch (cold path). Stable across calls
    /// once the arena has warmed up on a shape — the steady-state
    /// zero-allocation criterion the tests assert.
    #[must_use]
    pub fn fresh_buffers(&self) -> u64 {
        self.fresh
    }

    pub(crate) fn take_slot(&mut self, mr: usize) -> BlockSlot<T> {
        match self.slots.pop() {
            Some(mut slot) => {
                telemetry::count_arena_hit();
                slot.pa.retarget(mr);
                slot
            }
            None => {
                self.fresh += 1;
                telemetry::count_arena_fresh();
                BlockSlot {
                    pa: PackedA::new(mr),
                    staging: Vec::new(),
                    entry: 0,
                    row0: 0,
                    mc_eff: 0,
                    col0: 0,
                    ncols: 0,
                }
            }
        }
    }

    pub(crate) fn put_slot(&mut self, slot: BlockSlot<T>) {
        self.slots.push(slot);
    }

    pub(crate) fn take_panel(&mut self, nr: usize) -> PackedB<T> {
        match self.panels.pop() {
            Some(mut panel) => {
                telemetry::count_arena_hit();
                panel.retarget(nr);
                panel
            }
            None => {
                self.fresh += 1;
                telemetry::count_arena_fresh();
                PackedB::new(nr)
            }
        }
    }

    pub(crate) fn put_panel(&mut self, panel: PackedB<T>) {
        self.panels.push(panel);
    }
}

thread_local! {
    static ARENA_F64: RefCell<GemmArena<f64>> = RefCell::new(GemmArena::new());
    static ARENA_F32: RefCell<GemmArena<f32>> = RefCell::new(GemmArena::new());
}

/// A [`Scalar`] with a thread-local [`GemmArena`] (thread-locals cannot
/// be generic, so each element type declares its own).
pub trait PoolScalar: Scalar {
    /// Run `f` with this thread's arena. Re-entrant calls (a GEMM issued
    /// from inside another GEMM's packing) fall back to a throwaway
    /// arena instead of aliasing the borrowed one.
    fn with_arena<R>(f: impl FnOnce(&mut GemmArena<Self>) -> R) -> R;

    /// The process-wide pre-packed-B cache for this element type
    /// (statics cannot be generic, so each type declares its own).
    /// [`crate::gemm::GemmConfig::with_pack_cache`] routes GEMMs
    /// through it.
    fn pack_cache() -> &'static PackCache<Self>;
}

macro_rules! impl_pool_scalar {
    ($t:ty, $tls:ident) => {
        impl PoolScalar for $t {
            fn with_arena<R>(f: impl FnOnce(&mut GemmArena<Self>) -> R) -> R {
                $tls.with(|cell| match cell.try_borrow_mut() {
                    Ok(mut arena) => f(&mut arena),
                    Err(_) => f(&mut GemmArena::new()),
                })
            }

            fn pack_cache() -> &'static PackCache<Self> {
                static CACHE: PackCache<$t> = PackCache::new();
                &CACHE
            }
        }
    };
}

impl_pool_scalar!(f64, ARENA_F64);
impl_pool_scalar!(f32, ARENA_F32);

/// The `(col0, ncols)` column chunks of one `jj` panel for an `n_split`-way
/// grid: whole-sliver chunks (every `col0` is a multiple of `nr`) of as
/// equal a sliver count as possible, the last one ragged. `n_split == 1`
/// yields the single full-width chunk of the historical M-band schedule;
/// a split wider than the panel's sliver count is clamped (fewer chunks
/// than asked is fine — the dispatcher treats the grid as best-effort).
pub(crate) fn grid_cols(nc_eff: usize, nr: usize, n_split: usize) -> Vec<(usize, usize)> {
    let nr = nr.max(1);
    let slivers = nc_eff.div_ceil(nr).max(1);
    let chunks = n_split.clamp(1, slivers);
    let per = slivers.div_ceil(chunks);
    let mut out = Vec::with_capacity(chunks);
    let mut s = 0usize;
    while s * nr < nc_eff {
        let col0 = s * nr;
        let ncols = (per * nr).min(nc_eff - col0);
        out.push((col0, ncols));
        s += per;
    }
    out
}

/// Identity of one grid cell within a `jj` panel, kept by the caller so
/// cells lost to a watchdog timeout can be identified and recomputed.
#[derive(Clone, Copy)]
struct CellId {
    entry: usize,
    row0: usize,
    col0: usize,
    mc_eff: usize,
    ncols: usize,
}

/// Epoch-barrier message: a slot coming back from a worker.
struct Done<T: Scalar> {
    slot: BlockSlot<T>,
    /// Epoch sequence number: dones from an epoch abandoned at the
    /// watchdog deadline arrive late and must not count toward (or leak
    /// slots into) a newer epoch's barrier.
    seq: u64,
    /// The block run panicked; its staging is unspecified and the
    /// caller must recover it from C.
    failed: bool,
}

/// Returns every slot of a job run to the caller even if the run loop
/// itself unwinds, so the barrier can never deadlock on a lost done
/// message. Finished slots are sent with their recorded panic flag;
/// anything still in `todo` is reported failed.
struct RunGuard<T: Scalar> {
    todo: Vec<BlockSlot<T>>,
    finished: Vec<(BlockSlot<T>, bool)>,
    tx: Sender<Done<T>>,
    seq: u64,
}

impl<T: Scalar> Drop for RunGuard<T> {
    fn drop(&mut self) {
        for (slot, failed) in self.finished.drain(..) {
            let _ = self.tx.send(Done {
                slot,
                seq: self.seq,
                failed,
            });
        }
        for slot in self.todo.drain(..) {
            let _ = self.tx.send(Done {
                slot,
                seq: self.seq,
                failed: true,
            });
        }
    }
}

/// GEBP one staged cell against the shared panel (the pool-job body).
/// The cell computes only its own whole-sliver column range of the
/// panel; in 1-D mode that range is the full panel.
fn run_block<T: Scalar, K: KernelSet<T>>(
    kernel: K,
    alpha: T,
    slot: &mut BlockSlot<T>,
    panel: &PackedB<T>,
) {
    crate::faults::slow_job_delay();
    crate::faults::panic_in_job();
    let mc_eff = slot.mc_eff;
    let ncols = slot.ncols;
    let s0 = slot.col0 / panel.nr().max(1);
    let mut tile = TileMut::from_slice(mc_eff, ncols, mc_eff.max(1), &mut slot.staging);
    gebp_slivers(kernel, alpha, &slot.pa, panel, s0, ncols, &mut tile);
}

/// Enqueue one job covering `slots` (one slot in dynamic mode, a whole
/// band in static mode). Each block runs under `catch_unwind`; dones —
/// flagged on panic — are posted only after the job's reference to the
/// shared panel is released, so the caller's `Arc::try_unwrap` at the
/// barrier reclaims the buffer for the arena instead of leaking it to
/// a plain drop (which would cost a fresh panel allocation per epoch).
#[allow(clippy::too_many_arguments)]
fn submit_run<T: PoolScalar, K: KernelSet<T>>(
    pool: &WorkerPool,
    kernel: K,
    alpha: T,
    slots: Vec<BlockSlot<T>>,
    panel: Arc<PackedB<T>>,
    tx: Sender<Done<T>>,
    seq: u64,
) {
    // Capture the caller's request trace context (if any) so worker-side
    // phase spans and fault events attribute to the request that
    // submitted the epoch, not to the worker thread.
    let trace_ctx = crate::trace::capture();
    pool.submit(Box::new(move || {
        let _trace = crate::trace::adopt(trace_ctx);
        let cap = slots.len();
        let mut guard = RunGuard {
            todo: slots,
            finished: Vec::with_capacity(cap),
            tx,
            seq,
        };
        telemetry::set_gepp(seq);
        while let Some(mut slot) = guard.todo.pop() {
            telemetry::set_cell(slot.row0, slot.col0);
            let ok = catch_unwind(AssertUnwindSafe(|| {
                run_block(kernel, alpha, &mut slot, &panel);
            }))
            .is_ok();
            guard.finished.push((slot, !ok));
        }
        // Release the shared panel before the guard signals done.
        drop(panel);
        drop(guard);
    }));
}

/// What [`drain_epoch`] observed besides the cleanly returned slots.
struct EpochOutcome<T: Scalar> {
    /// Slots whose block run panicked: staging unspecified, recover
    /// from C.
    failed: Vec<BlockSlot<T>>,
    /// Slots from an abandoned earlier epoch (stale sequence number):
    /// recycle, never use.
    stale: Vec<BlockSlot<T>>,
    /// The watchdog deadline expired before every done arrived.
    timed_out: bool,
}

/// Collect this epoch's done messages, running queued jobs on this
/// thread while waiting (so the epoch completes even with zero
/// workers). Clean slots are pushed into `slots`; panicked and stale
/// ones are separated into the outcome. With a deadline, gives up at
/// its expiry instead of waiting forever on a stalled worker.
fn drain_epoch<T: Scalar>(
    pool: &WorkerPool,
    done_rx: &Receiver<Done<T>>,
    seq: u64,
    outstanding: usize,
    timeout: Option<Duration>,
    slots: &mut Vec<BlockSlot<T>>,
) -> EpochOutcome<T> {
    fn accept<T: Scalar>(
        done: Done<T>,
        seq: u64,
        slots: &mut Vec<BlockSlot<T>>,
        out: &mut EpochOutcome<T>,
    ) -> bool {
        if done.seq != seq {
            out.stale.push(done.slot);
            return false;
        }
        if done.failed {
            out.failed.push(done.slot);
        } else {
            slots.push(done.slot);
        }
        true
    }

    let deadline = timeout.map(|t| Instant::now() + t);
    let mut out = EpochOutcome {
        failed: Vec::new(),
        stale: Vec::new(),
        timed_out: false,
    };
    let mut received = 0usize;
    while received < outstanding {
        match done_rx.try_recv() {
            Ok(done) => {
                if accept(done, seq, slots, &mut out) {
                    received += 1;
                }
                continue;
            }
            Err(TryRecvError::Empty) => {}
            // The caller holds the sender, so this cannot happen; treat
            // it as a stall rather than asserting.
            Err(TryRecvError::Disconnected) => break,
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                out.timed_out = true;
                break;
            }
        }
        if pool.try_run_one() {
            continue;
        }
        // Queue empty: the remaining jobs are running on other threads
        // and will post their dones; park until one arrives (or the
        // watchdog deadline passes). Only the park itself is barrier
        // time — jobs drained via try_run_one above record as compute.
        match deadline {
            None => {
                let parked = telemetry::span(Phase::Barrier);
                let received_done = done_rx.recv();
                drop(parked);
                match received_done {
                    Ok(done) => {
                        if accept(done, seq, slots, &mut out) {
                            received += 1;
                        }
                    }
                    Err(_) => break,
                }
            }
            Some(dl) => {
                let now = Instant::now();
                let Some(remaining) = dl.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    out.timed_out = true;
                    break;
                };
                let parked = telemetry::span(Phase::Barrier);
                let received_done = done_rx.recv_timeout(remaining);
                drop(parked);
                match received_done {
                    Ok(done) => {
                        if accept(done, seq, slots, &mut out) {
                            received += 1;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        out.timed_out = true;
                        break;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
    }
    out
}

/// Copy the cell's rows/columns of the C panel into the slot's staging
/// buffer (the slot's `row0/mc_eff/col0/ncols` must be set). Fallible:
/// staging grows with `try_reserve`.
fn stage_in<T: Scalar>(
    slot: &mut BlockSlot<T>,
    c: &mut MatrixViewMut<'_, T>,
    jj: usize,
) -> Result<(), GemmError> {
    let mc_eff = slot.mc_eff;
    let ncols = slot.ncols;
    slot.staging.clear();
    if crate::faults::fail_alloc() || slot.staging.try_reserve(mc_eff * ncols).is_err() {
        return Err(GemmError::AllocFailure { what: "C staging" });
    }
    let mut band = c.sub_mut(slot.row0, jj + slot.col0, mc_eff, ncols);
    for j in 0..ncols {
        slot.staging.extend_from_slice(band.col_mut(j));
    }
    Ok(())
}

fn stage_out<T: Scalar>(slot: &BlockSlot<T>, c: &mut MatrixViewMut<'_, T>, jj: usize) {
    let mc_eff = slot.mc_eff;
    let mut band = c.sub_mut(slot.row0, jj + slot.col0, mc_eff, slot.ncols);
    for j in 0..slot.ncols {
        band.col_mut(j)
            .copy_from_slice(&slot.staging[j * mc_eff..(j + 1) * mc_eff]);
    }
}

/// Pack one `mc_eff × kc_eff` block of `op(A)` fallibly and GEBP it
/// against the `(s0, cols)` whole-sliver column range of `panel`
/// (full width: `(0, panel.nc())`), degrading to halved row chunks
/// when the packing buffer cannot grow. Bit-identical to the one-shot
/// pack: every (A-sliver, B-sliver) pair still gets exactly one kernel
/// call with the same operand values, and each C element's
/// k-accumulation order is unchanged. `tile` is the `mc_eff × cols`
/// destination.
#[allow(clippy::too_many_arguments)]
fn gebp_block_resilient<T: Scalar, K: KernelSet<T>>(
    kernel: K,
    alpha: T,
    a: &MatrixView<'_, T>,
    transa: Transpose,
    row0: usize,
    kk: usize,
    mc_eff: usize,
    kc_eff: usize,
    pa: &mut PackedA<T>,
    panel: &PackedB<T>,
    s0: usize,
    cols: usize,
    tile: &mut TileMut<'_, T>,
) -> Result<(), GemmError> {
    crate::faults::panic_in_job();
    let mr = kernel.mr().max(1);
    let mut chunk = mc_eff;
    let mut r = 0usize;
    while r < mc_eff {
        let rows = chunk.min(mc_eff - r);
        match pa.try_pack(a, transa, row0 + r, kk, rows, kc_eff) {
            Ok(()) => {
                let mut sub = tile.sub_tile(r, 0, rows, cols);
                gebp_slivers(kernel, alpha, pa, panel, s0, cols, &mut sub);
                r += rows;
            }
            Err(e) => {
                if chunk <= mr {
                    return Err(e);
                }
                chunk = (chunk / 2).max(mr);
            }
        }
    }
    Ok(())
}

/// Pack the `kc_eff × nc_eff` B panel fallibly, degrading to halved
/// sliver-column chunks when the buffer cannot grow, and run `each`
/// once per packed chunk with the chunk's column offset. Bit-identical
/// for the same reason as [`gebp_block_resilient`].
#[allow(clippy::too_many_arguments)]
fn pack_panel_resilient<T: Scalar>(
    panel: &mut PackedB<T>,
    b: &MatrixView<'_, T>,
    transb: Transpose,
    kk: usize,
    jj: usize,
    kc_eff: usize,
    nc_eff: usize,
    nr: usize,
    mut each: impl FnMut(usize, &PackedB<T>) -> Result<(), GemmError>,
) -> Result<(), GemmError> {
    let nr = nr.max(1);
    let mut chunk = nc_eff;
    let mut c0 = 0usize;
    while c0 < nc_eff {
        let cols = chunk.min(nc_eff - c0);
        match panel.try_pack(b, transb, kk, jj + c0, kc_eff, cols) {
            Ok(()) => {
                each(c0, panel)?;
                c0 += cols;
            }
            Err(e) => {
                if chunk <= nr {
                    return Err(e);
                }
                chunk = (chunk / 2).max(nr);
            }
        }
    }
    Ok(())
}

/// Run one epoch entirely on the calling thread (no pool): used when
/// the shared panel cannot be allocated at full size and after a
/// watchdog timeout put the call into degraded mode. Returns the
/// indices of slots whose block run panicked (their staging is
/// unspecified; the caller recovers them from C).
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn run_epoch_inline<T: PoolScalar, K: KernelSet<T>>(
    kernel: K,
    alpha: T,
    a_batch: &[MatrixView<'_, T>],
    transa: Transpose,
    b: &MatrixView<'_, T>,
    transb: Transpose,
    slots: &mut [BlockSlot<T>],
    panel: &mut PackedB<T>,
    kk: usize,
    kc_eff: usize,
    jj: usize,
) -> Result<Vec<usize>, GemmError> {
    let mut panicked = vec![false; slots.len()];
    // B is packed once per distinct cell column range (several mc-row
    // cells share one), sized to the range. Cells consume each packed
    // chunk full-width rather than sliver-addressing a shared panel:
    // resilient pack chunks may start mid-sliver, where a sliver range
    // cannot point.
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for slot in slots.iter() {
        if !ranges.contains(&(slot.col0, slot.ncols)) {
            ranges.push((slot.col0, slot.ncols));
        }
    }
    for (col0, ncols) in ranges {
        pack_panel_resilient(
            panel,
            b,
            transb,
            kk,
            jj + col0,
            kc_eff,
            ncols,
            kernel.nr(),
            |c0, pchunk| {
                for (idx, slot) in slots.iter_mut().enumerate() {
                    if panicked[idx] || slot.col0 != col0 || slot.ncols != ncols {
                        continue;
                    }
                    let entry = slot.entry;
                    let row0 = slot.row0;
                    let mc_eff = slot.mc_eff;
                    let BlockSlot { pa, staging, .. } = slot;
                    let mut tile = TileMut::from_slice(mc_eff, ncols, mc_eff.max(1), staging);
                    let mut sub = tile.sub_tile(0, c0, mc_eff, pchunk.nc());
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        gebp_block_resilient(
                            kernel,
                            alpha,
                            &a_batch[entry],
                            transa,
                            row0,
                            kk,
                            mc_eff,
                            kc_eff,
                            pa,
                            pchunk,
                            0,
                            pchunk.nc(),
                            &mut sub,
                        )
                    }));
                    match result {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => return Err(e),
                        Err(_) => panicked[idx] = true,
                    }
                }
                Ok(())
            },
        )?;
    }
    Ok(panicked
        .iter()
        .enumerate()
        .filter_map(|(i, &p)| p.then_some(i))
        .collect())
}

/// Recompute one grid cell from scratch after a fault: re-stage its
/// rows/columns from C (untouched since the panel's `stage_in`) and
/// replay epochs `0..kk_end` serially, packing B only for the cell's
/// own column range — the same kernel calls in the same order as the
/// undamaged path, so the recovered cell is bit-identical. A panic
/// during the replay is the double fault reported as
/// [`GemmError::WorkerFault`].
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn recover_block<T: PoolScalar, K: KernelSet<T>>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T>,
    kernel: K,
    kc: usize,
    jj: usize,
    kk_end: usize,
    k: usize,
    slot: &mut BlockSlot<T>,
    panel: &mut PackedB<T>,
) -> Result<(), GemmError> {
    let _span = telemetry::span(Phase::Recovery);
    let entry = slot.entry;
    let row0 = slot.row0;
    let mc_eff = slot.mc_eff;
    let col0 = slot.col0;
    let ncols = slot.ncols;
    telemetry::set_cell(row0, col0);
    stage_in(slot, c, jj)?;
    let BlockSlot { pa, staging, .. } = slot;
    let mut kk = 0usize;
    while kk < kk_end {
        let kc_eff = kc.min(k - kk);
        pack_panel_resilient(
            panel,
            b,
            transb,
            kk,
            jj + col0,
            kc_eff,
            ncols,
            kernel.nr(),
            |c0, pchunk| {
                let mut tile = TileMut::from_slice(mc_eff, ncols, mc_eff.max(1), staging);
                let mut sub = tile.sub_tile(0, c0, mc_eff, pchunk.nc());
                let result = catch_unwind(AssertUnwindSafe(|| {
                    gebp_block_resilient(
                        kernel,
                        alpha,
                        a,
                        transa,
                        row0,
                        kk,
                        mc_eff,
                        kc_eff,
                        pa,
                        pchunk,
                        0,
                        pchunk.nc(),
                        &mut sub,
                    )
                }));
                match result {
                    Ok(r) => r,
                    Err(_) => Err(GemmError::WorkerFault { entry, row0 }),
                }
            },
        )?;
        kk += kc_eff;
    }
    Ok(())
}

/// Serial, allocation-resilient layers 1–3 for panels `jj0..` of every
/// batch entry, computed straight on C (no staging): the fallback when
/// staging memory is unavailable. Panels `0..jj0` must already be
/// complete. Bit-identical to the serial walk; a panic mid-block cannot
/// be recovered here (C rows are already partially updated) and is
/// reported as [`GemmError::WorkerFault`].
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn serial_tail<T: PoolScalar, K: KernelSet<T>>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a_batch: &[MatrixView<'_, T>],
    b: &MatrixView<'_, T>,
    c_batch: &mut [MatrixViewMut<'_, T>],
    kernel: K,
    blocks: BlockSizes,
    jj0: usize,
    arena: &mut GemmArena<T>,
) -> Result<(), GemmError> {
    let BlockSizes { kc, mc, nc, .. } = blocks;
    let mut slot = arena.take_slot(kernel.mr());
    let mut panel = arena.take_panel(kernel.nr());
    let mut result = Ok(());
    'entries: for (entry, c) in c_batch.iter_mut().enumerate() {
        let a = &a_batch[entry];
        let (m, k) = transa.apply_dims(a.rows(), a.cols());
        let n = c.cols();
        let mut jj = jj0;
        while jj < n {
            let nc_eff = nc.min(n - jj);
            let mut kk = 0usize;
            while kk < k {
                let kc_eff = kc.min(k - kk);
                let pa = slot.pa_mut();
                let r = pack_panel_resilient(
                    &mut panel,
                    b,
                    transb,
                    kk,
                    jj,
                    kc_eff,
                    nc_eff,
                    kernel.nr(),
                    |c0, pchunk| {
                        let mut view = c.sub_mut(0, jj + c0, m, pchunk.nc());
                        let ld = view.ld();
                        let mut tile = TileMut::from_slice(m, pchunk.nc(), ld, view.data_mut());
                        let mut ii = 0usize;
                        while ii < m {
                            let mc_eff = mc.min(m - ii);
                            let mut sub = tile.sub_tile(ii, 0, mc_eff, pchunk.nc());
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                gebp_block_resilient(
                                    kernel,
                                    alpha,
                                    a,
                                    transa,
                                    ii,
                                    kk,
                                    mc_eff,
                                    kc_eff,
                                    pa,
                                    pchunk,
                                    0,
                                    pchunk.nc(),
                                    &mut sub,
                                )
                            }));
                            match result {
                                Ok(Ok(())) => {}
                                Ok(Err(e)) => return Err(e),
                                Err(_) => return Err(GemmError::WorkerFault { entry, row0: ii }),
                            }
                            ii += mc_eff;
                        }
                        Ok(())
                    },
                );
                if let Err(e) = r {
                    result = Err(e);
                    break 'entries;
                }
                kk += kc_eff;
            }
            jj += nc_eff;
        }
    }
    arena.put_slot(slot);
    arena.put_panel(panel);
    result
}

/// Cold path of [`gemm_pooled`]: packed-A memory was unavailable at
/// full size, so the cell runs inline in smaller chunks against the
/// shared (or cached) panel, addressing its own whole-sliver column
/// range (still under `catch_unwind`). `Ok(true)` means the cell
/// completed; `Ok(false)` means it panicked and must be recovered
/// from C.
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn run_slot_inline_chunked<T: PoolScalar, K: KernelSet<T>>(
    kernel: K,
    alpha: T,
    a: &MatrixView<'_, T>,
    transa: Transpose,
    kk: usize,
    kc_eff: usize,
    panel: &PackedB<T>,
    slot: &mut BlockSlot<T>,
) -> Result<bool, GemmError> {
    let row0 = slot.row0;
    let mc_eff = slot.mc_eff;
    let ncols = slot.ncols;
    let s0 = slot.col0 / panel.nr().max(1);
    let BlockSlot { pa, staging, .. } = slot;
    let mut tile = TileMut::from_slice(mc_eff, ncols, mc_eff.max(1), staging);
    let result = catch_unwind(AssertUnwindSafe(|| {
        gebp_block_resilient(
            kernel, alpha, a, transa, row0, kk, mc_eff, kc_eff, pa, panel, s0, ncols, &mut tile,
        )
    }));
    match result {
        Ok(Ok(())) => Ok(true),
        Ok(Err(e)) => Err(e),
        Err(_) => Ok(false),
    }
}

/// The scalar geometry of one epoch, bundled so the cold settle path
/// below keeps a readable signature.
#[derive(Clone, Copy)]
struct SettleCtx<T: Scalar> {
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    kc: usize,
    jj: usize,
    kk_end: usize,
    k: usize,
    epoch_timeout: Option<Duration>,
}

/// Cold path of [`gemm_pooled`]: the epoch ended with panicked, stale,
/// inline-failed, or missing grid cells (or the watchdog fired).
/// Recycles stale slots, recomputes every lost cell from C
/// bit-identically ([`recover_block`]), and records the soft error;
/// timeouts flip the call into degraded (inline) mode.
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn settle_epoch_faults<T: PoolScalar, K: KernelSet<T>>(
    pool: &WorkerPool,
    arena: &mut GemmArena<T>,
    mut outcome: EpochOutcome<T>,
    mut inline_failures: Vec<usize>,
    slots: &mut Vec<BlockSlot<T>>,
    meta: &[CellId],
    total: usize,
    ctx: SettleCtx<T>,
    a_batch: &[MatrixView<'_, T>],
    b: &MatrixView<'_, T>,
    c_batch: &mut [MatrixViewMut<'_, T>],
    kernel: K,
    degraded: &mut bool,
    worst: &mut Option<GemmError>,
) -> Result<(), GemmError> {
    let SettleCtx {
        transa,
        transb,
        alpha,
        kc,
        jj,
        kk_end,
        k,
        epoch_timeout,
    } = ctx;
    // Watchdog attribution: everything settled after a fired deadline
    // (recovery included — it nests its own Recovery/PackX/Compute
    // spans) is watchdog aftermath.
    let _watchdog_span = outcome.timed_out.then(|| telemetry::span(Phase::Watchdog));
    for slot in outcome.stale.drain(..) {
        arena.put_slot(slot);
    }

    // Contained recovery: panicked blocks (from workers or inline runs)
    // are recomputed from C, bit-identically. Sort indices descending
    // so swap_remove stays valid.
    inline_failures.sort_unstable_by(|x, y| y.cmp(x));
    for idx in inline_failures {
        outcome.failed.push(slots.swap_remove(idx));
    }
    for mut slot in outcome.failed.drain(..) {
        let entry = slot.entry;
        let mut scratch = arena.take_panel(kernel.nr());
        let recovered = recover_block(
            transa,
            transb,
            alpha,
            &a_batch[entry],
            b,
            &mut c_batch[entry],
            kernel,
            kc,
            jj,
            kk_end,
            k,
            &mut slot,
            &mut scratch,
        );
        arena.put_panel(scratch);
        match recovered {
            Ok(()) => {
                RT.faults_contained.fetch_add(1, Ordering::Relaxed);
                crate::trace::health_event(
                    crate::trace::HealthEventKind::FaultContained,
                    crate::trace::current_id(),
                    slot.row0 as u64,
                    "worker panic contained; block recomputed serially",
                );
            }
            Err(e @ GemmError::WorkerFault { .. }) => {
                // Double fault: C is unspecified, but finish the call so
                // the pool stays consistent.
                *worst = Some(e);
            }
            Err(e) => return Err(e),
        }
        slots.push(slot);
    }

    // Timeout (or a lost done): identify grid cells that never came
    // back, recompute them from C in fresh slots, and go degraded for
    // the rest of the call.
    if slots.len() < total {
        let missing: Vec<CellId> = meta
            .iter()
            .filter(|cell| {
                !slots
                    .iter()
                    .any(|s| s.entry == cell.entry && s.row0 == cell.row0 && s.col0 == cell.col0)
            })
            .copied()
            .collect();
        if outcome.timed_out {
            RT.timeouts.fetch_add(1, Ordering::Relaxed);
            crate::trace::health_event(
                crate::trace::HealthEventKind::WatchdogFire,
                crate::trace::current_id(),
                missing.len() as u64,
                "epoch watchdog expired; missing blocks recomputed serially",
            );
            *degraded = true;
            if worst.is_none() {
                *worst = Some(GemmError::EpochTimeout {
                    timeout_ms: epoch_timeout
                        .map_or(0, |d| d.as_millis().min(u128::from(u64::MAX)) as u64),
                    missing_blocks: missing.len(),
                    workers_alive: pool.workers(),
                });
            }
        }
        for cell in missing {
            let entry = cell.entry;
            let mut slot = arena.take_slot(kernel.mr());
            slot.entry = entry;
            slot.row0 = cell.row0;
            slot.mc_eff = cell.mc_eff;
            slot.col0 = cell.col0;
            slot.ncols = cell.ncols;
            let mut scratch = arena.take_panel(kernel.nr());
            let recovered = recover_block(
                transa,
                transb,
                alpha,
                &a_batch[entry],
                b,
                &mut c_batch[entry],
                kernel,
                kc,
                jj,
                kk_end,
                k,
                &mut slot,
                &mut scratch,
            );
            arena.put_panel(scratch);
            match recovered {
                Ok(()) => {
                    RT.faults_contained.fetch_add(1, Ordering::Relaxed);
                    crate::trace::health_event(
                        crate::trace::HealthEventKind::FaultContained,
                        crate::trace::current_id(),
                        slot.row0 as u64,
                        "lost block recomputed serially after watchdog expiry",
                    );
                }
                Err(e @ GemmError::WorkerFault { .. }) => *worst = Some(e),
                Err(e) => return Err(e),
            }
            slots.push(slot);
        }
    }
    Ok(())
}

/// The pooled layers 1–3 driver, unified over single GEMMs (a batch of
/// one) and shared-B batches (all entries' blocks dispatched into the
/// same epoch, sharing one packed panel).
///
/// β must already be applied to every C; shapes must already be
/// validated (all `A_i` are `m×k` under `transa`, all `C_i` are `m×n`).
/// With `prepacked`, epochs ship the cached panel's `Arc` to the
/// workers instead of packing B — the panels must have been built for
/// exactly this `(transb, nr, kc, nc)` geometry.
///
/// `n_split` is the column-wise grid factor chosen by
/// [`crate::dispatch`]: each `jj` panel splits into up to `n_split`
/// whole-sliver column chunks ([`grid_cols`]) and every
/// `(entry, mc-block, chunk)` cell becomes its own schedulable job.
/// `n_split == 1` reproduces the historical M-band schedule exactly.
///
/// Faults are contained per grid cell (see the module docs): `Ok(())`
/// means C holds the bit-exact serial result, possibly via recovery;
/// [`GemmError::EpochTimeout`] means the same but an epoch stalled past
/// `epoch_timeout`; any other error means C is unspecified.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature plus the batch
pub(crate) fn gemm_pooled<T: PoolScalar, K: KernelSet<T>>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a_batch: &[MatrixView<'_, T>],
    b: &MatrixView<'_, T>,
    c_batch: &mut [MatrixViewMut<'_, T>],
    kernel: K,
    blocks: BlockSizes,
    degree: usize,
    n_split: usize,
    epoch_timeout: Option<Duration>,
    prepacked: Option<&PrepackedB<T>>,
) -> Result<(), GemmError> {
    debug_assert_eq!(a_batch.len(), c_batch.len());
    let Some(first_a) = a_batch.first() else {
        return Ok(());
    };
    let (m, k) = transa.apply_dims(first_a.rows(), first_a.cols());
    let n = c_batch[0].cols();
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }
    let BlockSizes { kc, mc, nc, .. } = blocks;
    let degree = degree.max(1);

    // Route to the shard installed by `with_pool`, if any; the global
    // pool otherwise. The override is an owned Arc so a retiring shard
    // stays alive for the duration of the call.
    let shard = current_pool_override();
    let pool: &WorkerPool = match shard.as_deref() {
        Some(p) => p,
        None => WorkerPool::global(),
    };
    pool.ensure_workers(degree.saturating_sub(1));
    let (done_tx, done_rx) = channel::unbounded::<Done<T>>();

    let soft_error = T::with_arena(|arena| -> Result<Option<GemmError>, GemmError> {
        // The soft error (timeout / contained-but-noteworthy) reported
        // after the call completes; hard errors return immediately.
        let mut worst: Option<GemmError> = None;
        // After a watchdog timeout the rest of the call runs inline:
        // the pool may hold a stalled worker and a second stall would
        // double the damage.
        let mut degraded = false;
        let mut seq: u64 = 0;
        let mut slots: Vec<BlockSlot<T>> = Vec::new();
        let mut jj = 0usize;
        while jj < n {
            let nc_eff = nc.min(n - jj);
            // The panel's column chunks: one full-width chunk in 1-D
            // mode, up to n_split whole-sliver chunks in grid mode.
            let col_chunks = grid_cols(nc_eff, kernel.nr(), n_split);

            // Stage in: one slot per (entry, mc-block, column chunk)
            // holds its cell of the C panel across every kk epoch, so
            // the accumulation order matches the serial path bit for
            // bit (cells cover disjoint C elements).
            let mut staged = true;
            'stage: for (entry, c) in c_batch.iter_mut().enumerate() {
                let mut ii = 0usize;
                while ii < m {
                    let mc_eff = mc.min(m - ii);
                    for &(col0, ncols) in &col_chunks {
                        let mut slot = arena.take_slot(kernel.mr());
                        slot.entry = entry;
                        slot.row0 = ii;
                        slot.mc_eff = mc_eff;
                        slot.col0 = col0;
                        slot.ncols = ncols;
                        if stage_in(&mut slot, c, jj).is_err() {
                            arena.put_slot(slot);
                            staged = false;
                            break 'stage;
                        }
                        slots.push(slot);
                    }
                    ii += mc_eff;
                }
            }
            if !staged {
                // Staging memory unavailable. Nothing of panels jj.. has
                // touched C yet, so fall back to the serial walk straight
                // on C for the rest of the call.
                for slot in slots.drain(..) {
                    arena.put_slot(slot);
                }
                serial_tail(
                    transa, transb, alpha, a_batch, b, c_batch, kernel, blocks, jj, arena,
                )?;
                return Ok(worst);
            }

            let total = slots.len();
            let workers = degree.min(total);
            // Static contiguous bands when the cells divide evenly
            // (the partition_rows assignment); otherwise dynamic: one
            // job per cell, workers race to pull them.
            let static_bands = workers > 1 && total.is_multiple_of(workers);
            // Cell identities for this panel, so cells lost to a
            // timeout can be identified and recomputed.
            let meta: Vec<CellId> = slots
                .iter()
                .map(|s| CellId {
                    entry: s.entry,
                    row0: s.row0,
                    col0: s.col0,
                    mc_eff: s.mc_eff,
                    ncols: s.ncols,
                })
                .collect();

            let mut kk = 0usize;
            while kk < k {
                let kc_eff = kc.min(k - kk);
                let kk_end = kk + kc_eff;
                seq += 1;
                telemetry::set_gepp(seq);
                if col_chunks.len() > 1 {
                    RT.grid_epochs.fetch_add(1, Ordering::Relaxed);
                }
                // Health check: respawn workers that died since the last
                // epoch (no-op fast path when everyone is alive).
                if !degraded {
                    pool.ensure_workers(degree.saturating_sub(1));
                }

                let mut inline_failures: Vec<usize> = Vec::new();
                let mut outcome = EpochOutcome {
                    failed: Vec::new(),
                    stale: Vec::new(),
                    timed_out: false,
                };

                // Panel for this epoch: a cached pre-packed tile when the
                // caller supplied one (no packing at all), else an arena
                // panel packed fresh. A degraded (post-timeout) call
                // skips the pool but can still run inline against the
                // cached tile.
                let cached = prepacked.map(|pp| pp.tile_range(jj, kk, &col_chunks));
                let shared: Option<Arc<PackedB<T>>> = if degraded {
                    None
                } else if let Some(arc) = cached {
                    Some(Arc::clone(arc))
                } else {
                    let mut panel = arena.take_panel(kernel.nr());
                    if panel.try_pack(b, transb, kk, jj, kc_eff, nc_eff).is_ok() {
                        Some(Arc::new(panel))
                    } else {
                        arena.put_panel(panel);
                        None
                    }
                };
                if let Some(panel) = shared {
                    if static_bands {
                        RT.static_epochs.fetch_add(1, Ordering::Relaxed);
                    } else {
                        RT.dynamic_epochs.fetch_add(1, Ordering::Relaxed);
                    }
                    let run_len = if static_bands { total / workers } else { 1 };
                    let mut run: Vec<BlockSlot<T>> = Vec::with_capacity(run_len);
                    let mut submitted = 0usize;
                    let mut inline_done: Vec<BlockSlot<T>> = Vec::new();
                    for mut slot in slots.drain(..) {
                        // The caller packs A (workers cannot read the
                        // borrowed operand); each job ships as soon as its
                        // cells are packed, pipelining pack against
                        // compute.
                        telemetry::set_cell(slot.row0, slot.col0);
                        let packed = slot.pa.try_pack(
                            &a_batch[slot.entry],
                            transa,
                            slot.row0,
                            kk,
                            slot.mc_eff,
                            kc_eff,
                        );
                        match packed {
                            Ok(()) => {
                                run.push(slot);
                                if run.len() == run_len {
                                    submitted += run.len();
                                    submit_run(
                                        pool,
                                        kernel,
                                        alpha,
                                        std::mem::replace(&mut run, Vec::with_capacity(run_len)),
                                        Arc::clone(&panel),
                                        done_tx.clone(),
                                        seq,
                                    );
                                }
                            }
                            Err(_) => {
                                // Packed-A memory unavailable at full
                                // size: compute this cell inline in
                                // smaller chunks against the shared
                                // panel.
                                if run_slot_inline_chunked(
                                    kernel,
                                    alpha,
                                    &a_batch[slot.entry],
                                    transa,
                                    kk,
                                    kc_eff,
                                    &panel,
                                    &mut slot,
                                )? {
                                    inline_done.push(slot);
                                } else {
                                    outcome.failed.push(slot);
                                }
                            }
                        }
                    }
                    if !run.is_empty() {
                        submitted += run.len();
                        submit_run(
                            pool,
                            kernel,
                            alpha,
                            run,
                            Arc::clone(&panel),
                            done_tx.clone(),
                            seq,
                        );
                    }

                    let drained =
                        drain_epoch(pool, &done_rx, seq, submitted, epoch_timeout, &mut slots);
                    outcome.failed.extend(drained.failed);
                    outcome.stale.extend(drained.stale);
                    outcome.timed_out = drained.timed_out;
                    slots.extend(inline_done);
                    // An epoch-packed panel is reclaimed into the arena
                    // here. A cached panel never is: the PrepackedB holds
                    // its own Arc for as long as the caller (and cache)
                    // do, so try_unwrap fails and the tile stays intact.
                    if let Ok(panel) = Arc::try_unwrap(panel) {
                        arena.put_panel(panel);
                    }
                } else if let Some(arc) = cached {
                    // Degraded mode with a cached tile: the panel is
                    // already packed, so run each block inline against it
                    // (never mutating or reclaiming it).
                    for (idx, slot) in slots.iter_mut().enumerate() {
                        telemetry::set_cell(slot.row0, slot.col0);
                        let ok = run_slot_inline_chunked(
                            kernel,
                            alpha,
                            &a_batch[slot.entry],
                            transa,
                            kk,
                            kc_eff,
                            arc,
                            slot,
                        )?;
                        if !ok {
                            inline_failures.push(idx);
                        }
                    }
                } else {
                    // Panel memory unavailable (or post-timeout degraded
                    // mode): run the whole epoch on this thread, packing
                    // B in sliver chunks if need be.
                    let mut panel = arena.take_panel(kernel.nr());
                    inline_failures = run_epoch_inline(
                        kernel, alpha, a_batch, transa, b, transb, &mut slots, &mut panel, kk,
                        kc_eff, jj,
                    )?;
                    arena.put_panel(panel);
                }

                // Anything beyond a clean full set of slots takes the
                // cold settle path; the healthy epoch skips it entirely.
                if outcome.timed_out
                    || !outcome.stale.is_empty()
                    || !outcome.failed.is_empty()
                    || !inline_failures.is_empty()
                    || slots.len() < total
                {
                    settle_epoch_faults(
                        pool,
                        arena,
                        outcome,
                        inline_failures,
                        &mut slots,
                        &meta,
                        total,
                        SettleCtx {
                            transa,
                            transb,
                            alpha,
                            kc,
                            jj,
                            kk_end,
                            k,
                            epoch_timeout,
                        },
                        a_batch,
                        b,
                        c_batch,
                        kernel,
                        &mut degraded,
                        &mut worst,
                    )?;
                }

                // Deterministic cell order for the next epoch's static
                // bands (dones arrive in completion order).
                slots.sort_unstable_by_key(|s| (s.entry, s.row0, s.col0));
                kk += kc_eff;
            }

            for slot in std::mem::take(&mut slots) {
                stage_out(&slot, &mut c_batch[slot.entry], jj);
                arena.put_slot(slot);
            }
            jj += nc_eff;
        }
        Ok(worst)
    })?;
    match soft_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_threads_mapping() {
        assert_eq!(Parallelism::from_threads(0), Parallelism::Serial);
        assert_eq!(Parallelism::from_threads(1), Parallelism::Serial);
        assert_eq!(Parallelism::from_threads(4), Parallelism::Pool(4));
    }

    #[test]
    fn degree_and_validate() {
        assert_eq!(Parallelism::Serial.degree(), 1);
        assert_eq!(Parallelism::Scoped(3).degree(), 3);
        assert_eq!(Parallelism::Pool(8).degree(), 8);
        assert!(Parallelism::Pool(0).validate().is_err());
        assert!(Parallelism::Scoped(0).validate().is_err());
        assert!(Parallelism::Serial.validate().is_ok());
        assert!(Parallelism::Pool(2).validate().is_ok());
    }

    #[test]
    fn pool_runs_submitted_tasks() {
        let pool = WorkerPool::global();
        pool.ensure_workers(2);
        assert!(pool.workers() >= 2);
        let (tx, rx) = channel::unbounded();
        for i in 0..32 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        let mut got: Vec<i32> = (0..32).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn caller_drains_queue_without_workers() {
        // try_run_one lets a caller make progress on its own jobs even
        // if every worker is busy elsewhere.
        let pool = WorkerPool::global();
        let (tx, rx) = channel::unbounded();
        pool.submit(Box::new(move || {
            tx.send(7u32).unwrap();
        }));
        // Either a worker already took it, or we run it inline.
        while rx.try_recv().is_err() {
            pool.try_run_one();
        }
    }

    #[test]
    fn worker_survives_panicking_task() {
        let pool = WorkerPool::global();
        pool.ensure_workers(2);
        pool.submit(Box::new(|| panic!("injected: task panic containment test")));
        // Subsequent tasks are still served: no worker died, no queue
        // corruption. (The panicking task may be drained by any thread;
        // catch_unwind contains it wherever it runs.)
        let (tx, rx) = channel::unbounded();
        for i in 0..8 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        let mut got: Vec<i32> = Vec::new();
        while got.len() < 8 {
            match rx.try_recv() {
                Ok(v) => got.push(v),
                Err(_) => {
                    pool.try_run_one();
                }
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert!(pool.workers() >= 2, "panicking task killed a worker");
    }

    #[test]
    fn status_snapshot_is_consistent() {
        let pool = WorkerPool::global();
        pool.ensure_workers(1);
        let status = pool.status();
        assert!(status.workers_alive >= 1);
        assert!(status.workers_started >= status.workers_alive as u64);
        assert_eq!(
            status.workers_started,
            status.workers_alive as u64 + status.deaths
        );
        // Another test may publish a dispatch decision between the two
        // reads; compare everything except that racy field.
        let mut again = super::status();
        again.last_dispatch = status.last_dispatch;
        again.epochs_served = status.epochs_served;
        again.faults_contained = status.faults_contained;
        again.timeouts = status.timeouts;
        assert_eq!(status.workers_alive, again.workers_alive);
        assert_eq!(status.deaths, again.deaths);
    }

    #[test]
    fn grid_cols_tiles_the_panel_in_whole_slivers() {
        // Exact split: 96 columns, nr=6, 4 chunks of 4 slivers each.
        let cells = grid_cols(96, 6, 4);
        assert_eq!(cells, vec![(0, 24), (24, 24), (48, 24), (72, 24)]);
        // Ragged: 100 columns -> last cell keeps the 4-column remainder.
        let cells = grid_cols(100, 6, 4);
        assert_eq!(cells.iter().map(|&(_, w)| w).sum::<usize>(), 100);
        assert!(cells.iter().all(|&(c0, _)| c0 % 6 == 0));
        assert_eq!(cells.last(), Some(&(90, 10)));
        // n_split=1 is the historical 1-D schedule: one full-width cell.
        assert_eq!(grid_cols(100, 6, 1), vec![(0, 100)]);
        // More chunks than slivers clamps to one sliver per cell.
        let cells = grid_cols(12, 6, 8);
        assert_eq!(cells, vec![(0, 6), (6, 6)]);
        // Degenerate panel narrower than one sliver.
        assert_eq!(grid_cols(5, 6, 3), vec![(0, 5)]);
    }

    #[test]
    fn drain_epoch_times_out_without_dones() {
        // Deterministic watchdog check: one outstanding block whose done
        // never arrives must trip the deadline, not hang.
        let pool = WorkerPool::global();
        let (_tx, rx) = channel::unbounded::<Done<f64>>();
        let mut slots = Vec::new();
        let out = drain_epoch(pool, &rx, 1, 1, Some(Duration::from_millis(25)), &mut slots);
        assert!(out.timed_out);
        assert!(slots.is_empty());
        assert!(out.failed.is_empty());
    }

    #[test]
    fn drain_epoch_discards_stale_dones() {
        let pool = WorkerPool::global();
        let (tx, rx) = channel::unbounded::<Done<f64>>();
        let mut arena: GemmArena<f64> = GemmArena::new();
        tx.send(Done {
            slot: arena.take_slot(8),
            seq: 1,
            failed: false,
        })
        .map_err(|_| "send failed")
        .unwrap();
        tx.send(Done {
            slot: arena.take_slot(8),
            seq: 2,
            failed: false,
        })
        .map_err(|_| "send failed")
        .unwrap();
        let mut slots = Vec::new();
        let out = drain_epoch(pool, &rx, 2, 1, None, &mut slots);
        assert_eq!(out.stale.len(), 1, "stale done must not join the epoch");
        assert_eq!(slots.len(), 1);
        assert!(!out.timed_out);
    }

    #[test]
    fn drain_epoch_separates_failed_slots() {
        let pool = WorkerPool::global();
        let (tx, rx) = channel::unbounded::<Done<f64>>();
        let mut arena: GemmArena<f64> = GemmArena::new();
        tx.send(Done {
            slot: arena.take_slot(8),
            seq: 5,
            failed: true,
        })
        .map_err(|_| "send failed")
        .unwrap();
        tx.send(Done {
            slot: arena.take_slot(8),
            seq: 5,
            failed: false,
        })
        .map_err(|_| "send failed")
        .unwrap();
        let mut slots = Vec::new();
        let out = drain_epoch(pool, &rx, 5, 2, None, &mut slots);
        assert_eq!(out.failed.len(), 1);
        assert_eq!(slots.len(), 1);
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut arena: GemmArena<f64> = GemmArena::new();
        let slot = arena.take_slot(8);
        let panel = arena.take_panel(6);
        assert_eq!(arena.fresh_buffers(), 2);
        arena.put_slot(slot);
        arena.put_panel(panel);
        // Reuse, including across a kernel change (retarget).
        let slot = arena.take_slot(4);
        let panel = arena.take_panel(4);
        assert_eq!(slot.pa.mr(), 4);
        assert_eq!(panel.nr(), 4);
        assert_eq!(arena.fresh_buffers(), 2);
        arena.put_slot(slot);
        arena.put_panel(panel);
    }

    #[test]
    fn with_arena_is_reentrant() {
        let depth2 = f64::with_arena(|outer| {
            outer.take_slot(8);
            // Inner call must not panic on the borrowed thread-local.
            f64::with_arena(|inner| inner.fresh_buffers())
        });
        assert_eq!(depth2, 0);
    }

    #[test]
    fn shard_pools_are_isolated_failure_domains() {
        let shard = WorkerPool::new_shard("iso");
        shard.ensure_workers(2);
        assert!(shard.workers() >= 2);
        // Shard lifecycle counters start at zero regardless of what the
        // global pool has been through in this process.
        let status = shard.status();
        assert_eq!(status.deaths, 0);
        assert_eq!(status.respawns, 0);
        assert_eq!(status.spawn_failures, 0);
        assert_eq!(status.workers_started, status.workers_alive as u64);
        // Work submitted to the shard runs on the shard.
        let (tx, rx) = channel::unbounded();
        for i in 0..16 {
            let tx = tx.clone();
            shard.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        let mut got: Vec<i32> = (0..16).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn with_pool_routes_pooled_gemm_to_the_shard_bit_identically() {
        use crate::matrix::Matrix;
        use crate::microkernel::MicroKernelKind;

        let (m, n, k) = (70, 45, 33);
        let a = Matrix::random(m, k, 301);
        let b = Matrix::random(k, n, 302);
        let blocks = BlockSizes::custom(8, 6, 16, 24, 18);
        let kernel = MicroKernelKind::Mk8x6;
        let run = |shard: Option<&Arc<WorkerPool>>| -> Matrix {
            let mut c = Matrix::zeros(m, n);
            let mut go = || {
                let a_views = [a.view()];
                let mut c_views = [c.view_mut()];
                gemm_pooled(
                    Transpose::No,
                    Transpose::No,
                    1.0,
                    &a_views,
                    &b.view(),
                    &mut c_views,
                    kernel,
                    blocks,
                    3,
                    1,
                    None,
                    None,
                )
                .expect("pooled gemm");
            };
            match shard {
                Some(p) => with_pool(p, go),
                None => go(),
            }
            c
        };
        let on_global = run(None);
        let shard = WorkerPool::new_shard("route");
        let on_shard = run(Some(&shard));
        assert_eq!(
            on_global.max_abs_diff(&on_shard),
            0.0,
            "shard-routed pooled GEMM diverged bitwise"
        );
        assert!(shard.workers() >= 1, "the shard spawned its own workers");
        // Nesting restores the previous override.
        let outer = WorkerPool::new_shard("outer");
        with_pool(&outer, || {
            with_pool(&shard, || {
                assert!(Arc::ptr_eq(&current_pool_override().unwrap(), &shard));
            });
            assert!(Arc::ptr_eq(&current_pool_override().unwrap(), &outer));
        });
        assert!(current_pool_override().is_none());
    }

    #[test]
    fn retired_shard_winds_down_cleanly() {
        let shared = {
            let shard = WorkerPool::new_shard("retire");
            shard.ensure_workers(2);
            assert!(shard.workers() >= 2);
            Arc::clone(&shard.shared)
            // shard (the only Arc) drops here: retired is set, the
            // channel disconnects, workers exit.
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        while shared.alive.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(shared.alive.load(Ordering::Acquire), 0, "workers lingered");
        assert_eq!(
            shared.deaths.load(Ordering::Relaxed),
            0,
            "clean retirement must not count as deaths"
        );
    }
}
