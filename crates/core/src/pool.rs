//! Persistent worker-pool runtime for layer 3 (Section IV-C, Figure 9).
//!
//! The original parallel path spawned a fresh set of OS threads for
//! *every* `(jj, kk)` macro-iteration — one `thread::scope` per GEPP —
//! and every band allocated its own packed-A buffer. For the large
//! problems of the paper's evaluation that overhead vanishes, but for
//! the small/batched GEMMs layered workloads issue (LU panels, im2col
//! convolutions, batched inference) the spawn + allocate cost dominates.
//! This module replaces that with a process-wide pool of persistent
//! workers and per-caller-thread buffer arenas:
//!
//! - **[`WorkerPool`]**: lazily started, detached worker threads parked
//!   on an MPMC channel. A GEMM call enqueues one *job* per `mc`-block
//!   (or per static band) and workers race to pull them — dynamic
//!   scheduling that load-balances ragged tails, falling back to the
//!   static contiguous-band assignment of [`crate::parallel::partition_rows`]
//!   when the blocks divide evenly. Steady state spawns **zero** threads.
//! - **[`GemmArena`]**: a thread-local free list of [`BlockSlot`]s
//!   (packed-A buffer + C staging buffer) and packed-B panels, recycled
//!   across `mc`-blocks, macro-iterations, GEMM calls and batch entries.
//!   Steady state performs **zero** packing-buffer allocations.
//!
//! ## Ownership-transfer epochs
//!
//! Persistent workers outlive any one GEMM call, so (in safe Rust) the
//! closures they execute cannot borrow the caller's matrices. The
//! runtime therefore splits each `(jj, kk)` macro-iteration into an
//! *epoch* built only from owned data:
//!
//! 1. the **caller** packs the shared B panel into a pool-recycled
//!    buffer and wraps it in an [`Arc`];
//! 2. per `mc`-block, the caller packs A into a recycled [`BlockSlot`]
//!    (which also stages that block's rows of the C panel) and sends the
//!    slot — owned — through the job channel;
//! 3. **workers** run GEBP on the slot's owned buffers against the
//!    shared panel and send the slot back on a per-call done channel;
//! 4. the caller *helps drain the queue* while waiting at the epoch
//!    barrier, then reclaims the panel via [`Arc::try_unwrap`].
//!
//! Packing is thus pipelined against worker compute (the caller
//! dispatches each block as soon as it is packed), in place of the
//! paper's pack-everything-then-barrier. C blocks are staged in once
//! per `jj` panel, accumulate across all `kk` epochs and are written
//! back once, which keeps the floating-point accumulation order — and
//! therefore every output bit — identical to the serial path.

#![forbid(unsafe_code)]

use crate::gebp::gebp;
use crate::matrix::{MatrixView, MatrixViewMut};
use crate::microkernel::KernelSet;
use crate::pack::{PackedA, PackedB};
use crate::scalar::Scalar;
use crate::tile::TileMut;
use crate::{GemmError, Transpose};
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use perfmodel::cacheblock::BlockSizes;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// How a GEMM call executes layer 3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Single-threaded on the calling thread, no staging copies.
    #[default]
    Serial,
    /// Legacy spawn-per-GEPP path: a `thread::scope` of `n` threads per
    /// macro-iteration (kept as the baseline the pool is measured
    /// against; see `crates/bench/benches/pool_overhead.rs`).
    Scoped(usize),
    /// The persistent worker pool with `n`-way parallelism (the calling
    /// thread participates, so `Pool(n)` keeps at most `n − 1` workers
    /// busy plus itself).
    Pool(usize),
}

impl Parallelism {
    /// Idiomatic mapping from a BLAS-style thread count: `n <= 1` is
    /// [`Parallelism::Serial`], anything larger uses the pool.
    #[must_use]
    pub fn from_threads(n: usize) -> Self {
        if n <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Pool(n)
        }
    }

    /// The parallel degree: how many threads participate in layer 3.
    #[must_use]
    pub fn degree(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Scoped(n) | Parallelism::Pool(n) => n.max(1),
        }
    }

    /// Reject degenerate configurations (`Scoped(0)` / `Pool(0)`), the
    /// checked entry points' counterpart of the old `threads == 0` test.
    pub fn validate(self) -> Result<(), GemmError> {
        match self {
            Parallelism::Scoped(0) | Parallelism::Pool(0) => {
                Err(GemmError::BadConfig("thread count must be positive"))
            }
            _ => Ok(()),
        }
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide pool of persistent layer-3 workers.
///
/// Workers are detached threads parked on the job channel; they are
/// spawned lazily by [`WorkerPool::ensure_workers`] and never exit, so
/// after warm-up a GEMM call costs zero thread spawns. Jobs are pure
/// compute over owned buffers, which keeps the caller's
/// help-while-waiting drain loop deadlock-free.
pub struct WorkerPool {
    injector: Sender<Task>,
    stealer: Receiver<Task>,
    workers: AtomicUsize,
    grow: Mutex<()>,
    tasks: AtomicU64,
    dynamic_epochs: AtomicU64,
    static_epochs: AtomicU64,
}

/// A snapshot of the pool's counters (see [`stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned so far (never shrinks).
    pub workers: usize,
    /// Jobs enqueued over the pool's lifetime.
    pub tasks: u64,
    /// Epochs scheduled dynamically (workers race per `mc`-block).
    pub dynamic_epochs: u64,
    /// Epochs that fell back to static contiguous-band assignment.
    pub static_epochs: u64,
}

/// Counter snapshot of the global pool — observability for tests and
/// the steady-state acceptance criteria (worker count must stabilize
/// after warm-up).
#[must_use]
pub fn stats() -> PoolStats {
    let pool = WorkerPool::global();
    PoolStats {
        workers: pool.workers(),
        tasks: pool.tasks.load(Ordering::Relaxed),
        dynamic_epochs: pool.dynamic_epochs.load(Ordering::Relaxed),
        static_epochs: pool.static_epochs.load(Ordering::Relaxed),
    }
}

impl WorkerPool {
    /// The lazily-initialized process-wide pool.
    #[must_use]
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let (injector, stealer) = channel::unbounded();
            WorkerPool {
                injector,
                stealer,
                workers: AtomicUsize::new(0),
                grow: Mutex::new(()),
                tasks: AtomicU64::new(0),
                dynamic_epochs: AtomicU64::new(0),
                static_epochs: AtomicU64::new(0),
            }
        })
    }

    /// Worker threads currently alive.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.load(Ordering::Acquire)
    }

    /// Upper bound on pool size: callers participate too, so there is
    /// no point holding more workers than a small multiple of the
    /// hardware concurrency even if callers over-subscribe.
    fn max_workers() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .saturating_mul(4)
    }

    /// Grow the pool to at least `want` workers (clamped to
    /// [`WorkerPool::max_workers`]). Idempotent and cheap once satisfied:
    /// the fast path is one atomic load.
    pub fn ensure_workers(&self, want: usize) {
        let want = want.min(Self::max_workers());
        if self.workers.load(Ordering::Acquire) >= want {
            return;
        }
        let _guard = self.grow.lock().expect("pool grow lock poisoned");
        let have = self.workers.load(Ordering::Acquire);
        for i in have..want {
            let stealer = self.stealer.clone();
            std::thread::Builder::new()
                .name(format!("dgemm-pool-{i}"))
                .spawn(move || {
                    // The pool itself holds a receiver, so this loop only
                    // ends with the process.
                    for task in stealer.iter() {
                        task();
                    }
                })
                .expect("failed to spawn dgemm pool worker");
        }
        if want > have {
            self.workers.store(want, Ordering::Release);
        }
    }

    fn submit(&self, task: Task) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        // The pool keeps a receiver alive forever, so send cannot fail.
        self.injector
            .send(task)
            .unwrap_or_else(|_| unreachable!("pool job channel disconnected"));
    }

    /// Pop one queued job and run it on the current thread. Used by
    /// callers waiting at an epoch barrier so the queue drains even when
    /// every worker is busy (including when the pool has zero workers).
    pub fn try_run_one(&self) -> bool {
        match self.stealer.try_recv() {
            Ok(task) => {
                task();
                true
            }
            Err(_) => false,
        }
    }
}

/// One `mc`-block's worth of owned working memory: the packed-A buffer
/// plus the staged rows of the current C panel. Slots are recycled
/// through [`GemmArena`] and travel caller → worker → caller by value.
#[derive(Debug)]
pub struct BlockSlot<T: Scalar> {
    pa: PackedA<T>,
    /// Staged `mc_eff × nc_eff` C block, column-major with `ld = mc_eff`.
    staging: Vec<T>,
    /// Which batch entry this block belongs to.
    entry: usize,
    /// First row of `op(A)` / C covered by this block.
    row0: usize,
    /// Rows covered (`<= mc`).
    mc_eff: usize,
}

impl<T: Scalar> BlockSlot<T> {
    /// The slot's packed-A buffer — the serial path borrows it as its
    /// hoisted per-call block buffer.
    pub(crate) fn pa_mut(&mut self) -> &mut PackedA<T> {
        &mut self.pa
    }
}

/// Thread-local free lists of packing buffers, so steady-state GEMM
/// calls allocate nothing: block slots and B panels are taken at the
/// start of a panel/epoch and returned when it completes. The serial
/// path draws its (single) hoisted packed-A/packed-B pair from the same
/// arena.
#[derive(Debug, Default)]
pub struct GemmArena<T: Scalar> {
    slots: Vec<BlockSlot<T>>,
    panels: Vec<PackedB<T>>,
    fresh: u64,
}

impl<T: Scalar> GemmArena<T> {
    fn new() -> Self {
        GemmArena {
            slots: Vec::new(),
            panels: Vec::new(),
            fresh: 0,
        }
    }

    /// Buffers constructed from scratch (cold path). Stable across calls
    /// once the arena has warmed up on a shape — the steady-state
    /// zero-allocation criterion the tests assert.
    #[must_use]
    pub fn fresh_buffers(&self) -> u64 {
        self.fresh
    }

    pub(crate) fn take_slot(&mut self, mr: usize) -> BlockSlot<T> {
        match self.slots.pop() {
            Some(mut slot) => {
                slot.pa.retarget(mr);
                slot
            }
            None => {
                self.fresh += 1;
                BlockSlot {
                    pa: PackedA::new(mr),
                    staging: Vec::new(),
                    entry: 0,
                    row0: 0,
                    mc_eff: 0,
                }
            }
        }
    }

    pub(crate) fn put_slot(&mut self, slot: BlockSlot<T>) {
        self.slots.push(slot);
    }

    pub(crate) fn take_panel(&mut self, nr: usize) -> PackedB<T> {
        match self.panels.pop() {
            Some(mut panel) => {
                panel.retarget(nr);
                panel
            }
            None => {
                self.fresh += 1;
                PackedB::new(nr)
            }
        }
    }

    pub(crate) fn put_panel(&mut self, panel: PackedB<T>) {
        self.panels.push(panel);
    }
}

thread_local! {
    static ARENA_F64: RefCell<GemmArena<f64>> = RefCell::new(GemmArena::new());
    static ARENA_F32: RefCell<GemmArena<f32>> = RefCell::new(GemmArena::new());
}

/// A [`Scalar`] with a thread-local [`GemmArena`] (thread-locals cannot
/// be generic, so each element type declares its own).
pub trait PoolScalar: Scalar {
    /// Run `f` with this thread's arena. Re-entrant calls (a GEMM issued
    /// from inside another GEMM's packing) fall back to a throwaway
    /// arena instead of aliasing the borrowed one.
    fn with_arena<R>(f: impl FnOnce(&mut GemmArena<Self>) -> R) -> R;
}

macro_rules! impl_pool_scalar {
    ($t:ty, $tls:ident) => {
        impl PoolScalar for $t {
            fn with_arena<R>(f: impl FnOnce(&mut GemmArena<Self>) -> R) -> R {
                $tls.with(|cell| match cell.try_borrow_mut() {
                    Ok(mut arena) => f(&mut arena),
                    Err(_) => f(&mut GemmArena::new()),
                })
            }
        }
    };
}

impl_pool_scalar!(f64, ARENA_F64);
impl_pool_scalar!(f32, ARENA_F32);

/// Epoch-barrier message: a slot coming back from a worker.
struct Done<T: Scalar> {
    slot: BlockSlot<T>,
    panicked: bool,
}

/// Returns every slot of a job run to the caller even if GEBP panics
/// mid-run, so the barrier can never deadlock on a lost done message.
struct RunGuard<T: Scalar> {
    slots: Vec<BlockSlot<T>>,
    tx: Sender<Done<T>>,
}

impl<T: Scalar> Drop for RunGuard<T> {
    fn drop(&mut self) {
        let panicked = std::thread::panicking();
        for slot in self.slots.drain(..) {
            let _ = self.tx.send(Done { slot, panicked });
        }
    }
}

/// GEBP one staged block against the shared panel.
fn run_block<T: Scalar, K: KernelSet<T>>(
    kernel: K,
    alpha: T,
    slot: &mut BlockSlot<T>,
    panel: &PackedB<T>,
    nc_eff: usize,
) {
    let mc_eff = slot.mc_eff;
    let mut tile = TileMut::from_slice(mc_eff, nc_eff, mc_eff.max(1), &mut slot.staging);
    gebp(kernel, alpha, &slot.pa, panel, &mut tile);
}

/// Enqueue one job covering `slots` (one slot in dynamic mode, a whole
/// band in static mode).
fn submit_run<T: PoolScalar, K: KernelSet<T>>(
    pool: &WorkerPool,
    kernel: K,
    alpha: T,
    slots: Vec<BlockSlot<T>>,
    panel: Arc<PackedB<T>>,
    nc_eff: usize,
    tx: Sender<Done<T>>,
) {
    pool.submit(Box::new(move || {
        let mut guard = RunGuard { slots, tx };
        for slot in guard.slots.iter_mut() {
            run_block(kernel, alpha, slot, &panel, nc_eff);
        }
        // Release the shared panel before the guard signals done, so the
        // caller's `Arc::try_unwrap` reclaims the buffer.
        drop(panel);
    }));
}

/// Collect `outstanding` done messages, running queued jobs on this
/// thread while waiting (so the epoch completes even with zero workers).
fn drain_epoch<T: Scalar>(
    pool: &WorkerPool,
    done_rx: &Receiver<Done<T>>,
    outstanding: usize,
    slots: &mut Vec<BlockSlot<T>>,
) {
    let mut received = 0usize;
    let mut poisoned = false;
    while received < outstanding {
        match done_rx.try_recv() {
            Ok(done) => {
                poisoned |= done.panicked;
                slots.push(done.slot);
                received += 1;
                continue;
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                unreachable!("caller holds the done sender")
            }
        }
        if pool.try_run_one() {
            continue;
        }
        // Queue empty: the remaining jobs are running on other threads
        // and will post their dones; park until one arrives.
        match done_rx.recv() {
            Ok(done) => {
                poisoned |= done.panicked;
                slots.push(done.slot);
                received += 1;
            }
            Err(_) => unreachable!("caller holds the done sender"),
        }
    }
    assert!(!poisoned, "dgemm pool worker panicked during layer 3");
}

fn stage_in<T: Scalar>(
    slot: &mut BlockSlot<T>,
    c: &mut MatrixViewMut<'_, T>,
    jj: usize,
    nc_eff: usize,
) {
    let mc_eff = slot.mc_eff;
    slot.staging.clear();
    slot.staging.reserve(mc_eff * nc_eff);
    let mut band = c.sub_mut(slot.row0, jj, mc_eff, nc_eff);
    for j in 0..nc_eff {
        slot.staging.extend_from_slice(band.col_mut(j));
    }
}

fn stage_out<T: Scalar>(
    slot: &BlockSlot<T>,
    c: &mut MatrixViewMut<'_, T>,
    jj: usize,
    nc_eff: usize,
) {
    let mc_eff = slot.mc_eff;
    let mut band = c.sub_mut(slot.row0, jj, mc_eff, nc_eff);
    for j in 0..nc_eff {
        band.col_mut(j)
            .copy_from_slice(&slot.staging[j * mc_eff..(j + 1) * mc_eff]);
    }
}

/// The pooled layers 1–3 driver, unified over single GEMMs (a batch of
/// one) and shared-B batches (all entries' blocks dispatched into the
/// same epoch, sharing one packed panel).
///
/// β must already be applied to every C; shapes must already be
/// validated (all `A_i` are `m×k` under `transa`, all `C_i` are `m×n`).
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature plus the batch
pub(crate) fn gemm_pooled<T: PoolScalar, K: KernelSet<T>>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a_batch: &[MatrixView<'_, T>],
    b: &MatrixView<'_, T>,
    c_batch: &mut [MatrixViewMut<'_, T>],
    kernel: K,
    blocks: BlockSizes,
    degree: usize,
) {
    debug_assert_eq!(a_batch.len(), c_batch.len());
    let Some(first_a) = a_batch.first() else {
        return;
    };
    let (m, k) = transa.apply_dims(first_a.rows(), first_a.cols());
    let n = c_batch[0].cols();
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let BlockSizes { kc, mc, nc, .. } = blocks;
    let degree = degree.max(1);

    let pool = WorkerPool::global();
    pool.ensure_workers(degree.saturating_sub(1));
    let (done_tx, done_rx) = channel::unbounded::<Done<T>>();

    T::with_arena(|arena| {
        let mut slots: Vec<BlockSlot<T>> = Vec::new();
        let mut jj = 0usize;
        while jj < n {
            let nc_eff = nc.min(n - jj);

            // Stage in: one slot per (entry, mc-block) holds its rows of
            // the C panel across every kk epoch, so the accumulation
            // order matches the serial path bit for bit.
            for (entry, c) in c_batch.iter_mut().enumerate() {
                let mut ii = 0usize;
                while ii < m {
                    let mc_eff = mc.min(m - ii);
                    let mut slot = arena.take_slot(kernel.mr());
                    slot.entry = entry;
                    slot.row0 = ii;
                    slot.mc_eff = mc_eff;
                    stage_in(&mut slot, c, jj, nc_eff);
                    slots.push(slot);
                    ii += mc_eff;
                }
            }
            let total = slots.len();
            let workers = degree.min(total);
            // Static contiguous bands when the blocks divide evenly
            // (the partition_rows assignment); otherwise dynamic: one
            // job per block, workers race to pull them.
            let static_bands = workers > 1 && total.is_multiple_of(workers);

            let mut kk = 0usize;
            while kk < k {
                let kc_eff = kc.min(k - kk);
                let mut panel = arena.take_panel(kernel.nr());
                panel.pack(b, transb, kk, jj, kc_eff, nc_eff);
                let panel = Arc::new(panel);

                if static_bands {
                    pool.static_epochs.fetch_add(1, Ordering::Relaxed);
                } else {
                    pool.dynamic_epochs.fetch_add(1, Ordering::Relaxed);
                }
                let run_len = if static_bands { total / workers } else { 1 };
                let mut run: Vec<BlockSlot<T>> = Vec::with_capacity(run_len);
                for mut slot in slots.drain(..) {
                    // The caller packs A (workers cannot read the
                    // borrowed operand); each job ships as soon as its
                    // blocks are packed, pipelining pack against compute.
                    slot.pa.pack(
                        &a_batch[slot.entry],
                        transa,
                        slot.row0,
                        kk,
                        slot.mc_eff,
                        kc_eff,
                    );
                    run.push(slot);
                    if run.len() == run_len {
                        submit_run(
                            pool,
                            kernel,
                            alpha,
                            std::mem::replace(&mut run, Vec::with_capacity(run_len)),
                            Arc::clone(&panel),
                            nc_eff,
                            done_tx.clone(),
                        );
                    }
                }
                debug_assert!(run.is_empty());

                drain_epoch(pool, &done_rx, total, &mut slots);
                // Deterministic block order for the next epoch's static
                // bands (dones arrive in completion order).
                slots.sort_unstable_by_key(|s| (s.entry, s.row0));
                if let Ok(panel) = Arc::try_unwrap(panel) {
                    arena.put_panel(panel);
                }
                kk += kc_eff;
            }

            for slot in std::mem::take(&mut slots) {
                stage_out(&slot, &mut c_batch[slot.entry], jj, nc_eff);
                arena.put_slot(slot);
            }
            jj += nc_eff;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_threads_mapping() {
        assert_eq!(Parallelism::from_threads(0), Parallelism::Serial);
        assert_eq!(Parallelism::from_threads(1), Parallelism::Serial);
        assert_eq!(Parallelism::from_threads(4), Parallelism::Pool(4));
    }

    #[test]
    fn degree_and_validate() {
        assert_eq!(Parallelism::Serial.degree(), 1);
        assert_eq!(Parallelism::Scoped(3).degree(), 3);
        assert_eq!(Parallelism::Pool(8).degree(), 8);
        assert!(Parallelism::Pool(0).validate().is_err());
        assert!(Parallelism::Scoped(0).validate().is_err());
        assert!(Parallelism::Serial.validate().is_ok());
        assert!(Parallelism::Pool(2).validate().is_ok());
    }

    #[test]
    fn pool_runs_submitted_tasks() {
        let pool = WorkerPool::global();
        pool.ensure_workers(2);
        assert!(pool.workers() >= 2);
        let (tx, rx) = channel::unbounded();
        for i in 0..32 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        let mut got: Vec<i32> = (0..32).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn caller_drains_queue_without_workers() {
        // try_run_one lets a caller make progress on its own jobs even
        // if every worker is busy elsewhere.
        let pool = WorkerPool::global();
        let (tx, rx) = channel::unbounded();
        pool.submit(Box::new(move || {
            tx.send(7u32).unwrap();
        }));
        // Either a worker already took it, or we run it inline.
        while rx.try_recv().is_err() {
            pool.try_run_one();
        }
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut arena: GemmArena<f64> = GemmArena::new();
        let slot = arena.take_slot(8);
        let panel = arena.take_panel(6);
        assert_eq!(arena.fresh_buffers(), 2);
        arena.put_slot(slot);
        arena.put_panel(panel);
        // Reuse, including across a kernel change (retarget).
        let slot = arena.take_slot(4);
        let panel = arena.take_panel(4);
        assert_eq!(slot.pa.mr(), 4);
        assert_eq!(panel.nr(), 4);
        assert_eq!(arena.fresh_buffers(), 2);
        arena.put_slot(slot);
        arena.put_panel(panel);
    }

    #[test]
    fn with_arena_is_reentrant() {
        let depth2 = f64::with_arena(|outer| {
            outer.take_slot(8);
            // Inner call must not panic on the borrowed thread-local.
            f64::with_arena(|inner| inner.fresh_buffers())
        });
        assert_eq!(depth2, 0);
    }
}
