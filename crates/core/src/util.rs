//! Small self-contained utilities: a deterministic RNG (so the library
//! has no RNG dependency) and numeric helpers shared by tests and benches.

#![forbid(unsafe_code)]

/// SplitMix64 — tiny, fast, deterministic PRNG (public-domain algorithm by
/// Sebastiano Vigna). Used only for reproducible test/benchmark data.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // take the top 53 bits for a uniform double
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

/// Flop count of an `m×n×k` GEMM (`2mnk`, the convention the paper and
/// LINPACK use).
#[must_use]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Tolerance for comparing a blocked GEMM against the naive oracle:
/// both accumulate `k` products, so the error scales with `k`, the
/// magnitudes of the inputs and the unit roundoff.
#[must_use]
pub fn gemm_tolerance(k: usize, scale: f64) -> f64 {
    let k = k.max(1) as f64;
    // generous constant: reassociation across blocking changes the
    // summation order, but error stays O(k·eps·scale)
    32.0 * k * f64::EPSILON * scale.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 (cross-checked against the reference
        // C implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(123);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for bound in [1, 2, 17, 1000] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn flops_formula() {
        assert_eq!(gemm_flops(10, 20, 30), 12000.0);
    }

    #[test]
    fn tolerance_scales_with_k() {
        assert!(gemm_tolerance(1000, 1.0) > gemm_tolerance(10, 1.0));
        assert!(gemm_tolerance(10, 100.0) > gemm_tolerance(10, 1.0));
    }
}
