//! Admission-controlled GEMM serving layer (DESIGN.md §15).
//!
//! The library layers below this module answer "how fast can one call
//! be"; a serving process asks a different question — "what happens to
//! call N+1 when N callers are already inside". This module puts a
//! bounded, tenant-fair queue in front of [`crate::gemm`]/
//! [`crate::batch`] and makes the overload behaviour explicit:
//!
//! * **Admission control** — every submission is either admitted or
//!   answered immediately with a typed [`ServiceError`]; the bound
//!   shrinks when the worker pool looks unhealthy (watchdog timeouts,
//!   dead workers) so a struggling pool sheds load instead of
//!   accumulating it.
//! * **Deadlines and cancellation** — each admitted request carries an
//!   optional deadline and a cooperative cancel flag; both resolve the
//!   request with a typed error instead of silently dropping it.
//! * **Coalescing** — same-tenant requests against the *same* weight
//!   matrix are folded into one [`crate::batch::gemm_batch_shared_b`]
//!   execution sharing one packed `op(B)` image from a per-tenant,
//!   quota-bounded [`PackCache`] (one tenant's weights cannot evict
//!   another's).
//! * **Graceful degradation** — recoverable pool faults are retried
//!   with backoff; an unhealthy shard degrades to the bit-identical
//!   serial path rather than failing the caller. Watchdog-expired
//!   epochs are *served* (the recovery contract keeps `C` bit-exact)
//!   while the shard is quarantined.
//!
//! The invariant the whole module is built around, and that the chaos
//! suite audits: **every admitted request resolves exactly once**, with
//! either a bit-correct result or a typed error. There is no async
//! runtime underneath — a [`Ticket`] is a one-shot channel receiver and
//! the scheduler is one named thread, so the layer works (and is
//! testable) in a plain threaded process.

use crate::batch::gemm_batch_with_cache;
use crate::faults;
use crate::gemm::{env_u64, GemmConfig};
use crate::matrix::{Matrix, MatrixView, MatrixViewMut};
use crate::metricsd::{self, MetricsServer, MetricsSource};
use crate::pool::{self, Parallelism, WorkerPool};
use crate::prepack::{PackCache, PrepackedB};
use crate::store;
use crate::telemetry::{ServiceCounters, SVC};
use crate::trace::{self, HealthEventKind, LatencyHistogram, TraceEventRec, TraceKind};
use crate::{GemmError, Transpose};
use crossbeam::channel::{unbounded, Receiver, Sender};
use perfmodel::tuning::ShapeClass;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Typed answer for a request the service will not (or could not)
/// compute. Callers always get *an* answer; this enum is the complete
/// set of non-result answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Shed at admission: the service queue (or the submitting tenant's
    /// quota slice of it) is full. Retry later, ideally with backoff.
    Overloaded {
        /// Requests queued against the limit that was hit.
        queue_depth: usize,
        /// The limit that was hit (global bound or tenant quota; the
        /// global bound shrinks while the pool is unhealthy).
        limit: usize,
    },
    /// The request's deadline expired before a result was produced.
    DeadlineExceeded {
        /// The deadline budget the request was admitted with.
        budget_ms: u64,
    },
    /// The request was refused for a reason other than load: shutdown,
    /// cooperative cancellation, invalid shapes, or a pool fault that
    /// survived every retry and the serial fallback.
    Rejected(&'static str),
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::Overloaded { queue_depth, limit } => {
                write!(
                    f,
                    "service overloaded: {queue_depth} queued against limit {limit}"
                )
            }
            ServiceError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline of {budget_ms} ms exceeded before completion")
            }
            ServiceError::Rejected(why) => write!(f, "request rejected: {why}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Serving-layer knobs. [`ServiceConfig::from_env`] reads the
/// `DGEMM_SERVICE_*` environment variables documented in the README;
/// absent variables keep the defaults below and garbage values are
/// typed [`GemmError::BadConfig`] errors, never silent fallbacks.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Global admission bound on queued requests (`DGEMM_SERVICE_QUEUE`,
    /// default 256, must be ≥ 1). While the pool is unhealthy the
    /// effective bound is a quarter of this (at least 1).
    pub queue_limit: usize,
    /// Per-tenant bound on queued requests (`DGEMM_SERVICE_TENANT_QUOTA`,
    /// default = `queue_limit`, must be ≥ 1).
    pub tenant_quota: usize,
    /// Default deadline applied to every submission
    /// (`DGEMM_SERVICE_DEADLINE_MS`, 0 or absent = none).
    pub deadline: Option<Duration>,
    /// Dedicated pool shards owned by this service
    /// (`DGEMM_SERVICE_SHARDS`, default 1). `0` routes execution to the
    /// process-global pool instead of dedicated shards.
    pub shards: usize,
    /// Bounded retries after a recoverable pool fault
    /// (`DGEMM_SERVICE_RETRIES`, default 2).
    pub max_retries: u32,
    /// Maximum requests folded into one coalesced batch
    /// (`DGEMM_SERVICE_COALESCE`, default 8; 1 disables coalescing).
    pub coalesce: usize,
    /// Per-tenant [`PackCache`] capacity in packed weight images
    /// (`DGEMM_SERVICE_CACHE_ENTRIES`, default 8; 0 disables the
    /// per-tenant caches entirely).
    pub cache_entries: usize,
    /// How long a shard stays quarantined (serial execution) after a
    /// watchdog timeout or contained fault before it is retried.
    pub unhealthy_cooldown: Duration,
    /// Directory of pre-packed weight blobs (`DGEMM_WEIGHT_STORE`,
    /// absent = no warm start). Every readable blob whose geometry
    /// matches this service's GEMM config is loaded at boot onto the
    /// *shelf*; the first request against a weight whose source digest
    /// matches a shelved blob attaches the blob to the tenant's cache
    /// instead of packing — zero `packed_b_bytes` on the warm path,
    /// and automatic re-attach after a cache generation bump (the
    /// worker-pool-restart failover story).
    pub weight_store: Option<std::path::PathBuf>,
    /// The GEMM configuration executions run under. Dedicated shards
    /// are honoured by routing [`Parallelism::Pool`] epochs to the
    /// shard via [`pool::with_pool`].
    pub gemm: GemmConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_limit: 256,
            tenant_quota: 256,
            deadline: None,
            shards: 1,
            max_retries: 2,
            coalesce: 8,
            cache_entries: 8,
            unhealthy_cooldown: Duration::from_millis(250),
            weight_store: None,
            gemm: GemmConfig::default()
                .with_parallelism(Parallelism::Pool(WorkerPool::max_workers())),
        }
    }
}

impl ServiceConfig {
    /// Build a config from the `DGEMM_SERVICE_*` environment (and
    /// [`GemmConfig::auto`] for the execution side). Unset variables
    /// keep defaults; unparsable ones are typed errors.
    pub fn from_env() -> Result<Self, GemmError> {
        let mut cfg = ServiceConfig {
            gemm: GemmConfig::auto()?,
            ..ServiceConfig::default()
        };
        if let Some(q) = env_u64(
            "DGEMM_SERVICE_QUEUE",
            "DGEMM_SERVICE_QUEUE must be an integer ≥ 1",
        )? {
            if q == 0 {
                return Err(GemmError::BadConfig(
                    "DGEMM_SERVICE_QUEUE must be an integer ≥ 1",
                ));
            }
            cfg.queue_limit = q as usize;
            cfg.tenant_quota = cfg.tenant_quota.min(cfg.queue_limit);
        }
        if let Some(q) = env_u64(
            "DGEMM_SERVICE_TENANT_QUOTA",
            "DGEMM_SERVICE_TENANT_QUOTA must be an integer ≥ 1",
        )? {
            if q == 0 {
                return Err(GemmError::BadConfig(
                    "DGEMM_SERVICE_TENANT_QUOTA must be an integer ≥ 1",
                ));
            }
            cfg.tenant_quota = q as usize;
        } else {
            cfg.tenant_quota = cfg.queue_limit;
        }
        if let Some(ms) = env_u64(
            "DGEMM_SERVICE_DEADLINE_MS",
            "DGEMM_SERVICE_DEADLINE_MS must be an integer (ms, 0 = none)",
        )? {
            cfg.deadline = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(s) = env_u64(
            "DGEMM_SERVICE_SHARDS",
            "DGEMM_SERVICE_SHARDS must be an integer",
        )? {
            cfg.shards = s as usize;
        }
        if let Some(r) = env_u64(
            "DGEMM_SERVICE_RETRIES",
            "DGEMM_SERVICE_RETRIES must be an integer",
        )? {
            cfg.max_retries = r as u32;
        }
        if let Some(c) = env_u64(
            "DGEMM_SERVICE_COALESCE",
            "DGEMM_SERVICE_COALESCE must be an integer ≥ 1",
        )? {
            if c == 0 {
                return Err(GemmError::BadConfig(
                    "DGEMM_SERVICE_COALESCE must be an integer ≥ 1",
                ));
            }
            cfg.coalesce = c as usize;
        }
        if let Some(e) = env_u64(
            "DGEMM_SERVICE_CACHE_ENTRIES",
            "DGEMM_SERVICE_CACHE_ENTRIES must be an integer",
        )? {
            cfg.cache_entries = e as usize;
        }
        match std::env::var("DGEMM_WEIGHT_STORE") {
            Ok(dir) if !dir.is_empty() => {
                cfg.weight_store = Some(std::path::PathBuf::from(dir));
            }
            Ok(_) | Err(std::env::VarError::NotPresent) => {}
            Err(std::env::VarError::NotUnicode(_)) => {
                return Err(GemmError::BadConfig(
                    "DGEMM_WEIGHT_STORE must be a unicode path",
                ));
            }
        }
        Ok(cfg)
    }
}

/// One admitted request, owned by the scheduler until it resolves.
struct Request {
    tenant: String,
    alpha: f64,
    a: Arc<Matrix>,
    transb: Transpose,
    b: Arc<Matrix>,
    deadline: Option<Instant>,
    budget_ms: u64,
    cancelled: Arc<AtomicBool>,
    tx: Sender<Result<Matrix, ServiceError>>,
    /// Trace identity (also the ticket ID) and the monotonic submit
    /// timestamp every latency figure is anchored to.
    trace: u64,
    submitted_ns: u64,
}

impl Request {
    /// Coalescing key: same weight matrix (by `Arc` identity, which is
    /// ABA-proof while both sides hold the `Arc`), same `op`, same
    /// scaling, same input shape. Tenancy is implied — groups are only
    /// formed inside one tenant's queue.
    fn coalesces_with(&self, other: &Request) -> bool {
        Arc::ptr_eq(&self.b, &other.b)
            && self.transb == other.transb
            && self.alpha.to_bits() == other.alpha.to_bits()
            && self.a.rows() == other.a.rows()
            && self.a.cols() == other.a.cols()
    }
}

/// Handle for one admitted request: a one-shot receiver plus a
/// cooperative cancel flag. Exactly one [`Result`] will arrive on it,
/// even across injected faults, pool deaths and service shutdown.
pub struct Ticket {
    rx: Receiver<Result<Matrix, ServiceError>>,
    cancelled: Arc<AtomicBool>,
    id: u64,
}

impl core::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Ticket")
            .field("id", &self.id)
            .field("cancelled", &self.cancelled.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// This request's trace ID: pass it to
    /// [`GemmService::trace_of`] for the recorded span chain. Stable
    /// for the life of the ticket and process-unique.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request resolves. Consumes the ticket — the
    /// resolution is delivered exactly once.
    pub fn wait(self) -> Result<Matrix, ServiceError> {
        match self.rx.recv() {
            Ok(r) => r,
            // Unreachable by construction (the scheduler drains before
            // exiting), kept as a typed answer rather than a panic.
            Err(_) => Err(ServiceError::Rejected("service dropped the request")),
        }
    }

    /// Ask the service to abandon this request. Cooperative: a request
    /// already executing finishes; one still queued resolves with
    /// [`ServiceError::Rejected`]. Waiting after a cancel is still
    /// guaranteed to return.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }
}

/// Per-tenant packed-weight state: a quota-bounded cache plus the
/// pinned `Arc`s of the weights it has packed. Pinning makes the
/// pointer-identity cache key sound — a weight's allocation cannot be
/// recycled (and aliased by a new matrix) while its packed image is
/// live; eviction invalidates the cache entry *before* dropping the
/// pin.
struct TenantCache {
    cache: Arc<PackCache>,
    pinned: VecDeque<Arc<Matrix>>,
}

/// One execution shard: a dedicated pool (or `None` for the global
/// pool) plus its quarantine clock.
struct Shard {
    pool: Option<Arc<WorkerPool>>,
    unhealthy_until: Mutex<Option<Instant>>,
}

struct QueueState {
    /// Per-tenant FIFO queues.
    queues: HashMap<String, VecDeque<Request>>,
    /// Round-robin order of tenants with queued work.
    rr: VecDeque<String>,
    /// Total queued requests across tenants.
    depth: usize,
    shutdown: bool,
}

/// Per-(tenant, shape-class) request latency histograms: end-to-end
/// latency, queue wait, compute and pack time (the latter two bridged
/// from telemetry phase spans; for a coalesced group every member
/// observes the shared batch's phase totals).
#[derive(Debug, Default)]
struct RequestHists {
    total: LatencyHistogram,
    queue: LatencyHistogram,
    compute: LatencyHistogram,
    pack: LatencyHistogram,
}

impl RequestHists {
    /// The four metrics in stable schema order.
    fn metrics(&self) -> [(&'static str, &LatencyHistogram); 4] {
        [
            ("total", &self.total),
            ("queue", &self.queue),
            ("compute", &self.compute),
            ("pack", &self.pack),
        ]
    }
}

/// One warm-start blob loaded at boot, awaiting its weight matrix: the
/// reconstructed panels plus the source digest used to prove, at attach
/// time, that a submitted weight is bit-identical to what was packed
/// offline (identity can't be pointer-based across processes).
struct ShelfEntry {
    panels: Arc<PrepackedB>,
    digest: u64,
}

/// Per-instance weight-store counters (process-wide totals live in
/// [`crate::telemetry::Snapshot::store`]).
struct StoreCounters {
    loads: AtomicU64,
    load_failures: AtomicU64,
    attaches: AtomicU64,
}

struct Inner {
    cfg: ServiceConfig,
    state: Mutex<QueueState>,
    work: Condvar,
    shards: Vec<Shard>,
    rr_shard: AtomicUsize,
    tenants: Mutex<HashMap<String, TenantCache>>,
    /// Warm-start blobs loaded from `cfg.weight_store` at boot.
    shelf: Vec<ShelfEntry>,
    store_counters: StoreCounters,
    /// Per-instance mirror of the process-wide [`SVC`] counters,
    /// exported by [`GemmService::status_json`].
    counters: ServiceCounters,
    /// Latency histograms keyed by `(tenant, shape-class label)`.
    hists: Mutex<HashMap<(String, String), Arc<RequestHists>>>,
    /// Snapshot ordering for scrapers: bumped by every `status_json` /
    /// `/metrics` render.
    snapshot_seq: AtomicU64,
}

/// Load every blob under `dir` onto the shelf, in filename order so a
/// boot is deterministic. Unreadable or corrupt blobs are counted
/// ([`GemmError::BadStore`] internally) and skipped — a bad blob on
/// disk must degrade to live packing, never block boot.
fn load_shelf(dir: &std::path::Path, counters: &StoreCounters) -> Vec<ShelfEntry> {
    let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect(),
        Err(_) => {
            // An unreadable directory is one failed "load"; the boot
            // proceeds cold (live packing) rather than failing.
            counters.load_failures.fetch_add(1, Ordering::Relaxed);
            crate::telemetry::store_load_failure();
            return Vec::new();
        }
    };
    paths.sort();
    let mut shelf = Vec::new();
    for path in paths {
        match store::load::<f64>(&path) {
            Ok(blob) => {
                counters.loads.fetch_add(1, Ordering::Relaxed);
                shelf.push(ShelfEntry {
                    panels: blob.panels,
                    digest: blob.source_digest,
                });
            }
            Err(_) => {
                counters.load_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    shelf
}

/// The admission-controlled serving front-end. See the module docs for
/// the ladder it implements; construction spawns the scheduler thread
/// and (with `cfg.shards > 0`) the dedicated pool shards; drop (or
/// [`GemmService::shutdown`]) drains every queued request to a typed
/// resolution before returning.
pub struct GemmService {
    inner: Arc<Inner>,
    scheduler: Option<thread::JoinHandle<()>>,
}

impl GemmService {
    /// Start a service with explicit knobs.
    pub fn new(cfg: ServiceConfig) -> Self {
        let shards = if cfg.shards == 0 {
            vec![Shard {
                pool: None,
                unhealthy_until: Mutex::new(None),
            }]
        } else {
            (0..cfg.shards)
                .map(|i| Shard {
                    pool: Some(WorkerPool::new_shard(&format!("svc{i}"))),
                    unhealthy_until: Mutex::new(None),
                })
                .collect()
        };
        let store_counters = StoreCounters {
            loads: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
            attaches: AtomicU64::new(0),
        };
        let shelf = match &cfg.weight_store {
            Some(dir) => load_shelf(dir, &store_counters),
            None => Vec::new(),
        };
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(QueueState {
                queues: HashMap::new(),
                rr: VecDeque::new(),
                depth: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            shards,
            rr_shard: AtomicUsize::new(0),
            tenants: Mutex::new(HashMap::new()),
            shelf,
            store_counters,
            counters: ServiceCounters::new(),
            hists: Mutex::new(HashMap::new()),
            snapshot_seq: AtomicU64::new(0),
        });
        let sched = Arc::clone(&inner);
        let scheduler = thread::Builder::new()
            .name("dgemm-service-sched".into())
            .spawn(move || scheduler_main(sched))
            .unwrap_or_else(|e| panic!("failed to spawn dgemm service scheduler: {e}"));
        GemmService {
            inner,
            scheduler: Some(scheduler),
        }
    }

    /// Start a service configured from the `DGEMM_SERVICE_*` (and
    /// `DGEMM_*`) environment.
    pub fn from_env() -> Result<Self, GemmError> {
        Ok(GemmService::new(ServiceConfig::from_env()?))
    }

    /// Submit `C := alpha · A · op(B)` for tenant `tenant` under the
    /// service's default deadline. `A` must be stored `m×k`
    /// (non-transposed), matching the batch-coalescing contract.
    ///
    /// Returns a [`Ticket`] when admitted; a typed [`ServiceError`]
    /// when shed or refused. Either way the caller has an answer.
    pub fn submit(
        &self,
        tenant: &str,
        alpha: f64,
        a: Arc<Matrix>,
        transb: Transpose,
        b: Arc<Matrix>,
    ) -> Result<Ticket, ServiceError> {
        self.submit_with_deadline(tenant, alpha, a, transb, b, self.inner.cfg.deadline)
    }

    /// [`GemmService::submit`] with an explicit per-request deadline
    /// (`None` = unbounded), overriding the service default.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        alpha: f64,
        a: Arc<Matrix>,
        transb: Transpose,
        b: Arc<Matrix>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        let inner = &*self.inner;
        let trace_id = trace::next_trace_id();
        let submitted_ns = trace::now_ns();
        trace::record_event(trace_id, TraceKind::Submitted, 0, 0);
        let (m, k) = (a.rows(), a.cols());
        let (bk, n) = transb.apply_dims(b.rows(), b.cols());
        if k != bk {
            inner.count(|c| &c.rejected);
            trace::record_event(trace_id, TraceKind::Rejected, 0, 0);
            return Err(ServiceError::Rejected(
                "inner dimensions of A and op(B) disagree",
            ));
        }
        if m == 0 || n == 0 || k == 0 {
            inner.count(|c| &c.rejected);
            trace::record_event(trace_id, TraceKind::Rejected, 0, 0);
            return Err(ServiceError::Rejected("empty matrix dimensions"));
        }
        let limit = inner.effective_queue_limit();
        let mut st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.shutdown {
            drop(st);
            inner.count(|c| &c.rejected);
            trace::record_event(trace_id, TraceKind::Rejected, 0, 0);
            return Err(ServiceError::Rejected("service is shut down"));
        }
        if st.depth >= limit {
            let depth = st.depth;
            drop(st);
            inner.count(|c| &c.shed_overload);
            trace::record_event(
                trace_id,
                TraceKind::ShedOverload,
                depth as u64,
                limit as u64,
            );
            trace::health_event(
                HealthEventKind::Shed,
                trace_id,
                depth as u64,
                "global queue bound hit at admission",
            );
            return Err(ServiceError::Overloaded {
                queue_depth: depth,
                limit,
            });
        }
        let occupancy = st.queues.get(tenant).map_or(0, VecDeque::len);
        if occupancy >= inner.cfg.tenant_quota {
            drop(st);
            inner.count(|c| &c.shed_quota);
            trace::record_event(
                trace_id,
                TraceKind::ShedQuota,
                occupancy as u64,
                inner.cfg.tenant_quota as u64,
            );
            trace::health_event(
                HealthEventKind::Shed,
                trace_id,
                occupancy as u64,
                "tenant quota hit at admission",
            );
            return Err(ServiceError::Overloaded {
                queue_depth: occupancy,
                limit: inner.cfg.tenant_quota,
            });
        }
        let (tx, rx) = unbounded();
        let cancelled = Arc::new(AtomicBool::new(false));
        let req = Request {
            tenant: tenant.to_string(),
            alpha,
            a,
            transb,
            b,
            deadline: deadline.map(|d| Instant::now() + d),
            budget_ms: deadline.map_or(0, |d| d.as_millis() as u64),
            cancelled: Arc::clone(&cancelled),
            tx,
            trace: trace_id,
            submitted_ns,
        };
        let queue = st.queues.entry(tenant.to_string()).or_default();
        let was_empty = queue.is_empty();
        queue.push_back(req);
        if was_empty {
            st.rr.push_back(tenant.to_string());
        }
        st.depth += 1;
        drop(st);
        inner.count(|c| &c.admitted);
        trace::record_event(trace_id, TraceKind::Admitted, 0, 0);
        inner.work.notify_one();
        Ok(Ticket {
            rx,
            cancelled,
            id: trace_id,
        })
    }

    /// Requests currently queued (admitted, not yet executing).
    pub fn queue_depth(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .depth
    }

    /// Scrapeable `dgemm-telem-v1` snapshot of *this* service instance:
    /// queue depth, shed/retry/degrade counters, per-tenant occupancy
    /// and cache bytes, per-shard pool health.
    pub fn status_json(&self) -> String {
        self.inner.status_json()
    }

    /// The `/metrics` body for this instance: Prometheus text
    /// exposition format (counters, gauges and the per-tenant /
    /// shape-class latency histograms). What
    /// [`GemmService::serve_metrics`] serves; exposed directly so tests
    /// and embedders can scrape without a socket.
    pub fn metrics_text(&self) -> String {
        self.inner.prometheus_text()
    }

    /// The recorded span chain for a ticket ([`Ticket::id`]), oldest
    /// first — the request debug API. Spans survive in the bounded
    /// trace ring until overwritten; empty when the `trace` feature is
    /// off, `DGEMM_TRACE=off`, or the ring has recycled the entries.
    pub fn trace_of(&self, ticket_id: u64) -> Vec<TraceEventRec> {
        trace::events_for(ticket_id)
    }

    /// Bind a [`crate::metricsd`] scrape endpoint on `addr` (e.g.
    /// `"127.0.0.1:9464"`; port 0 picks a free port) serving this
    /// instance's `/metrics` and `/status`. The endpoint lives until
    /// the returned handle drops and holds its own reference to the
    /// service internals, so it stays scrapeable (final counters)
    /// even after the service shuts down.
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<MetricsServer> {
        let source: Arc<dyn MetricsSource> = Arc::new(ScrapeSource(Arc::clone(&self.inner)));
        MetricsServer::spawn(addr, source)
    }

    /// [`GemmService::serve_metrics`] bound to `DGEMM_METRICS_ADDR`;
    /// `Ok(None)` when the variable is unset or empty.
    pub fn serve_metrics_from_env(&self) -> std::io::Result<Option<MetricsServer>> {
        match metricsd::addr_from_env()? {
            Some(addr) => Ok(Some(self.serve_metrics(&addr)?)),
            None => Ok(None),
        }
    }

    /// Stop admitting, drain every queued request to a resolution, wind
    /// down the shards, and return. Equivalent to dropping the service.
    pub fn shutdown(self) {}
}

/// The [`MetricsSource`] adapter handed to [`crate::metricsd`]: holds
/// its own `Arc<Inner>` so the scrape surface outlives the service
/// handle.
struct ScrapeSource(Arc<Inner>);

impl MetricsSource for ScrapeSource {
    fn metrics_text(&self) -> String {
        self.0.prometheus_text()
    }

    fn status_json(&self) -> String {
        self.0.status_json()
    }
}

impl Drop for GemmService {
    fn drop(&mut self) {
        {
            let mut st = self
                .inner
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.shutdown = true;
        }
        self.inner.work.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        // Shards wind down when their last `Arc` drops with `Inner`.
    }
}

impl Inner {
    /// Bump one counter on both the process-wide [`SVC`] totals and
    /// this instance's scrapeable mirror.
    fn count(&self, sel: fn(&ServiceCounters) -> &AtomicU64) {
        sel(&SVC).fetch_add(1, Ordering::Relaxed);
        sel(&self.counters).fetch_add(1, Ordering::Relaxed);
    }

    fn count_n(&self, sel: fn(&ServiceCounters) -> &AtomicU64, n: u64) {
        sel(&SVC).fetch_add(n, Ordering::Relaxed);
        sel(&self.counters).fetch_add(n, Ordering::Relaxed);
    }

    /// The admission bound, shrunk to a quarter while any shard is
    /// unhealthy — load-shedding driven by pool health and watchdog
    /// signals, not just queue depth.
    fn effective_queue_limit(&self) -> usize {
        let unhealthy = (0..self.shards.len()).any(|i| self.shard_unhealthy(i));
        if unhealthy {
            (self.cfg.queue_limit / 4).max(1)
        } else {
            self.cfg.queue_limit
        }
    }

    /// A shard is unhealthy while its quarantine cooldown runs, or when
    /// its pool has started workers but none remain alive.
    fn shard_unhealthy(&self, idx: usize) -> bool {
        let shard = &self.shards[idx];
        {
            let mut until = shard
                .unhealthy_until
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match *until {
                Some(t) if Instant::now() < t => return true,
                Some(_) => *until = None,
                None => {}
            }
        }
        let st = match &shard.pool {
            Some(p) => p.status(),
            None => pool::status(),
        };
        st.workers_started > 0 && st.workers_alive == 0
    }

    fn quarantine(&self, idx: usize) {
        *self.shards[idx]
            .unhealthy_until
            .lock()
            .unwrap_or_else(PoisonError::into_inner) =
            Some(Instant::now() + self.cfg.unhealthy_cooldown);
    }

    /// The latency histograms for `req`'s `(tenant, shape-class)` key.
    fn hists_for(&self, req: &Request) -> Arc<RequestHists> {
        let (_, n) = req.transb.apply_dims(req.b.rows(), req.b.cols());
        let class = ShapeClass::of(req.a.rows(), n, req.a.cols()).label();
        let mut map = self.hists.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry((req.tenant.clone(), class)).or_default())
    }

    /// Record one request's queue/compute/pack observations and its
    /// `Executed` span (the group-attempt wall clock). Compute and pack
    /// come from the phase accumulators the trace context bridged from
    /// telemetry spans; without them (feature off, `telemetry` off, or
    /// a fully degraded path) compute falls back to the attempt wall
    /// clock.
    fn observe_request(
        &self,
        req: &Request,
        dequeue_ns: u64,
        exec_start_ns: u64,
        exec_ns: u64,
        ctx: Option<&trace::TraceCtx>,
    ) {
        trace::record_span(req.trace, TraceKind::Executed, exec_start_ns, exec_ns, 0, 0);
        let h = self.hists_for(req);
        h.queue
            .record_us(dequeue_ns.saturating_sub(req.submitted_ns) / 1_000);
        let compute_ns = ctx.map_or(0, |c| c.compute_ns());
        h.compute.record_us(if compute_ns > 0 {
            compute_ns / 1_000
        } else {
            exec_ns / 1_000
        });
        h.pack.record_us(ctx.map_or(0, |c| c.pack_ns()) / 1_000);
    }

    /// Deliver the one-and-only resolution for `req`, counting the
    /// outcome. Consumes the request: exactly-once by construction.
    /// Also the tail of the trace chain: records the `Resolved` event,
    /// the end-to-end latency histogram sample, and (in
    /// `DGEMM_TRACE=json` mode) prints the request's chrome-trace line.
    fn resolve(&self, req: Request, result: Result<Matrix, ServiceError>) {
        let outcome: u64 = match &result {
            Ok(_) => {
                self.count(|c| &c.completed);
                0
            }
            Err(ServiceError::Overloaded { .. }) => {
                self.count(|c| &c.shed_overload);
                1
            }
            Err(ServiceError::DeadlineExceeded { .. }) => {
                self.count(|c| &c.deadline_misses);
                2
            }
            Err(ServiceError::Rejected(_)) => {
                self.count(|c| &c.rejected);
                3
            }
        };
        self.hists_for(&req)
            .total
            .record_us(trace::now_ns().saturating_sub(req.submitted_ns) / 1_000);
        trace::record_event(req.trace, TraceKind::Resolved, outcome, 0);
        trace::emit_json(req.trace);
        // A caller that dropped its ticket just discards the result.
        let _ = req.tx.send(result);
    }

    /// Pop the next round-robin tenant's head request plus every queued
    /// request of that tenant that coalesces with it (bounded by
    /// `cfg.coalesce`).
    fn take_group(&self, st: &mut QueueState) -> Vec<Request> {
        // depth > 0 implies a queued tenant with a non-empty queue; the
        // defensive empty returns keep a broken invariant from
        // panicking the scheduler (the loop just re-checks depth).
        let Some(tenant) = st.rr.pop_front() else {
            return Vec::new();
        };
        let Some(queue) = st.queues.get_mut(&tenant) else {
            return Vec::new();
        };
        let Some(head) = queue.pop_front() else {
            return Vec::new();
        };
        let mut group = vec![head];
        if self.cfg.coalesce > 1 {
            let mut rest = std::mem::take(queue);
            while let Some(req) = rest.pop_front() {
                if group.len() < self.cfg.coalesce && group[0].coalesces_with(&req) {
                    group.push(req);
                } else {
                    queue.push_back(req);
                }
            }
        }
        if !queue.is_empty() {
            st.rr.push_back(tenant);
        }
        st.depth -= group.len();
        group
    }

    /// Fetch (or create) `tenant`'s pack cache, pin `b` in it, and — on
    /// the first sight of a weight under the current cache generation —
    /// try to attach a shelved warm-start blob so the upcoming
    /// `get_or_pack` hits without packing. Returns `None` when
    /// per-tenant caching is disabled.
    fn tenant_cache(
        &self,
        tenant: &str,
        b: &Arc<Matrix>,
        transb: Transpose,
    ) -> Option<Arc<PackCache>> {
        if self.cfg.cache_entries == 0 {
            return None;
        }
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantCache {
                cache: Arc::new(PackCache::with_capacity(0)),
                pinned: VecDeque::new(),
            });
        if let Some(pos) = entry.pinned.iter().position(|w| Arc::ptr_eq(w, b)) {
            // LRU touch.
            if let Some(w) = entry.pinned.remove(pos) {
                entry.pinned.push_back(w);
            }
        } else {
            if entry.pinned.len() >= self.cfg.cache_entries {
                if let Some(old) = entry.pinned.pop_front() {
                    entry.cache.invalidate(&old.view());
                }
            }
            entry.pinned.push_back(Arc::clone(b));
        }
        // The pinned LRU is the quota unit (weights per tenant); the
        // cache's byte bound follows it so every pinned weight's packed
        // image fits. `nr` padding in the packed n dimension is the
        // only growth over the raw weight, so entries × padded size is
        // exact. Monotonic max: a small weight pinned after a large one
        // must not shrink the bound below live entries.
        let nr = self.cfg.gemm.kernel.nr();
        let padded_bytes = b.rows() * b.cols().div_ceil(nr) * nr * std::mem::size_of::<f64>();
        let quota = self.cfg.cache_entries * padded_bytes;
        if quota > entry.cache.capacity() {
            entry.cache.set_capacity(quota);
        }
        let cache = Arc::clone(&entry.cache);
        drop(tenants);
        self.attach_from_shelf(&cache, b, transb);
        Some(cache)
    }

    /// If the cache would miss on `(b, transb)` under this service's
    /// packing geometry and a shelved blob covers it, verify the blob's
    /// source digest against the live weight (a read-only stream — no
    /// pack telemetry) and seed the cache with its panels. Runs on
    /// every group, so a generation bump or a fresh cache after a
    /// worker-pool restart re-attaches automatically: that is the
    /// instant-failover path.
    fn attach_from_shelf(&self, cache: &PackCache, b: &Arc<Matrix>, transb: Transpose) {
        if self.shelf.is_empty() {
            return;
        }
        let nr = self.cfg.gemm.kernel.nr();
        let (kc, nc) = (self.cfg.gemm.blocks.kc, self.cfg.gemm.blocks.nc);
        let view = b.view();
        if cache.contains(&view, transb, nr, kc, nc) {
            return;
        }
        let (k, n) = transb.apply_dims(b.rows(), b.cols());
        // One digest stream per operand, compared against every
        // geometry-compatible shelf entry: a multi-weight shelf costs
        // one read-only pass, and `verify_failures` means "a covering
        // blob existed but none matched the live bits" — not the
        // ordinary scan past other tenants' weights.
        let mut covered = false;
        let mut digest = 0u64;
        for entry in &self.shelf {
            if !entry.panels.matches(k, n, transb, nr, kc, nc) {
                continue;
            }
            if !covered {
                covered = true;
                digest = store::matrix_digest(&view, transb, kc, nc);
            }
            if entry.digest != digest {
                continue;
            }
            crate::telemetry::store_verify(true);
            if cache
                .insert_prepacked(&view, transb, Arc::clone(&entry.panels))
                .is_ok()
            {
                self.store_counters.attaches.fetch_add(1, Ordering::Relaxed);
                crate::telemetry::store_attach();
            }
            return;
        }
        if covered {
            crate::telemetry::store_verify(false);
        }
    }

    /// Run one coalesced group end to end: deadline/cancel triage, the
    /// retry-with-backoff / degrade-to-serial ladder, panic containment
    /// with per-request serial recovery — and resolve every member
    /// exactly once.
    fn execute_group(&self, group: Vec<Request>) {
        // The group leader's trace context is installed on this thread
        // (and propagated into pool job closures) for the whole
        // execution, so telemetry phase spans, injected faults and
        // journal entries attribute to the request that caused them.
        // Shared batch work lands on the leader; members carry a
        // `Coalesced` pointer at the leader's trace/batch ID.
        let leader_ctx = group.first().map(|r| trace::TraceCtx::new(r.trace));
        let _scope = trace::adopt(leader_ctx.clone());
        // Injection site: the queue stalls between dequeue and triage,
        // so a stall can push queued requests past their deadlines.
        faults::service_stall_delay();
        let dequeue_ns = trace::now_ns();
        for req in &group {
            trace::record_span(
                req.trace,
                TraceKind::Queued,
                req.submitted_ns,
                dequeue_ns.saturating_sub(req.submitted_ns),
                0,
                0,
            );
        }
        let now = Instant::now();
        let mut live: Vec<Request> = Vec::with_capacity(group.len());
        for req in group {
            if req.cancelled.load(Ordering::Acquire) {
                self.resolve(req, Err(ServiceError::Rejected("cancelled by caller")));
            } else if req.deadline.is_some_and(|d| now >= d) {
                let budget_ms = req.budget_ms;
                self.resolve(req, Err(ServiceError::DeadlineExceeded { budget_ms }));
            } else {
                live.push(req);
            }
        }
        if live.is_empty() {
            return;
        }
        if live.len() >= 2 {
            self.count(|c| &c.coalesced_batches);
            self.count_n(|c| &c.coalesced_requests, live.len() as u64);
            let batch_id = live[0].trace;
            for req in &live {
                trace::record_event(req.trace, TraceKind::Coalesced, batch_id, live.len() as u64);
            }
        }
        let (_, n) = live[0]
            .transb
            .apply_dims(live[0].b.rows(), live[0].b.cols());
        let mut outs: Vec<Matrix> = live.iter().map(|r| Matrix::zeros(r.a.rows(), n)).collect();
        let exec_start_ns = trace::now_ns();
        let result = catch_unwind(AssertUnwindSafe(|| self.run_group(&live, &mut outs)));
        let exec_ns = trace::now_ns().saturating_sub(exec_start_ns);
        for req in &live {
            self.observe_request(req, dequeue_ns, exec_start_ns, exec_ns, leader_ctx.as_ref());
        }
        match result {
            Ok(Ok(())) => {
                for (req, c) in live.into_iter().zip(outs) {
                    self.resolve(req, Ok(c));
                }
            }
            Ok(Err(_)) => {
                for req in live {
                    self.resolve(
                        req,
                        Err(ServiceError::Rejected(
                            "pool fault persisted through retries and serial fallback",
                        )),
                    );
                }
            }
            Err(_) => {
                // Injection site aftermath (or a genuine scheduler-side
                // panic): contain it and recover each member with an
                // independent, serial, bit-identical execution so one
                // poisoned group member cannot take down its peers.
                self.count(|c| &c.panics_contained);
                trace::health_event(
                    HealthEventKind::PanicContained,
                    live.first().map_or(0, |r| r.trace),
                    live.len() as u64,
                    "group execution panicked; per-request serial recovery",
                );
                for req in live {
                    self.recover_serially(req);
                }
            }
        }
    }

    /// The retry/degrade ladder for one group. On `Ok(())` every matrix
    /// in `outs` holds the bit-exact result (including the served
    /// watchdog-recovery case).
    fn run_group(&self, live: &[Request], outs: &mut [Matrix]) -> Result<(), GemmError> {
        // Injection site: a panic in the middle of a coalesced batch.
        faults::panic_in_service();
        let shard_idx = self.rr_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let cache = self.tenant_cache(&live[0].tenant, &live[0].b, live[0].transb);
        let mut attempt: u32 = 0;
        loop {
            let degrade = self.shard_unhealthy(shard_idx);
            if degrade {
                self.count(|c| &c.degraded);
                trace::health_event(
                    HealthEventKind::DegradeSerial,
                    live[0].trace,
                    shard_idx as u64,
                    "shard unhealthy: group degraded to the serial runtime",
                );
                for req in live {
                    trace::record_event(req.trace, TraceKind::Degrade, shard_idx as u64, 0);
                }
            }
            if attempt == 0 {
                let pooled = u64::from(self.shards[shard_idx].pool.is_some() && !degrade);
                for req in live {
                    trace::record_event(req.trace, TraceKind::Dispatched, shard_idx as u64, pooled);
                }
            }
            let cfg = if degrade {
                self.cfg.gemm.with_parallelism(Parallelism::Serial)
            } else {
                self.cfg.gemm
            };
            let a_views: Vec<MatrixView<'_>> = live.iter().map(|r| r.a.view()).collect();
            let mut c_views: Vec<MatrixViewMut<'_>> =
                outs.iter_mut().map(Matrix::view_mut).collect();
            let b_view = live[0].b.view();
            let mut run = || {
                gemm_batch_with_cache(
                    live[0].alpha,
                    &a_views,
                    live[0].transb,
                    &b_view,
                    0.0,
                    &mut c_views,
                    &cfg,
                    cache.as_deref(),
                )
            };
            let result = match (&self.shards[shard_idx].pool, degrade) {
                (Some(p), false) => pool::with_pool(p, run),
                _ => run(),
            };
            drop(c_views);
            match result {
                Ok(()) => return Ok(()),
                // The watchdog contract (DESIGN.md §12): the caller
                // recomputed the missing blocks serially, so `C` is
                // bit-exact. Serve it, quarantine the shard.
                Err(GemmError::EpochTimeout { .. }) => {
                    self.quarantine(shard_idx);
                    self.count(|c| &c.degraded);
                    trace::health_event(
                        HealthEventKind::Quarantine,
                        live[0].trace,
                        shard_idx as u64,
                        "epoch watchdog expired; recovered result served, shard quarantined",
                    );
                    for req in live {
                        trace::record_event(req.trace, TraceKind::Degrade, shard_idx as u64, 1);
                    }
                    return Ok(());
                }
                Err(GemmError::WorkerFault { .. } | GemmError::AllocFailure { .. })
                    if attempt < self.cfg.max_retries =>
                {
                    attempt += 1;
                    self.count(|c| &c.retries);
                    trace::health_event(
                        HealthEventKind::Retry,
                        live[0].trace,
                        u64::from(attempt),
                        "recoverable pool fault; backoff retry",
                    );
                    for req in live {
                        trace::record_event(req.trace, TraceKind::Retry, u64::from(attempt), 0);
                    }
                    self.quarantine(shard_idx);
                    trace::health_event(
                        HealthEventKind::Quarantine,
                        live[0].trace,
                        shard_idx as u64,
                        "shard quarantined after recoverable fault",
                    );
                    // WorkerFault leaves C unspecified: re-zero before
                    // the retry so β = 0 semantics still hold.
                    for c in outs.iter_mut() {
                        c.as_mut_slice().fill(0.0);
                    }
                    thread::sleep(Duration::from_millis(1 << attempt.min(4)));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Last-ditch per-request recovery after a contained panic: an
    /// independent serial execution, itself panic-contained. Resolves
    /// the request either way.
    fn recover_serially(&self, req: Request) {
        // Recovery computes one request at a time, so its bridged
        // pack/compute spans attribute to the member's own trace, not
        // the failed batch leader's.
        let _scope = trace::adopt(Some(trace::TraceCtx::new(req.trace)));
        let (_, n) = req.transb.apply_dims(req.b.rows(), req.b.cols());
        let mut c = Matrix::zeros(req.a.rows(), n);
        let cfg = self.cfg.gemm.with_parallelism(Parallelism::Serial);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let a_views = [req.a.view()];
            let mut c_views = [c.view_mut()];
            gemm_batch_with_cache(
                req.alpha,
                &a_views,
                req.transb,
                &req.b.view(),
                0.0,
                &mut c_views,
                &cfg,
                None,
            )
        }));
        self.count(|c| &c.degraded);
        trace::record_event(req.trace, TraceKind::SerialRecovery, 0, 0);
        match result {
            Ok(Ok(())) => self.resolve(req, Ok(c)),
            _ => self.resolve(
                req,
                Err(ServiceError::Rejected(
                    "execution panicked even in serial recovery",
                )),
            ),
        }
    }

    fn status_json(&self) -> String {
        let (depth, tenants_occ, shutdown) = {
            let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            let occ: Vec<(String, usize)> = st
                .queues
                .iter()
                .map(|(t, q)| (t.clone(), q.len()))
                .collect();
            (st.depth, occ, st.shutdown)
        };
        let c = &self.counters;
        let ld = Ordering::Relaxed;
        let mut s = String::with_capacity(1024);
        s.push_str("{\"schema\":\"dgemm-telem-v1\",\"kind\":\"service\"");
        s.push_str(&format!(
            ",\"queue_depth\":{depth},\"queue_limit\":{},\"effective_queue_limit\":{},\"shutdown\":{shutdown}",
            self.cfg.queue_limit,
            self.effective_queue_limit(),
        ));
        // Scraper ordering/staleness signals + the dispatch-model
        // quality counter (additive dgemm-telem-v1 fields).
        s.push_str(&format!(
            ",\"snapshot_seq\":{},\"uptime_ms\":{},\"dispatch_mispredicts\":{}",
            self.snapshot_seq.fetch_add(1, Ordering::Relaxed),
            trace::uptime_ms(),
            crate::telemetry::snapshot().runtime.dispatch_mispredicts,
        ));
        s.push_str(&format!(
            ",\"counters\":{{\"admitted\":{},\"completed\":{},\"shed_overload\":{},\"shed_quota\":{},\"rejected\":{},\"deadline_misses\":{},\"retries\":{},\"degraded\":{},\"coalesced_batches\":{},\"coalesced_requests\":{},\"panics_contained\":{}}}",
            c.admitted.load(ld),
            c.completed.load(ld),
            c.shed_overload.load(ld),
            c.shed_quota.load(ld),
            c.rejected.load(ld),
            c.deadline_misses.load(ld),
            c.retries.load(ld),
            c.degraded.load(ld),
            c.coalesced_batches.load(ld),
            c.coalesced_requests.load(ld),
            c.panics_contained.load(ld),
        ));
        // Warm-start health (additive dgemm-telem-v1 fields): this
        // instance's shelf plus its load/attach outcomes; `verifies` /
        // `verify_failures` are process-wide (telemetry snapshot).
        let store_snap = crate::telemetry::snapshot().store;
        s.push_str(&format!(
            ",\"store\":{{\"configured\":{},\"shelf\":{},\"loads\":{},\"load_failures\":{},\"attaches\":{},\"verifies\":{},\"verify_failures\":{}}}",
            self.cfg.weight_store.is_some(),
            self.shelf.len(),
            self.store_counters.loads.load(ld),
            self.store_counters.load_failures.load(ld),
            self.store_counters.attaches.load(ld),
            store_snap.verifies,
            store_snap.verify_failures,
        ));
        s.push_str(",\"tenants\":[");
        let caches = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let mut names: Vec<&String> = tenants_occ.iter().map(|(t, _)| t).collect();
        names.extend(
            caches
                .keys()
                .filter(|k| !tenants_occ.iter().any(|(t, _)| t == *k)),
        );
        names.sort();
        names.dedup();
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let queued = tenants_occ
                .iter()
                .find(|(t, _)| t == *name)
                .map_or(0, |(_, q)| *q);
            let (bytes, entries) = caches
                .get(*name)
                .map_or((0, 0), |t| (t.cache.bytes(), t.pinned.len()));
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"queued\":{queued},\"cache_bytes\":{bytes},\"cache_entries\":{entries}}}",
                json_escape(name),
            ));
        }
        drop(caches);
        s.push_str("],\"shards\":[");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let st = match &shard.pool {
                Some(p) => p.status(),
                None => pool::status(),
            };
            s.push_str(&format!(
                "{{\"label\":\"{}\",\"workers_alive\":{},\"deaths\":{},\"respawns\":{},\"spawn_failures\":{},\"unhealthy\":{}}}",
                if shard.pool.is_some() { format!("svc{i}") } else { "global".to_string() },
                st.workers_alive,
                st.deaths,
                st.respawns,
                st.spawn_failures,
                self.shard_unhealthy(i),
            ));
        }
        s.push_str("],\"histograms\":[");
        let mut first = true;
        for ((tenant, shape), h) in self.sorted_hists() {
            for (metric, hist) in h.metrics() {
                if hist.count() == 0 {
                    continue;
                }
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!(
                    "{{\"tenant\":\"{}\",\"shape\":\"{}\",\"metric\":\"{metric}\",\
                     \"count\":{},\"sum_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{}}}",
                    json_escape(&tenant),
                    json_escape(&shape),
                    hist.count(),
                    hist.sum_us(),
                    hist.quantile_us(0.50).unwrap_or(0),
                    hist.quantile_us(0.90).unwrap_or(0),
                    hist.quantile_us(0.99).unwrap_or(0),
                ));
            }
        }
        s.push_str("],\"events\":[");
        let events = trace::health_events();
        let tail = &events[events.len().saturating_sub(64)..];
        for (i, e) in tail.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"seq\":{},\"ts_ms\":{},\"kind\":\"{}\",\"trace\":{},\"detail\":{},\"cause\":\"{}\"}}",
                e.seq,
                e.ts_ns / 1_000_000,
                e.kind.label(),
                e.trace,
                e.detail,
                json_escape(e.cause),
            ));
        }
        s.push_str("]}");
        s
    }

    /// The latency histograms in stable `(tenant, shape)` order.
    fn sorted_hists(&self) -> Vec<((String, String), Arc<RequestHists>)> {
        let map = self.hists.lock().unwrap_or_else(PoisonError::into_inner);
        let mut entries: Vec<_> = map
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Render the Prometheus text exposition body served at `/metrics`:
    /// service/runtime/cache counters, queue and shard gauges, health
    /// event totals, and the per-(tenant, shape-class) latency
    /// histograms with cumulative log2 `le` buckets.
    fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let ld = Ordering::Relaxed;
        let mut s = String::with_capacity(8192);

        let _ = writeln!(s, "# TYPE dgemm_uptime_ms gauge");
        let _ = writeln!(s, "dgemm_uptime_ms {}", trace::uptime_ms());
        let _ = writeln!(s, "# TYPE dgemm_snapshots_total counter");
        let _ = writeln!(
            s,
            "dgemm_snapshots_total {}",
            self.snapshot_seq.fetch_add(1, Ordering::Relaxed) + 1
        );

        let (depth, tenants_occ) = {
            let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            let occ: Vec<(String, usize)> = st
                .queues
                .iter()
                .map(|(t, q)| (t.clone(), q.len()))
                .collect();
            (st.depth, occ)
        };
        let _ = writeln!(s, "# TYPE dgemm_service_queue_depth gauge");
        let _ = writeln!(s, "dgemm_service_queue_depth {depth}");
        let _ = writeln!(s, "# TYPE dgemm_service_queue_limit gauge");
        let _ = writeln!(s, "dgemm_service_queue_limit {}", self.cfg.queue_limit);
        let _ = writeln!(s, "# TYPE dgemm_service_effective_queue_limit gauge");
        let _ = writeln!(
            s,
            "dgemm_service_effective_queue_limit {}",
            self.effective_queue_limit()
        );

        let c = &self.counters;
        let service_counters: [(&str, u64); 11] = [
            ("admitted", c.admitted.load(ld)),
            ("completed", c.completed.load(ld)),
            ("shed_overload", c.shed_overload.load(ld)),
            ("shed_quota", c.shed_quota.load(ld)),
            ("rejected", c.rejected.load(ld)),
            ("deadline_misses", c.deadline_misses.load(ld)),
            ("retries", c.retries.load(ld)),
            ("degraded", c.degraded.load(ld)),
            ("coalesced_batches", c.coalesced_batches.load(ld)),
            ("coalesced_requests", c.coalesced_requests.load(ld)),
            ("panics_contained", c.panics_contained.load(ld)),
        ];
        for (name, v) in service_counters {
            let _ = writeln!(s, "# TYPE dgemm_service_{name}_total counter");
            let _ = writeln!(s, "dgemm_service_{name}_total {v}");
        }

        let snap = crate::telemetry::snapshot();
        let rt = &snap.runtime;
        let runtime_counters: [(&str, u64); 12] = [
            ("tasks", rt.tasks),
            ("dynamic_epochs", rt.dynamic_epochs),
            ("static_epochs", rt.static_epochs),
            ("grid_epochs", rt.grid_epochs),
            ("deaths", rt.deaths),
            ("respawns", rt.respawns),
            ("spawn_failures", rt.spawn_failures),
            ("faults_contained", rt.faults_contained),
            ("timeouts", rt.timeouts),
            ("dispatch_serial", rt.dispatch_serial),
            ("dispatch_pool", rt.dispatch_pool),
            ("dispatch_mispredicts", rt.dispatch_mispredicts),
        ];
        for (name, v) in runtime_counters {
            let _ = writeln!(s, "# TYPE dgemm_runtime_{name}_total counter");
            let _ = writeln!(s, "dgemm_runtime_{name}_total {v}");
        }
        let cache_counters: [(&str, u64); 5] = [
            ("hits", snap.cache.hits),
            ("misses", snap.cache.misses),
            ("evictions", snap.cache.evictions),
            ("invalidations", snap.cache.invalidations),
            ("bytes_saved", snap.cache.bytes_saved),
        ];
        for (name, v) in cache_counters {
            let _ = writeln!(s, "# TYPE dgemm_pack_cache_{name}_total counter");
            let _ = writeln!(s, "dgemm_pack_cache_{name}_total {v}");
        }
        let store_counters: [(&str, u64); 6] = [
            ("loads", snap.store.loads),
            ("load_failures", snap.store.load_failures),
            ("verifies", snap.store.verifies),
            ("verify_failures", snap.store.verify_failures),
            ("attaches", snap.store.attaches),
            ("bytes_loaded", snap.store.bytes_loaded),
        ];
        for (name, v) in store_counters {
            let _ = writeln!(s, "# TYPE dgemm_store_{name}_total counter");
            let _ = writeln!(s, "dgemm_store_{name}_total {v}");
        }
        let _ = writeln!(s, "# TYPE dgemm_store_shelf_entries gauge");
        let _ = writeln!(s, "dgemm_store_shelf_entries {}", self.shelf.len());

        let _ = writeln!(s, "# TYPE dgemm_health_events_total counter");
        for (kind, n) in trace::health_counts() {
            let _ = writeln!(
                s,
                "dgemm_health_events_total{{kind=\"{}\"}} {n}",
                kind.label()
            );
        }

        let _ = writeln!(s, "# TYPE dgemm_tenant_queued gauge");
        let _ = writeln!(s, "# TYPE dgemm_tenant_cache_bytes gauge");
        let caches = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let mut names: Vec<String> = tenants_occ.iter().map(|(t, _)| t.clone()).collect();
        names.extend(caches.keys().cloned());
        names.sort();
        names.dedup();
        for name in &names {
            let queued = tenants_occ
                .iter()
                .find(|(t, _)| t == name)
                .map_or(0, |(_, q)| *q);
            let bytes = caches.get(name).map_or(0, |t| t.cache.bytes());
            let esc = prom_label_escape(name);
            let _ = writeln!(s, "dgemm_tenant_queued{{tenant=\"{esc}\"}} {queued}");
            let _ = writeln!(s, "dgemm_tenant_cache_bytes{{tenant=\"{esc}\"}} {bytes}");
        }
        drop(caches);

        let _ = writeln!(s, "# TYPE dgemm_shard_workers_alive gauge");
        let _ = writeln!(s, "# TYPE dgemm_shard_unhealthy gauge");
        for (i, shard) in self.shards.iter().enumerate() {
            let st = match &shard.pool {
                Some(p) => p.status(),
                None => pool::status(),
            };
            let label = if shard.pool.is_some() {
                format!("svc{i}")
            } else {
                "global".to_string()
            };
            let _ = writeln!(
                s,
                "dgemm_shard_workers_alive{{shard=\"{label}\"}} {}",
                st.workers_alive
            );
            let _ = writeln!(
                s,
                "dgemm_shard_unhealthy{{shard=\"{label}\"}} {}",
                u8::from(self.shard_unhealthy(i))
            );
        }

        // One Prometheus histogram family per metric; each
        // (tenant, shape) pair is a labelled series with cumulative
        // buckets (monotone by construction: cum only grows).
        let hists = self.sorted_hists();
        for metric in ["total", "queue", "compute", "pack"] {
            let family = format!("dgemm_request_{metric}_latency_us");
            let series: Vec<_> = hists
                .iter()
                .filter_map(|((tenant, shape), h)| {
                    let hist = h
                        .metrics()
                        .into_iter()
                        .find(|(m, _)| *m == metric)
                        .map(|(_, hist)| hist)?;
                    (hist.count() > 0).then(|| (tenant.clone(), shape.clone(), hist))
                })
                .collect();
            if series.is_empty() {
                continue;
            }
            let _ = writeln!(s, "# TYPE {family} histogram");
            for (tenant, shape, hist) in series {
                let labels = format!(
                    "tenant=\"{}\",shape=\"{}\"",
                    prom_label_escape(&tenant),
                    prom_label_escape(&shape)
                );
                let mut cum = 0u64;
                for (i, n) in hist.bucket_counts().into_iter().enumerate() {
                    cum += n;
                    let _ = writeln!(
                        s,
                        "{family}_bucket{{{labels},le=\"{}\"}} {cum}",
                        LatencyHistogram::bucket_edge(i)
                    );
                }
                cum += hist.overflow_count();
                let _ = writeln!(s, "{family}_bucket{{{labels},le=\"+Inf\"}} {cum}");
                let _ = writeln!(s, "{family}_sum{{{labels}}} {}", hist.sum_us());
                // `_count` repeats the +Inf cumulative (not the count
                // atomic) so the exposition is internally consistent
                // even if a recording lands mid-render.
                let _ = writeln!(s, "{family}_count{{{labels}}} {cum}");
            }
        }
        s
    }
}

/// The scheduler loop: wait for work, take one coalesced group, run it.
/// On shutdown the queue is drained to empty — every admitted request
/// resolves — before the thread exits.
fn scheduler_main(inner: Arc<Inner>) {
    loop {
        let group = {
            let mut st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.depth > 0 {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = inner.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            inner.take_group(&mut st)
        };
        inner.execute_group(group);
    }
}

/// Prometheus label-value escaping: backslash, double quote and
/// newline (the exposition format's only label escapes).
fn prom_label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON string escaping for tenant names (quotes, backslashes,
/// control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_error_displays_are_stable() {
        let o = ServiceError::Overloaded {
            queue_depth: 9,
            limit: 8,
        };
        assert_eq!(
            o.to_string(),
            "service overloaded: 9 queued against limit 8"
        );
        let d = ServiceError::DeadlineExceeded { budget_ms: 5 };
        assert_eq!(d.to_string(), "deadline of 5 ms exceeded before completion");
        let r = ServiceError::Rejected("nope");
        assert_eq!(r.to_string(), "request rejected: nope");
    }

    #[test]
    fn coalescing_key_requires_same_weight_shape_and_alpha() {
        let b = Arc::new(Matrix::random(6, 6, 1));
        let b2 = Arc::new(Matrix::random(6, 6, 1));
        let mk = |alpha: f64, a_rows: usize, b: &Arc<Matrix>| {
            let (tx, _rx) = unbounded();
            Request {
                tenant: "t".into(),
                alpha,
                a: Arc::new(Matrix::random(a_rows, 6, 2)),
                transb: Transpose::No,
                b: Arc::clone(b),
                deadline: None,
                budget_ms: 0,
                cancelled: Arc::new(AtomicBool::new(false)),
                tx,
                trace: 0,
                submitted_ns: 0,
            }
        };
        let head = mk(1.0, 4, &b);
        assert!(head.coalesces_with(&mk(1.0, 4, &b)));
        assert!(!head.coalesces_with(&mk(2.0, 4, &b)), "alpha differs");
        assert!(!head.coalesces_with(&mk(1.0, 5, &b)), "A shape differs");
        assert!(
            !head.coalesces_with(&mk(1.0, 4, &b2)),
            "weight identity differs"
        );
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
