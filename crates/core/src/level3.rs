//! Additional Level-3 routines built on the GEBP engine.
//!
//! Section II of the paper notes that "the most commonly used
//! matrix-matrix computations can be implemented as a general matrix
//! multiplication"; this module demonstrates that claim for the two most
//! common symmetric cases:
//!
//! - [`dsyrk`] — symmetric rank-k update `C := α·op(A)·op(A)ᵀ + β·C`,
//!   blocked so the strictly-triangular part is computed by plain GEMM
//!   calls (no redundant flops outside diagonal blocks).
//! - [`dsymm`] — symmetric multiply `C := α·A·B + β·C` (left side), with
//!   the symmetric operand expanded once and fed to GEMM.
//! - [`dtrsm`] — triangular solve `op(A)·X = α·B` (left side), blocked
//!   so all but the diagonal-block solves run through GEMM — the routine
//!   LINPACK pairs with DGEMM in the LU update, which is the paper's
//!   motivating workload.
//!
//! Because every routine here bottoms out in [`try_gemm`] with the
//! caller's [`GemmConfig`], they inherit the pre-packed-B cache when
//! `cfg.pack_cache` is enabled — with the same coherence contract (see
//! [`crate::prepack`]): the interior GEMM operands are sub-views of the
//! caller's matrices (or of short-lived scratch like `dsymm`'s expanded
//! operand), so in-place mutation between calls requires invalidation.
//! They likewise inherit `cfg.dispatch` (DESIGN.md §13): under
//! [`crate::dispatch::DispatchMode::Auto`] each interior GEMM is
//! dispatched by its own sub-block shape, so e.g. the skinny panel
//! updates of a blocked `dtrsm` can run serially while the large
//! trailing updates use the pool's 2-D task grid.

#![forbid(unsafe_code)]

use crate::gemm::{try_gemm, GemmConfig};
use crate::matrix::{Matrix, MatrixView, MatrixViewMut};
use crate::{GemmError, Transpose};

/// Which triangle of a symmetric matrix is stored/updated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpLo {
    /// Upper triangle.
    Upper,
    /// Lower triangle.
    Lower,
}

/// Symmetric rank-k update: `C := α·op(A)·op(A)ᵀ + β·C`, touching only the
/// `uplo` triangle of the `n×n` matrix C.
///
/// `trans = No` takes `A` as `n×k` (`C = αAAᵀ+βC`); `trans = Yes` takes
/// `A` as `k×n` (`C = αAᵀA+βC`).
pub fn dsyrk(
    uplo: UpLo,
    trans: Transpose,
    alpha: f64,
    a: &MatrixView<'_>,
    beta: f64,
    c: &mut MatrixViewMut<'_>,
    cfg: &GemmConfig,
) -> Result<(), GemmError> {
    let (n, _k) = trans.apply_dims(a.rows(), a.cols());
    if c.rows() != n || c.cols() != n {
        return Err(GemmError::OutputDimMismatch {
            expected: (n, n),
            actual: (c.rows(), c.cols()),
        });
    }

    // β on the referenced triangle only.
    scale_triangle(c, uplo, beta);
    if alpha == 0.0 || n == 0 {
        return Ok(());
    }

    // Block over diagonal panels; panel width tied to the blocking's nr
    // granularity (any width is correct; this keeps GEMM calls chunky).
    let nb = cfg.blocks.nc.min(256).max(cfg.blocks.nr);
    let mut j0 = 0usize;
    while j0 < n {
        let w = nb.min(n - j0);
        // Diagonal block: compute fully into a temp, add the triangle.
        let mut diag = Matrix::zeros(w, w);
        gemm_syrk_block(trans, alpha, a, j0, w, j0, w, &mut diag.view_mut(), cfg)?;
        // Scalar triangle accumulate: w·(w+1)/2 adds (GEMM flops inside
        // gemm_syrk_block are already counted at the gebp choke point).
        crate::telemetry::add_flops((w as u64) * (w as u64 + 1) / 2);
        for j in 0..w {
            match uplo {
                UpLo::Lower => {
                    for i in j..w {
                        let v = c.get(j0 + i, j0 + j) + diag.get(i, j);
                        c.set(j0 + i, j0 + j, v);
                    }
                }
                UpLo::Upper => {
                    for i in 0..=j {
                        let v = c.get(j0 + i, j0 + j) + diag.get(i, j);
                        c.set(j0 + i, j0 + j, v);
                    }
                }
            }
        }
        // Off-diagonal part of this panel: one plain GEMM.
        match uplo {
            UpLo::Lower if j0 + w < n => {
                let rows = n - (j0 + w);
                let mut sub = c.sub_mut(j0 + w, j0, rows, w);
                gemm_syrk_block(trans, alpha, a, j0 + w, rows, j0, w, &mut sub, cfg)?;
            }
            UpLo::Upper if j0 > 0 => {
                let mut sub = c.sub_mut(0, j0, j0, w);
                gemm_syrk_block(trans, alpha, a, 0, j0, j0, w, &mut sub, cfg)?;
            }
            _ => {}
        }
        j0 += w;
    }
    Ok(())
}

/// `out += α · op(A)[i0..i0+mi, :] · op(A)[j0..j0+nj, :]ᵀ` — the GEMM at
/// the heart of DSYRK (out must already hold its β·C part).
#[allow(clippy::too_many_arguments)]
fn gemm_syrk_block(
    trans: Transpose,
    alpha: f64,
    a: &MatrixView<'_>,
    i0: usize,
    mi: usize,
    j0: usize,
    nj: usize,
    out: &mut MatrixViewMut<'_>,
    cfg: &GemmConfig,
) -> Result<(), GemmError> {
    match trans {
        Transpose::No => {
            // rows of A
            let k = a.cols();
            let left = a.sub(i0, 0, mi, k);
            let right = a.sub(j0, 0, nj, k);
            try_gemm(
                Transpose::No,
                Transpose::Yes,
                alpha,
                &left,
                &right,
                1.0,
                out,
                cfg,
            )
        }
        Transpose::Yes => {
            // columns of A
            let k = a.rows();
            let left = a.sub(0, i0, k, mi);
            let right = a.sub(0, j0, k, nj);
            try_gemm(
                Transpose::Yes,
                Transpose::No,
                alpha,
                &left,
                &right,
                1.0,
                out,
                cfg,
            )
        }
    }
}

fn scale_triangle(c: &mut MatrixViewMut<'_>, uplo: UpLo, beta: f64) {
    if beta == 1.0 {
        return;
    }
    let n = c.rows();
    for j in 0..n {
        let (lo, hi) = match uplo {
            UpLo::Lower => (j, n),
            UpLo::Upper => (0, j + 1),
        };
        for i in lo..hi {
            let v = if beta == 0.0 { 0.0 } else { beta * c.get(i, j) };
            c.set(i, j, v);
        }
    }
}

/// Symmetric multiply (left side): `C := α·A·B + β·C` where `A` is `m×m`
/// symmetric with only its `uplo` triangle stored (the other triangle of
/// the argument is ignored).
pub fn dsymm(
    uplo: UpLo,
    alpha: f64,
    a: &MatrixView<'_>,
    b: &MatrixView<'_>,
    beta: f64,
    c: &mut MatrixViewMut<'_>,
    cfg: &GemmConfig,
) -> Result<(), GemmError> {
    let m = a.rows();
    if a.cols() != m {
        return Err(GemmError::BadConfig("symmetric operand must be square"));
    }
    if b.rows() != m {
        return Err(GemmError::InnerDimMismatch {
            a_cols: m,
            b_rows: b.rows(),
        });
    }
    if (c.rows(), c.cols()) != (m, b.cols()) {
        return Err(GemmError::OutputDimMismatch {
            expected: (m, b.cols()),
            actual: (c.rows(), c.cols()),
        });
    }
    // Mirror the stored triangle once (O(m²), negligible next to the
    // 2m²n flops of the multiply), then one plain GEMM.
    let full = Matrix::from_fn(m, m, |i, j| {
        let stored = match uplo {
            UpLo::Lower => i >= j,
            UpLo::Upper => i <= j,
        };
        if stored {
            a.get(i, j)
        } else {
            a.get(j, i)
        }
    });
    try_gemm(
        Transpose::No,
        Transpose::No,
        alpha,
        &full.view(),
        b,
        beta,
        c,
        cfg,
    )
}

/// Whether the triangular operand has an implicit unit diagonal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are read from the matrix.
    NonUnit,
    /// Diagonal entries are taken as 1 (stored values ignored), as in
    /// the L factor of an LU decomposition.
    Unit,
}

/// Triangular solve (left side): overwrite `B` with `X` solving
/// `op(A)·X = α·B`, where `A` is `m×m` triangular (`uplo`, `diag`) and
/// `B` is `m×n`.
///
/// Blocked algorithm: the diagonal `nb×nb` blocks are solved by direct
/// forward/back substitution; everything else is rank-`nb` GEMM updates
/// (`B_i -= A_ij · X_j`), so the flops go through the same GEBP engine
/// the paper optimizes — exactly how LINPACK spends its time.
pub fn dtrsm(
    uplo: UpLo,
    trans: Transpose,
    diag: Diag,
    alpha: f64,
    a: &MatrixView<'_>,
    b: &mut MatrixViewMut<'_>,
    cfg: &GemmConfig,
) -> Result<(), GemmError> {
    let m = a.rows();
    if a.cols() != m {
        return Err(GemmError::BadConfig("triangular operand must be square"));
    }
    if b.rows() != m {
        return Err(GemmError::InnerDimMismatch {
            a_cols: m,
            b_rows: b.rows(),
        });
    }
    b.scale(alpha);
    if m == 0 || b.cols() == 0 {
        return Ok(());
    }

    // op(A) lower-triangular  <=>  (A lower, NoTrans) or (A upper, Trans)
    let effectively_lower = matches!(
        (uplo, trans),
        (UpLo::Lower, Transpose::No) | (UpLo::Upper, Transpose::Yes)
    );
    let opa = |i: usize, j: usize| match trans {
        Transpose::No => a.get(i, j),
        Transpose::Yes => a.get(j, i),
    };

    let nb = cfg.blocks.mr.max(32); // panel width for the diagonal solves
    let n = b.cols();
    let blocks: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut s = 0;
        while s < m {
            let w = nb.min(m - s);
            v.push((s, w));
            s += w;
        }
        v
    };

    // forward order for lower-triangular op(A), backward for upper
    let order: Vec<usize> = if effectively_lower {
        (0..blocks.len()).collect()
    } else {
        (0..blocks.len()).rev().collect()
    };

    for &bi in &order {
        let (i0, wi) = blocks[bi];
        // B_i -= sum over already-solved blocks j of op(A)_ij * X_j —
        // done incrementally below via GEMM *after* each solve instead;
        // here solve the diagonal block directly.
        solve_diag_block(&opa, diag, effectively_lower, i0, wi, b);

        // propagate X_i into the remaining unsolved blocks with one GEMM:
        // B_rest -= op(A)[rest, i] * X_i
        let (rest0, rest_len) = if effectively_lower {
            (i0 + wi, m - (i0 + wi))
        } else {
            (0, i0)
        };
        if rest_len == 0 {
            continue;
        }
        // materialize op(A)[rest, i] (wi columns) once; strided reads
        // either way, and GEMM wants a contiguous view
        let a_panel = Matrix::from_fn(rest_len, wi, |r, c| opa(rest0 + r, i0 + c));
        let x_i = Matrix::from_fn(wi, n, |r, c| b.get(i0 + r, c));
        let mut b_rest = b.sub_mut(rest0, 0, rest_len, n);
        try_gemm(
            Transpose::No,
            Transpose::No,
            -1.0,
            &a_panel.view(),
            &x_i.view(),
            1.0,
            &mut b_rest,
            cfg,
        )?;
    }
    Ok(())
}

/// Direct substitution on one diagonal block: rows `i0..i0+w` of B.
fn solve_diag_block(
    opa: &impl Fn(usize, usize) -> f64,
    diag: Diag,
    lower: bool,
    i0: usize,
    w: usize,
    b: &mut MatrixViewMut<'_>,
) {
    let n = b.cols();
    // Closed-form count for the scalar substitution: each of the n
    // columns does w·(w-1) multiply/subtract flops over the triangle
    // plus w divides when the diagonal is stored.
    let per_col = (w as u64) * (w as u64 - u64::from(w > 0))
        + if diag == Diag::NonUnit { w as u64 } else { 0 };
    crate::telemetry::add_flops((n as u64) * per_col);
    for col in 0..n {
        if lower {
            for r in 0..w {
                let i = i0 + r;
                let mut v = b.get(i, col);
                for c in 0..r {
                    v -= opa(i, i0 + c) * b.get(i0 + c, col);
                }
                if diag == Diag::NonUnit {
                    v /= opa(i, i);
                }
                b.set(i, col, v);
            }
        } else {
            for r in (0..w).rev() {
                let i = i0 + r;
                let mut v = b.get(i, col);
                for c in r + 1..w {
                    v -= opa(i, i0 + c) * b.get(i0 + c, col);
                }
                if diag == Diag::NonUnit {
                    v /= opa(i, i);
                }
                b.set(i, col, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::reference::naive_gemm;
    use crate::util::gemm_tolerance;

    fn naive_syrk(
        uplo: UpLo,
        trans: Transpose,
        alpha: f64,
        a: &Matrix,
        beta: f64,
        c0: &Matrix,
    ) -> Matrix {
        // full product, then keep only the triangle
        let mut full = Matrix::zeros(c0.rows(), c0.cols());
        naive_gemm(
            trans,
            match trans {
                Transpose::No => Transpose::Yes,
                Transpose::Yes => Transpose::No,
            },
            alpha,
            &a.view(),
            &a.view(),
            0.0,
            &mut full.view_mut(),
        );
        Matrix::from_fn(c0.rows(), c0.cols(), |i, j| {
            let in_tri = match uplo {
                UpLo::Lower => i >= j,
                UpLo::Upper => i <= j,
            };
            if in_tri {
                beta * c0.get(i, j) + full.get(i, j)
            } else {
                c0.get(i, j)
            }
        })
    }

    fn check_syrk(uplo: UpLo, trans: Transpose, n: usize, k: usize, alpha: f64, beta: f64) {
        let a = match trans {
            Transpose::No => Matrix::random(n, k, 31),
            Transpose::Yes => Matrix::random(k, n, 31),
        };
        let c0 = Matrix::random(n, n, 32);
        let expected = naive_syrk(uplo, trans, alpha, &a, beta, &c0);
        let mut got = c0.clone();
        dsyrk(
            uplo,
            trans,
            alpha,
            &a.view(),
            beta,
            &mut got.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap();
        assert!(
            got.max_abs_diff(&expected) < gemm_tolerance(k, 1.0),
            "syrk {uplo:?} {trans:?} n={n} k={k}: {}",
            got.max_abs_diff(&expected)
        );
    }

    #[test]
    fn syrk_lower_no_trans() {
        check_syrk(UpLo::Lower, Transpose::No, 37, 19, 1.0, 0.0);
        check_syrk(UpLo::Lower, Transpose::No, 64, 32, 2.0, 1.0);
    }

    #[test]
    fn syrk_upper_no_trans() {
        check_syrk(UpLo::Upper, Transpose::No, 37, 19, 1.0, 0.5);
    }

    #[test]
    fn syrk_trans_variants() {
        check_syrk(UpLo::Lower, Transpose::Yes, 29, 41, -1.0, 1.0);
        check_syrk(UpLo::Upper, Transpose::Yes, 29, 41, 1.5, 0.0);
    }

    #[test]
    fn syrk_leaves_other_triangle_untouched() {
        let a = Matrix::random(10, 5, 1);
        let c0 = Matrix::random(10, 10, 2);
        let mut got = c0.clone();
        dsyrk(
            UpLo::Lower,
            Transpose::No,
            1.0,
            &a.view(),
            0.0,
            &mut got.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap();
        for j in 1..10 {
            for i in 0..j {
                assert_eq!(got.get(i, j), c0.get(i, j), "({i},{j}) modified");
            }
        }
    }

    #[test]
    fn syrk_result_is_symmetric_when_both_triangles_computed() {
        let a = Matrix::random(16, 8, 3);
        let mut lower = Matrix::zeros(16, 16);
        let mut upper = Matrix::zeros(16, 16);
        dsyrk(
            UpLo::Lower,
            Transpose::No,
            1.0,
            &a.view(),
            0.0,
            &mut lower.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap();
        dsyrk(
            UpLo::Upper,
            Transpose::No,
            1.0,
            &a.view(),
            0.0,
            &mut upper.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap();
        for i in 0..16 {
            for j in 0..=i {
                assert!((lower.get(i, j) - upper.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn syrk_shape_checked() {
        let a = Matrix::zeros(4, 3);
        let mut c = Matrix::zeros(5, 5);
        let err = dsyrk(
            UpLo::Lower,
            Transpose::No,
            1.0,
            &a.view(),
            0.0,
            &mut c.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, GemmError::OutputDimMismatch { .. }));
    }

    fn check_symm(uplo: UpLo, m: usize, n: usize, alpha: f64, beta: f64) {
        let a = Matrix::random(m, m, 41);
        let b = Matrix::random(m, n, 42);
        let c0 = Matrix::random(m, n, 43);
        // naive: mirror then multiply
        let full = Matrix::from_fn(m, m, |i, j| {
            let stored = match uplo {
                UpLo::Lower => i >= j,
                UpLo::Upper => i <= j,
            };
            if stored {
                a.get(i, j)
            } else {
                a.get(j, i)
            }
        });
        let mut expected = c0.clone();
        naive_gemm(
            Transpose::No,
            Transpose::No,
            alpha,
            &full.view(),
            &b.view(),
            beta,
            &mut expected.view_mut(),
        );
        let mut got = c0.clone();
        dsymm(
            uplo,
            alpha,
            &a.view(),
            &b.view(),
            beta,
            &mut got.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap();
        assert!(got.max_abs_diff(&expected) < gemm_tolerance(m, 1.0));
    }

    #[test]
    fn symm_both_triangles() {
        check_symm(UpLo::Lower, 33, 17, 1.0, 0.0);
        check_symm(UpLo::Upper, 24, 40, -0.5, 2.0);
    }

    /// Build a well-conditioned triangular matrix (diagonally dominant).
    fn triangular(n: usize, uplo: UpLo, seed: u64) -> Matrix {
        let r: Matrix = Matrix::random(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            let stored = match uplo {
                UpLo::Lower => i >= j,
                UpLo::Upper => i <= j,
            };
            if i == j {
                3.0 + r.get(i, j).abs()
            } else if stored {
                0.5 * r.get(i, j)
            } else {
                0.0
            }
        })
    }

    fn check_trsm(uplo: UpLo, trans: Transpose, diag: Diag, m: usize, n: usize, alpha: f64) {
        let a = triangular(m, uplo, 77);
        let x_true = Matrix::random(m, n, 78);
        // B = op(A') * X / alpha where A' has unit diag if requested
        let a_eff = Matrix::from_fn(m, m, |i, j| {
            if i == j && diag == Diag::Unit {
                1.0
            } else {
                a.get(i, j)
            }
        });
        let mut b = Matrix::zeros(m, n);
        naive_gemm(
            trans,
            Transpose::No,
            1.0 / alpha,
            &a_eff.view(),
            &x_true.view(),
            0.0,
            &mut b.view_mut(),
        );

        dtrsm(
            uplo,
            trans,
            diag,
            alpha,
            &a.view(),
            &mut b.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap();
        assert!(
            b.max_abs_diff(&x_true) < gemm_tolerance(m, 4.0),
            "trsm {uplo:?} {trans:?} {diag:?} m={m} n={n} alpha={alpha}: err {}",
            b.max_abs_diff(&x_true)
        );
    }

    #[test]
    fn trsm_all_variants_small() {
        for uplo in [UpLo::Lower, UpLo::Upper] {
            for trans in [Transpose::No, Transpose::Yes] {
                for diag in [Diag::NonUnit, Diag::Unit] {
                    check_trsm(uplo, trans, diag, 23, 11, 1.0);
                }
            }
        }
    }

    #[test]
    fn trsm_blocked_path_crosses_panels() {
        // m > nb (32) exercises the GEMM propagation between blocks
        check_trsm(UpLo::Lower, Transpose::No, Diag::NonUnit, 97, 31, 1.0);
        check_trsm(UpLo::Upper, Transpose::No, Diag::NonUnit, 97, 31, 1.0);
        check_trsm(UpLo::Lower, Transpose::No, Diag::Unit, 130, 17, 2.0);
        check_trsm(UpLo::Upper, Transpose::Yes, Diag::Unit, 130, 17, -0.5);
    }

    #[test]
    fn trsm_identity_is_scaling() {
        let a = Matrix::identity(8);
        let b0 = Matrix::random(8, 5, 9);
        let mut b = b0.clone();
        dtrsm(
            UpLo::Lower,
            Transpose::No,
            Diag::NonUnit,
            3.0,
            &a.view(),
            &mut b.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap();
        for i in 0..8 {
            for j in 0..5 {
                assert!((b.get(i, j) - 3.0 * b0.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trsm_shape_errors() {
        let a = Matrix::zeros(4, 3);
        let mut b = Matrix::zeros(4, 2);
        assert!(matches!(
            dtrsm(
                UpLo::Lower,
                Transpose::No,
                Diag::NonUnit,
                1.0,
                &a.view(),
                &mut b.view_mut(),
                &GemmConfig::default()
            ),
            Err(GemmError::BadConfig(_))
        ));
        let a = Matrix::zeros(4, 4);
        let mut b = Matrix::zeros(5, 2);
        assert!(matches!(
            dtrsm(
                UpLo::Lower,
                Transpose::No,
                Diag::NonUnit,
                1.0,
                &a.view(),
                &mut b.view_mut(),
                &GemmConfig::default()
            ),
            Err(GemmError::InnerDimMismatch { .. })
        ));
    }

    #[test]
    fn trsm_empty_dims() {
        let a = Matrix::identity(3);
        let mut b = Matrix::zeros(3, 0);
        dtrsm(
            UpLo::Lower,
            Transpose::No,
            Diag::NonUnit,
            1.0,
            &a.view(),
            &mut b.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn symm_shape_errors() {
        let a = Matrix::zeros(4, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(4, 2);
        assert!(matches!(
            dsymm(
                UpLo::Lower,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut c.view_mut(),
                &GemmConfig::default()
            ),
            Err(GemmError::BadConfig(_))
        ));
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(5, 2);
        assert!(matches!(
            dsymm(
                UpLo::Lower,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut c.view_mut(),
                &GemmConfig::default()
            ),
            Err(GemmError::InnerDimMismatch { .. })
        ));
    }

    /// The level-3 routines inherit the pack cache through their interior
    /// `try_gemm` calls; caching must not change a single bit of the
    /// result (the cached tiles are packed by the same code).
    #[test]
    fn level3_routines_bit_identical_with_pack_cache() {
        use crate::pool::PoolScalar;

        let n = 43;
        let k = 21;
        let a_syrk = Matrix::random(n, k, 301);
        let sym = {
            let s: Matrix = Matrix::random(n, n, 302);
            // symmetrize so dsymm's contract holds
            Matrix::from_fn(n, n, |i, j| s.get(i, j) + s.get(j, i))
        };
        let b_mat = Matrix::random(n, 17, 303);
        let c0 = Matrix::random(n, n, 304);

        let base = GemmConfig::default().with_blocks(16, 16, 12);
        let cached_cfg = base.with_pack_cache(true);
        // Clear any aliased stale entries other tests may have left for
        // these freshly allocated operands.
        f64::pack_cache().invalidate(&a_syrk.view());
        f64::pack_cache().invalidate(&sym.view());
        f64::pack_cache().invalidate(&b_mat.view());

        let mut baseline: Option<(Matrix, Matrix)> = None;
        for cfg in [base, cached_cfg, cached_cfg] {
            // third pass exercises warm cache hits
            let mut c_syrk = c0.clone();
            dsyrk(
                UpLo::Lower,
                Transpose::No,
                1.5,
                &a_syrk.view(),
                -0.5,
                &mut c_syrk.view_mut(),
                &cfg,
            )
            .unwrap();
            let mut c_symm = Matrix::zeros(n, 17);
            dsymm(
                UpLo::Lower,
                2.0,
                &sym.view(),
                &b_mat.view(),
                0.0,
                &mut c_symm.view_mut(),
                &cfg,
            )
            .unwrap();
            match &baseline {
                None => baseline = Some((c_syrk, c_symm)),
                Some((want_syrk, want_symm)) => {
                    assert_eq!(c_syrk.view().data(), want_syrk.view().data());
                    assert_eq!(c_symm.view().data(), want_symm.view().data());
                }
            }
        }

        // Coherence contract: drop our entries before the operands are
        // freed so a later allocation at the same address can't alias.
        f64::pack_cache().invalidate(&a_syrk.view());
        f64::pack_cache().invalidate(&sym.view());
        f64::pack_cache().invalidate(&b_mat.view());
    }
}
