//! Layers 1–3 of Figure 2: the outer blocking loops and the GEMM driver.
//!
//! ```text
//! for jj in 0..N step nc          // layer 1: C,B column panels (L3)
//!   for kk in 0..K step kc        // layer 2: rank-kc updates (GEPP)
//!     pack B(kk.., jj..) -> L3-resident panel
//!     for ii in 0..M step mc      // layer 3: GEBP calls (parallelized)
//!       pack A(ii.., kk..) -> L2-resident block
//!       GEBP
//! ```
//!
//! β is applied to C exactly once up front; α is folded into the
//! micro-kernel write-back.

#![forbid(unsafe_code)]

use crate::autotune::AutotuneMode;
use crate::dispatch::DispatchMode;
use crate::matrix::{MatrixView, MatrixViewMut};
use crate::microkernel::{KernelSet, MicroKernelKind};
use crate::parallel::{run_layer3, run_layer3_scoped, Layer3Params};
use crate::pool::{gemm_pooled, Parallelism, PoolScalar, WorkerPool};
use crate::tile::TileMut;
use crate::{GemmError, Transpose};
use perfmodel::cacheblock::{solve_blocking, BlockSizes};
use perfmodel::MachineDesc;
use std::time::{Duration, Instant};

/// Upper clamp for `DGEMM_EPOCH_TIMEOUT_MS`: one hour. A watchdog
/// longer than this is indistinguishable from no watchdog, and the
/// clamp keeps an absurd value from overflowing deadline arithmetic.
const MAX_EPOCH_TIMEOUT_MS: u64 = 3_600_000;

/// Configuration of one GEMM invocation: register kernel, blocking and
/// threading runtime.
#[derive(Clone, Copy, Debug)]
pub struct GemmConfig {
    /// Register kernel to use (layer 7).
    pub kernel: MicroKernelKind,
    /// Cache blocking (layers 1–6). [`GemmConfig::for_kernel`] derives it
    /// analytically for the paper's machine.
    pub blocks: BlockSizes,
    /// How layer 3 executes: serial, legacy spawn-per-GEPP, or the
    /// persistent worker pool.
    pub parallelism: Parallelism,
    /// Watchdog deadline per layer-3 epoch on the pool runtime. `None`
    /// (the default) waits indefinitely; with a deadline, a stalled
    /// epoch is abandoned, its blocks recomputed serially, and the call
    /// reports [`GemmError::EpochTimeout`] (C still holds the bit-exact
    /// result). [`GemmConfig::auto`] reads `DGEMM_EPOCH_TIMEOUT_MS`.
    pub epoch_timeout: Option<Duration>,
    /// Consult the process-wide [`crate::prepack::PackCache`] for a
    /// pre-packed B (packing it on first use), so repeated GEMMs
    /// against the same operand pack it once instead of per call.
    /// Off by default; see the [`crate::prepack`] coherence contract
    /// before enabling. [`GemmConfig::auto`] reads `DGEMM_PACK_CACHE`.
    pub pack_cache: bool,
    /// Shape-adaptive dispatch (DESIGN.md §13): with the default
    /// [`DispatchMode::Fixed`] the configured [`Parallelism`] runs
    /// unchanged; `Auto` picks Serial vs Pool (and the 2-D grid split)
    /// per call from the cost model, `Serial`/`Pool` force a runtime.
    /// [`GemmConfig::auto`] reads `DGEMM_DISPATCH`.
    pub dispatch: DispatchMode,
    /// Closed-loop autotuning (DESIGN.md §14): with the default
    /// [`AutotuneMode::Off`] the analytic blocking runs unchanged;
    /// `Read` applies winners stored in the per-host tuning DB, `Full`
    /// additionally tunes on the first miss of each shape class.
    /// [`GemmConfig::auto`] reads `DGEMM_AUTOTUNE`.
    pub autotune: AutotuneMode,
}

impl GemmConfig {
    /// Analytic configuration for a kernel and thread count on the
    /// paper's machine (Table III). `threads > 1` selects the persistent
    /// worker pool ([`Parallelism::from_threads`]).
    #[must_use]
    pub fn for_kernel(kernel: MicroKernelKind, threads: usize) -> Self {
        let m = MachineDesc::xgene();
        // The paper machine is always solvable; the fallback covers a
        // hypothetical unsolvable register shape without panicking in
        // library code (conservative L1/L2-sized blocks).
        let blocks = solve_blocking(kernel.mr(), kernel.nr(), threads.clamp(1, m.cores), &m)
            .unwrap_or_else(|_| {
                BlockSizes::custom(
                    kernel.mr(),
                    kernel.nr(),
                    256,
                    8 * kernel.mr(),
                    64 * kernel.nr(),
                )
            });
        GemmConfig {
            kernel,
            blocks,
            parallelism: Parallelism::from_threads(threads),
            epoch_timeout: None,
            pack_cache: false,
            dispatch: DispatchMode::Fixed,
            autotune: AutotuneMode::Off,
        }
    }

    /// Configuration for the host at hand: the thread count comes from
    /// the `DGEMM_NUM_THREADS` environment variable when set, otherwise
    /// from [`std::thread::available_parallelism`]; the epoch watchdog
    /// comes from `DGEMM_EPOCH_TIMEOUT_MS` when set. An unparsable or
    /// zero `DGEMM_NUM_THREADS` is a [`GemmError::BadConfig`]; an
    /// absurdly large one is clamped to [`WorkerPool::max_workers`].
    /// `DGEMM_EPOCH_TIMEOUT_MS=0` disables the watchdog; an unparsable
    /// value is a [`GemmError::BadConfig`]; a huge one is clamped to an
    /// hour.
    pub fn auto() -> Result<Self, GemmError> {
        let threads = threads_from_env()?;
        let autotune = AutotuneMode::from_env()?;
        if autotune != AutotuneMode::Off {
            // Validate the tuning-DB env vars eagerly (typed errors at
            // config time, not silent fallbacks mid-GEMM) and seed the
            // dispatcher calibration from the DB once per process.
            crate::autotune::db_path()?;
            crate::autotune::TuneOptions::from_env()?;
            crate::autotune::max_age_from_env()?;
            crate::autotune::seed_dispatch_calibration();
        }
        Ok(GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads)
            .with_epoch_timeout(epoch_timeout_from_env()?)
            .with_pack_cache(pack_cache_from_env()?)
            .with_dispatch(DispatchMode::from_env()?)
            .with_autotune(autotune))
    }

    /// Same kernel/threads but explicit `kc×mc×nc` (for sensitivity
    /// studies like Table VI).
    #[must_use]
    pub fn with_blocks(mut self, kc: usize, mc: usize, nc: usize) -> Self {
        self.blocks = BlockSizes::custom(self.kernel.mr(), self.kernel.nr(), kc, mc, nc);
        self
    }

    /// Same kernel/blocking but an explicit threading runtime.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Same configuration with an explicit epoch watchdog deadline
    /// (`None` disables it).
    #[must_use]
    pub fn with_epoch_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.epoch_timeout = timeout;
        self
    }

    /// Same configuration with the transparent pre-packed-B cache
    /// enabled or disabled (see [`crate::prepack`] for the coherence
    /// contract the caller takes on when enabling it).
    #[must_use]
    pub fn with_pack_cache(mut self, enabled: bool) -> Self {
        self.pack_cache = enabled;
        self
    }

    /// Same configuration with an explicit [`DispatchMode`] (see
    /// [`crate::dispatch`] and the README's "Choosing a runtime").
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Same configuration with an explicit [`AutotuneMode`] (see
    /// [`crate::autotune`] and the README's "Autotuning").
    #[must_use]
    pub fn with_autotune(mut self, autotune: AutotuneMode) -> Self {
        self.autotune = autotune;
        self
    }

    /// The configured parallel degree (1 for serial).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.parallelism.degree()
    }
}

/// Parse `DGEMM_NUM_THREADS`: absent falls back to the host's available
/// parallelism, zero/garbage is a typed error, a huge value clamps to
/// [`WorkerPool::max_workers`]. Shared by [`GemmConfig::auto`] and
/// [`crate::sgemm::SgemmConfig::auto`].
pub(crate) fn threads_from_env() -> Result<usize, GemmError> {
    match std::env::var("DGEMM_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            // Over-subscribing beyond the pool's own cap only queues
            // jobs behind fewer workers; clamp instead of erroring.
            Ok(n) if n > 0 => Ok(n.min(WorkerPool::max_workers())),
            _ => Err(GemmError::BadConfig(
                "DGEMM_NUM_THREADS must be a positive integer",
            )),
        },
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(GemmError::BadConfig("DGEMM_NUM_THREADS is not unicode"))
        }
        Err(std::env::VarError::NotPresent) => Ok(std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)),
    }
}

/// Parse `DGEMM_EPOCH_TIMEOUT_MS`: absent or `0` disables the watchdog,
/// a huge value clamps to one hour, garbage is a typed error.
pub(crate) fn epoch_timeout_from_env() -> Result<Option<Duration>, GemmError> {
    match std::env::var("DGEMM_EPOCH_TIMEOUT_MS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) => Ok(None),
            Ok(ms) => Ok(Some(Duration::from_millis(ms.min(MAX_EPOCH_TIMEOUT_MS)))),
            Err(_) => Err(GemmError::BadConfig(
                "DGEMM_EPOCH_TIMEOUT_MS must be a non-negative integer of milliseconds",
            )),
        },
        Err(std::env::VarError::NotUnicode(_)) => Err(GemmError::BadConfig(
            "DGEMM_EPOCH_TIMEOUT_MS is not unicode",
        )),
        Err(std::env::VarError::NotPresent) => Ok(None),
    }
}

/// Parse `DGEMM_PACK_CACHE`: absent/`0`/`false` disables the pack
/// cache, `1`/`true` enables it, anything else is a typed error.
pub(crate) fn pack_cache_from_env() -> Result<bool, GemmError> {
    match std::env::var("DGEMM_PACK_CACHE") {
        Ok(v) => match v.trim() {
            "1" | "true" => Ok(true),
            "0" | "false" | "" => Ok(false),
            _ => Err(GemmError::BadConfig(
                "DGEMM_PACK_CACHE must be 0/1/true/false",
            )),
        },
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(GemmError::BadConfig("DGEMM_PACK_CACHE is not unicode"))
        }
        Err(std::env::VarError::NotPresent) => Ok(false),
    }
}

/// Parse an optional non-negative integer environment knob: absent
/// `None`, garbage or non-unicode is the typed error `err`. The shared
/// primitive behind the `DGEMM_SERVICE_*` knobs
/// ([`crate::service::ServiceConfig::from_env`]), matching the
/// absent-is-default / garbage-is-typed-error contract of the parsers
/// above.
pub(crate) fn env_u64(name: &str, err: &'static str) -> Result<Option<u64>, GemmError> {
    match std::env::var(name) {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(GemmError::BadConfig(err)),
        },
        Err(std::env::VarError::NotUnicode(_)) => Err(GemmError::BadConfig(err)),
        Err(std::env::VarError::NotPresent) => Ok(None),
    }
}

impl Default for GemmConfig {
    /// The paper's best serial configuration: 8×6 kernel,
    /// `kc×mc×nc = 512×56×1920`.
    fn default() -> Self {
        GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1)
    }
}

/// Unchecked GEMM core: `C := α·op(A)·op(B) + β·C`.
///
/// Dimensions are asserted (use [`crate::blas::dgemm`] for `Result`-based
/// checking). `a` and `b` are the *stored* operands; transposition is
/// folded into packing.
///
/// # Panics
///
/// On shape/blocking violations, and on a runtime fault the pool could
/// not contain ([`GemmError::WorkerFault`] etc.) — use [`try_gemm`] (or
/// [`crate::blas::dgemm`]) to receive those as typed errors instead.
#[allow(clippy::too_many_arguments)] // canonical BLAS gemm signature
pub fn gemm(
    transa: Transpose,
    transb: Transpose,
    alpha: f64,
    a: &MatrixView<'_>,
    b: &MatrixView<'_>,
    beta: f64,
    c: &mut MatrixViewMut<'_>,
    cfg: &GemmConfig,
) {
    if let Err(e) = try_gemm(transa, transb, alpha, a, b, beta, c, cfg) {
        panic!("gemm runtime fault: {e}");
    }
}

/// [`gemm`] with runtime faults reported as typed errors: worker double
/// faults, watchdog timeouts and allocation failures surface as
/// `Err` instead of panics. Dimensions are still asserted (this is the
/// unchecked core; [`crate::blas::dgemm`] validates shapes too).
#[allow(clippy::too_many_arguments)] // canonical BLAS gemm signature
pub fn try_gemm(
    transa: Transpose,
    transb: Transpose,
    alpha: f64,
    a: &MatrixView<'_>,
    b: &MatrixView<'_>,
    beta: f64,
    c: &mut MatrixViewMut<'_>,
    cfg: &GemmConfig,
) -> Result<(), GemmError> {
    // Consult the tuning DB (DESIGN.md §14) before committing to a
    // blocking; AutotuneMode::Off returns the config untouched and any
    // tuning failure degrades silently to the analytic defaults.
    let cfg = if cfg.autotune == crate::autotune::AutotuneMode::Off {
        *cfg
    } else {
        let (m, k) = transa.apply_dims(a.rows(), a.cols());
        let (_, n) = transb.apply_dims(b.rows(), b.cols());
        crate::autotune::tuned_f64(cfg, m, n, k)
    };
    gemm_with(
        transa,
        transb,
        alpha,
        a,
        b,
        beta,
        c,
        cfg.kernel,
        cfg.blocks,
        cfg.parallelism,
        cfg.epoch_timeout,
        cfg.pack_cache,
        cfg.dispatch,
    )
}

/// The generic blocked GEMM core (any [`PoolScalar`], any [`KernelSet`]):
/// the same layered loops serve the paper's DGEMM and the derived
/// SGEMM ([`crate::sgemm`]).
///
/// `Ok(())` guarantees C holds the bit-exact serial result, even when
/// the pool contained worker faults along the way;
/// [`GemmError::EpochTimeout`] guarantees the same result but reports
/// that the watchdog fired; other errors leave C unspecified.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with<T: PoolScalar, K: KernelSet<T>>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    beta: T,
    c: &mut MatrixViewMut<'_, T>,
    kernel: K,
    blocks: BlockSizes,
    parallelism: Parallelism,
    epoch_timeout: Option<Duration>,
    pack_cache: bool,
    dispatch: DispatchMode,
) -> Result<(), GemmError> {
    let (m, ka) = transa.apply_dims(a.rows(), a.cols());
    let (kb, n) = transb.apply_dims(b.rows(), b.cols());
    assert_eq!(ka, kb, "inner dimensions differ");
    assert_eq!((c.rows(), c.cols()), (m, n), "output shape differs");
    let k = ka;
    assert!(
        blocks.kc > 0 && blocks.mc > 0 && blocks.nc > 0,
        "block sizes must be positive"
    );

    // β once, up front (also handles alpha == 0 / k == 0 fully).
    c.scale(beta);
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    // The cache path: cloning the Arc here keeps the panels alive for
    // the whole call even if the entry is evicted or invalidated
    // concurrently. A failed pack (allocation) degrades to the
    // per-call packing below, never to an error.
    let prepacked = if pack_cache {
        T::pack_cache().get_or_pack(b, transb, kernel.nr(), blocks.kc, blocks.nc)
    } else {
        None
    };
    let prepacked = prepacked.as_deref();

    match dispatch {
        // Fixed: run exactly the configured runtime on the historical
        // 1-D M-band schedule — no decision, no timing, no grid.
        DispatchMode::Fixed => match parallelism {
            Parallelism::Pool(threads) => gemm_pooled(
                transa,
                transb,
                alpha,
                core::slice::from_ref(a),
                b,
                core::slice::from_mut(c),
                kernel,
                blocks,
                threads,
                1,
                epoch_timeout,
                prepacked,
            ),
            Parallelism::Scoped(threads) if threads > 1 => {
                gemm_scoped(
                    transa, transb, alpha, a, b, c, kernel, blocks, threads, prepacked,
                );
                Ok(())
            }
            Parallelism::Serial | Parallelism::Scoped(_) => {
                gemm_serial(transa, transb, alpha, a, b, c, kernel, blocks, prepacked);
                Ok(())
            }
        },
        mode => {
            let plan = crate::dispatch::decide(
                mode,
                m,
                n,
                k,
                1,
                &blocks,
                kernel.nr(),
                parallelism.degree(),
                prepacked.is_some(),
            );
            let start = Instant::now();
            let result = match plan.runtime {
                Parallelism::Pool(threads) => gemm_pooled(
                    transa,
                    transb,
                    alpha,
                    core::slice::from_ref(a),
                    b,
                    core::slice::from_mut(c),
                    kernel,
                    blocks,
                    threads,
                    plan.n_split,
                    epoch_timeout,
                    prepacked,
                ),
                _ => {
                    gemm_serial(transa, transb, alpha, a, b, c, kernel, blocks, prepacked);
                    Ok(())
                }
            };
            crate::dispatch::record(plan, start.elapsed());
            result
        }
    }
}

/// Serial layers 1–3, drawing the hoisted packed-A block and packed-B
/// panel from the thread-local arena so repeated calls (and every
/// macro-iteration within one) reuse the same two buffers.
#[allow(clippy::too_many_arguments)]
fn gemm_serial<T: PoolScalar, K: KernelSet<T>>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T>,
    kernel: K,
    blocks: BlockSizes,
    prepacked: Option<&crate::prepack::PrepackedB<T>>,
) {
    let (m, k) = transa.apply_dims(a.rows(), a.cols());
    let n = c.cols();
    let BlockSizes { kc, mc, nc, .. } = blocks;
    T::with_arena(|arena| {
        let mut slot = arena.take_slot(kernel.mr());
        let mut packed_b = arena.take_panel(kernel.nr());
        let mut gepp: u64 = 0;
        let mut jj = 0usize;
        while jj < n {
            let nc_eff = nc.min(n - jj);
            let mut kk = 0usize;
            while kk < k {
                let kc_eff = kc.min(k - kk);
                gepp += 1;
                crate::telemetry::set_gepp(gepp);
                // cached tiles are laid out exactly as `pack` would
                // produce, so layer 3 is oblivious to their origin
                let pb = match prepacked {
                    Some(pp) => pp.panel(jj, kk),
                    None => {
                        packed_b.pack(b, transb, kk, jj, kc_eff, nc_eff);
                        &packed_b
                    }
                };
                let params = Layer3Params {
                    a,
                    transa,
                    kk,
                    kc_eff,
                    alpha,
                    kernel,
                    mc,
                };
                // C panel: all m rows, columns jj..jj+nc_eff
                let mut panel_view = c.sub_mut(0, jj, m, nc_eff);
                let ld = panel_view.ld();
                let panel = TileMut::from_slice(m, nc_eff, ld, panel_view.data_mut());
                run_layer3(params, pb, panel, slot.pa_mut());
                kk += kc_eff;
            }
            jj += nc_eff;
        }
        arena.put_slot(slot);
        arena.put_panel(packed_b);
    });
}

/// The seed's spawn-per-GEPP path, kept verbatim behind
/// [`Parallelism::Scoped`] as the pool's measurement baseline.
#[allow(clippy::too_many_arguments)]
fn gemm_scoped<T: PoolScalar, K: KernelSet<T>>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T>,
    kernel: K,
    blocks: BlockSizes,
    threads: usize,
    prepacked: Option<&crate::prepack::PrepackedB<T>>,
) {
    let (m, k) = transa.apply_dims(a.rows(), a.cols());
    let n = c.cols();
    let BlockSizes { kc, mc, nc, .. } = blocks;
    let mut packed_b = crate::pack::PackedB::new(kernel.nr());
    let mut gepp: u64 = 0;
    let mut jj = 0usize;
    while jj < n {
        let nc_eff = nc.min(n - jj);
        let mut kk = 0usize;
        while kk < k {
            let kc_eff = kc.min(k - kk);
            gepp += 1;
            crate::telemetry::set_gepp(gepp);
            let pb = match prepacked {
                Some(pp) => pp.panel(jj, kk),
                None => {
                    packed_b.pack_parallel(b, transb, kk, jj, kc_eff, nc_eff, threads);
                    &packed_b
                }
            };
            let params = Layer3Params {
                a,
                transa,
                kk,
                kc_eff,
                alpha,
                kernel,
                mc,
            };
            let mut panel_view = c.sub_mut(0, jj, m, nc_eff);
            let ld = panel_view.ld();
            let panel = TileMut::from_slice(m, nc_eff, ld, panel_view.data_mut());
            run_layer3_scoped(params, pb, panel, threads);
            kk += kc_eff;
        }
        jj += nc_eff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::reference::naive_gemm;
    use crate::util::gemm_tolerance;

    #[allow(clippy::too_many_arguments)]
    fn check(
        kind: MicroKernelKind,
        m: usize,
        n: usize,
        k: usize,
        transa: Transpose,
        transb: Transpose,
        alpha: f64,
        beta: f64,
        threads: usize,
    ) {
        let (ar, ac) = match transa {
            Transpose::No => (m, k),
            Transpose::Yes => (k, m),
        };
        let (br, bc) = match transb {
            Transpose::No => (k, n),
            Transpose::Yes => (n, k),
        };
        let a = Matrix::random(ar, ac, 7);
        let b = Matrix::random(br, bc, 8);
        let c0 = Matrix::random(m, n, 9);

        let mut expected = c0.clone();
        naive_gemm(
            transa,
            transb,
            alpha,
            &a.view(),
            &b.view(),
            beta,
            &mut expected.view_mut(),
        );

        let mut got = c0.clone();
        // shrink blocks so tests cross block boundaries quickly
        let cfg = GemmConfig::for_kernel(kind, threads).with_blocks(24, 16.max(kind.mr() * 2), 32);
        gemm(
            transa,
            transb,
            alpha,
            &a.view(),
            &b.view(),
            beta,
            &mut got.view_mut(),
            &cfg,
        );

        let tol = gemm_tolerance(k, 1.0);
        assert!(
            got.max_abs_diff(&expected) < tol,
            "{} m={m} n={n} k={k} ta={transa:?} tb={transb:?} alpha={alpha} beta={beta} \
             threads={threads}: err {}",
            kind.label(),
            got.max_abs_diff(&expected)
        );
    }

    #[test]
    fn square_no_transpose() {
        for kind in MicroKernelKind::ALL {
            check(kind, 64, 64, 64, Transpose::No, Transpose::No, 1.0, 0.0, 1);
        }
    }

    #[test]
    fn all_transpose_combinations() {
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                check(MicroKernelKind::Mk8x6, 40, 33, 27, ta, tb, 1.0, 0.0, 1);
            }
        }
    }

    #[test]
    fn alpha_beta_cases() {
        for (alpha, beta) in [(1.0, 1.0), (2.0, -0.5), (0.0, 2.0), (-1.0, 0.0), (0.5, 1.0)] {
            check(
                MicroKernelKind::Mk8x6,
                50,
                50,
                50,
                Transpose::No,
                Transpose::No,
                alpha,
                beta,
                1,
            );
        }
    }

    #[test]
    fn ragged_sizes_cross_every_block_boundary() {
        // sizes chosen to be coprime with mr/nr/kc/mc/nc used in check()
        for kind in MicroKernelKind::ALL {
            check(kind, 65, 37, 25, Transpose::No, Transpose::No, 1.0, 1.0, 1);
            check(kind, 17, 65, 49, Transpose::No, Transpose::No, 1.0, 0.0, 1);
        }
    }

    #[test]
    fn one_dimensional_edge_cases() {
        for (m, n, k) in [(1, 1, 1), (1, 64, 32), (64, 1, 32), (64, 32, 1), (3, 2, 1)] {
            check(
                MicroKernelKind::Mk8x6,
                m,
                n,
                k,
                Transpose::No,
                Transpose::No,
                1.0,
                0.0,
                1,
            );
        }
    }

    #[test]
    fn empty_dims_are_noops_or_scales() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 4);
        let mut c = Matrix::zeros(0, 4);
        gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &GemmConfig::default(),
        );
        // k == 0: C just scales by beta
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::from_fn(3, 2, |_, _| 4.0);
        gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.25,
            &mut c.view_mut(),
            &GemmConfig::default(),
        );
        assert_eq!(c.get(2, 1), 1.0);
    }

    #[test]
    fn threaded_matches_serial() {
        for threads in [2, 4, 8] {
            check(
                MicroKernelKind::Mk8x6,
                120,
                60,
                40,
                Transpose::No,
                Transpose::No,
                1.5,
                0.5,
                threads,
            );
        }
    }

    #[test]
    fn threaded_transposed() {
        check(
            MicroKernelKind::Mk8x4,
            90,
            45,
            33,
            Transpose::Yes,
            Transpose::Yes,
            1.0,
            1.0,
            4,
        );
    }

    #[test]
    fn default_config_is_paper_serial() {
        let cfg = GemmConfig::default();
        assert_eq!(cfg.kernel, MicroKernelKind::Mk8x6);
        assert_eq!(
            (cfg.blocks.kc, cfg.blocks.mc, cfg.blocks.nc),
            (512, 56, 1920)
        );
        assert_eq!(cfg.parallelism, Parallelism::Serial);
        assert_eq!(cfg.threads(), 1);
        assert_eq!(cfg.dispatch, DispatchMode::Fixed);
    }

    #[test]
    fn for_kernel_parallel_blocks() {
        let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 8);
        assert_eq!(
            (cfg.blocks.kc, cfg.blocks.mc, cfg.blocks.nc),
            (512, 24, 1792)
        );
    }

    #[test]
    fn for_kernel_threads_map_to_runtime() {
        assert_eq!(
            GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1).parallelism,
            Parallelism::Serial
        );
        assert_eq!(
            GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 8).parallelism,
            Parallelism::Pool(8)
        );
    }

    /// One test body for every `auto()` case: the env-var reads would
    /// race if split across parallel test threads.
    #[test]
    fn auto_config_reads_environment() {
        let _env = crate::dispatch::env_lock();
        std::env::remove_var("DGEMM_NUM_THREADS");
        std::env::remove_var("DGEMM_EPOCH_TIMEOUT_MS");
        std::env::remove_var("DGEMM_DISPATCH");
        let cfg = GemmConfig::auto().unwrap();
        assert!(cfg.threads() >= 1);
        assert!(cfg.parallelism.validate().is_ok());
        assert_eq!(cfg.epoch_timeout, None);

        std::env::set_var("DGEMM_NUM_THREADS", "3");
        let cfg = GemmConfig::auto().unwrap();
        assert_eq!(cfg.parallelism, Parallelism::Pool(3));

        std::env::set_var("DGEMM_NUM_THREADS", "1");
        let cfg = GemmConfig::auto().unwrap();
        assert_eq!(cfg.parallelism, Parallelism::Serial);

        for bad in ["0", "-2", "lots", ""] {
            std::env::set_var("DGEMM_NUM_THREADS", bad);
            assert!(GemmConfig::auto().is_err(), "accepted {bad:?}");
        }

        // An absurd thread count is clamped to the pool cap, not taken
        // literally (which would queue millions of zero-work jobs).
        std::env::set_var("DGEMM_NUM_THREADS", "18446744073709551615");
        let cfg = GemmConfig::auto().unwrap();
        assert!(cfg.threads() <= WorkerPool::max_workers());
        std::env::remove_var("DGEMM_NUM_THREADS");

        // Watchdog: absent -> None (checked above), 0 -> disabled,
        // a value -> that deadline, huge -> clamped, garbage -> error.
        std::env::set_var("DGEMM_EPOCH_TIMEOUT_MS", "0");
        assert_eq!(GemmConfig::auto().unwrap().epoch_timeout, None);
        std::env::set_var("DGEMM_EPOCH_TIMEOUT_MS", "250");
        assert_eq!(
            GemmConfig::auto().unwrap().epoch_timeout,
            Some(Duration::from_millis(250))
        );
        std::env::set_var("DGEMM_EPOCH_TIMEOUT_MS", "99999999999999");
        assert_eq!(
            GemmConfig::auto().unwrap().epoch_timeout,
            Some(Duration::from_millis(MAX_EPOCH_TIMEOUT_MS))
        );
        for bad in ["-5", "soon", "", "1.5"] {
            std::env::set_var("DGEMM_EPOCH_TIMEOUT_MS", bad);
            assert!(GemmConfig::auto().is_err(), "accepted {bad:?}");
        }
        std::env::remove_var("DGEMM_EPOCH_TIMEOUT_MS");

        // Pack cache: absent -> off, 1/true -> on, 0/false/"" -> off,
        // garbage -> error.
        std::env::remove_var("DGEMM_PACK_CACHE");
        assert!(!GemmConfig::auto().unwrap().pack_cache);
        for on in ["1", "true", " true "] {
            std::env::set_var("DGEMM_PACK_CACHE", on);
            assert!(GemmConfig::auto().unwrap().pack_cache, "rejected {on:?}");
        }
        for off in ["0", "false", ""] {
            std::env::set_var("DGEMM_PACK_CACHE", off);
            assert!(!GemmConfig::auto().unwrap().pack_cache, "accepted {off:?}");
        }
        for bad in ["yes", "2", "on"] {
            std::env::set_var("DGEMM_PACK_CACHE", bad);
            assert!(GemmConfig::auto().is_err(), "accepted {bad:?}");
        }
        std::env::remove_var("DGEMM_PACK_CACHE");

        // Dispatch: absent -> Fixed (checked above via the default),
        // each named mode parses, garbage -> error. The parser's full
        // contract lives in dispatch.rs; this checks auto() wires it.
        assert_eq!(GemmConfig::auto().unwrap().dispatch, DispatchMode::Fixed);
        for (v, want) in [
            ("serial", DispatchMode::Serial),
            ("pool", DispatchMode::Pool),
            ("auto", DispatchMode::Auto),
            ("fixed", DispatchMode::Fixed),
        ] {
            std::env::set_var("DGEMM_DISPATCH", v);
            assert_eq!(GemmConfig::auto().unwrap().dispatch, want, "value {v:?}");
        }
        std::env::set_var("DGEMM_DISPATCH", "sometimes");
        assert!(GemmConfig::auto().is_err());
        std::env::remove_var("DGEMM_DISPATCH");
    }

    #[test]
    fn epoch_timeout_builder_and_default() {
        let cfg = GemmConfig::default();
        assert_eq!(cfg.epoch_timeout, None);
        let cfg = cfg.with_epoch_timeout(Some(Duration::from_millis(80)));
        assert_eq!(cfg.epoch_timeout, Some(Duration::from_millis(80)));
        assert_eq!(cfg.with_epoch_timeout(None).epoch_timeout, None);
    }

    /// The pool reorders nothing that matters: each C element's
    /// accumulation order is fixed by the (jj, kk) epoch walk, so the
    /// pooled and scoped runtimes must match the serial walk bit for bit.
    #[test]
    fn runtimes_are_bitwise_identical() {
        for (m, n, k) in [(120, 70, 45), (61, 33, 29), (8, 96, 512)] {
            let a = Matrix::random(m, k, 21);
            let b = Matrix::random(k, n, 22);
            let c0 = Matrix::random(m, n, 23);
            let base = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1).with_blocks(32, 16, 24);
            let mut out = Vec::new();
            for cfg in [
                base.with_parallelism(Parallelism::Serial),
                base.with_parallelism(Parallelism::Scoped(3)),
                base.with_parallelism(Parallelism::Pool(3)),
                // ragged: blocks % workers != 0
                base.with_parallelism(Parallelism::Pool(5)),
                // the dispatcher (forced and model-driven, including the
                // 2-D grid forced pool runs) must not change a bit either
                base.with_parallelism(Parallelism::Pool(3))
                    .with_dispatch(DispatchMode::Serial),
                base.with_parallelism(Parallelism::Pool(3))
                    .with_dispatch(DispatchMode::Pool),
                base.with_parallelism(Parallelism::Pool(3))
                    .with_dispatch(DispatchMode::Auto),
            ] {
                let mut c = c0.clone();
                gemm(
                    Transpose::No,
                    Transpose::No,
                    1.25,
                    &a.view(),
                    &b.view(),
                    -0.5,
                    &mut c.view_mut(),
                    &cfg,
                );
                out.push(c);
            }
            for c in &out[1..] {
                assert_eq!(
                    c.max_abs_diff(&out[0]),
                    0.0,
                    "runtime diverges from serial on {m}x{n}x{k}"
                );
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = Matrix::identity(4);
        let b = Matrix::identity(4);
        let mut c = Matrix::zeros(4, 4);
        c.set(1, 1, f64::NAN);
        gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &GemmConfig::default(),
        );
        assert_eq!(c.get(1, 1), 1.0);
    }

    #[test]
    fn paper_blocking_on_midsize_problem() {
        // run the true 512x56x1920 blocking once on a problem big enough
        // to have multiple kc panels
        let m = 70;
        let n = 40;
        let k = 1100; // crosses kc=512 twice
        let a = Matrix::random(m, k, 1);
        let b = Matrix::random(k, n, 2);
        let mut expected = Matrix::zeros(m, n);
        naive_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut expected.view_mut(),
        );
        let mut got = Matrix::zeros(m, n);
        gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut got.view_mut(),
            &GemmConfig::default(),
        );
        assert!(got.max_abs_diff(&expected) < gemm_tolerance(k, 1.0));
    }
}
