//! The scalar abstraction that lets the GEBP engine serve both
//! precisions: the paper's DGEMM (f64, two lanes per NEON register) and
//! the SGEMM its method derives for f32 (four lanes, 12×8 register
//! block — see the `ext_sgemm_design` study).

#![forbid(unsafe_code)]

use core::fmt::Debug;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A floating-point element type usable by the blocked engine.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + MulAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Element size in bytes (drives the analytic blocking).
    const BYTES: usize;
    /// Unit roundoff.
    const EPSILON: Self;

    /// Convert from `f64` (rounding for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widen to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;
    const EPSILON: Self = f64::EPSILON;

    fn from_f64(v: f64) -> Self {
        v
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn abs(self) -> Self {
        f64::abs(self)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;
    const EPSILON: Self = f32::EPSILON;

    fn from_f64(v: f64) -> Self {
        v as f32
    }

    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    fn abs(self) -> Self {
        f32::abs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::ZERO.to_f64(), 0.0);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::from_f64(-2.5).abs().to_f64(), 2.5);
        assert!(T::EPSILON.to_f64() > 0.0);
    }

    #[test]
    fn both_precisions() {
        roundtrip::<f64>();
        roundtrip::<f32>();
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
    }

    #[test]
    fn f32_narrowing() {
        let x = f32::from_f64(0.1);
        assert!((x.to_f64() - 0.1).abs() < 1e-7);
    }
}
