//! The scalar abstraction that lets the GEBP engine serve both
//! precisions: the paper's DGEMM (f64, two lanes per NEON register) and
//! the SGEMM its method derives for f32 (four lanes, 12×8 register
//! block — see the `ext_sgemm_design` study).

#![forbid(unsafe_code)]

use core::fmt::Debug;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A floating-point element type usable by the blocked engine.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + MulAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Element size in bytes (drives the analytic blocking).
    const BYTES: usize;
    /// Unit roundoff.
    const EPSILON: Self;
    /// Dtype tag used by the on-disk weight store (DESIGN.md §17).
    /// Stable across releases: 1 = f64, 2 = f32.
    const DTYPE_CODE: u32;

    /// Convert from `f64` (rounding for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widen to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Raw bit pattern widened to 64 bits (exact; the store round-trips
    /// panels through this, so NaN payloads and -0.0 survive).
    fn to_bits64(self) -> u64;
    /// Inverse of [`Scalar::to_bits64`]; upper bits beyond the element
    /// width are ignored.
    fn from_bits64(bits: u64) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;
    const EPSILON: Self = f64::EPSILON;
    const DTYPE_CODE: u32 = 1;

    fn from_f64(v: f64) -> Self {
        v
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn abs(self) -> Self {
        f64::abs(self)
    }

    fn to_bits64(self) -> u64 {
        self.to_bits()
    }

    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;
    const EPSILON: Self = f32::EPSILON;
    const DTYPE_CODE: u32 = 2;

    fn from_f64(v: f64) -> Self {
        v as f32
    }

    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    fn abs(self) -> Self {
        f32::abs(self)
    }

    fn to_bits64(self) -> u64 {
        u64::from(self.to_bits())
    }

    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::ZERO.to_f64(), 0.0);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::from_f64(-2.5).abs().to_f64(), 2.5);
        assert!(T::EPSILON.to_f64() > 0.0);
    }

    #[test]
    fn both_precisions() {
        roundtrip::<f64>();
        roundtrip::<f32>();
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
    }

    #[test]
    fn f32_narrowing() {
        let x = f32::from_f64(0.1);
        assert!((x.to_f64() - 0.1).abs() < 1e-7);
    }

    #[test]
    fn bit_roundtrip_is_exact() {
        for v in [0.0f64, -0.0, 1.5, -1.0e-300, f64::NAN, f64::INFINITY] {
            let back = f64::from_bits64(v.to_bits64());
            assert_eq!(back.to_bits(), v.to_bits());
        }
        for v in [0.0f32, -0.0, 1.5, -1.0e-30, f32::NAN, f32::NEG_INFINITY] {
            let back = f32::from_bits64(v.to_bits64());
            assert_eq!(back.to_bits(), v.to_bits());
        }
        assert_ne!(<f64 as Scalar>::DTYPE_CODE, <f32 as Scalar>::DTYPE_CODE);
    }
}
