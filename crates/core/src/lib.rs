//! # dgemm-core
//!
//! A portable, production-quality implementation of the paper's DGEMM:
//! the layered Goto algorithm (Figure 2, layers 1–7) with packing,
//! analytically blocked for the ARMv8 memory hierarchy, with the paper's
//! 8×6 register kernel (plus the 8×4, 4×4 comparison kernels and a 5×5
//! ATLAS-like baseline) and layer-3 multi-threading.
//!
//! The library computes `C := α·op(A)·op(B) + β·C` for column-major
//! double-precision matrices, exactly like BLAS `dgemm`.
//!
//! ```
//! use dgemm_core::{blas::dgemm, gemm::GemmConfig, matrix::Matrix, Transpose};
//!
//! let a = Matrix::from_fn(30, 20, |i, j| (i * 20 + j) as f64 * 0.01);
//! let b = Matrix::from_fn(20, 25, |i, j| (i as f64 - j as f64) * 0.1);
//! let mut c = Matrix::zeros(30, 25);
//! dgemm(
//!     Transpose::No,
//!     Transpose::No,
//!     1.0,
//!     &a.view(),
//!     &b.view(),
//!     0.0,
//!     &mut c.view_mut(),
//!     &GemmConfig::default(),
//! )
//! .unwrap();
//! ```
//!
//! ## Architecture
//!
//! | module | paper layer | role |
//! |--------|-------------|------|
//! | [`matrix`] | — | column-major owned/borrowed matrix types |
//! | [`pack`] | layer 4 | packing A into `mr`-slivers, B into `nr`-slivers |
//! | [`microkernel`] | layer 7 | the `mr×nr` rank-1-update register kernels |
//! | [`gebp`] | layers 4–6 | GEBP / GEBS / GESS loop nest over packed data |
//! | [`gemm`] | layers 1–3 | `nc`/`kc`/`mc` blocking, β-scaling, driver |
//! | [`parallel`] | layer 3 | serial walk + static band partitioning (Section IV-C) |
//! | [`pool`] | layer 3 | persistent worker pool, dynamic `mc`-block scheduling, buffer arenas |
//! | [`prepack`] | layer 4 | pre-packed B operands and the weight-reuse pack cache |
//! | [`blas`] | — | BLAS-style checked entry points |
//! | [`level3`] | — | DSYRK/DSYMM/DTRSM built on the same GEBP engine |
//! | [`lu`] | — | blocked LU with partial pivoting (the LINPACK workload) |
//! | [`cholesky`] | — | blocked Cholesky factorization |
//! | [`batch`] | — | batched GEMM with shared-operand packing reuse |
//! | [`sgemm`] | — | single-precision GEMM from the same analytic design (12×8, γ=9.6) |
//! | [`telemetry`] | — | per-thread counters, phase spans, model-vs-measured attribution |
//! | [`trace`] | — | request-scoped trace spans, latency histograms, health-event journal |
//! | [`metricsd`] | — | dependency-free `/metrics` + `/status` scrape endpoint |
//! | [`autotune`] | — | closed-loop, model-seeded autotuner with a persistent per-host tuning DB |
//! | [`store`] | — | versioned on-disk format for pre-packed weights (zero-pack warm start) |
//! | [`mod@reference`] | — | naive triple-loop oracle for validation |

#![warn(missing_docs)]
// unsafe is confined to `tile` (the C-tile splitter whose checked API
// expresses the threaded path's disjoint row-band writes); every other
// module carries `#![forbid(unsafe_code)]`.
#![deny(unsafe_op_in_unsafe_fn)]
// Library code must propagate failures as typed errors; panicking
// shortcuts are reserved for tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod autotune;
pub mod batch;
pub mod blas;
pub mod cholesky;
pub mod dispatch;
pub mod faults;
pub mod gebp;
pub mod gemm;
pub mod level3;
pub mod lu;
pub mod matrix;
pub mod metricsd;
pub mod microkernel;
pub mod pack;
pub mod parallel;
pub mod pool;
pub mod prepack;
pub mod reference;
pub mod scalar;
pub mod service;
pub mod sgemm;
pub mod store;
pub mod telemetry;
pub mod tile;
pub mod trace;
pub mod util;

pub use pool::Parallelism;

/// Transposition selector for a GEMM operand, as in BLAS.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored.
    #[default]
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Transpose {
    /// Dimensions of `op(X)` given the stored dimensions of `X`.
    #[must_use]
    pub fn apply_dims(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Transpose::No => (rows, cols),
            Transpose::Yes => (cols, rows),
        }
    }
}

/// Errors reported by the checked BLAS-style entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GemmError {
    /// Inner dimensions of `op(A)` and `op(B)` disagree.
    InnerDimMismatch {
        /// Columns of `op(A)`.
        a_cols: usize,
        /// Rows of `op(B)`.
        b_rows: usize,
    },
    /// `C` has the wrong shape for `op(A)·op(B)`.
    OutputDimMismatch {
        /// Expected shape of C.
        expected: (usize, usize),
        /// Actual shape of C.
        actual: (usize, usize),
    },
    /// A blocking parameter is zero or otherwise unusable.
    BadConfig(&'static str),
    /// A pool worker panicked while computing an `mc`-block and the
    /// caller's serial re-execution of that block panicked too.
    ///
    /// The runtime contains a single worker panic by recomputing the
    /// block inline (see DESIGN.md §10); this variant means even the
    /// retry failed, so `C` must be considered unspecified.
    WorkerFault {
        /// Batch entry whose block failed (0 for plain GEMM).
        entry: usize,
        /// First row of the failed `mc`-block.
        row0: usize,
    },
    /// A layer-3 epoch exceeded [`crate::gemm::GemmConfig::epoch_timeout`].
    ///
    /// The caller stopped waiting, recomputed the missing blocks
    /// serially (so `C` is still bit-identical to the serial result),
    /// and reports the stall so the operator can inspect the pool.
    EpochTimeout {
        /// The deadline that expired, in milliseconds.
        timeout_ms: u64,
        /// How many block results were still outstanding at expiry.
        missing_blocks: usize,
        /// Live pool workers at the moment of expiry (diagnostic).
        workers_alive: usize,
    },
    /// Memory for a packing buffer or staging area could not be
    /// reserved, even after degrading to smaller chunks.
    AllocFailure {
        /// Which buffer failed (e.g. `"packed A"`, `"C staging"`).
        what: &'static str,
    },
    /// A serialized weight-store blob failed validation: truncated,
    /// corrupt (checksum mismatch), version-skewed, wrong dtype, or
    /// geometry-inconsistent (see DESIGN.md §17). The blob was rejected
    /// before any panel was consumed, so results are never affected.
    BadStore(&'static str),
}

impl core::fmt::Display for GemmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GemmError::InnerDimMismatch { a_cols, b_rows } => {
                write!(f, "op(A) has {a_cols} columns but op(B) has {b_rows} rows")
            }
            GemmError::OutputDimMismatch { expected, actual } => write!(
                f,
                "C is {}x{} but op(A)*op(B) is {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            GemmError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            GemmError::WorkerFault { entry, row0 } => write!(
                f,
                "worker panic on block (entry {entry}, rows {row0}..) and serial retry failed"
            ),
            GemmError::EpochTimeout {
                timeout_ms,
                missing_blocks,
                workers_alive,
            } => write!(
                f,
                "layer-3 epoch exceeded {timeout_ms} ms with {missing_blocks} block(s) \
                 outstanding ({workers_alive} workers alive); missing blocks were \
                 recomputed serially"
            ),
            GemmError::AllocFailure { what } => {
                write!(f, "failed to allocate memory for {what}")
            }
            GemmError::BadStore(msg) => write!(f, "bad weight store: {msg}"),
        }
    }
}

impl std::error::Error for GemmError {}
