//! Pre-packed B operands and the process-wide pack cache.
//!
//! The paper's γ = F/W argument treats packing as overhead amortized
//! over *one* multiplication; inference-style workloads multiply many
//! activations against the **same** weight matrix, so the packed-B W
//! term can be amortized over the whole stream instead. This module
//! provides the two pieces:
//!
//! - [`PrepackedB`]: an immutable, `Arc`-shared set of `kc×nc` panel
//!   tiles laid out exactly as [`PackedB::pack_parallel`] would produce
//!   them inside one GEMM call, built once per weight matrix.
//! - [`PackCache`]: a bounded LRU cache of [`PrepackedB`] sets keyed by
//!   the operand's identity (data pointer, dimensions, leading
//!   dimension, transposition) and the packing geometry (`nr`, `kc`,
//!   `nc`). [`crate::gemm::gemm`] / [`crate::gemm::try_gemm`] /
//!   [`crate::batch::gemm_batch_shared_b`] consult it transparently
//!   when [`crate::gemm::GemmConfig::with_pack_cache`] is enabled.
//!
//! ## Coherence contract
//!
//! The cache keys on the operand's *identity*, not its contents — a
//! lookup never re-reads the matrix (that would cost the traffic the
//! cache exists to save). Two rules follow:
//!
//! 1. After mutating a cached B in place, call [`PackCache::invalidate`]
//!    (or [`PackCache::bump_generation`]) before the next cached GEMM,
//!    or it will be served stale panels by design.
//! 2. Invalidate before freeing a cached B. The allocator may hand the
//!    same address to a new matrix of the same shape, which would then
//!    falsely hit the dead entry.
//!
//! Eviction and invalidation are always safe *during* a GEMM: every
//! call clones the `Arc` up front, so in-flight panels stay alive until
//! the call returns.

#![forbid(unsafe_code)]

use crate::matrix::MatrixView;
use crate::pack::PackedB;
use crate::scalar::Scalar;
use crate::{GemmError, Transpose};
use std::sync::{Arc, Mutex, PoisonError};

/// Default [`PackCache`] capacity: 256 MiB of packed panels per element
/// type. Tune per cache with [`PackCache::set_capacity`].
pub const DEFAULT_CACHE_CAPACITY: usize = 256 * 1024 * 1024;

/// The *layout* half of a pre-packed operand, split from panel
/// *construction* so a blob loaded from the on-disk store
/// ([`crate::store`]) and a live pack describe their tiles through one
/// vocabulary. Everything about the tile grid — tile count, walk
/// order, per-tile effective dimensions, padded element counts — is a
/// pure function of these six numbers; no panel data is needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PanelGeometry {
    /// Rows of `op(B)` (the inner GEMM dimension).
    pub k: usize,
    /// Columns of `op(B)`.
    pub n: usize,
    /// The `op(B)` selector the layout was derived under.
    pub trans: Transpose,
    /// Depth blocking.
    pub kc: usize,
    /// Column blocking.
    pub nc: usize,
    /// Kernel sliver width.
    pub nr: usize,
}

impl PanelGeometry {
    /// Validate the blocking parameters (all must be positive).
    pub fn validate(&self) -> Result<(), GemmError> {
        if self.nr == 0 || self.kc == 0 || self.nc == 0 {
            return Err(GemmError::BadConfig("prepack blocking must be positive"));
        }
        Ok(())
    }

    /// The tile walk in GEPP consumption order (`jj`-major, then `kk`):
    /// yields `(jj, kk, nc_eff, kc_eff)` for every tile. Both the live
    /// builder and the store loader iterate exactly this sequence, which
    /// is what makes on-disk panel offsets computable without an index
    /// table.
    pub fn tiles(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        let (k, n, kc, nc) = (self.k, self.n, self.kc, self.nc);
        (0..n.div_ceil(nc)).flat_map(move |j| {
            let jj = j * nc;
            let nc_eff = nc.min(n - jj);
            (0..k.div_ceil(kc)).map(move |i| {
                let kk = i * kc;
                (jj, kk, nc_eff, kc.min(k - kk))
            })
        })
    }

    /// Number of tiles in the grid.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.n.div_ceil(self.nc) * self.k.div_ceil(self.kc)
    }

    /// Padded element count of the `(nc_eff, kc_eff)` tile — the length
    /// [`PackedB::pack`] gives its sliver buffer.
    #[must_use]
    pub fn panel_elems(&self, nc_eff: usize, kc_eff: usize) -> usize {
        nc_eff.div_ceil(self.nr) * self.nr * kc_eff
    }

    /// Total padded elements across all tiles (the store payload length).
    #[must_use]
    pub fn total_elems(&self) -> usize {
        self.tiles()
            .map(|(_, _, nc_eff, kc_eff)| self.panel_elems(nc_eff, kc_eff))
            .sum()
    }
}

/// Anything that can serve packed `kc×nc` tiles of one `op(B)` under a
/// fixed [`PanelGeometry`] — the seam behind which a live
/// [`PrepackedB`] and a store-loaded blob are interchangeable
/// ([`crate::store::encode`] serializes through this trait, not a
/// concrete builder).
pub trait PanelSource<T: Scalar> {
    /// The layout every tile conforms to.
    fn geometry(&self) -> PanelGeometry;
    /// The tile covering GEPP offsets `(jj, kk)`.
    fn panel(&self, jj: usize, kk: usize) -> &PackedB<T>;
    /// Total packed (padded) panel bytes.
    fn bytes(&self) -> usize;
}

/// An immutable pre-packed B operand: every `kc×nc` tile of `op(B)`,
/// packed into `nr`-sliver layout, in the order the GEPP loops consume
/// them (`jj`-major, then `kk`).
///
/// Each tile is its own [`Arc<PackedB>`] so the pool runtime can ship
/// the exact panel an epoch needs to its workers without copying —
/// the same ownership shape an epoch-packed panel has.
#[derive(Clone, Debug)]
pub struct PrepackedB<T: Scalar = f64> {
    /// Tiles indexed `(jj / nc) * k_tiles + kk / kc`.
    panels: Vec<Arc<PackedB<T>>>,
    k: usize,
    n: usize,
    trans: Transpose,
    kc: usize,
    nc: usize,
    nr: usize,
    bytes: usize,
}

impl<T: Scalar> PrepackedB<T> {
    /// Pack every `kc×nc` tile of `op(b)` (where `op` is `trans`) into
    /// `nr`-sliver layout. Allocation failures surface as
    /// [`GemmError::AllocFailure`]; callers on the transparent cache
    /// path fall back to per-call packing.
    pub fn try_build(
        b: &MatrixView<'_, T>,
        trans: Transpose,
        nr: usize,
        kc: usize,
        nc: usize,
    ) -> Result<Self, GemmError> {
        let (k, n) = trans.apply_dims(b.rows(), b.cols());
        let geom = PanelGeometry {
            k,
            n,
            trans,
            kc,
            nc,
            nr,
        };
        geom.validate()?;
        let mut panels = Vec::new();
        let mut bytes = 0usize;
        for (jj, kk, nc_eff, kc_eff) in geom.tiles() {
            // `PackedB::try_pack` is the same choke point the
            // per-call paths use, so layout, telemetry bytes and
            // the PackB phase span are recorded identically here.
            let mut panel = PackedB::new(nr);
            panel.try_pack(b, trans, kk, jj, kc_eff, nc_eff)?;
            bytes += std::mem::size_of_val(panel.buf());
            panels.push(Arc::new(panel));
        }
        Ok(PrepackedB {
            panels,
            k,
            n,
            trans,
            kc,
            nc,
            nr,
            bytes,
        })
    }

    /// Assemble a pre-packed operand from already-laid-out panels — the
    /// construction-free path the store loader uses. Each panel must be
    /// in tile-walk order ([`PanelGeometry::tiles`]) and structurally
    /// consistent with the grid cell it covers; violations surface as
    /// [`GemmError::BadStore`] so a malformed blob can never reach the
    /// compute layers.
    pub fn from_panels(
        geom: PanelGeometry,
        panels: Vec<Arc<PackedB<T>>>,
    ) -> Result<Self, GemmError> {
        if geom.validate().is_err() {
            return Err(GemmError::BadStore("blob blocking geometry is zero"));
        }
        if panels.len() != geom.tile_count() {
            return Err(GemmError::BadStore("blob panel count mismatches tile grid"));
        }
        let mut bytes = 0usize;
        for ((_, _, nc_eff, kc_eff), panel) in geom.tiles().zip(&panels) {
            if panel.nr() != geom.nr
                || panel.kc() != kc_eff
                || panel.nc() != nc_eff
                || panel.buf().len() != geom.panel_elems(nc_eff, kc_eff)
            {
                return Err(GemmError::BadStore("blob panel mismatches its grid cell"));
            }
            bytes += std::mem::size_of_val(panel.buf());
        }
        Ok(PrepackedB {
            panels,
            k: geom.k,
            n: geom.n,
            trans: geom.trans,
            kc: geom.kc,
            nc: geom.nc,
            nr: geom.nr,
            bytes,
        })
    }

    /// The layout these tiles conform to.
    #[must_use]
    pub fn geometry(&self) -> PanelGeometry {
        PanelGeometry {
            k: self.k,
            n: self.n,
            trans: self.trans,
            kc: self.kc,
            nc: self.nc,
            nr: self.nr,
        }
    }

    /// Pre-pack `b` (used as stored) for `cfg`'s kernel and blocking —
    /// the panels every GEMM under that config would otherwise pack per
    /// call.
    pub fn from_matrix(
        cfg: &crate::gemm::GemmConfig,
        b: &MatrixView<'_, T>,
    ) -> Result<Self, GemmError> {
        Self::from_matrix_op(cfg, Transpose::No, b)
    }

    /// [`PrepackedB::from_matrix`] with an explicit `op(B)` selector.
    pub fn from_matrix_op(
        cfg: &crate::gemm::GemmConfig,
        trans: Transpose,
        b: &MatrixView<'_, T>,
    ) -> Result<Self, GemmError> {
        Self::try_build(b, trans, cfg.kernel.nr(), cfg.blocks.kc, cfg.blocks.nc)
    }

    /// The tile covering GEPP offsets `(jj, kk)` (element offsets into
    /// `op(B)`, as the layer 1–2 loops carry them).
    #[must_use]
    pub fn panel(&self, jj: usize, kk: usize) -> &PackedB<T> {
        self.panel_arc(jj, kk)
    }

    /// The `Arc` of the tile covering `(jj, kk)`, for the pool runtime
    /// to clone to its workers.
    #[must_use]
    pub(crate) fn panel_arc(&self, jj: usize, kk: usize) -> &Arc<PackedB<T>> {
        debug_assert!(jj < self.n && kk < self.k, "tile offset out of range");
        let k_tiles = self.k.div_ceil(self.kc);
        &self.panels[(jj / self.nc) * k_tiles + kk / self.kc]
    }

    /// Hand the tile covering `(jj, kk)` out to a set of 2-D grid cells:
    /// each `(col0, ncols)` pair is a cell's column range *within the
    /// tile*, which must be a whole-sliver (`nr`-aligned) sub-range so
    /// the cells can address the shared packed data as sliver ranges
    /// ([`crate::gebp::gebp_slivers`]). Debug-checked here, at the one
    /// seam where cache-owned panels meet the grid schedule.
    #[must_use]
    pub(crate) fn tile_range(
        &self,
        jj: usize,
        kk: usize,
        cells: &[(usize, usize)],
    ) -> &Arc<PackedB<T>> {
        let arc = self.panel_arc(jj, kk);
        debug_assert!(
            cells
                .iter()
                .all(|&(col0, w)| col0 % self.nr == 0 && col0 + w <= arc.nc()),
            "grid cell column range not sliver-aligned within the cached tile"
        );
        arc
    }

    /// Whether this set was packed for exactly this geometry.
    #[must_use]
    pub fn matches(
        &self,
        k: usize,
        n: usize,
        trans: Transpose,
        nr: usize,
        kc: usize,
        nc: usize,
    ) -> bool {
        (self.k, self.n, self.trans, self.nr, self.kc, self.nc) == (k, n, trans, nr, kc, nc)
    }

    /// Rows of `op(B)` covered (the inner GEMM dimension).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of `op(B)` covered.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `op(B)` selector the tiles were packed under.
    #[must_use]
    pub fn trans(&self) -> Transpose {
        self.trans
    }

    /// Depth blocking the tiles were packed with.
    #[must_use]
    pub fn kc(&self) -> usize {
        self.kc
    }

    /// Column blocking the tiles were packed with.
    #[must_use]
    pub fn nc(&self) -> usize {
        self.nc
    }

    /// Sliver width the tiles were packed with.
    #[must_use]
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// Number of `kc×nc` tiles.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.panels.len()
    }

    /// Total bytes of packed (padded) panel data — what one uncached
    /// GEMM call would write through the packing path.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl<T: Scalar> PanelSource<T> for PrepackedB<T> {
    fn geometry(&self) -> PanelGeometry {
        PrepackedB::geometry(self)
    }

    fn panel(&self, jj: usize, kk: usize) -> &PackedB<T> {
        PrepackedB::panel(self, jj, kk)
    }

    fn bytes(&self) -> usize {
        PrepackedB::bytes(self)
    }
}

/// Identity of a cached pre-pack: operand identity plus packing
/// geometry plus the cache generation at insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CacheKey {
    ptr: usize,
    rows: usize,
    cols: usize,
    ld: usize,
    trans: Transpose,
    nr: usize,
    kc: usize,
    nc: usize,
    generation: u64,
}

/// Monotone per-cache counters, mirrored into the process-wide
/// telemetry counters ([`crate::telemetry::Snapshot::cache`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a cached entry.
    pub hits: u64,
    /// Lookups that packed (or tried to pack) fresh panels.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries removed by [`PackCache::invalidate`] /
    /// [`PackCache::bump_generation`].
    pub invalidations: u64,
    /// Packed-B bytes *not* re-packed thanks to hits (the amortized W).
    pub bytes_saved: u64,
}

struct CacheEntry<T: Scalar> {
    key: CacheKey,
    panels: Arc<PrepackedB<T>>,
    last_used: u64,
}

struct CacheState<T: Scalar> {
    entries: Vec<CacheEntry<T>>,
    capacity: usize,
    tick: u64,
    generation: u64,
    stats: CacheStats,
}

impl<T: Scalar> CacheState<T> {
    fn bytes(&self) -> usize {
        self.entries.iter().map(|e| e.panels.bytes()).sum()
    }

    fn evict_over_capacity(&mut self, keep: Option<CacheKey>) {
        while self.bytes() > self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| keep != Some(e.key))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            let Some(victim) = victim else { break };
            self.entries.remove(victim);
            self.stats.evictions += 1;
            crate::telemetry::cache_evict(1);
        }
    }
}

/// A bounded LRU cache of [`PrepackedB`] sets, one process-wide
/// instance per element type ([`crate::pool::PoolScalar::pack_cache`]).
///
/// All methods take `&self`; the state sits behind one mutex. A miss
/// packs under the lock — deliberate, so concurrent calls racing on the
/// same weight matrix pack it once instead of N times.
pub struct PackCache<T: Scalar = f64> {
    state: Mutex<CacheState<T>>,
}

impl<T: Scalar> PackCache<T> {
    /// An empty cache with [`DEFAULT_CACHE_CAPACITY`].
    #[must_use]
    pub const fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty cache bounded to `capacity` bytes of packed panels.
    #[must_use]
    pub const fn with_capacity(capacity: usize) -> Self {
        PackCache {
            state: Mutex::new(CacheState {
                entries: Vec::new(),
                capacity,
                tick: 0,
                generation: 0,
                stats: CacheStats {
                    hits: 0,
                    misses: 0,
                    evictions: 0,
                    invalidations: 0,
                    bytes_saved: 0,
                },
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Return the cached pre-pack for `(b, trans, nr, kc, nc)`, packing
    /// and inserting it on a miss. `None` means packing failed to
    /// allocate — the caller should fall back to per-call packing. An
    /// entry larger than the whole capacity is returned but not
    /// retained.
    pub fn get_or_pack(
        &self,
        b: &MatrixView<'_, T>,
        trans: Transpose,
        nr: usize,
        kc: usize,
        nc: usize,
    ) -> Option<Arc<PrepackedB<T>>> {
        let mut st = self.lock();
        let key = CacheKey {
            ptr: b.data().as_ptr() as usize,
            rows: b.rows(),
            cols: b.cols(),
            ld: b.ld(),
            trans,
            nr,
            kc,
            nc,
            generation: st.generation,
        };
        st.tick += 1;
        let tick = st.tick;
        if let Some(i) = st.entries.iter().position(|e| e.key == key) {
            st.entries[i].last_used = tick;
            let panels = Arc::clone(&st.entries[i].panels);
            st.stats.hits += 1;
            st.stats.bytes_saved += panels.bytes() as u64;
            crate::telemetry::cache_hit(panels.bytes() as u64);
            return Some(panels);
        }
        st.stats.misses += 1;
        crate::telemetry::cache_miss();
        let panels = match PrepackedB::try_build(b, trans, nr, kc, nc) {
            Ok(p) => Arc::new(p),
            Err(_) => return None,
        };
        if panels.bytes() <= st.capacity {
            st.entries.push(CacheEntry {
                key,
                panels: Arc::clone(&panels),
                last_used: tick,
            });
            st.evict_over_capacity(Some(key));
        }
        Some(panels)
    }

    /// Seed the cache with externally built panels (typically a blob
    /// loaded from [`crate::store`]) so the next `get_or_pack` for this
    /// operand hits without ever packing. The entry is keyed on the
    /// *current* generation — after a [`PackCache::bump_generation`]
    /// the blob must be re-attached, which is the coherence story for
    /// warm-started weights too. Neither the hit/miss counters nor
    /// `bytes_saved` move here: seeding is not a lookup.
    ///
    /// Fails with [`GemmError::BadStore`] if `panels` was not built for
    /// exactly `op(b)`'s dimensions; an entry larger than the whole
    /// capacity is rejected the same way `get_or_pack` would not retain
    /// it (silently, `Ok`), so callers can always attach-then-serve.
    pub fn insert_prepacked(
        &self,
        b: &MatrixView<'_, T>,
        trans: Transpose,
        panels: Arc<PrepackedB<T>>,
    ) -> Result<(), GemmError> {
        let (k, n) = trans.apply_dims(b.rows(), b.cols());
        if !panels.matches(k, n, trans, panels.nr(), panels.kc(), panels.nc()) {
            return Err(GemmError::BadStore("panels do not cover op(B)"));
        }
        let mut st = self.lock();
        let key = CacheKey {
            ptr: b.data().as_ptr() as usize,
            rows: b.rows(),
            cols: b.cols(),
            ld: b.ld(),
            trans,
            nr: panels.nr(),
            kc: panels.kc(),
            nc: panels.nc(),
            generation: st.generation,
        };
        st.tick += 1;
        let tick = st.tick;
        if panels.bytes() > st.capacity {
            return Ok(());
        }
        if let Some(i) = st.entries.iter().position(|e| e.key == key) {
            st.entries[i].panels = panels;
            st.entries[i].last_used = tick;
            return Ok(());
        }
        st.entries.push(CacheEntry {
            key,
            panels,
            last_used: tick,
        });
        st.evict_over_capacity(Some(key));
        Ok(())
    }

    /// Whether a lookup for `(b, trans, nr, kc, nc)` would hit right
    /// now (current generation). A pure probe: no stats move, no LRU
    /// touch, no packing — the service's attach path uses this to
    /// decide when a warm-start blob needs (re-)seeding.
    #[must_use]
    pub fn contains(
        &self,
        b: &MatrixView<'_, T>,
        trans: Transpose,
        nr: usize,
        kc: usize,
        nc: usize,
    ) -> bool {
        let st = self.lock();
        let key = CacheKey {
            ptr: b.data().as_ptr() as usize,
            rows: b.rows(),
            cols: b.cols(),
            ld: b.ld(),
            trans,
            nr,
            kc,
            nc,
            generation: st.generation,
        };
        st.entries.iter().any(|e| e.key == key)
    }

    /// Drop every entry whose packed source overlaps `b`'s storage —
    /// any geometry, including entries packed from interior sub-views
    /// (the level-3 routines cache those). Call after mutating `b` in
    /// place, and before freeing it. Returns how many entries were
    /// removed.
    pub fn invalidate(&self, b: &MatrixView<'_, T>) -> usize {
        let lo = b.data().as_ptr() as usize;
        let hi = lo + std::mem::size_of_val(b.data());
        let elem = std::mem::size_of::<T>();
        let mut st = self.lock();
        let before = st.entries.len();
        st.entries.retain(|e| {
            let k = &e.key;
            let span = if k.cols == 0 {
                0
            } else {
                (k.ld * (k.cols - 1) + k.rows) * elem
            };
            // keep iff [k.ptr, k.ptr+span) misses [lo, hi)
            k.ptr + span <= lo || hi <= k.ptr
        });
        let removed = before - st.entries.len();
        if removed > 0 {
            st.stats.invalidations += removed as u64;
            crate::telemetry::cache_invalidate(removed as u64);
        }
        removed
    }

    /// Advance the cache generation: every current entry is dropped and
    /// can never be matched again (new inserts carry the new
    /// generation). The coarse hammer when *any* weight may have
    /// changed.
    pub fn bump_generation(&self) {
        let mut st = self.lock();
        st.generation += 1;
        let removed = st.entries.len() as u64;
        st.entries.clear();
        if removed > 0 {
            st.stats.invalidations += removed;
            crate::telemetry::cache_invalidate(removed);
        }
    }

    /// The current generation (starts at 0).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total packed bytes currently retained.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.lock().bytes()
    }

    /// The capacity bound in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Re-bound the cache, evicting LRU entries down to the new
    /// capacity immediately.
    pub fn set_capacity(&self, capacity: usize) {
        let mut st = self.lock();
        st.capacity = capacity;
        st.evict_over_capacity(None);
    }

    /// Drop every entry without touching the stats or generation (test
    /// scaffolding and bulk memory release; invalidations are *not*
    /// counted).
    pub fn clear(&self) {
        self.lock().entries.clear();
    }

    /// A copy of this cache's monotone counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }
}

impl<T: Scalar> Default for PackCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// The tiles must be byte-for-byte what the per-call packing path
    /// produces for the same `(jj, kk)` walk.
    #[test]
    fn tiles_match_per_call_packing() {
        let b: Matrix = Matrix::random(37, 29, 11);
        for trans in [Transpose::No, Transpose::Yes] {
            let (k, n) = trans.apply_dims(37, 29);
            let (nr, kc, nc) = (6, 16, 12);
            let pp = PrepackedB::try_build(&b.view(), trans, nr, kc, nc).unwrap();
            let mut reference = PackedB::new(nr);
            let mut jj = 0usize;
            let mut tiles = 0usize;
            while jj < n {
                let nc_eff = nc.min(n - jj);
                let mut kk = 0usize;
                while kk < k {
                    let kc_eff = kc.min(k - kk);
                    reference.pack(&b.view(), trans, kk, jj, kc_eff, nc_eff);
                    assert_eq!(pp.panel(jj, kk).buf(), reference.buf(), "tile ({jj},{kk})");
                    tiles += 1;
                    kk += kc_eff;
                }
                jj += nc_eff;
            }
            assert_eq!(pp.tiles(), tiles);
            assert!(pp.matches(k, n, trans, nr, kc, nc));
            assert!(!pp.matches(k, n, trans, nr, kc, nc + 1));
        }
    }

    #[test]
    fn interior_offsets_address_the_same_tile() {
        let b: Matrix = Matrix::random(20, 20, 3);
        let pp = PrepackedB::try_build(&b.view(), Transpose::No, 4, 8, 6).unwrap();
        // any offset inside a tile resolves to that tile
        assert!(std::ptr::eq(pp.panel(0, 0), pp.panel(5, 7)));
        assert!(!std::ptr::eq(pp.panel(0, 0), pp.panel(6, 0)));
        assert!(!std::ptr::eq(pp.panel(0, 0), pp.panel(0, 8)));
    }

    #[test]
    fn zero_blocking_is_rejected() {
        let b: Matrix = Matrix::zeros(4, 4);
        assert!(PrepackedB::try_build(&b.view(), Transpose::No, 0, 8, 8).is_err());
        assert!(PrepackedB::try_build(&b.view(), Transpose::No, 4, 0, 8).is_err());
        assert!(PrepackedB::try_build(&b.view(), Transpose::No, 4, 8, 0).is_err());
    }

    #[test]
    fn cache_hits_and_lru_eviction_are_local_to_the_instance() {
        let cache: PackCache = PackCache::with_capacity(usize::MAX);
        let b1: Matrix = Matrix::random(24, 24, 1);
        let b2: Matrix = Matrix::random(24, 24, 2);
        let first = cache
            .get_or_pack(&b1.view(), Transpose::No, 6, 8, 8)
            .unwrap();
        let again = cache
            .get_or_pack(&b1.view(), Transpose::No, 6, 8, 8)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &again), "second lookup must hit");
        // a different geometry for the same matrix is a distinct entry
        cache
            .get_or_pack(&b1.view(), Transpose::No, 6, 12, 8)
            .unwrap();
        cache
            .get_or_pack(&b2.view(), Transpose::No, 6, 8, 8)
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 3));
        assert_eq!(s.bytes_saved as usize, first.bytes());
        assert_eq!(cache.len(), 3);

        // shrink: LRU order evicts the b1 entries (b2 used last), then
        // capacity 0 empties it
        let keep = cache.bytes() - first.bytes();
        cache.set_capacity(keep);
        assert!(cache.bytes() <= keep);
        cache.set_capacity(0);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 3);
    }

    #[test]
    fn invalidate_and_generation_drop_entries() {
        let cache: PackCache = PackCache::new();
        let b1: Matrix = Matrix::random(16, 16, 4);
        let b2: Matrix = Matrix::random(16, 16, 5);
        cache
            .get_or_pack(&b1.view(), Transpose::No, 6, 8, 8)
            .unwrap();
        cache
            .get_or_pack(&b2.view(), Transpose::No, 6, 8, 8)
            .unwrap();
        assert_eq!(cache.invalidate(&b1.view()), 1);
        assert_eq!(cache.invalidate(&b1.view()), 0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.generation(), 0);
        cache.bump_generation();
        assert_eq!(cache.generation(), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 2);
        // the cache still serves fresh packs after the bump
        cache
            .get_or_pack(&b2.view(), Transpose::No, 6, 8, 8)
            .unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn oversized_entry_is_served_but_not_retained() {
        let cache: PackCache = PackCache::with_capacity(8);
        let b: Matrix = Matrix::random(32, 32, 6);
        let pp = cache
            .get_or_pack(&b.view(), Transpose::No, 6, 16, 16)
            .unwrap();
        assert!(pp.bytes() > 8);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 0);
    }
}
