//! Batched GEMM with shared-operand packing amortization.
//!
//! Packing is pure overhead the paper's blocking amortizes over one
//! multiplication; when *many* small multiplications share an operand
//! (one weight matrix against many inputs, one basis against many
//! right-hand sides), the packed form can be reused across the whole
//! batch — the packing cost is paid once instead of `batch` times. This
//! module exposes that reuse on top of the same layers 3–7.

#![forbid(unsafe_code)]

use crate::dispatch::DispatchMode;
use crate::gemm::GemmConfig;
use crate::matrix::{MatrixView, MatrixViewMut};
use crate::parallel::{run_layer3, run_layer3_scoped, Layer3Params};
use crate::pool::{gemm_pooled, Parallelism, PoolScalar};
use crate::tile::TileMut;
use crate::{GemmError, Transpose};
use std::time::Instant;

/// `C_i := α·A_i·op(B) + β·C_i` for every `(A_i, C_i)` pair, with the
/// shared `op(B)` packed once per `(jj, kk)` macro-iteration and reused
/// across the batch.
///
/// All `A_i` must share dimensions `m×k` (stored, non-transposed), all
/// `C_i` must be `m×n`.
pub fn gemm_batch_shared_b(
    alpha: f64,
    a_batch: &[MatrixView<'_>],
    transb: Transpose,
    b: &MatrixView<'_>,
    beta: f64,
    c_batch: &mut [MatrixViewMut<'_>],
    cfg: &GemmConfig,
) -> Result<(), GemmError> {
    let cache = if cfg.pack_cache {
        Some(f64::pack_cache())
    } else {
        None
    };
    gemm_batch_with_cache(alpha, a_batch, transb, b, beta, c_batch, cfg, cache)
}

/// [`gemm_batch_shared_b`] against an explicit [`PackCache`] instead of
/// the process-wide one — the service layer points this at a tenant's
/// quota-bounded cache so one tenant's weights cannot evict another's
/// (DESIGN.md §15). `None` packs fresh panels per macro-iteration.
#[allow(clippy::too_many_arguments)] // internal driver mirroring the entry point
pub(crate) fn gemm_batch_with_cache(
    alpha: f64,
    a_batch: &[MatrixView<'_>],
    transb: Transpose,
    b: &MatrixView<'_>,
    beta: f64,
    c_batch: &mut [MatrixViewMut<'_>],
    cfg: &GemmConfig,
    cache: Option<&crate::prepack::PackCache>,
) -> Result<(), GemmError> {
    if a_batch.len() != c_batch.len() {
        return Err(GemmError::BadConfig("batch lengths differ"));
    }
    let Some(first_a) = a_batch.first() else {
        return Ok(());
    };
    let (m, k) = (first_a.rows(), first_a.cols());
    let (kb, n) = transb.apply_dims(b.rows(), b.cols());
    if k != kb {
        return Err(GemmError::InnerDimMismatch {
            a_cols: k,
            b_rows: kb,
        });
    }
    for (a, c) in a_batch.iter().zip(c_batch.iter()) {
        if (a.rows(), a.cols()) != (m, k) {
            return Err(GemmError::BadConfig("batch A shapes differ"));
        }
        if (c.rows(), c.cols()) != (m, n) {
            return Err(GemmError::OutputDimMismatch {
                expected: (m, n),
                actual: (c.rows(), c.cols()),
            });
        }
    }
    if cfg.blocks.mr != cfg.kernel.mr() || cfg.blocks.nr != cfg.kernel.nr() {
        return Err(GemmError::BadConfig(
            "blocking register shape != kernel shape",
        ));
    }

    for c in c_batch.iter_mut() {
        c.scale(beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    // A weight-reuse batch is the pack cache's home turf: the shared
    // operand is packed once per *cache lifetime* instead of once per
    // call. The Arc clone keeps the panels alive even if the entry is
    // evicted mid-batch.
    let prepacked = cache.and_then(|cache| {
        cache.get_or_pack(b, transb, cfg.kernel.nr(), cfg.blocks.kc, cfg.blocks.nc)
    });
    let prepacked = prepacked.as_deref();

    // Shape-adaptive dispatch (DESIGN.md §13): the whole batch shares
    // one decision — every entry contributes `m_tasks`, so the grid
    // accounts for the real per-epoch cell count. A non-Fixed mode
    // resolves to Serial or Pool (the Scoped baseline is never chosen).
    let plan = match cfg.dispatch {
        DispatchMode::Fixed => None,
        mode => Some(crate::dispatch::decide(
            mode,
            m,
            n,
            k,
            a_batch.len(),
            &cfg.blocks,
            cfg.kernel.nr(),
            cfg.parallelism.degree(),
            prepacked.is_some(),
        )),
    };
    let runtime = plan.map_or(cfg.parallelism, |p| p.runtime);
    let n_split = plan.map_or(1, |p| p.n_split);
    let start = Instant::now();
    let result = run_batch(
        alpha, a_batch, transb, b, c_batch, cfg, prepacked, runtime, n_split,
    );
    if let Some(plan) = plan {
        crate::dispatch::record(plan, start.elapsed());
    }
    result
}

/// Execute the batch on a resolved runtime (the configured one, or the
/// dispatcher's choice with its 2-D grid split).
#[allow(clippy::too_many_arguments)] // internal driver mirroring the entry point
fn run_batch(
    alpha: f64,
    a_batch: &[MatrixView<'_>],
    transb: Transpose,
    b: &MatrixView<'_>,
    c_batch: &mut [MatrixViewMut<'_>],
    cfg: &GemmConfig,
    prepacked: Option<&crate::prepack::PrepackedB>,
    runtime: Parallelism,
    n_split: usize,
) -> Result<(), GemmError> {
    match runtime {
        Parallelism::Pool(threads) => {
            // every entry's mc-blocks are dispatched into the same epoch,
            // all sharing one Arc'd packed panel of B
            gemm_pooled(
                Transpose::No,
                transb,
                alpha,
                a_batch,
                b,
                c_batch,
                cfg.kernel,
                cfg.blocks,
                threads,
                n_split,
                cfg.epoch_timeout,
                prepacked,
            )?;
        }
        Parallelism::Scoped(threads) if threads > 1 => {
            f64::with_arena(|arena| {
                let mut packed_b = arena.take_panel(cfg.kernel.nr());
                batch_layer12(
                    alpha,
                    a_batch,
                    transb,
                    b,
                    c_batch,
                    cfg,
                    &mut packed_b,
                    prepacked,
                    |params, pb, panel| run_layer3_scoped(params, pb, panel, threads),
                );
                arena.put_panel(packed_b);
            });
        }
        Parallelism::Serial | Parallelism::Scoped(_) => {
            f64::with_arena(|arena| {
                // ONE packed-A block buffer and ONE packed-B panel across
                // blocks, macro-iterations and batch entries
                let mut slot = arena.take_slot(cfg.kernel.mr());
                let mut packed_b = arena.take_panel(cfg.kernel.nr());
                batch_layer12(
                    alpha,
                    a_batch,
                    transb,
                    b,
                    c_batch,
                    cfg,
                    &mut packed_b,
                    prepacked,
                    |params, pb, panel| run_layer3(params, pb, panel, slot.pa_mut()),
                );
                arena.put_slot(slot);
                arena.put_panel(packed_b);
            });
        }
    }
    Ok(())
}

/// Layers 1–2 of the non-pooled batched driver: the shared operand is
/// packed once per `(jj, kk)` macro-iteration into the caller's recycled
/// panel (or borrowed from a pre-packed cache entry) and `run` executes
/// layer 3 for each batch entry against it.
#[allow(clippy::too_many_arguments)] // internal driver mirroring the entry point
fn batch_layer12(
    alpha: f64,
    a_batch: &[MatrixView<'_>],
    transb: Transpose,
    b: &MatrixView<'_>,
    c_batch: &mut [MatrixViewMut<'_>],
    cfg: &GemmConfig,
    packed_b: &mut crate::pack::PackedB,
    prepacked: Option<&crate::prepack::PrepackedB>,
    mut run: impl FnMut(Layer3Params<'_>, &crate::pack::PackedB, TileMut<'_>),
) {
    let (m, k) = (a_batch[0].rows(), a_batch[0].cols());
    let n = c_batch[0].cols();
    let (kc, mc, nc) = (cfg.blocks.kc, cfg.blocks.mc, cfg.blocks.nc);
    let mut jj = 0usize;
    while jj < n {
        let nc_eff = nc.min(n - jj);
        let mut kk = 0usize;
        while kk < k {
            let kc_eff = kc.min(k - kk);
            // pack the shared operand ONCE for the whole batch — or skip
            // even that when a pre-packed tile is available
            let pb: &crate::pack::PackedB = match prepacked {
                Some(pp) => pp.panel(jj, kk),
                None => {
                    packed_b.pack(b, transb, kk, jj, kc_eff, nc_eff);
                    &*packed_b
                }
            };
            for (a, c) in a_batch.iter().zip(c_batch.iter_mut()) {
                let params = Layer3Params {
                    a,
                    transa: Transpose::No,
                    kk,
                    kc_eff,
                    alpha,
                    kernel: cfg.kernel,
                    mc,
                };
                let mut panel_view = c.sub_mut(0, jj, m, nc_eff);
                let ld = panel_view.ld();
                let panel = TileMut::from_slice(m, nc_eff, ld, panel_view.data_mut());
                run(params, pb, panel);
            }
            kk += kc_eff;
        }
        jj += nc_eff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::microkernel::MicroKernelKind;
    use crate::reference::naive_gemm;
    use crate::util::gemm_tolerance;

    fn check_batch(batch: usize, m: usize, n: usize, k: usize, transb: Transpose, beta: f64) {
        let a_mats: Vec<Matrix> = (0..batch)
            .map(|i| Matrix::random(m, k, 50 + i as u64))
            .collect();
        let (br, bc) = match transb {
            Transpose::No => (k, n),
            Transpose::Yes => (n, k),
        };
        let b = Matrix::random(br, bc, 99);
        let c0: Vec<Matrix> = (0..batch)
            .map(|i| Matrix::random(m, n, 70 + i as u64))
            .collect();

        let mut want = c0.clone();
        for (a, c) in a_mats.iter().zip(want.iter_mut()) {
            naive_gemm(
                Transpose::No,
                transb,
                1.5,
                &a.view(),
                &b.view(),
                beta,
                &mut c.view_mut(),
            );
        }

        let mut got = c0.clone();
        let a_views: Vec<MatrixView<'_>> = a_mats.iter().map(Matrix::view).collect();
        let mut c_views: Vec<MatrixViewMut<'_>> = got.iter_mut().map(Matrix::view_mut).collect();
        let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1).with_blocks(24, 16, 18);
        gemm_batch_shared_b(1.5, &a_views, transb, &b.view(), beta, &mut c_views, &cfg).unwrap();
        drop(c_views);

        for (g, w) in got.iter().zip(&want) {
            assert!(
                g.max_abs_diff(w) < gemm_tolerance(k, 2.0),
                "batch element diverges: {}",
                g.max_abs_diff(w)
            );
        }
    }

    #[test]
    fn batch_matches_individual_gemms() {
        check_batch(4, 30, 25, 20, Transpose::No, 0.0);
        check_batch(3, 41, 17, 29, Transpose::No, 1.0);
    }

    #[test]
    fn batch_with_transposed_shared_operand() {
        check_batch(3, 24, 30, 16, Transpose::Yes, -0.5);
    }

    #[test]
    fn empty_batch_is_noop() {
        let b = Matrix::zeros(4, 4);
        let mut cs: Vec<MatrixViewMut<'_>> = Vec::new();
        gemm_batch_shared_b(
            1.0,
            &[],
            Transpose::No,
            &b.view(),
            0.0,
            &mut cs,
            &GemmConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn shape_errors_detected() {
        let a1 = Matrix::zeros(4, 3);
        let a2 = Matrix::zeros(5, 3); // wrong shape
        let b = Matrix::zeros(3, 2);
        let mut c1 = Matrix::zeros(4, 2);
        let mut c2 = Matrix::zeros(4, 2);
        let a_views = [a1.view(), a2.view()];
        let mut c_views = vec![c1.view_mut(), c2.view_mut()];
        assert!(matches!(
            gemm_batch_shared_b(
                1.0,
                &a_views,
                Transpose::No,
                &b.view(),
                0.0,
                &mut c_views,
                &GemmConfig::default()
            ),
            Err(GemmError::BadConfig(_))
        ));
    }

    #[test]
    fn mismatched_batch_lengths_detected() {
        let a = Matrix::zeros(4, 3);
        let b = Matrix::zeros(3, 2);
        let a_views = [a.view()];
        let mut c_views: Vec<MatrixViewMut<'_>> = Vec::new();
        assert!(matches!(
            gemm_batch_shared_b(
                1.0,
                &a_views,
                Transpose::No,
                &b.view(),
                0.0,
                &mut c_views,
                &GemmConfig::default()
            ),
            Err(GemmError::BadConfig(_))
        ));
    }
}
