//! Layers 4–6 of Figure 2: GEBP, decomposed into GEBS (loop over B
//! slivers) and GESS (loop over A slivers, i.e. the BLIS micro-kernel
//! loop), operating entirely on packed data.
//!
//! One GEBP call multiplies an `mc×kc` packed block of A with a `kc×nc`
//! packed panel of B and accumulates `α·A·B` into an `mc×nc` tile of C.

#![forbid(unsafe_code)]

use crate::microkernel::KernelSet;
use crate::pack::{PackedA, PackedB};
use crate::scalar::Scalar;
use crate::tile::TileMut;

/// GEBP (layer 4): `C_tile += α · packed_a · packed_b` — generic over
/// the scalar type and kernel family.
///
/// The tile must be `packed_a.mc() × packed_b.nc()`; the packed operands
/// must share the same `kc`.
pub fn gebp<T: Scalar, K: KernelSet<T>>(
    kind: K,
    alpha: T,
    packed_a: &PackedA<T>,
    packed_b: &PackedB<T>,
    c: &mut TileMut<'_, T>,
) {
    assert_eq!(c.cols(), packed_b.nc(), "tile cols != nc");
    gebp_slivers(kind, alpha, packed_a, packed_b, 0, packed_b.nc(), c);
}

/// GEBP over a *sliver range* of the packed panel: accumulates
/// `α · packed_a · packed_b[:, s0·nr .. s0·nr + cols]` into the
/// `packed_a.mc() × cols` tile `c`.
///
/// This is the compute half of a 2-D grid cell (DESIGN.md §13): several
/// cells share one packed (or cached, [`crate::prepack::PrepackedB`])
/// panel, each owning a disjoint whole-sliver column range of it. The
/// range must start on a sliver boundary — `s0` is a sliver index, and
/// per-element results are identical to a full-width [`gebp`] because
/// each C element still receives exactly one kernel call with the same
/// k-accumulation order.
pub fn gebp_slivers<T: Scalar, K: KernelSet<T>>(
    kind: K,
    alpha: T,
    packed_a: &PackedA<T>,
    packed_b: &PackedB<T>,
    s0: usize,
    cols: usize,
    c: &mut TileMut<'_, T>,
) {
    assert_eq!(packed_a.kc(), packed_b.kc(), "packed depths differ");
    assert_eq!(packed_a.mr(), kind.mr(), "A packed for a different kernel");
    assert_eq!(packed_b.nr(), kind.nr(), "B packed for a different kernel");
    assert_eq!(c.rows(), packed_a.mc(), "tile rows != mc");
    assert_eq!(c.cols(), cols, "tile cols != sliver-range width");

    let kc = packed_a.kc();
    let (mr, nr) = (kind.mr(), kind.nr());
    let mc = packed_a.mc();
    assert!(
        s0 * nr.max(1) + cols <= packed_b.nc(),
        "sliver range exceeds panel"
    );

    // Telemetry choke point: every runtime (serial, scoped, pool,
    // recovery replay) funnels through this call, and the unpadded
    // mc·cols·kc product counts only useful flops — totals come out
    // exact to the last operation.
    let _span = crate::telemetry::span(crate::telemetry::Phase::Compute);
    crate::telemetry::count_block(2 * (mc as u64) * (cols as u64) * (kc as u64));

    // layer 5 (GEBS): over the cell's kc×nr slivers of B
    for jt in 0..cols.div_ceil(nr.max(1)) {
        let j0 = jt * nr;
        let n_eff = nr.min(cols - j0);
        let b_sliver = packed_b.sliver(s0 + jt);
        // layer 6 (GESS): over mr×kc slivers of A
        for it in 0..packed_a.slivers() {
            let i0 = it * mr;
            let m_eff = mr.min(mc - i0);
            let a_sliver = packed_a.sliver(it);
            let mut tile = c.sub_tile(i0, j0, m_eff, n_eff);
            // layer 7: the register kernel
            kind.run(kc, a_sliver, b_sliver, alpha, &mut tile, m_eff, n_eff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::microkernel::MicroKernelKind;
    use crate::reference::naive_gemm;
    use crate::Transpose;

    fn check_gebp(kind: MicroKernelKind, mc: usize, nc: usize, kc: usize, alpha: f64) {
        let a = Matrix::random(mc, kc, 101);
        let b = Matrix::random(kc, nc, 202);
        let mut pa = PackedA::new(kind.mr());
        pa.pack(&a.view(), Transpose::No, 0, 0, mc, kc);
        let mut pb = PackedB::new(kind.nr());
        pb.pack(&b.view(), Transpose::No, 0, 0, kc, nc);

        let mut c = Matrix::random(mc, nc, 303);
        let mut expected = c.clone();
        naive_gemm(
            Transpose::No,
            Transpose::No,
            alpha,
            &a.view(),
            &b.view(),
            1.0,
            &mut expected.view_mut(),
        );

        {
            let mut tile = TileMut::from_slice(mc, nc, mc, c.as_mut_slice());
            gebp(kind, alpha, &pa, &pb, &mut tile);
        }
        let tol = crate::util::gemm_tolerance(kc, 1.0);
        assert!(
            c.max_abs_diff(&expected) < tol,
            "{} mc={mc} nc={nc} kc={kc}: {}",
            kind.label(),
            c.max_abs_diff(&expected)
        );
    }

    #[test]
    fn exact_multiples() {
        check_gebp(MicroKernelKind::Mk8x6, 56, 48, 64, 1.0);
        check_gebp(MicroKernelKind::Mk8x4, 32, 32, 48, 1.0);
        check_gebp(MicroKernelKind::Mk4x4, 16, 16, 32, 1.0);
        check_gebp(MicroKernelKind::Mk5x5, 25, 25, 30, 1.0);
    }

    #[test]
    fn ragged_edges() {
        // sizes that are NOT multiples of mr/nr exercise the masked
        // write-back and zero padding
        check_gebp(MicroKernelKind::Mk8x6, 53, 47, 31, 1.0);
        check_gebp(MicroKernelKind::Mk8x4, 9, 5, 7, 1.0);
        check_gebp(MicroKernelKind::Mk4x4, 3, 3, 3, 1.0);
        check_gebp(MicroKernelKind::Mk5x5, 7, 11, 13, 1.0);
    }

    #[test]
    fn tiny_blocks() {
        for kind in MicroKernelKind::ALL {
            check_gebp(kind, 1, 1, 1, 1.0);
            check_gebp(kind, 2, 1, 5, 1.0);
        }
    }

    #[test]
    fn alpha_scaling() {
        check_gebp(MicroKernelKind::Mk8x6, 24, 18, 16, -0.5);
        check_gebp(MicroKernelKind::Mk8x6, 24, 18, 16, 3.25);
        check_gebp(MicroKernelKind::Mk8x6, 24, 18, 16, 0.0);
    }

    #[test]
    fn sliver_ranges_tile_the_panel_bitwise() {
        // Computing a panel as disjoint whole-sliver column ranges (the
        // 2-D grid-cell decomposition) must reproduce the full-width
        // GEBP bit for bit, including a ragged last sliver.
        for (kind, mc, nc, kc) in [
            (MicroKernelKind::Mk8x6, 24, 47, 16), // 47 % 6 != 0
            (MicroKernelKind::Mk8x4, 13, 24, 9),
            (MicroKernelKind::Mk4x4, 7, 10, 5),
        ] {
            let nr = kind.nr();
            let a = Matrix::random(mc, kc, 11);
            let b = Matrix::random(kc, nc, 12);
            let mut pa = PackedA::new(kind.mr());
            pa.pack(&a.view(), Transpose::No, 0, 0, mc, kc);
            let mut pb = PackedB::new(nr);
            pb.pack(&b.view(), Transpose::No, 0, 0, kc, nc);

            let c0 = Matrix::random(mc, nc, 13);
            let mut full = c0.clone();
            {
                let mut tile = TileMut::from_slice(mc, nc, mc, full.as_mut_slice());
                gebp(kind, 1.5, &pa, &pb, &mut tile);
            }

            let mut split = c0.clone();
            let slivers = nc.div_ceil(nr);
            // Uneven 2-way split on a sliver boundary.
            for (s0, s1) in [(0, slivers.div_ceil(2)), (slivers.div_ceil(2), slivers)] {
                let col0 = s0 * nr;
                let cols = (s1 * nr).min(nc) - col0;
                if cols == 0 {
                    continue;
                }
                let mut view = split.view_mut();
                let mut sub = view.sub_mut(0, col0, mc, cols);
                let ld = sub.ld();
                let mut tile = TileMut::from_slice(mc, cols, ld, sub.data_mut());
                gebp_slivers(kind, 1.5, &pa, &pb, s0, cols, &mut tile);
            }
            assert_eq!(
                split.max_abs_diff(&full),
                0.0,
                "{} mc={mc} nc={nc}: sliver ranges diverge from full GEBP",
                kind.label()
            );
        }
    }

    #[test]
    #[should_panic(expected = "packed depths differ")]
    fn depth_mismatch_rejected() {
        let a = Matrix::zeros(8, 4);
        let b = Matrix::zeros(8, 6);
        let mut pa = PackedA::new(8);
        pa.pack(&a.view(), Transpose::No, 0, 0, 8, 4);
        let mut pb = PackedB::new(6);
        pb.pack(&b.view(), Transpose::No, 0, 0, 8, 6);
        let mut cbuf = vec![0.0; 48];
        let mut tile = TileMut::from_slice(8, 6, 8, &mut cbuf);
        gebp(MicroKernelKind::Mk8x6, 1.0, &pa, &pb, &mut tile);
    }
}
