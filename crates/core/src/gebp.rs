//! Layers 4–6 of Figure 2: GEBP, decomposed into GEBS (loop over B
//! slivers) and GESS (loop over A slivers, i.e. the BLIS micro-kernel
//! loop), operating entirely on packed data.
//!
//! One GEBP call multiplies an `mc×kc` packed block of A with a `kc×nc`
//! packed panel of B and accumulates `α·A·B` into an `mc×nc` tile of C.

#![forbid(unsafe_code)]

use crate::microkernel::KernelSet;
use crate::pack::{PackedA, PackedB};
use crate::scalar::Scalar;
use crate::tile::TileMut;

/// GEBP (layer 4): `C_tile += α · packed_a · packed_b` — generic over
/// the scalar type and kernel family.
///
/// The tile must be `packed_a.mc() × packed_b.nc()`; the packed operands
/// must share the same `kc`.
pub fn gebp<T: Scalar, K: KernelSet<T>>(
    kind: K,
    alpha: T,
    packed_a: &PackedA<T>,
    packed_b: &PackedB<T>,
    c: &mut TileMut<'_, T>,
) {
    assert_eq!(packed_a.kc(), packed_b.kc(), "packed depths differ");
    assert_eq!(packed_a.mr(), kind.mr(), "A packed for a different kernel");
    assert_eq!(packed_b.nr(), kind.nr(), "B packed for a different kernel");
    assert_eq!(c.rows(), packed_a.mc(), "tile rows != mc");
    assert_eq!(c.cols(), packed_b.nc(), "tile cols != nc");

    let kc = packed_a.kc();
    let (mr, nr) = (kind.mr(), kind.nr());
    let (mc, nc) = (packed_a.mc(), packed_b.nc());

    // Telemetry choke point: every runtime (serial, scoped, pool,
    // recovery replay) funnels through this call, and the unpadded
    // mc·nc·kc product counts only useful flops — totals come out
    // exact to the last operation.
    let _span = crate::telemetry::span(crate::telemetry::Phase::Compute);
    crate::telemetry::count_block(2 * (mc as u64) * (nc as u64) * (kc as u64));

    // layer 5 (GEBS): over kc×nr slivers of B
    for jt in 0..packed_b.slivers() {
        let j0 = jt * nr;
        let n_eff = nr.min(nc - j0);
        let b_sliver = packed_b.sliver(jt);
        // layer 6 (GESS): over mr×kc slivers of A
        for it in 0..packed_a.slivers() {
            let i0 = it * mr;
            let m_eff = mr.min(mc - i0);
            let a_sliver = packed_a.sliver(it);
            let mut tile = c.sub_tile(i0, j0, m_eff, n_eff);
            // layer 7: the register kernel
            kind.run(kc, a_sliver, b_sliver, alpha, &mut tile, m_eff, n_eff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::microkernel::MicroKernelKind;
    use crate::reference::naive_gemm;
    use crate::Transpose;

    fn check_gebp(kind: MicroKernelKind, mc: usize, nc: usize, kc: usize, alpha: f64) {
        let a = Matrix::random(mc, kc, 101);
        let b = Matrix::random(kc, nc, 202);
        let mut pa = PackedA::new(kind.mr());
        pa.pack(&a.view(), Transpose::No, 0, 0, mc, kc);
        let mut pb = PackedB::new(kind.nr());
        pb.pack(&b.view(), Transpose::No, 0, 0, kc, nc);

        let mut c = Matrix::random(mc, nc, 303);
        let mut expected = c.clone();
        naive_gemm(
            Transpose::No,
            Transpose::No,
            alpha,
            &a.view(),
            &b.view(),
            1.0,
            &mut expected.view_mut(),
        );

        {
            let mut tile = TileMut::from_slice(mc, nc, mc, c.as_mut_slice());
            gebp(kind, alpha, &pa, &pb, &mut tile);
        }
        let tol = crate::util::gemm_tolerance(kc, 1.0);
        assert!(
            c.max_abs_diff(&expected) < tol,
            "{} mc={mc} nc={nc} kc={kc}: {}",
            kind.label(),
            c.max_abs_diff(&expected)
        );
    }

    #[test]
    fn exact_multiples() {
        check_gebp(MicroKernelKind::Mk8x6, 56, 48, 64, 1.0);
        check_gebp(MicroKernelKind::Mk8x4, 32, 32, 48, 1.0);
        check_gebp(MicroKernelKind::Mk4x4, 16, 16, 32, 1.0);
        check_gebp(MicroKernelKind::Mk5x5, 25, 25, 30, 1.0);
    }

    #[test]
    fn ragged_edges() {
        // sizes that are NOT multiples of mr/nr exercise the masked
        // write-back and zero padding
        check_gebp(MicroKernelKind::Mk8x6, 53, 47, 31, 1.0);
        check_gebp(MicroKernelKind::Mk8x4, 9, 5, 7, 1.0);
        check_gebp(MicroKernelKind::Mk4x4, 3, 3, 3, 1.0);
        check_gebp(MicroKernelKind::Mk5x5, 7, 11, 13, 1.0);
    }

    #[test]
    fn tiny_blocks() {
        for kind in MicroKernelKind::ALL {
            check_gebp(kind, 1, 1, 1, 1.0);
            check_gebp(kind, 2, 1, 5, 1.0);
        }
    }

    #[test]
    fn alpha_scaling() {
        check_gebp(MicroKernelKind::Mk8x6, 24, 18, 16, -0.5);
        check_gebp(MicroKernelKind::Mk8x6, 24, 18, 16, 3.25);
        check_gebp(MicroKernelKind::Mk8x6, 24, 18, 16, 0.0);
    }

    #[test]
    #[should_panic(expected = "packed depths differ")]
    fn depth_mismatch_rejected() {
        let a = Matrix::zeros(8, 4);
        let b = Matrix::zeros(8, 6);
        let mut pa = PackedA::new(8);
        pa.pack(&a.view(), Transpose::No, 0, 0, 8, 4);
        let mut pb = PackedB::new(6);
        pb.pack(&b.view(), Transpose::No, 0, 0, 8, 6);
        let mut cbuf = vec![0.0; 48];
        let mut tile = TileMut::from_slice(8, 6, 8, &mut cbuf);
        gebp(MicroKernelKind::Mk8x6, 1.0, &pa, &pb, &mut tile);
    }
}
