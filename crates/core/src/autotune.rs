//! Closed-loop, model-seeded autotuning with a persistent per-host
//! tuning DB (DESIGN.md §14).
//!
//! The paper derives its blocking analytically for one machine (the
//! X-Gene). On any other host, [`crate::gemm::GemmConfig::for_kernel`]
//! still solves eqs. (15)–(20) against the *paper's* cache geometry —
//! the model is a diagnostic, not a feedback loop. This module closes
//! the loop, following the "model prunes the empirical search"
//! programme of Veras et al. and Martínez et al. (PAPERS.md):
//!
//! 1. **Candidates** come from `perfmodel::tuning`: the analytic seed,
//!    the Goto heuristic, and Table VI-axis neighbors — never a grid —
//!    then model-pruned by the eq. (4) bound. The sweep never measures
//!    more than [`MAX_CANDIDATES`] `(kernel, blocking, runtime)`
//!    configurations.
//! 2. **Measurement** runs through the existing telemetry path
//!    ([`crate::telemetry::reset`] / [`snapshot`](crate::telemetry::snapshot)
//!    / [`GemmReport::from_run`]); the score is achieved GFLOPS, with
//!    [`GemmReport::achieved_vs_bound`] recorded alongside so the DB
//!    says how much of the model-promised performance the winner
//!    extracts. Candidates measuring far slower than the current best
//!    are abandoned after their warm-up call.
//! 3. **Persistence**: winners land in a versioned JSON DB (schema
//!    [`SCHEMA`]) at `DGEMM_TUNE_DB` or `~/.cache/dgemm/tune.json`,
//!    keyed by `(cpu-id, dtype, shape-class)`, together with the
//!    dispatcher's per-runtime EWMA calibration ratios so a new process
//!    predicts accurately from its first call
//!    ([`crate::dispatch::seed_calibration_ratios`]).
//! 4. **Consultation**: [`crate::gemm::GemmConfig::auto`] /
//!    [`crate::sgemm::SgemmConfig::auto`] read `DGEMM_AUTOTUNE`:
//!    `off` (default) changes nothing, `read` applies stored winners,
//!    `full` additionally tunes on the first miss of each shape class.
//!
//! Tuning failures never fail a GEMM: a missing, corrupt or
//! stale-schema DB silently degrades to the analytic defaults.

#![forbid(unsafe_code)]

use crate::dispatch::DispatchMode;
use crate::microkernel::{KernelSet, MicroKernelKind, SgemmKernelKind};
use crate::pool::{Parallelism, PoolScalar, WorkerPool};
use crate::telemetry::GemmReport;
use crate::{GemmError, Transpose};
use perfmodel::cacheblock::{solve_blocking, BlockSizes};
use perfmodel::tuning::{self, ShapeClass};
use perfmodel::MachineDesc;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, Once, OnceLock, PoisonError};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// DB schema tag; a file carrying any other tag is treated as absent.
pub const SCHEMA: &str = "dgemm-tune-v1";

/// The library version stamped into every [`TuneEntry`] this build
/// writes. Entries carrying a *different* version are stale — blocking
/// winners do not transfer across kernel/runtime changes — and the
/// parser drops them exactly like corrupt ones: silent fallback to the
/// analytic model, re-tuned on the next `DGEMM_AUTOTUNE=full` miss.
pub const LIB_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Hard cap on measured `(kernel, blocking, runtime)` configurations
/// per sweep — the "model-pruned, not brute force" contract.
pub const MAX_CANDIDATES: usize = 32;

/// Model-pruning slack: candidates whose eq. (4) bound exceeds the best
/// candidate's by this factor are dropped before measuring (the model
/// is a bound, not a stopwatch, so a generous factor keeps genuinely
/// competitive candidates in).
const PRUNE_KEEP: f64 = 1.6;

/// A candidate measuring slower than this multiple of the best call so
/// far on its warm-up is abandoned without timed reps.
const EARLY_SKIP: f64 = 2.5;

/// Default / clamp values for the sweep knobs.
const DEFAULT_BUDGET: usize = 16;
const DEFAULT_REPS: usize = 3;
const MAX_REPS: usize = 9;

/// Minimum wall time the timed reps of one candidate must cover. Small
/// representative shapes run in a fraction of a millisecond, where a
/// single call times mostly host scheduling noise; reps are scaled up
/// (beyond `TuneOptions::reps`, capped at [`REPS_CAP`]) until the
/// measured interval is at least this long.
const MIN_SWEEP_SECS: f64 = 0.02;

/// Upper bound on the time-scaled rep count per candidate.
const REPS_CAP: usize = 200;

/// A non-baseline candidate must beat the measured analytic baseline by
/// this factor to be stored; anything closer is within measurement
/// noise, and the sweep falls back to the baseline so a noise-lucky
/// winner is never persisted over the model's choice.
const WIN_MARGIN: f64 = 1.03;

/// What `DGEMM_AUTOTUNE` selects per config (default [`Off`]).
///
/// [`Off`]: AutotuneMode::Off
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AutotuneMode {
    /// Never consult the tuning DB; analytic blockings only.
    #[default]
    Off,
    /// Apply stored winners; never measure.
    Read,
    /// Apply stored winners and tune on the first miss of each shape
    /// class (once per class per process).
    Full,
}

impl AutotuneMode {
    /// Parse `DGEMM_AUTOTUNE`: absent/`off` disables, `read` applies
    /// stored winners, `full` also tunes on miss; anything else is a
    /// typed error (the `DGEMM_DISPATCH` pattern).
    pub fn from_env() -> Result<Self, GemmError> {
        match std::env::var("DGEMM_AUTOTUNE") {
            Ok(v) => match v.trim() {
                "read" => Ok(AutotuneMode::Read),
                "full" => Ok(AutotuneMode::Full),
                "" | "off" => Ok(AutotuneMode::Off),
                _ => Err(GemmError::BadConfig("DGEMM_AUTOTUNE must be off|read|full")),
            },
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(GemmError::BadConfig("DGEMM_AUTOTUNE is not unicode"))
            }
            Err(std::env::VarError::NotPresent) => Ok(AutotuneMode::Off),
        }
    }
}

/// Sweep knobs, from `DGEMM_AUTOTUNE_BUDGET` (max configurations per
/// sweep, clamped to `2..=32`, default 16) and `DGEMM_AUTOTUNE_REPS`
/// (timed calls per configuration, clamped to `1..=9`, default 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneOptions {
    /// Max `(kernel, blocking, runtime)` configurations measured.
    pub budget: usize,
    /// Timed GEMM calls per configuration (after one warm-up).
    pub reps: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            budget: DEFAULT_BUDGET,
            reps: DEFAULT_REPS,
        }
    }
}

impl TuneOptions {
    /// Read the sweep knobs from the environment; malformed values are
    /// typed errors, absent ones take the defaults.
    pub fn from_env() -> Result<Self, GemmError> {
        let budget = match std::env::var("DGEMM_AUTOTUNE_BUDGET") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => n.clamp(2, MAX_CANDIDATES),
                _ => {
                    return Err(GemmError::BadConfig(
                        "DGEMM_AUTOTUNE_BUDGET must be a positive integer",
                    ))
                }
            },
            Err(std::env::VarError::NotUnicode(_)) => {
                return Err(GemmError::BadConfig("DGEMM_AUTOTUNE_BUDGET is not unicode"))
            }
            Err(std::env::VarError::NotPresent) => DEFAULT_BUDGET,
        };
        let reps = match std::env::var("DGEMM_AUTOTUNE_REPS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => n.min(MAX_REPS),
                _ => {
                    return Err(GemmError::BadConfig(
                        "DGEMM_AUTOTUNE_REPS must be a positive integer",
                    ))
                }
            },
            Err(std::env::VarError::NotUnicode(_)) => {
                return Err(GemmError::BadConfig("DGEMM_AUTOTUNE_REPS is not unicode"))
            }
            Err(std::env::VarError::NotPresent) => DEFAULT_REPS,
        };
        Ok(TuneOptions { budget, reps })
    }
}

/// Where the tuning DB lives: `DGEMM_TUNE_DB` when set (must be a
/// non-empty unicode path — typed error otherwise), else
/// `$XDG_CACHE_HOME/dgemm/tune.json`, else `$HOME/.cache/dgemm/tune.json`,
/// else `None` (no home: tuning is memory-only for the process).
pub fn db_path() -> Result<Option<PathBuf>, GemmError> {
    match std::env::var("DGEMM_TUNE_DB") {
        Ok(v) => {
            let t = v.trim();
            if t.is_empty() {
                Err(GemmError::BadConfig(
                    "DGEMM_TUNE_DB must be a non-empty path",
                ))
            } else {
                Ok(Some(PathBuf::from(t)))
            }
        }
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(GemmError::BadConfig("DGEMM_TUNE_DB is not unicode"))
        }
        Err(std::env::VarError::NotPresent) => {
            let base = std::env::var_os("XDG_CACHE_HOME")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from)
                .or_else(|| {
                    std::env::var_os("HOME")
                        .filter(|v| !v.is_empty())
                        .map(|h| PathBuf::from(h).join(".cache"))
                });
            Ok(base.map(|b| b.join("dgemm").join("tune.json")))
        }
    }
}

/// Age bound on tuned entries: `DGEMM_TUNE_MAX_AGE_DAYS` as a day
/// count (`None` when unset — entries never expire by age, the
/// pre-existing behavior). `0` expires every dated entry immediately;
/// garbage is a typed error ([`crate::gemm::GemmConfig::auto`]
/// validates this eagerly so a bad value fails config construction,
/// not a later consultation).
pub fn max_age_from_env() -> Result<Option<u64>, GemmError> {
    crate::gemm::env_u64(
        "DGEMM_TUNE_MAX_AGE_DAYS",
        "DGEMM_TUNE_MAX_AGE_DAYS must be an integer day count",
    )
}

/// Whether `entry` is older than `max_age_days`. Entries with an
/// unknown sweep time (`tuned_at == 0`) never expire — age-based
/// re-tuning must not churn on DBs written before timestamps existed.
fn entry_expired(entry: &TuneEntry, max_age_days: Option<u64>) -> bool {
    let Some(days) = max_age_days else {
        return false;
    };
    if entry.tuned_at == 0 {
        return false;
    }
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    now.saturating_sub(entry.tuned_at) > days.saturating_mul(86_400)
}

/// Stable identifier of the host CPU the tunings belong to: the
/// `/proc/cpuinfo` model name slugged to `[a-z0-9.-]` plus the logical
/// core count, e.g. `intel-r-xeon-r-cpu-...-8c`. Falls back to the
/// target architecture when `/proc/cpuinfo` is unavailable.
#[must_use]
pub fn cpu_id() -> &'static str {
    static ID: OnceLock<String> = OnceLock::new();
    ID.get_or_init(|| {
        let model = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|s| {
                s.lines().find_map(|l| {
                    let (key, v) = l.split_once(':')?;
                    matches!(key.trim(), "model name" | "Processor" | "cpu model")
                        .then(|| v.trim().to_owned())
                })
            })
            .unwrap_or_else(|| std::env::consts::ARCH.to_owned());
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mut slug = String::new();
        for c in model.to_lowercase().chars() {
            if c.is_ascii_alphanumeric() || c == '.' {
                slug.push(c);
            } else if !slug.ends_with('-') {
                slug.push('-');
            }
        }
        format!("{}-{cores}c", slug.trim_matches('-'))
    })
}

// ---------------------------------------------------------------------
// The DB model.
// ---------------------------------------------------------------------

/// One tuned winner: the best `(kernel, blocking, runtime)` measured
/// for a `(cpu, dtype, shape-class)` key, with the evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneEntry {
    /// Host key ([`cpu_id`]).
    pub cpu: String,
    /// `"f64"` or `"f32"`.
    pub dtype: String,
    /// Shape-class key ([`ShapeClass::label`]).
    pub class: String,
    /// Winning register block rows.
    pub mr: usize,
    /// Winning register block columns.
    pub nr: usize,
    /// Winning `kc`.
    pub kc: usize,
    /// Winning `mc`.
    pub mc: usize,
    /// Winning `nc`.
    pub nc: usize,
    /// `"serial"` or `"pool"`.
    pub runtime: String,
    /// Parallel degree of the winning runtime (1 for serial).
    pub threads: usize,
    /// Measured GFLOPS of the winner at the class representative shape.
    pub gflops: f64,
    /// Measured GFLOPS of the untuned analytic default in the same sweep.
    pub untuned_gflops: f64,
    /// Winner's [`GemmReport::achieved_vs_bound`] score.
    pub achieved_vs_bound: f64,
    /// Configurations the sweep considered (≤ [`MAX_CANDIDATES`]).
    pub candidates: usize,
    /// Seconds since the Unix epoch when the sweep ran (0 = unknown).
    /// Staleness is decided by `version` (mismatches are dropped at
    /// parse) *and*, when `DGEMM_TUNE_MAX_AGE_DAYS` is set, by age:
    /// under Full mode an over-age entry is treated as a miss and
    /// re-tuned in the background ([`max_age_from_env`]).
    pub tuned_at: u64,
    /// [`LIB_VERSION`] of the build that produced the entry; a
    /// mismatch marks the entry stale and the parser drops it.
    pub version: String,
}

impl TuneEntry {
    /// The stored blocking as [`BlockSizes`].
    #[must_use]
    pub fn blocks(&self) -> BlockSizes {
        BlockSizes::custom(self.mr, self.nr, self.kc, self.mc, self.nc)
    }

    /// Tuned-over-untuned speedup (1.0 when the default won).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.untuned_gflops > 0.0 {
            self.gflops / self.untuned_gflops
        } else {
            1.0
        }
    }
}

/// Per-host dispatcher calibration, persisted so a fresh process starts
/// from the learned ratios instead of the neutral 1.0 prior.
#[derive(Clone, Debug, PartialEq)]
pub struct HostCalibration {
    /// Host key ([`cpu_id`]).
    pub cpu: String,
    /// Serial-runtime measured/model EWMA ratio.
    pub serial_cal: f64,
    /// Pool-runtime measured/model EWMA ratio.
    pub pool_cal: f64,
}

/// The whole tuning DB (schema [`SCHEMA`]): calibration per host plus
/// tuned winners per `(cpu, dtype, shape-class)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneDb {
    /// Dispatcher calibration, one entry per host.
    pub hosts: Vec<HostCalibration>,
    /// Tuned winners.
    pub entries: Vec<TuneEntry>,
}

impl TuneDb {
    /// The stored winner for a key, if any.
    #[must_use]
    pub fn find(&self, cpu: &str, dtype: &str, class: &str) -> Option<&TuneEntry> {
        self.entries
            .iter()
            .find(|e| e.cpu == cpu && e.dtype == dtype && e.class == class)
    }

    /// Insert or replace the winner for `entry`'s key.
    pub fn upsert(&mut self, entry: TuneEntry) {
        match self
            .entries
            .iter_mut()
            .find(|e| e.cpu == entry.cpu && e.dtype == entry.dtype && e.class == entry.class)
        {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// The stored calibration for a host, if any.
    #[must_use]
    pub fn host(&self, cpu: &str) -> Option<&HostCalibration> {
        self.hosts.iter().find(|h| h.cpu == cpu)
    }

    /// Insert or replace a host's calibration.
    pub fn upsert_host(&mut self, cal: HostCalibration) {
        match self.hosts.iter_mut().find(|h| h.cpu == cal.cpu) {
            Some(slot) => *slot = cal,
            None => self.hosts.push(cal),
        }
    }

    /// Serialize to the versioned JSON the parser round-trips.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut hosts = String::new();
        for (i, h) in self.hosts.iter().enumerate() {
            if i > 0 {
                hosts.push(',');
            }
            hosts.push_str(&format!(
                "{{\"cpu\":\"{}\",\"serial_cal\":{},\"pool_cal\":{}}}",
                json_escape(&h.cpu),
                json_num(h.serial_cal),
                json_num(h.pool_cal)
            ));
        }
        let mut entries = String::new();
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                entries.push(',');
            }
            entries.push_str(&format!(
                "{{\"cpu\":\"{}\",\"dtype\":\"{}\",\"class\":\"{}\",\
                 \"mr\":{},\"nr\":{},\"kc\":{},\"mc\":{},\"nc\":{},\
                 \"runtime\":\"{}\",\"threads\":{},\"gflops\":{},\
                 \"untuned_gflops\":{},\"achieved_vs_bound\":{},\
                 \"candidates\":{},\"tuned_at\":{},\"version\":\"{}\"}}",
                json_escape(&e.cpu),
                json_escape(&e.dtype),
                json_escape(&e.class),
                e.mr,
                e.nr,
                e.kc,
                e.mc,
                e.nc,
                json_escape(&e.runtime),
                e.threads,
                json_num(e.gflops),
                json_num(e.untuned_gflops),
                json_num(e.achieved_vs_bound),
                e.candidates,
                e.tuned_at,
                json_escape(&e.version)
            ));
        }
        format!("{{\"schema\":\"{SCHEMA}\",\"hosts\":[{hosts}],\"entries\":[{entries}]}}")
    }

    /// Parse a DB file's contents. `None` on malformed JSON, a missing
    /// or mismatched schema tag, or entries that don't type-check —
    /// callers treat that exactly like an absent file (the corrupt /
    /// stale-version fallback the tests pin).
    #[must_use]
    pub fn from_json(text: &str) -> Option<TuneDb> {
        let v = Json::parse(text)?;
        if v.get("schema")?.as_str()? != SCHEMA {
            return None;
        }
        let mut db = TuneDb::default();
        for h in v.get("hosts")?.as_arr()? {
            db.hosts.push(HostCalibration {
                cpu: h.get("cpu")?.as_str()?.to_owned(),
                serial_cal: h.get("serial_cal")?.as_f64()?,
                pool_cal: h.get("pool_cal")?.as_f64()?,
            });
        }
        for e in v.get("entries")?.as_arr()? {
            // Per-entry triage: a malformed entry or one stamped by a
            // different library build is dropped *silently* — exactly
            // the corrupt-file contract, but scoped to the entry so one
            // stale winner doesn't discard the rest of the DB. Full
            // mode re-tunes the dropped class on its next first miss.
            let Some(entry) = parse_entry(e) else {
                continue;
            };
            if entry.version != LIB_VERSION {
                continue;
            }
            db.entries.push(entry);
        }
        Some(db)
    }
}

/// Type-check one `entries[]` element. `None` on any missing or
/// mistyped field (the caller skips it).
fn parse_entry(e: &Json) -> Option<TuneEntry> {
    Some(TuneEntry {
        cpu: e.get("cpu")?.as_str()?.to_owned(),
        dtype: e.get("dtype")?.as_str()?.to_owned(),
        class: e.get("class")?.as_str()?.to_owned(),
        mr: e.get("mr")?.as_usize()?,
        nr: e.get("nr")?.as_usize()?,
        kc: e.get("kc")?.as_usize()?,
        mc: e.get("mc")?.as_usize()?,
        nc: e.get("nc")?.as_usize()?,
        runtime: e.get("runtime")?.as_str()?.to_owned(),
        threads: e.get("threads")?.as_usize()?,
        gflops: e.get("gflops")?.as_f64()?,
        untuned_gflops: e.get("untuned_gflops")?.as_f64()?,
        achieved_vs_bound: e.get("achieved_vs_bound")?.as_f64()?,
        candidates: e.get("candidates")?.as_usize()?,
        tuned_at: e.get("tuned_at")?.as_usize()? as u64,
        version: e.get("version")?.as_str()?.to_owned(),
    })
}

/// A finite f64 as a JSON number (Rust's shortest round-trip `Display`
/// repr is valid JSON for finite values); non-finite degrades to 0.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

// ---------------------------------------------------------------------
// Minimal JSON reader (the workspace has no serde; the DB grammar is
// small and fully covered by objects/arrays/strings/numbers/atoms).
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Option<Json> {
        let mut p = JsonParser {
            s: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        (p.i == p.s.len()).then_some(v)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        (n >= 0.0 && n <= 2f64.powi(52) && n.fract() == 0.0).then_some(n as usize)
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    s: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.s.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        (self.s.get(self.i) == Some(&b)).then(|| self.i += 1)
    }

    fn lit(&mut self, word: &str, v: Json) -> Option<Json> {
        let end = self.i.checked_add(word.len())?;
        (self.s.get(self.i..end)? == word.as_bytes()).then(|| {
            self.i = end;
            v
        })
    }

    fn value(&mut self) -> Option<Json> {
        self.skip_ws();
        match *self.s.get(self.i)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}').is_some() {
            return Some(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(Json::Obj(fields));
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']').is_some() {
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b']')?;
            return Some(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match *self.s.get(self.i)? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match *self.s.get(self.i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.i.checked_add(5)?;
                            let hex = std::str::from_utf8(self.s.get(self.i + 1..end)?).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            // Surrogates are not worth supporting for
                            // cpu-id slugs; reject rather than mangle.
                            out.push(char::from_u32(code)?);
                            self.i = end - 1;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                c if c < 0x20 => return None,
                _ => {
                    // Copy a full UTF-8 scalar (the input came from
                    // &str, so boundaries are valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.s.len() && (self.s[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.s[start..self.i]).ok()?);
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(
            self.s.get(self.i),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }
}

// ---------------------------------------------------------------------
// Load/store with a per-path in-memory cache.
// ---------------------------------------------------------------------

fn db_cache() -> &'static Mutex<HashMap<PathBuf, TuneDb>> {
    static CACHE: OnceLock<Mutex<HashMap<PathBuf, TuneDb>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Load the DB at `path`, through a process-wide per-path cache (one
/// disk read per path per process; [`store_db`] keeps the cache
/// coherent with what this process writes — concurrent writers from
/// *other* processes are last-writer-wins, which is fine for a cache of
/// measurements). Missing, unreadable, corrupt or stale-schema files
/// all load as an empty DB.
#[must_use]
pub fn load_db(path: &Path) -> TuneDb {
    let mut cache = db_cache().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(db) = cache.get(path) {
        return db.clone();
    }
    let db = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| TuneDb::from_json(&text))
        .unwrap_or_default();
    cache.insert(path.to_path_buf(), db.clone());
    db
}

/// Write the DB atomically (temp file + rename, so readers never see a
/// torn file) and refresh the in-memory cache. IO errors are returned
/// so explicit tuning drivers can report them; the transparent
/// `gemm()`-path callers ignore them (tuning must never fail a GEMM).
pub fn store_db(path: &Path, db: &TuneDb) -> std::io::Result<()> {
    db_cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(path.to_path_buf(), db.clone());
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, db.to_json())?;
    std::fs::rename(&tmp, path)
}

/// Drop the in-memory DB cache (tests re-reading files they rewrote).
pub fn invalidate_db_cache() {
    db_cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Seed the dispatcher's EWMA calibration from the DB's entry for this
/// host, once per process (later calls are no-ops so a live, adapted
/// calibration is never clobbered mid-run). Silently does nothing
/// without a DB path or host entry.
pub fn seed_dispatch_calibration() {
    static SEEDED: Once = Once::new();
    SEEDED.call_once(|| {
        if let Ok(Some(path)) = db_path() {
            let db = load_db(&path);
            if let Some(h) = db.host(cpu_id()) {
                crate::dispatch::seed_calibration_ratios(h.serial_cal, h.pool_cal);
            }
        }
    });
}

/// Persist the dispatcher's current calibration ratios into the DB at
/// `path` (the closing half of [`seed_dispatch_calibration`]).
pub fn persist_calibration(path: &Path) -> std::io::Result<()> {
    let mut db = load_db(path);
    let (serial_cal, pool_cal) = crate::dispatch::calibration_ratios();
    db.upsert_host(HostCalibration {
        cpu: cpu_id().to_owned(),
        serial_cal,
        pool_cal,
    });
    store_db(path, &db)
}

// ---------------------------------------------------------------------
// The measured sweep.
// ---------------------------------------------------------------------

/// Nominal clock used to express model cycle bounds as GFLOPS in the
/// achieved-vs-bound score (same constant the dispatcher uses; the
/// score only ranks candidates against each other, so the absolute
/// clock cancels out of the comparison).
const SCORE_GHZ: f64 = 2.4;

struct SweepBest<K> {
    kernel: K,
    blocks: BlockSizes,
    runtime: Parallelism,
    gflops: f64,
    achieved_vs_bound: f64,
    untuned_gflops: f64,
    candidates: usize,
}

/// Measure one configuration: one warm-up call (doubling as the
/// early-skip probe), then `reps` timed calls through the telemetry
/// interval. Returns `(gflops, achieved_vs_bound, seconds_per_call)`.
#[allow(clippy::too_many_arguments)]
fn measure_config<T: PoolScalar, K: KernelSet<T>>(
    kernel: K,
    blocks: &BlockSizes,
    runtime: Parallelism,
    a: &crate::matrix::Matrix<T>,
    b: &crate::matrix::Matrix<T>,
    c: &mut crate::matrix::Matrix<T>,
    dims: (usize, usize, usize),
    reps: usize,
    skip_above_s: Option<f64>,
) -> Option<(f64, f64, f64)> {
    let run = |c: &mut crate::matrix::Matrix<T>| {
        crate::gemm::gemm_with(
            Transpose::No,
            Transpose::No,
            T::ONE,
            &a.view(),
            &b.view(),
            T::ZERO,
            &mut c.view_mut(),
            kernel,
            *blocks,
            runtime,
            None,
            false,
            DispatchMode::Fixed,
        )
    };
    // Warm-up (arena/pool spin-up) doubles as the early-skip probe.
    let warm = Instant::now();
    run(c).ok()?;
    let warm_s = warm.elapsed().as_secs_f64();
    if let Some(limit) = skip_above_s {
        if warm_s > limit {
            return None;
        }
    }
    // Scale reps so the timed interval covers at least MIN_SWEEP_SECS;
    // sub-millisecond shapes otherwise time host scheduling noise.
    let reps = reps
        .max((MIN_SWEEP_SECS / warm_s.max(1e-9)).ceil() as usize)
        .min(REPS_CAP);
    crate::telemetry::reset();
    let start = Instant::now();
    for _ in 0..reps {
        run(c).ok()?;
    }
    let elapsed = start.elapsed();
    let snap = crate::telemetry::snapshot();
    let report = GemmReport::from_run(dims, reps as u64, runtime.degree(), elapsed, blocks, &snap);
    let per_call = elapsed.as_secs_f64() / reps.max(1) as f64;
    Some((report.gflops, report.achieved_vs_bound(SCORE_GHZ), per_call))
}

/// The closed loop for one dtype/kernel family: assemble the
/// model-seeded candidate set, measure through telemetry, return the
/// winner. `kernels[0]` is the configured kernel (its analytic blocking
/// is the untuned baseline); later entries contribute one analytic
/// candidate each when the budget is rich enough.
fn sweep<T: PoolScalar, K: KernelSet<T>>(
    kernels: &[K],
    threads: usize,
    machine: &MachineDesc,
    dims: (usize, usize, usize),
    opts: &TuneOptions,
) -> Option<SweepBest<K>> {
    let (m, n, k) = dims;
    let main = *kernels.first()?;
    if m == 0 || n == 0 || k == 0 {
        return None;
    }
    let threads = threads.clamp(1, WorkerPool::max_workers());
    let budget = opts.budget.clamp(2, MAX_CANDIDATES);
    let default_rt = Parallelism::from_threads(threads);
    let runtimes: &[Parallelism] = if threads > 1 {
        &[Parallelism::Pool(threads), Parallelism::Serial]
    } else {
        &[Parallelism::Serial]
    };

    // Kernel axis: alternates cost one config each; include them only
    // when the per-runtime budget still leaves room for the blocking
    // neighbors that motivate the sweep.
    let alts: Vec<K> = if budget / runtimes.len() >= 8 {
        kernels[1..].to_vec()
    } else {
        Vec::new()
    };
    let max_blockings = (budget.saturating_sub(alts.len()) / runtimes.len()).max(1);

    // Blocking axis: model-seeded neighbors, clamped to the probe shape
    // (so equivalent-after-clamping candidates collapse), deduplicated,
    // then model-pruned.
    let raw = tuning::candidate_blockings(main.mr(), main.nr(), threads, machine, max_blockings);
    let mut blockings: Vec<BlockSizes> = Vec::new();
    for b in &raw {
        let cb = tuning::clamp_to_shape(b, m, n, k);
        if !blockings
            .iter()
            .any(|o| (o.kc, o.mc, o.nc) == (cb.kc, cb.mc, cb.nc))
        {
            blockings.push(cb);
        }
    }
    let blockings = tuning::prune_by_model(blockings, m, n, k, PRUNE_KEEP);

    // Assemble configs, the untuned default (main kernel, analytic
    // blocking, configured runtime) strictly first.
    let mut configs: Vec<(K, BlockSizes, Parallelism)> = Vec::new();
    configs.push((main, *blockings.first()?, default_rt));
    for rt in runtimes {
        for (i, b) in blockings.iter().enumerate() {
            if i == 0 && *rt == default_rt {
                continue;
            }
            configs.push((main, *b, *rt));
        }
    }
    for alt in alts {
        if let Ok(seed) = solve_blocking(alt.mr(), alt.nr(), threads, machine) {
            configs.push((alt, tuning::clamp_to_shape(&seed, m, n, k), default_rt));
        }
    }
    configs.truncate(budget);

    let a = crate::matrix::Matrix::<T>::random(m, k, 0xA5);
    let b = crate::matrix::Matrix::<T>::random(k, n, 0xB6);
    let mut c = crate::matrix::Matrix::<T>::zeros(m, n);

    let candidates = configs.len();
    let mut best: Option<SweepBest<K>> = None;
    let mut baseline: Option<SweepBest<K>> = None;
    let mut untuned_gflops = 0.0;
    let mut best_call_s = f64::INFINITY;
    for (idx, (kernel, blocks, runtime)) in configs.into_iter().enumerate() {
        // The baseline is always fully measured — speedups are reported
        // against it — later candidates may be abandoned early.
        let skip = (idx > 0 && best_call_s.is_finite()).then_some(best_call_s * EARLY_SKIP);
        let Some((gflops, avb, per_call)) = measure_config(
            kernel, &blocks, runtime, &a, &b, &mut c, dims, opts.reps, skip,
        ) else {
            continue;
        };
        let measured = SweepBest {
            kernel,
            blocks,
            runtime,
            gflops,
            achieved_vs_bound: avb,
            untuned_gflops: 0.0,
            candidates,
        };
        if idx == 0 {
            untuned_gflops = gflops;
            baseline = Some(SweepBest { ..measured });
        }
        best_call_s = best_call_s.min(per_call);
        if best.as_ref().is_none_or(|b| gflops > b.gflops) {
            best = Some(measured);
        }
    }
    // Hysteresis: a candidate that doesn't clearly beat the analytic
    // baseline is measurement noise — persist the baseline instead, so
    // `tuned` can never regress below the model's choice.
    let mut best = best?;
    if let Some(base) = baseline {
        if best.gflops < untuned_gflops * WIN_MARGIN {
            best = base;
        }
    }
    best.untuned_gflops = untuned_gflops;
    Some(best)
}

fn entry_from_best<K: Copy>(
    best: &SweepBest<K>,
    dtype: &str,
    class: &ShapeClass,
    mr: usize,
    nr: usize,
) -> TuneEntry {
    let (runtime, threads) = match best.runtime {
        Parallelism::Pool(p) | Parallelism::Scoped(p) if p > 1 => ("pool", p),
        _ => ("serial", 1),
    };
    TuneEntry {
        cpu: cpu_id().to_owned(),
        dtype: dtype.to_owned(),
        class: class.label(),
        mr,
        nr,
        kc: best.blocks.kc,
        mc: best.blocks.mc,
        nc: best.blocks.nc,
        runtime: runtime.to_owned(),
        threads,
        gflops: best.gflops,
        untuned_gflops: best.untuned_gflops,
        achieved_vs_bound: best.achieved_vs_bound,
        candidates: best.candidates,
        tuned_at: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        version: LIB_VERSION.to_owned(),
    }
}

/// Run one f64 tuning sweep at `class`'s representative shape and
/// return the winner (not yet persisted). `kernel` is the configured
/// kernel whose analytic blocking anchors the candidate set and the
/// untuned baseline. `None` when nothing could be measured.
#[must_use]
pub fn tune_f64(
    kernel: MicroKernelKind,
    threads: usize,
    class: ShapeClass,
    opts: &TuneOptions,
) -> Option<TuneEntry> {
    let mut kernels = vec![kernel];
    kernels.extend(
        MicroKernelKind::ALL
            .iter()
            .copied()
            .filter(|k| *k != kernel),
    );
    let best = sweep::<f64, _>(
        &kernels,
        threads,
        &MachineDesc::xgene(),
        class.representative(),
        opts,
    )?;
    Some(entry_from_best(
        &best,
        "f64",
        &class,
        best.kernel.mr(),
        best.kernel.nr(),
    ))
}

/// [`tune_f64`] for f32 (the `machine_f32` description and the SGEMM
/// kernel family).
#[must_use]
pub fn tune_f32(
    kernel: SgemmKernelKind,
    threads: usize,
    class: ShapeClass,
    opts: &TuneOptions,
) -> Option<TuneEntry> {
    let mut kernels = vec![kernel];
    kernels.extend(
        SgemmKernelKind::ALL
            .iter()
            .copied()
            .filter(|k| *k != kernel),
    );
    let best = sweep::<f32, _>(
        &kernels,
        threads,
        &crate::sgemm::machine_f32(),
        class.representative(),
        opts,
    )?;
    Some(entry_from_best(
        &best,
        "f32",
        &class,
        best.kernel.mr(),
        best.kernel.nr(),
    ))
}

/// Tune and persist: run the sweep, upsert the winner and this host's
/// dispatcher calibration into the DB at `path`, write it back. Returns
/// the stored entry; `None` when the sweep measured nothing (the DB is
/// then left untouched).
#[must_use]
pub fn tune_and_store_f64(
    path: &Path,
    kernel: MicroKernelKind,
    threads: usize,
    class: ShapeClass,
    opts: &TuneOptions,
) -> Option<TuneEntry> {
    let entry = tune_f64(kernel, threads, class, opts)?;
    store_entry(path, entry.clone());
    Some(entry)
}

/// [`tune_and_store_f64`] for f32.
#[must_use]
pub fn tune_and_store_f32(
    path: &Path,
    kernel: SgemmKernelKind,
    threads: usize,
    class: ShapeClass,
    opts: &TuneOptions,
) -> Option<TuneEntry> {
    let entry = tune_f32(kernel, threads, class, opts)?;
    store_entry(path, entry.clone());
    Some(entry)
}

fn store_entry(path: &Path, entry: TuneEntry) {
    let mut db = load_db(path);
    db.upsert(entry);
    let (serial_cal, pool_cal) = crate::dispatch::calibration_ratios();
    db.upsert_host(HostCalibration {
        cpu: cpu_id().to_owned(),
        serial_cal,
        pool_cal,
    });
    // Tuning must never fail the surrounding GEMM; an unwritable DB
    // just means the winner lives only in the in-memory cache (which
    // store_db updated before attempting the disk write).
    let _ = store_db(path, &db);
}

// ---------------------------------------------------------------------
// Consultation from the gemm()/sgemm() paths.
// ---------------------------------------------------------------------

/// Shape classes this process has already attempted to tune (Full mode
/// tunes each class at most once per process, hit or miss).
fn attempted() -> &'static Mutex<HashSet<(&'static str, String)>> {
    static SET: OnceLock<Mutex<HashSet<(&'static str, String)>>> = OnceLock::new();
    SET.get_or_init(|| Mutex::new(HashSet::new()))
}

fn first_attempt(dtype: &'static str, class: &ShapeClass) -> bool {
    attempted()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert((dtype, class.label()))
}

/// Join handles of warm-up tuning sweeps spawned by Full-mode first
/// misses (one per `(dtype, class)` per process, gated by
/// [`first_attempt`]).
fn background_tunes() -> &'static Mutex<Vec<std::thread::JoinHandle<()>>> {
    static TUNES: OnceLock<Mutex<Vec<std::thread::JoinHandle<()>>>> = OnceLock::new();
    TUNES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Block until every background tuning sweep spawned so far has
/// persisted its winner (or given up). Test and shutdown scaffolding;
/// production callers never need it — they keep serving the analytic
/// config until the DB entry lands.
pub fn wait_for_background_tuning() {
    let handles: Vec<_> = std::mem::take(
        &mut *background_tunes()
            .lock()
            .unwrap_or_else(PoisonError::into_inner),
    );
    for h in handles {
        let _ = h.join();
    }
}

/// Launch one tuning sweep on a warm-up thread so the triggering
/// `gemm()` call is never blocked behind a multi-second sweep. The
/// sweep persists through the same `tune_and_store_*` path the
/// synchronous `dgemm-autotune` tool uses, so the per-path DB cache is
/// refreshed and the *next* call of the class picks the winner up.
/// Options are captured in the caller (environment reads stay on the
/// submitting thread); if the thread cannot be spawned the sweep runs
/// synchronously — slower, never lost.
fn spawn_background_tune(
    path: PathBuf,
    opts: TuneOptions,
    tune: impl Fn(&Path, &TuneOptions) + Clone + Send + 'static,
) {
    let spawned = std::thread::Builder::new()
        .name("dgemm-tune-warmup".into())
        .spawn({
            let path = path.clone();
            let tune = tune.clone();
            move || tune(&path, &opts)
        });
    match spawned {
        Ok(h) => background_tunes()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(h),
        Err(_) => tune(&path, &opts),
    }
}

fn runtime_from_entry(entry: &TuneEntry) -> Parallelism {
    if entry.runtime == "pool" && entry.threads > 1 {
        Parallelism::Pool(entry.threads.min(WorkerPool::max_workers()))
    } else {
        Parallelism::Serial
    }
}

/// Resolve the tuned configuration for one f64 GEMM call — exactly what
/// [`crate::gemm::try_gemm`] will run for an `m×n×k` problem: the
/// stored winner if the DB has one, else (Full mode, first miss of the
/// class) tune now and apply the fresh winner. Every failure path
/// returns the config unchanged. The stored runtime only overrides
/// [`DispatchMode::Fixed`] configs — an explicit dispatch mode keeps
/// runtime authority with the dispatcher.
#[must_use]
pub fn tuned_f64(
    cfg: &crate::gemm::GemmConfig,
    m: usize,
    n: usize,
    k: usize,
) -> crate::gemm::GemmConfig {
    if cfg.autotune == AutotuneMode::Off || m == 0 || n == 0 || k == 0 {
        return *cfg;
    }
    let Ok(Some(path)) = db_path() else {
        return *cfg;
    };
    let class = ShapeClass::of(m, n, k);
    let mut entry = load_db(&path)
        .find(cpu_id(), "f64", &class.label())
        .cloned();
    // Age expiry (DGEMM_TUNE_MAX_AGE_DAYS): under Full an over-age
    // entry is a miss — drop it so the background re-tune below fires
    // and the analytic config serves meanwhile. Under Read the stale
    // winner still applies (Read never measures, and a dated winner
    // beats the untuned default).
    let max_age = max_age_from_env().unwrap_or(None);
    if cfg.autotune == AutotuneMode::Full
        && entry.as_ref().is_some_and(|e| entry_expired(e, max_age))
    {
        entry = None;
    }
    if entry.is_none() && cfg.autotune == AutotuneMode::Full && first_attempt("f64", &class) {
        // First miss of this class under Full mode: tune on a warm-up
        // thread and serve the analytic config *now* — the triggering
        // call must not stall behind a multi-second sweep. Subsequent
        // calls pick the winner up once `tune_and_store_f64` lands it
        // in the DB (and its in-memory cache).
        let opts = TuneOptions::from_env().unwrap_or_default();
        let (kernel, threads) = (cfg.kernel, cfg.threads());
        spawn_background_tune(path, opts, move |p, o| {
            let _ = tune_and_store_f64(p, kernel, threads, class, o);
        });
        return *cfg;
    }
    let Some(entry) = entry else {
        return *cfg;
    };
    let Some(kernel) = MicroKernelKind::ALL
        .iter()
        .copied()
        .find(|kk| kk.mr() == entry.mr && kk.nr() == entry.nr)
    else {
        return *cfg;
    };
    let mut out = *cfg;
    out.kernel = kernel;
    out.blocks = entry.blocks();
    if out.dispatch == DispatchMode::Fixed {
        out.parallelism = runtime_from_entry(&entry);
    }
    out
}

/// [`tuned_f64`] for the SGEMM path.
#[must_use]
pub fn tuned_f32(
    cfg: &crate::sgemm::SgemmConfig,
    m: usize,
    n: usize,
    k: usize,
) -> crate::sgemm::SgemmConfig {
    if cfg.autotune == AutotuneMode::Off || m == 0 || n == 0 || k == 0 {
        return *cfg;
    }
    let Ok(Some(path)) = db_path() else {
        return *cfg;
    };
    let class = ShapeClass::of(m, n, k);
    let mut entry = load_db(&path)
        .find(cpu_id(), "f32", &class.label())
        .cloned();
    // Same age-expiry contract as the f64 path above.
    let max_age = max_age_from_env().unwrap_or(None);
    if cfg.autotune == AutotuneMode::Full
        && entry.as_ref().is_some_and(|e| entry_expired(e, max_age))
    {
        entry = None;
    }
    if entry.is_none() && cfg.autotune == AutotuneMode::Full && first_attempt("f32", &class) {
        // Same warm-up-thread contract as the f64 path above.
        let opts = TuneOptions::from_env().unwrap_or_default();
        let (kernel, threads) = (cfg.kernel, cfg.threads());
        spawn_background_tune(path, opts, move |p, o| {
            let _ = tune_and_store_f32(p, kernel, threads, class, o);
        });
        return *cfg;
    }
    let Some(entry) = entry else {
        return *cfg;
    };
    let Some(kernel) = SgemmKernelKind::ALL
        .iter()
        .copied()
        .find(|kk| kk.mr() == entry.mr && kk.nr() == entry.nr)
    else {
        return *cfg;
    };
    let mut out = *cfg;
    out.kernel = kernel;
    out.blocks = entry.blocks();
    if out.dispatch == DispatchMode::Fixed {
        out.parallelism = runtime_from_entry(&entry);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> TuneEntry {
        TuneEntry {
            cpu: "test-cpu-4c".to_owned(),
            dtype: "f64".to_owned(),
            class: "m512-n512-k512".to_owned(),
            mr: 8,
            nr: 6,
            kc: 256,
            mc: 48,
            nc: 960,
            runtime: "pool".to_owned(),
            threads: 4,
            gflops: 12.5,
            untuned_gflops: 11.0,
            achieved_vs_bound: 0.61,
            candidates: 14,
            tuned_at: 1_700_000_000,
            version: LIB_VERSION.to_owned(),
        }
    }

    #[test]
    fn db_json_round_trips() {
        let mut db = TuneDb::default();
        db.upsert(sample_entry());
        db.upsert_host(HostCalibration {
            cpu: "test-cpu-4c".to_owned(),
            serial_cal: 1.25,
            pool_cal: 0.8,
        });
        let text = db.to_json();
        assert!(text.starts_with("{\"schema\":\"dgemm-tune-v1\""), "{text}");
        let back = TuneDb::from_json(&text).expect("round trip");
        assert_eq!(back, db);
        let e = back.find("test-cpu-4c", "f64", "m512-n512-k512").unwrap();
        assert_eq!(e.blocks().label(), "8x6x256x48x960");
        assert!((e.speedup() - 12.5 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn version_mismatched_entries_are_dropped_like_corrupt_ones() {
        let mut db = TuneDb::default();
        db.upsert(sample_entry());
        let mut stale = sample_entry();
        stale.class = "m64-n64-k64".to_owned();
        stale.version = "0.0.0-previous-build".to_owned();
        db.upsert(stale);
        db.upsert_host(HostCalibration {
            cpu: "test-cpu-4c".to_owned(),
            serial_cal: 1.0,
            pool_cal: 1.0,
        });
        let back = TuneDb::from_json(&db.to_json()).expect("schema still parses");
        // The current-version entry and the host calibration survive;
        // the stale entry vanishes silently (Full mode re-tunes it).
        assert!(back.find("test-cpu-4c", "f64", "m512-n512-k512").is_some());
        assert!(back.find("test-cpu-4c", "f64", "m64-n64-k64").is_none());
        assert_eq!(back.hosts.len(), 1);
    }

    #[test]
    fn malformed_entry_is_skipped_without_discarding_the_rest() {
        let good = {
            let mut db = TuneDb::default();
            db.upsert(sample_entry());
            db.to_json()
        };
        // Splice in an entry missing most fields.
        let text = good.replace(
            "\"entries\":[",
            "\"entries\":[{\"cpu\":\"test-cpu-4c\",\"dtype\":\"f64\"},",
        );
        let back = TuneDb::from_json(&text).expect("file still parses");
        assert_eq!(back.entries.len(), 1);
        assert!(back.find("test-cpu-4c", "f64", "m512-n512-k512").is_some());
    }

    #[test]
    fn upsert_replaces_same_key() {
        let mut db = TuneDb::default();
        db.upsert(sample_entry());
        let mut improved = sample_entry();
        improved.kc = 512;
        improved.gflops = 13.0;
        db.upsert(improved);
        assert_eq!(db.entries.len(), 1);
        assert_eq!(db.entries[0].kc, 512);
        // a different class is a new row
        let mut other = sample_entry();
        other.class = "m32-n512-k512".to_owned();
        db.upsert(other);
        assert_eq!(db.entries.len(), 2);
    }

    #[test]
    fn stale_schema_and_corrupt_json_fall_back() {
        assert!(TuneDb::from_json("").is_none());
        assert!(TuneDb::from_json("{not json").is_none());
        assert!(
            TuneDb::from_json("{\"schema\":\"dgemm-tune-v0\",\"hosts\":[],\"entries\":[]}")
                .is_none()
        );
        // missing required field in an entry: the entry is dropped,
        // the (otherwise valid) file is not
        let partial = TuneDb::from_json(
            "{\"schema\":\"dgemm-tune-v1\",\"hosts\":[],\"entries\":[{\"cpu\":\"x\"}]}",
        )
        .expect("valid file with one bad entry");
        assert!(partial.entries.is_empty());
        // trailing garbage after the document
        assert!(
            TuneDb::from_json("{\"schema\":\"dgemm-tune-v1\",\"hosts\":[],\"entries\":[]} x")
                .is_none()
        );
        // negative / fractional counts don't type-check into usize
        assert!(Json::parse("-3").unwrap().as_usize().is_none());
        assert!(Json::parse("2.5").unwrap().as_usize().is_none());
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a":[1,2,{"b":"x\ny A"}],"c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        let b = v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap();
        assert_eq!(b.as_str().unwrap(), "x\ny A");
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        // escape round trip through the serializer
        let db = TuneDb {
            hosts: vec![HostCalibration {
                cpu: "we\"ird\\cpu".to_owned(),
                serial_cal: 1.0,
                pool_cal: 1.0,
            }],
            entries: vec![],
        };
        let back = TuneDb::from_json(&db.to_json()).unwrap();
        assert_eq!(back.hosts[0].cpu, "we\"ird\\cpu");
    }

    #[test]
    fn cpu_id_is_a_stable_slug() {
        let id = cpu_id();
        assert!(!id.is_empty());
        assert!(id.ends_with('c'), "{id}");
        assert!(
            id.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'),
            "{id}"
        );
        assert_eq!(id, cpu_id(), "memoized");
    }

    #[test]
    fn mode_and_options_parse_from_env() {
        let _env = crate::dispatch::env_lock();
        std::env::remove_var("DGEMM_AUTOTUNE");
        assert_eq!(AutotuneMode::from_env().unwrap(), AutotuneMode::Off);
        for (v, want) in [
            ("off", AutotuneMode::Off),
            ("", AutotuneMode::Off),
            ("read", AutotuneMode::Read),
            ("full", AutotuneMode::Full),
            (" full ", AutotuneMode::Full),
        ] {
            std::env::set_var("DGEMM_AUTOTUNE", v);
            assert_eq!(AutotuneMode::from_env().unwrap(), want, "value {v:?}");
        }
        for bad in ["on", "1", "tune"] {
            std::env::set_var("DGEMM_AUTOTUNE", bad);
            assert!(AutotuneMode::from_env().is_err(), "accepted {bad:?}");
        }
        std::env::remove_var("DGEMM_AUTOTUNE");

        std::env::remove_var("DGEMM_AUTOTUNE_BUDGET");
        std::env::remove_var("DGEMM_AUTOTUNE_REPS");
        assert_eq!(TuneOptions::from_env().unwrap(), TuneOptions::default());
        std::env::set_var("DGEMM_AUTOTUNE_BUDGET", "100");
        assert_eq!(TuneOptions::from_env().unwrap().budget, MAX_CANDIDATES);
        std::env::set_var("DGEMM_AUTOTUNE_BUDGET", "1");
        assert_eq!(TuneOptions::from_env().unwrap().budget, 2);
        std::env::set_var("DGEMM_AUTOTUNE_REPS", "99");
        assert_eq!(TuneOptions::from_env().unwrap().reps, MAX_REPS);
        for bad in ["0", "-1", "many", ""] {
            std::env::set_var("DGEMM_AUTOTUNE_BUDGET", bad);
            assert!(TuneOptions::from_env().is_err(), "accepted {bad:?}");
        }
        std::env::remove_var("DGEMM_AUTOTUNE_BUDGET");
        for bad in ["0", "x", ""] {
            std::env::set_var("DGEMM_AUTOTUNE_REPS", bad);
            assert!(TuneOptions::from_env().is_err(), "accepted {bad:?}");
        }
        std::env::remove_var("DGEMM_AUTOTUNE_REPS");

        // DGEMM_TUNE_DB: explicit path, empty (error), absent (default)
        std::env::set_var("DGEMM_TUNE_DB", "/tmp/somewhere/tune.json");
        assert_eq!(
            db_path().unwrap(),
            Some(PathBuf::from("/tmp/somewhere/tune.json"))
        );
        std::env::set_var("DGEMM_TUNE_DB", "  ");
        assert!(db_path().is_err());
        std::env::remove_var("DGEMM_TUNE_DB");
        let default = db_path().unwrap();
        if let Some(p) = default {
            assert!(p.ends_with("dgemm/tune.json"), "{}", p.display());
        }
    }

    #[test]
    fn entry_runtime_resolution() {
        let mut e = sample_entry();
        assert_eq!(runtime_from_entry(&e), Parallelism::Pool(4));
        e.runtime = "serial".to_owned();
        assert_eq!(runtime_from_entry(&e), Parallelism::Serial);
        e.runtime = "pool".to_owned();
        e.threads = 1; // inconsistent row: degrade to serial
        assert_eq!(runtime_from_entry(&e), Parallelism::Serial);
    }

    /// A tiny but real closed loop: sweep a small class with a 4-config
    /// budget, persist, re-load, and check the winner is well-formed
    /// and the baseline was measured.
    #[test]
    fn tune_and_store_small_class() {
        let dir = std::env::temp_dir().join(format!("dgemm-tune-test-{}", std::process::id()));
        let path = dir.join("tune.json");
        let _ = std::fs::remove_file(&path);
        let class = ShapeClass::of(48, 48, 48);
        let opts = TuneOptions { budget: 4, reps: 1 };
        let entry = tune_and_store_f64(&path, MicroKernelKind::Mk8x6, 2, class, &opts)
            .expect("sweep measured something");
        assert_eq!(entry.dtype, "f64");
        assert_eq!(entry.class, class.label());
        assert!(entry.candidates <= 4);
        assert!(entry.gflops > 0.0);
        assert!(entry.untuned_gflops > 0.0, "baseline must be measured");
        assert!(
            entry.gflops + 1e-12 >= entry.untuned_gflops,
            "winner beats or ties baseline"
        );
        // persisted and re-readable, bypassing the in-memory cache
        invalidate_db_cache();
        let db = load_db(&path);
        let found = db.find(cpu_id(), "f64", &class.label()).expect("persisted");
        assert_eq!(found, &entry);
        assert!(db.host(cpu_id()).is_some(), "calibration stored too");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn load_db_tolerates_missing_and_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("dgemm-tune-corrupt-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let missing = dir.join("nope.json");
        assert_eq!(load_db(&missing), TuneDb::default());
        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "{]{]").unwrap();
        invalidate_db_cache();
        assert_eq!(load_db(&corrupt), TuneDb::default());
        let stale = dir.join("stale.json");
        std::fs::write(
            &stale,
            "{\"schema\":\"dgemm-tune-v0\",\"hosts\":[],\"entries\":[]}",
        )
        .unwrap();
        invalidate_db_cache();
        assert_eq!(load_db(&stale), TuneDb::default());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
