//! Column-major matrix storage and views, generic over the scalar type
//! (`f64` by default — the paper's DGEMM; `f32` for the SGEMM variant
//! derived by the same analytic method).
//!
//! BLAS convention throughout: element `(i, j)` of a matrix with leading
//! dimension `ld` lives at linear index `i + j·ld`, and `ld ≥ rows` allows
//! views into sub-blocks of larger matrices.

#![forbid(unsafe_code)]

use crate::scalar::Scalar;
use crate::util::SplitMix64;

/// An owned column-major matrix (leading dimension = rows).
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// All-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Build element-wise from `f(i, j)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix in `[-1, 1)` (SplitMix64-seeded;
    /// reproducible across platforms, no external RNG dependency).
    #[must_use]
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        Self::from_fn(rows, cols, |_, _| T::from_f64(rng.next_f64() * 2.0 - 1.0))
    }

    /// Column-major identity-like matrix (1 on the main diagonal).
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { T::ONE } else { T::ZERO })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(i, j)`.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i + j * self.rows]
    }

    /// Set element `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i + j * self.rows] = v;
    }

    /// Immutable view of the whole matrix.
    #[must_use]
    pub fn view(&self) -> MatrixView<'_, T> {
        MatrixView {
            rows: self.rows,
            cols: self.cols,
            ld: self.rows,
            data: &self.data,
        }
    }

    /// Mutable view of the whole matrix.
    #[must_use]
    pub fn view_mut(&mut self) -> MatrixViewMut<'_, T> {
        MatrixViewMut {
            rows: self.rows,
            cols: self.cols,
            ld: self.rows,
            data: &mut self.data,
        }
    }

    /// Underlying column-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable underlying column-major storage.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Transposed copy.
    #[must_use]
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Max absolute element-wise difference to `other` (∞-norm of the
    /// difference), widened to `f64`; panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs().to_f64())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm, in `f64`.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|x| x.to_f64() * x.to_f64())
            .sum::<f64>()
            .sqrt()
    }
}

/// Immutable borrowed view of a column-major matrix region.
#[derive(Clone, Copy, Debug)]
pub struct MatrixView<'a, T: Scalar = f64> {
    rows: usize,
    cols: usize,
    ld: usize,
    data: &'a [T],
}

impl<'a, T: Scalar> MatrixView<'a, T> {
    /// View over raw column-major storage with explicit leading dimension.
    ///
    /// Panics unless `ld ≥ rows` and `data` covers the last element.
    #[must_use]
    pub fn from_slice(rows: usize, cols: usize, ld: usize, data: &'a [T]) -> Self {
        assert!(ld >= rows.max(1), "leading dimension below row count");
        if rows > 0 && cols > 0 {
            assert!(
                data.len() >= (cols - 1) * ld + rows,
                "slice too short for {rows}x{cols} ld {ld}"
            );
        }
        MatrixView {
            rows,
            cols,
            ld,
            data,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    #[must_use]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element `(i, j)`.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i + j * self.ld]
    }

    /// One column as a slice.
    #[must_use]
    pub fn col(&self, j: usize) -> &[T] {
        assert!(j < self.cols);
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Sub-view of `nrows × ncols` starting at `(i, j)`.
    #[must_use]
    pub fn sub(&self, i: usize, j: usize, nrows: usize, ncols: usize) -> MatrixView<'a, T> {
        assert!(
            i + nrows <= self.rows && j + ncols <= self.cols,
            "sub-view out of bounds"
        );
        let start = i + j * self.ld;
        let end = if nrows > 0 && ncols > 0 {
            start + (ncols - 1) * self.ld + nrows
        } else {
            start
        };
        MatrixView {
            rows: nrows,
            cols: ncols,
            ld: self.ld,
            data: &self.data[start..end.min(self.data.len())],
        }
    }

    /// Underlying storage (column-major with this view's `ld`).
    #[must_use]
    pub fn data(&self) -> &'a [T] {
        self.data
    }
}

/// Mutable borrowed view of a column-major matrix region.
#[derive(Debug)]
pub struct MatrixViewMut<'a, T: Scalar = f64> {
    rows: usize,
    cols: usize,
    ld: usize,
    data: &'a mut [T],
}

impl<'a, T: Scalar> MatrixViewMut<'a, T> {
    /// Mutable view over raw column-major storage.
    #[must_use]
    pub fn from_slice(rows: usize, cols: usize, ld: usize, data: &'a mut [T]) -> Self {
        assert!(ld >= rows.max(1), "leading dimension below row count");
        if rows > 0 && cols > 0 {
            assert!(
                data.len() >= (cols - 1) * ld + rows,
                "slice too short for {rows}x{cols} ld {ld}"
            );
        }
        MatrixViewMut {
            rows,
            cols,
            ld,
            data,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    #[must_use]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element `(i, j)`.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i + j * self.ld]
    }

    /// Set element `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i + j * self.ld] = v;
    }

    /// Scale every element by `beta` (`beta = 0` writes exact zeros, so
    /// NaN/Inf garbage in C does not propagate — BLAS semantics).
    pub fn scale(&mut self, beta: T) {
        for j in 0..self.cols {
            let col = &mut self.data[j * self.ld..j * self.ld + self.rows];
            if beta == T::ZERO {
                col.fill(T::ZERO);
            } else if beta != T::ONE {
                for x in col {
                    *x *= beta;
                }
            }
        }
    }

    /// Immutable snapshot of this view.
    #[must_use]
    pub fn as_view(&self) -> MatrixView<'_, T> {
        MatrixView {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            data: self.data,
        }
    }

    /// Mutable sub-view of `nrows × ncols` starting at `(i, j)`.
    #[must_use]
    pub fn sub_mut(
        &mut self,
        i: usize,
        j: usize,
        nrows: usize,
        ncols: usize,
    ) -> MatrixViewMut<'_, T> {
        assert!(
            i + nrows <= self.rows && j + ncols <= self.cols,
            "sub-view out of bounds"
        );
        let start = i + j * self.ld;
        let len = self.data.len();
        let end = if nrows > 0 && ncols > 0 {
            (start + (ncols - 1) * self.ld + nrows).min(len)
        } else {
            start
        };
        MatrixViewMut {
            rows: nrows,
            cols: ncols,
            ld: self.ld,
            data: &mut self.data[start..end],
        }
    }

    /// One mutable column.
    #[must_use]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        assert!(j < self.cols);
        &mut self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Underlying storage.
    #[must_use]
    pub fn data_mut(&mut self) -> &mut [T] {
        self.data
    }
}

/// `&a * &b` — convenience double-precision multiply through the default
/// (paper serial 8×6) configuration. For control over kernel, blocking,
/// α/β, transposes or threads use [`crate::blas::dgemm`].
impl core::ops::Mul for &Matrix<f64> {
    type Output = Matrix<f64>;

    fn mul(self, rhs: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(self.cols(), rhs.rows(), "matrix product dimension mismatch");
        let mut c = Matrix::zeros(self.rows(), rhs.cols());
        crate::gemm::gemm(
            crate::Transpose::No,
            crate::Transpose::No,
            1.0,
            &self.view(),
            &rhs.view(),
            0.0,
            &mut c.view_mut(),
            &crate::gemm::GemmConfig::default(),
        );
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_layout() {
        let m = Matrix::from_fn(3, 2, |i, j| (10 * i + j) as f64);
        // column 0 then column 1
        assert_eq!(m.as_slice(), &[0.0, 10.0, 20.0, 1.0, 11.0, 21.0]);
        assert_eq!(m.get(2, 1), 21.0);
    }

    #[test]
    fn identity_and_transpose() {
        let i3: Matrix = Matrix::identity(3);
        assert_eq!(i3.get(1, 1), 1.0);
        assert_eq!(i3.get(0, 2), 0.0);
        let m = Matrix::from_fn(2, 4, |i, j| (i + 10 * j) as f64);
        let t = m.transposed();
        assert_eq!((t.rows(), t.cols()), (4, 2));
        for i in 0..2 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a: Matrix = Matrix::random(16, 16, 42);
        let b: Matrix = Matrix::random(16, 16, 42);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let c: Matrix = Matrix::random(16, 16, 43);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn subview_indexing_respects_ld() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 10 + j) as f64);
        let v = m.view();
        let s = v.sub(2, 3, 3, 2);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.ld(), 6);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(s.get(i, j), m.get(i + 2, j + 3));
            }
        }
    }

    #[test]
    fn mutable_subview_writes_through() {
        let mut m: Matrix = Matrix::zeros(5, 5);
        {
            let mut v = m.view_mut();
            let mut s = v.sub_mut(1, 1, 2, 2);
            s.set(0, 0, 7.0);
            s.set(1, 1, 9.0);
        }
        assert_eq!(m.get(1, 1), 7.0);
        assert_eq!(m.get(2, 2), 9.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn scale_semantics() {
        let mut m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        m.view_mut().scale(2.0);
        assert_eq!(m.get(1, 2), 6.0);
        // beta = 0 must clobber NaN
        let mut n: Matrix = Matrix::zeros(2, 2);
        n.set(0, 0, f64::NAN);
        n.view_mut().scale(0.0);
        assert_eq!(n.get(0, 0), 0.0);
    }

    #[test]
    fn view_from_slice_with_padding_ld() {
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        // 2x3 with ld 4: columns start at 0, 4, 8
        let v = MatrixView::from_slice(2, 3, 4, &data);
        assert_eq!(v.get(1, 2), 9.0);
        assert_eq!(v.col(1), &[4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn bad_ld_rejected() {
        let data = [0.0f64; 4];
        let _ = MatrixView::from_slice(3, 1, 2, &data);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_rejected() {
        let m: Matrix = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn empty_matrices_work() {
        let m: Matrix = Matrix::zeros(0, 5);
        assert_eq!(m.view().rows(), 0);
        let n: Matrix = Matrix::zeros(5, 0);
        assert_eq!(n.view().cols(), 0);
    }

    #[test]
    fn mul_operator_matches_reference() {
        let a: Matrix = Matrix::random(20, 15, 1);
        let b: Matrix = Matrix::random(15, 10, 2);
        let c = &a * &b;
        let mut want: Matrix = Matrix::zeros(20, 10);
        crate::reference::naive_gemm(
            crate::Transpose::No,
            crate::Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut want.view_mut(),
        );
        assert!(c.max_abs_diff(&want) < 1e-10);
        // identity round trip
        let i: Matrix = Matrix::identity(15);
        assert!((&a * &i).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = Matrix::from_fn(2, 2, |i, j| if i == j { 3.0 } else { 4.0 });
        assert!((m.frobenius_norm() - 50.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_precision_matrices_work() {
        let a: Matrix<f32> = Matrix::random(8, 8, 7);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let i: Matrix<f32> = Matrix::identity(4);
        assert_eq!(i.get(2, 2), 1.0f32);
        let mut b: Matrix<f32> = Matrix::zeros(3, 3);
        b.set(1, 1, 2.5);
        b.view_mut().scale(2.0);
        assert_eq!(b.get(1, 1), 5.0f32);
        assert_eq!(b.transposed().get(1, 1), 5.0f32);
    }
}
