//! BLAS-style checked entry points.
//!
//! [`dgemm`] mirrors cblas `cblas_dgemm` for column-major `f64` operands,
//! returning structured errors instead of `XERBLA` aborts; [`dgemm_slice`]
//! accepts raw column-major slices with explicit leading dimensions for
//! drop-in use from FFI-shaped code.

#![forbid(unsafe_code)]

use crate::gemm::{try_gemm, GemmConfig};
use crate::matrix::{MatrixView, MatrixViewMut};
use crate::{GemmError, Transpose};

/// `C := α·op(A)·op(B) + β·C` with full dimension checking.
#[allow(clippy::too_many_arguments)] // canonical BLAS dgemm signature
pub fn dgemm(
    transa: Transpose,
    transb: Transpose,
    alpha: f64,
    a: &MatrixView<'_>,
    b: &MatrixView<'_>,
    beta: f64,
    c: &mut MatrixViewMut<'_>,
    cfg: &GemmConfig,
) -> Result<(), GemmError> {
    let (m, ka) = transa.apply_dims(a.rows(), a.cols());
    let (kb, n) = transb.apply_dims(b.rows(), b.cols());
    if ka != kb {
        return Err(GemmError::InnerDimMismatch {
            a_cols: ka,
            b_rows: kb,
        });
    }
    if (c.rows(), c.cols()) != (m, n) {
        return Err(GemmError::OutputDimMismatch {
            expected: (m, n),
            actual: (c.rows(), c.cols()),
        });
    }
    if cfg.blocks.kc == 0 || cfg.blocks.mc == 0 || cfg.blocks.nc == 0 {
        return Err(GemmError::BadConfig("block sizes must be positive"));
    }
    if cfg.blocks.mr != cfg.kernel.mr() || cfg.blocks.nr != cfg.kernel.nr() {
        return Err(GemmError::BadConfig(
            "blocking register shape != kernel shape",
        ));
    }
    cfg.parallelism.validate()?;
    try_gemm(transa, transb, alpha, a, b, beta, c, cfg)
}

/// Raw-slice variant: column-major `a` (`lda ≥ rows(A)`), `b`, `c`
/// analogous; `m, n, k` are the dimensions of `op(A)·op(B)`.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_slice(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    cfg: &GemmConfig,
) -> Result<(), GemmError> {
    let (ar, ac) = match transa {
        Transpose::No => (m, k),
        Transpose::Yes => (k, m),
    };
    let (br, bc) = match transb {
        Transpose::No => (k, n),
        Transpose::Yes => (n, k),
    };
    let av = MatrixView::from_slice(ar, ac, lda, a);
    let bv = MatrixView::from_slice(br, bc, ldb, b);
    let mut cv = MatrixViewMut::from_slice(m, n, ldc, c);
    dgemm(transa, transb, alpha, &av, &bv, beta, &mut cv, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::reference::naive_gemm;
    use crate::util::gemm_tolerance;

    #[test]
    fn checked_path_computes() {
        let a = Matrix::random(20, 30, 1);
        let b = Matrix::random(30, 10, 2);
        let mut c = Matrix::zeros(20, 10);
        dgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap();
        let mut expected = Matrix::zeros(20, 10);
        naive_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut expected.view_mut(),
        );
        assert!(c.max_abs_diff(&expected) < gemm_tolerance(30, 1.0));
    }

    #[test]
    fn inner_dim_mismatch_detected() {
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(6, 3);
        let mut c = Matrix::zeros(4, 3);
        let err = dgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            GemmError::InnerDimMismatch {
                a_cols: 5,
                b_rows: 6
            }
        );
    }

    #[test]
    fn output_shape_mismatch_detected() {
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(4, 4);
        let err = dgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, GemmError::OutputDimMismatch { .. }));
        assert!(err.to_string().contains("4x4"));
    }

    #[test]
    fn transpose_changes_required_shapes() {
        let a = Matrix::zeros(5, 4); // op(A) = A^T is 4x5
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(4, 3);
        dgemm(
            Transpose::Yes,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &GemmConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn bad_config_detected() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(2, 2);
        let mut cfg = GemmConfig::default().with_blocks(0, 8, 8);
        let err = dgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, GemmError::BadConfig(_)));
        cfg = GemmConfig::default();
        cfg.parallelism = crate::pool::Parallelism::Pool(0);
        let err = dgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, GemmError::BadConfig(_)));
    }

    #[test]
    fn mismatched_kernel_blocking_rejected() {
        use crate::microkernel::MicroKernelKind;
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(2, 2);
        let mut cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1);
        cfg.kernel = MicroKernelKind::Mk4x4; // blocks still say 8x6
        let err = dgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, GemmError::BadConfig(_)));
    }

    #[test]
    fn slice_api_with_padded_ld() {
        // 3x2 matrices embedded in buffers with ld 5
        let mut a = vec![0.0; 5 * 2];
        let mut b = vec![0.0; 5 * 2];
        // A = [[1,2],[3,4],[5,6]] col-major with ld 5
        a[0] = 1.0;
        a[1] = 3.0;
        a[2] = 5.0;
        a[5] = 2.0;
        a[6] = 4.0;
        a[7] = 6.0;
        // B = [[1,0],[0,1]] (2x2, ld 5)
        b[0] = 1.0;
        b[6] = 1.0;
        let mut c = vec![0.0; 5 * 2];
        dgemm_slice(
            Transpose::No,
            Transpose::No,
            3,
            2,
            2,
            1.0,
            &a,
            5,
            &b,
            5,
            0.0,
            &mut c,
            5,
            &GemmConfig::default(),
        )
        .unwrap();
        assert_eq!(&c[0..3], &[1.0, 3.0, 5.0]);
        assert_eq!(&c[5..8], &[2.0, 4.0, 6.0]);
        // padding untouched
        assert_eq!(c[3], 0.0);
        assert_eq!(c[4], 0.0);
    }
}
