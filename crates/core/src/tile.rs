//! `TileMut` — the mutable C-tile abstraction shared by the serial and
//! parallel paths.
//!
//! The paper parallelizes layer 3 (Figure 9): threads update *disjoint row
//! bands* of the same C matrix. In column-major storage those bands are
//! interleaved in memory (band 0 of column j, band 1 of column j, …), so
//! they cannot be expressed as disjoint `&mut [f64]` sub-slices. `TileMut`
//! holds a raw base pointer plus the tile geometry and hands out one
//! *column segment* at a time as a safe `&mut [f64]`; two `TileMut`s over
//! disjoint row/column ranges never materialize overlapping references.
//!
//! Safety is established at construction: [`TileMut::from_slice`] is safe
//! (unique borrow of the whole buffer), [`TileMut::split_rows`] safely
//! partitions a tile into disjoint row bands, and that is the *only* way
//! the parallel path obtains its tiles — so the unsafe code is confined to
//! this module and checked by its invariants.

use crate::scalar::Scalar;
use core::marker::PhantomData;

/// A mutable view of an `rows × cols` column-major tile with leading
/// dimension `ld`, usable as the write target of the register kernels.
pub struct TileMut<'a, T: Scalar = f64> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a TileMut is an exclusive borrow of the elements it covers
// (guaranteed by its constructors); sending it to another thread moves
// that exclusive access.
unsafe impl<T: Scalar> Send for TileMut<'_, T> {}

impl<'a, T: Scalar> TileMut<'a, T> {
    /// Tile covering `rows × cols` of a column-major buffer with leading
    /// dimension `ld`, starting at the buffer's first element.
    ///
    /// Panics if the buffer is too short.
    #[must_use]
    pub fn from_slice(rows: usize, cols: usize, ld: usize, data: &'a mut [T]) -> Self {
        assert!(ld >= rows.max(1), "leading dimension below row count");
        if rows > 0 && cols > 0 {
            assert!(
                data.len() >= (cols - 1) * ld + rows,
                "slice too short for {rows}x{cols} ld {ld}"
            );
        }
        TileMut {
            ptr: data.as_mut_ptr(),
            rows,
            cols,
            ld,
            _marker: PhantomData,
        }
    }

    /// Rows of the tile.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the tile.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    #[must_use]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Mutable access to rows `i0 .. i0+len` of column `j`.
    #[must_use]
    pub fn col_seg_mut(&mut self, j: usize, i0: usize, len: usize) -> &mut [T] {
        assert!(j < self.cols, "column out of bounds");
        assert!(i0 + len <= self.rows, "row segment out of bounds");
        // SAFETY: the tile exclusively borrows all elements (i, j) with
        // i < rows, j < cols at ptr[i + j*ld]; the asserts keep the
        // segment inside that region, and &mut self prevents aliasing
        // between segments obtained from the same tile.
        unsafe { core::slice::from_raw_parts_mut(self.ptr.add(i0 + j * self.ld), len) }
    }

    /// Read element `(i, j)` (for tests and masked updates).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        // SAFETY: in-bounds per the constructor invariant and the asserts.
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Sub-tile of `nrows × ncols` starting at `(i, j)`, reborrowing this
    /// tile mutably (the parent is unusable while the sub-tile lives).
    #[must_use]
    pub fn sub_tile(&mut self, i: usize, j: usize, nrows: usize, ncols: usize) -> TileMut<'_, T> {
        assert!(
            i + nrows <= self.rows && j + ncols <= self.cols,
            "sub-tile out of bounds"
        );
        TileMut {
            // SAFETY: offset stays within the borrowed region.
            ptr: unsafe { self.ptr.add(i + j * self.ld) },
            rows: nrows,
            cols: ncols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Split the tile into disjoint row bands: band `t` covers rows
    /// `bands[t].0 .. bands[t].0 + bands[t].1`. Panics unless the bands
    /// are sorted, non-overlapping and in range — this is the safe gateway
    /// the parallel layer-3 loop uses (Figure 9: each thread owns an
    /// `mc`-aligned row band of C).
    #[must_use]
    pub fn split_rows(self, bands: &[(usize, usize)]) -> Vec<TileMut<'a, T>> {
        let mut prev_end = 0usize;
        for &(start, len) in bands {
            assert!(start >= prev_end, "bands must be sorted and disjoint");
            prev_end = start + len;
        }
        assert!(prev_end <= self.rows, "bands exceed tile rows");
        bands
            .iter()
            .map(|&(start, len)| TileMut {
                // SAFETY: each band covers a distinct set of elements
                // (rows start..start+len of every column) of the region
                // this tile exclusively borrows; `self` is consumed, so
                // only the bands can access it afterwards.
                ptr: unsafe { self.ptr.add(start) },
                rows: len,
                cols: self.cols,
                ld: self.ld,
                _marker: PhantomData,
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::drop_non_drop)] // drops end tile borrows deliberately
mod tests {
    use super::*;

    #[test]
    fn col_segments_read_write() {
        let mut buf = vec![0.0f64; 12]; // 3x4, ld 3
        let mut t = TileMut::from_slice(3, 4, 3, &mut buf);
        t.col_seg_mut(2, 1, 2).copy_from_slice(&[5.0, 6.0]);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.get(2, 2), 6.0);
        assert_eq!(t.get(0, 2), 0.0);
        drop(t);
        assert_eq!(buf[7], 5.0);
    }

    #[test]
    fn sub_tile_offsets() {
        let mut buf: Vec<f64> = (0..20).map(|x| x as f64).collect(); // 4x5 ld 4
        let mut t = TileMut::from_slice(4, 5, 4, &mut buf);
        let mut s = t.sub_tile(1, 2, 2, 2);
        assert_eq!(s.get(0, 0), 9.0); // (1,2) of parent = 1 + 2*4
        s.col_seg_mut(1, 0, 2)[0] = -1.0; // (1,3) of parent
        drop(s);
        assert_eq!(t.get(1, 3), -1.0);
    }

    #[test]
    fn split_rows_disjoint_bands() {
        let mut buf = vec![0.0f64; 6 * 2]; // 6x2 ld 6
        let t = TileMut::from_slice(6, 2, 6, &mut buf);
        let mut bands = t.split_rows(&[(0, 2), (2, 3), (5, 1)]);
        for (idx, band) in bands.iter_mut().enumerate() {
            for j in 0..2 {
                let rows = band.rows();
                for x in band.col_seg_mut(j, 0, rows) {
                    *x = idx as f64 + 1.0;
                }
            }
        }
        drop(bands);
        // column-major: rows 0-1 band 1, rows 2-4 band 2, row 5 band 3
        assert_eq!(buf[..6], [1.0, 1.0, 2.0, 2.0, 2.0, 3.0]);
        assert_eq!(buf[6..], [1.0, 1.0, 2.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn overlapping_bands_rejected() {
        let mut buf = vec![0.0f64; 8];
        let t = TileMut::from_slice(4, 2, 4, &mut buf);
        let _ = t.split_rows(&[(0, 3), (2, 2)]);
    }

    #[test]
    #[should_panic(expected = "row segment out of bounds")]
    fn col_segment_bounds_enforced() {
        let mut buf = vec![0.0f64; 8];
        let mut t = TileMut::from_slice(4, 2, 4, &mut buf);
        let _ = t.col_seg_mut(0, 2, 3);
    }
}
