//! Single-precision GEMM — the design the paper's analytic method
//! produces when re-run with `element = 4` bytes (four f32 lanes per
//! 128-bit register):
//!
//! - register block **12×8** with γ = 9.6 (vs 8×6 / 6.857 for f64),
//!   the optimum of equations (8)–(11) with the lane constraint
//!   generalized to multiples of 4;
//! - cache blocking `kc×mc×nc = 768×48×2560` serial on the paper's
//!   machine (equations (15), (17), (18) in bytes, so halving the
//!   element size roughly doubles `kc`).
//!
//! See the `ext_sgemm_design` study for the full derivation. The compute
//! path is the same generic GEBP engine as DGEMM
//! ([`crate::gemm::gemm_with`]); only the kernel family and the machine
//! description's element size differ.

#![forbid(unsafe_code)]

use crate::autotune::AutotuneMode;
use crate::dispatch::DispatchMode;
use crate::gemm::gemm_with;
use crate::matrix::{MatrixView, MatrixViewMut};
use crate::microkernel::SgemmKernelKind;
use crate::pool::Parallelism;
use crate::{GemmError, Transpose};
use perfmodel::cacheblock::{solve_blocking, BlockSizes};
use perfmodel::MachineDesc;
use std::time::Duration;

/// Configuration of one SGEMM invocation.
#[derive(Clone, Copy, Debug)]
pub struct SgemmConfig {
    /// Single-precision register kernel.
    pub kernel: SgemmKernelKind,
    /// Cache blocking (derived with `element = 4`).
    pub blocks: BlockSizes,
    /// How layer 3 executes (shared with DGEMM — the same pool serves
    /// both precisions, each with its own thread-local arena).
    pub parallelism: Parallelism,
    /// Watchdog deadline per layer-3 epoch on the pool runtime (see
    /// [`crate::gemm::GemmConfig::epoch_timeout`]).
    pub epoch_timeout: Option<Duration>,
    /// Consult the f32 [`crate::prepack::PackCache`] for a pre-packed
    /// B (see [`crate::gemm::GemmConfig::pack_cache`]); each element
    /// type has its own process-wide cache.
    pub pack_cache: bool,
    /// Shape-adaptive dispatch (see
    /// [`crate::gemm::GemmConfig::dispatch`]); the calibration and
    /// decision machinery is shared with DGEMM.
    pub dispatch: DispatchMode,
    /// Closed-loop autotuning (see
    /// [`crate::gemm::GemmConfig::autotune`]); the tuning DB is shared
    /// with DGEMM, with f32 winners stored under `dtype = "f32"`.
    pub autotune: AutotuneMode,
}

/// The paper's machine re-described for f32 elements.
#[must_use]
pub fn machine_f32() -> MachineDesc {
    let mut m = MachineDesc::xgene();
    m.element_bytes = 4;
    // one 128-bit FMA = 8 f32 flops every 2 cycles
    m.flops_per_cycle = 4.0;
    m
}

impl SgemmConfig {
    /// Analytic configuration for a kernel and thread count.
    #[must_use]
    pub fn for_kernel(kernel: SgemmKernelKind, threads: usize) -> Self {
        let m = machine_f32();
        // Always solvable for the paper machine; the fallback keeps
        // library code panic-free on a hypothetical unsolvable shape.
        let blocks = solve_blocking(kernel.mr(), kernel.nr(), threads.clamp(1, m.cores), &m)
            .unwrap_or_else(|_| {
                BlockSizes::custom(
                    kernel.mr(),
                    kernel.nr(),
                    256,
                    8 * kernel.mr(),
                    64 * kernel.nr(),
                )
            });
        SgemmConfig {
            kernel,
            blocks,
            parallelism: Parallelism::from_threads(threads),
            epoch_timeout: None,
            pack_cache: false,
            dispatch: DispatchMode::Fixed,
            autotune: AutotuneMode::Off,
        }
    }

    /// Configuration for the host at hand — the f32 sibling of
    /// [`crate::gemm::GemmConfig::auto`], reading the same environment
    /// variables (`DGEMM_NUM_THREADS`, `DGEMM_EPOCH_TIMEOUT_MS`,
    /// `DGEMM_PACK_CACHE`, `DGEMM_DISPATCH`, `DGEMM_AUTOTUNE`,
    /// `DGEMM_TUNE_DB`) with the same typed errors.
    pub fn auto() -> Result<Self, GemmError> {
        let threads = crate::gemm::threads_from_env()?;
        let autotune = AutotuneMode::from_env()?;
        if autotune != AutotuneMode::Off {
            crate::autotune::db_path()?;
            crate::autotune::TuneOptions::from_env()?;
            crate::autotune::seed_dispatch_calibration();
        }
        Ok(SgemmConfig::for_kernel(SgemmKernelKind::Sk12x8, threads)
            .with_epoch_timeout(crate::gemm::epoch_timeout_from_env()?)
            .with_pack_cache(crate::gemm::pack_cache_from_env()?)
            .with_dispatch(DispatchMode::from_env()?)
            .with_autotune(autotune))
    }

    /// Explicit `kc×mc×nc` (sensitivity studies).
    #[must_use]
    pub fn with_blocks(mut self, kc: usize, mc: usize, nc: usize) -> Self {
        self.blocks = BlockSizes::custom(self.kernel.mr(), self.kernel.nr(), kc, mc, nc);
        self
    }

    /// Same kernel/blocking but an explicit threading runtime.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Same configuration with an explicit epoch watchdog deadline
    /// (`None` disables it).
    #[must_use]
    pub fn with_epoch_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.epoch_timeout = timeout;
        self
    }

    /// Same configuration with the transparent pre-packed-B cache
    /// enabled or disabled.
    #[must_use]
    pub fn with_pack_cache(mut self, enabled: bool) -> Self {
        self.pack_cache = enabled;
        self
    }

    /// Same configuration with an explicit [`DispatchMode`].
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Same configuration with an explicit [`AutotuneMode`].
    #[must_use]
    pub fn with_autotune(mut self, autotune: AutotuneMode) -> Self {
        self.autotune = autotune;
        self
    }

    /// The configured parallel degree (1 for serial).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.parallelism.degree()
    }
}

impl Default for SgemmConfig {
    /// The analytically optimal serial configuration: 12×8 kernel.
    fn default() -> Self {
        SgemmConfig::for_kernel(SgemmKernelKind::Sk12x8, 1)
    }
}

/// `C := α·op(A)·op(B) + β·C` in single precision, with full dimension
/// checking — the f32 sibling of [`crate::blas::dgemm`].
#[allow(clippy::too_many_arguments)] // canonical BLAS signature
pub fn sgemm(
    transa: Transpose,
    transb: Transpose,
    alpha: f32,
    a: &MatrixView<'_, f32>,
    b: &MatrixView<'_, f32>,
    beta: f32,
    c: &mut MatrixViewMut<'_, f32>,
    cfg: &SgemmConfig,
) -> Result<(), GemmError> {
    let (m, ka) = transa.apply_dims(a.rows(), a.cols());
    let (kb, n) = transb.apply_dims(b.rows(), b.cols());
    if ka != kb {
        return Err(GemmError::InnerDimMismatch {
            a_cols: ka,
            b_rows: kb,
        });
    }
    if (c.rows(), c.cols()) != (m, n) {
        return Err(GemmError::OutputDimMismatch {
            expected: (m, n),
            actual: (c.rows(), c.cols()),
        });
    }
    if cfg.blocks.kc == 0 || cfg.blocks.mc == 0 || cfg.blocks.nc == 0 {
        return Err(GemmError::BadConfig("block sizes must be positive"));
    }
    if cfg.blocks.mr != cfg.kernel.mr() || cfg.blocks.nr != cfg.kernel.nr() {
        return Err(GemmError::BadConfig(
            "blocking register shape != kernel shape",
        ));
    }
    cfg.parallelism.validate()?;
    // Consult the tuning DB after validation: the tuned config swaps
    // kernel and blocking together, so the shape invariants above keep
    // holding for it; Off (the default) is a no-op.
    let cfg = if cfg.autotune == AutotuneMode::Off {
        *cfg
    } else {
        crate::autotune::tuned_f32(cfg, m, n, ka)
    };
    gemm_with(
        transa,
        transb,
        alpha,
        a,
        b,
        beta,
        c,
        cfg.kernel,
        cfg.blocks,
        cfg.parallelism,
        cfg.epoch_timeout,
        cfg.pack_cache,
        cfg.dispatch,
    )
}

/// Raw-slice variant of [`sgemm`]: column-major `a` (`lda ≥ rows(A)`),
/// `b`, `c` analogous; `m, n, k` are the dimensions of `op(A)·op(B)` —
/// the f32 sibling of [`crate::blas::dgemm_slice`].
#[allow(clippy::too_many_arguments)]
pub fn sgemm_slice(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    cfg: &SgemmConfig,
) -> Result<(), GemmError> {
    let (ar, ac) = match transa {
        Transpose::No => (m, k),
        Transpose::Yes => (k, m),
    };
    let (br, bc) = match transb {
        Transpose::No => (k, n),
        Transpose::Yes => (n, k),
    };
    let av = MatrixView::from_slice(ar, ac, lda, a);
    let bv = MatrixView::from_slice(br, bc, ldb, b);
    let mut cv = MatrixViewMut::from_slice(m, n, ldc, c);
    sgemm(transa, transb, alpha, &av, &bv, beta, &mut cv, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::reference::naive_gemm;

    /// f32 tolerance for a rank-k accumulation.
    fn tol32(k: usize) -> f64 {
        32.0 * k.max(1) as f64 * f64::from(f32::EPSILON)
    }

    #[allow(clippy::too_many_arguments)]
    fn check(
        kind: SgemmKernelKind,
        m: usize,
        n: usize,
        k: usize,
        ta: Transpose,
        tb: Transpose,
        alpha: f32,
        beta: f32,
        threads: usize,
    ) {
        let (ar, ac) = match ta {
            Transpose::No => (m, k),
            Transpose::Yes => (k, m),
        };
        let (br, bc) = match tb {
            Transpose::No => (k, n),
            Transpose::Yes => (n, k),
        };
        let a: Matrix<f32> = Matrix::random(ar, ac, 91);
        let b: Matrix<f32> = Matrix::random(br, bc, 92);
        let c0: Matrix<f32> = Matrix::random(m, n, 93);

        let mut want = c0.clone();
        naive_gemm(
            ta,
            tb,
            alpha,
            &a.view(),
            &b.view(),
            beta,
            &mut want.view_mut(),
        );

        let mut got = c0.clone();
        let cfg =
            SgemmConfig::for_kernel(kind, threads).with_blocks(24, kind.mr() * 2, kind.nr() * 3);
        sgemm(
            ta,
            tb,
            alpha,
            &a.view(),
            &b.view(),
            beta,
            &mut got.view_mut(),
            &cfg,
        )
        .unwrap();

        let err = got.max_abs_diff(&want);
        assert!(
            err < tol32(k),
            "{} m={m} n={n} k={k}: err {err}",
            kind.label()
        );
    }

    #[test]
    fn analytic_blocking_for_f32() {
        // the ext_sgemm_design numbers: 12x8 kernel, 768x48x2560 serial
        let cfg = SgemmConfig::default();
        assert_eq!(cfg.kernel, SgemmKernelKind::Sk12x8);
        assert_eq!(cfg.blocks.label(), "12x8x768x48x2560");
    }

    #[test]
    fn all_f32_kernels_match_oracle() {
        for kind in SgemmKernelKind::ALL {
            check(kind, 50, 40, 30, Transpose::No, Transpose::No, 1.0, 0.0, 1);
            check(kind, 37, 29, 41, Transpose::No, Transpose::No, 1.5, 1.0, 1);
        }
    }

    #[test]
    fn f32_transposes_and_threads() {
        check(
            SgemmKernelKind::Sk12x8,
            45,
            33,
            27,
            Transpose::Yes,
            Transpose::No,
            1.0,
            -0.5,
            1,
        );
        check(
            SgemmKernelKind::Sk12x8,
            80,
            40,
            32,
            Transpose::No,
            Transpose::Yes,
            2.0,
            0.0,
            4,
        );
    }

    #[test]
    fn f32_full_analytic_blocking() {
        let m = 100;
        let n = 64;
        let k = 900; // crosses kc = 768
        let a: Matrix<f32> = Matrix::random(m, k, 5);
        let b: Matrix<f32> = Matrix::random(k, n, 6);
        let mut want: Matrix<f32> = Matrix::zeros(m, n);
        naive_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut want.view_mut(),
        );
        let mut got: Matrix<f32> = Matrix::zeros(m, n);
        sgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut got.view_mut(),
            &SgemmConfig::default(),
        )
        .unwrap();
        assert!(got.max_abs_diff(&want) < tol32(k));
    }

    #[test]
    fn shape_errors_detected() {
        let a: Matrix<f32> = Matrix::zeros(4, 5);
        let b: Matrix<f32> = Matrix::zeros(6, 3);
        let mut c: Matrix<f32> = Matrix::zeros(4, 3);
        assert!(matches!(
            sgemm(
                Transpose::No,
                Transpose::No,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut c.view_mut(),
                &SgemmConfig::default()
            ),
            Err(GemmError::InnerDimMismatch { .. })
        ));
    }

    #[test]
    fn output_shape_mismatch_detected() {
        let a: Matrix<f32> = Matrix::zeros(4, 5);
        let b: Matrix<f32> = Matrix::zeros(5, 3);
        let mut c: Matrix<f32> = Matrix::zeros(4, 4);
        let err = sgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &SgemmConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, GemmError::OutputDimMismatch { .. }));
        assert!(err.to_string().contains("4x4"));
    }

    #[test]
    fn bad_config_detected() {
        let a: Matrix<f32> = Matrix::zeros(2, 2);
        let b: Matrix<f32> = Matrix::zeros(2, 2);
        let mut c: Matrix<f32> = Matrix::zeros(2, 2);
        let cfg = SgemmConfig::default().with_blocks(0, 8, 8);
        let err = sgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, GemmError::BadConfig(_)));
        let cfg = SgemmConfig::default().with_parallelism(Parallelism::Pool(0));
        let err = sgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, GemmError::BadConfig(_)));
    }

    #[test]
    fn mismatched_kernel_blocking_rejected() {
        let a: Matrix<f32> = Matrix::zeros(2, 2);
        let b: Matrix<f32> = Matrix::zeros(2, 2);
        let mut c: Matrix<f32> = Matrix::zeros(2, 2);
        let mut cfg = SgemmConfig::for_kernel(SgemmKernelKind::Sk12x8, 1);
        cfg.kernel = SgemmKernelKind::Sk8x8; // blocks still say 12x8
        let err = sgemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, GemmError::BadConfig(_)));
    }

    #[test]
    fn slice_api_with_padded_ld() {
        // 3x2 matrices embedded in buffers with ld 5, mirroring the
        // dgemm_slice test so both precisions guard the same contract.
        let mut a = vec![0.0f32; 5 * 2];
        let mut b = vec![0.0f32; 5 * 2];
        a[0] = 1.0;
        a[1] = 3.0;
        a[2] = 5.0;
        a[5] = 2.0;
        a[6] = 4.0;
        a[7] = 6.0;
        b[0] = 1.0;
        b[6] = 1.0;
        let mut c = vec![0.0f32; 5 * 2];
        sgemm_slice(
            Transpose::No,
            Transpose::No,
            3,
            2,
            2,
            1.0,
            &a,
            5,
            &b,
            5,
            0.0,
            &mut c,
            5,
            &SgemmConfig::default(),
        )
        .unwrap();
        assert_eq!(&c[0..3], &[1.0, 3.0, 5.0]);
        assert_eq!(&c[5..8], &[2.0, 4.0, 6.0]);
        assert_eq!(c[3], 0.0);
        assert_eq!(c[4], 0.0);
    }
}
