//! The persistent pre-packed weight store: a versioned, mmap-able
//! on-disk format for [`PrepackedB`] (DESIGN.md §17).
//!
//! The paper's packing discipline makes the packed-B layout a pure
//! function of `(k, n, trans, nr, kc, nc)` — every sliver offset is
//! computable from the header alone. That determinism is what lets a
//! server *serialize* the pack step: pack once offline, write the
//! panels to disk, and boot with zero pack cost (the warm-start path
//! records **no** `packed_b_bytes`, which the store bench asserts).
//! Because the payload sits at a fixed 64-byte-aligned offset and the
//! tile walk needs no index table, the format is mmap-friendly: N
//! server processes mapping the same blob share one page-cache copy.
//!
//! ## Format (`dgemm-store` layout v1, little-endian)
//!
//! A 128-byte header followed by the packed panel payload:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `"DGEMMPB1"` |
//! | 8      | 4    | layout version (`u32`, = 1) |
//! | 12     | 4    | dtype code (`u32`: 1 = f64, 2 = f32) |
//! | 16     | 8    | `k` — rows of `op(B)` (`u64`) |
//! | 24     | 8    | `n` — cols of `op(B)` (`u64`) |
//! | 32     | 4    | transpose flag (`u32`: 0 = No, 1 = Yes) |
//! | 36     | 4    | `nr` sliver width (`u32`) |
//! | 40     | 4    | `kc` depth blocking (`u32`) |
//! | 44     | 4    | `nc` column blocking (`u32`) |
//! | 48     | 8    | payload length in bytes (`u64`) |
//! | 56     | 8    | source digest of `op(B)` (`u64`, FNV-1a) |
//! | 64     | 8    | blob checksum (`u64`, FNV-1a) |
//! | 72     | 56   | reserved, must be zero |
//! | 128    | —    | payload: panels in tile-walk order |
//!
//! The payload is every `kc×nc` tile of `op(B)` in GEPP consumption
//! order ([`PanelGeometry::tiles`]: `jj`-major, then `kk`), each tile
//! exactly the `⌈nc_eff/nr⌉·nr·kc_eff` padded elements
//! [`crate::pack::PackedB::pack`] produces, elements as raw IEEE-754
//! bits.
//!
//! The **checksum** is word-folded FNV-1a (64-bit little-endian words,
//! trailing bytes folded individually) over every blob byte *except*
//! the checksum field itself (header bytes 0–63 and 72–127, then the
//! payload). Every single-byte corruption anywhere in the blob —
//! including flag bytes like the transpose field that would otherwise
//! decode structurally clean — therefore fails [`decode`] with a typed
//! [`GemmError::BadStore`]. The **source digest** is word-folded
//! FNV-1a over the raw IEEE-754 bits of the *unpadded* elements of
//! `op(B)` in tile-walk order (one absorb step per element); it is
//! computable
//! both from the packed panels ([`source_digest`]) and by streaming a
//! live matrix ([`matrix_digest`]) without packing it, which is how
//! the service verifies at attach time that a blob still matches the
//! weights in memory — a read-only check that keeps the warm start
//! pack-free.
//!
//! ## Failure contract
//!
//! Every load path fails typed: truncated, corrupt, version-skewed,
//! wrong-dtype, or geometry-inconsistent blobs yield
//! [`GemmError::BadStore`] — never a panic, and never wrong results
//! (a blob is fully validated before any panel is constructed). The
//! corruption battery in `tests/store.rs` fuzzes this contract.

#![forbid(unsafe_code)]

use crate::matrix::MatrixView;
use crate::pack::PackedB;
use crate::prepack::{PanelGeometry, PanelSource, PrepackedB};
use crate::scalar::Scalar;
use crate::{GemmError, Transpose};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every blob.
pub const MAGIC: [u8; 8] = *b"DGEMMPB1";
/// The layout version this build reads and writes.
pub const LAYOUT_VERSION: u32 = 1;
/// Header size; the payload starts here (64-byte aligned for mmap use).
pub const HEADER_LEN: usize = 128;

const CHECKSUM_OFF: usize = 64;

// FNV-1a, 64-bit: dependency-free, byte-order independent, and fast
// enough to verify at boot (the store is read once per process).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Word-folded FNV-1a: one absorb step per 64-bit little-endian word,
/// trailing bytes folded individually. 8× fewer serial multiply steps
/// than byte-wise FNV — fast enough that the attach-time source verify
/// is cheaper than the packing it replaces. Single-byte corruption
/// detection is preserved: the multiply is by an odd prime (invertible
/// mod 2⁶⁴), so any change to one absorbed word changes the final
/// state (the exhaustive flip test below proves it byte by byte).
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let mut w = [0u8; 8];
        w.copy_from_slice(c);
        h = (h ^ u64::from_le_bytes(w)).wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_u64(state: u64, v: u64) -> u64 {
    (state ^ v).wrapping_mul(FNV_PRIME)
}

/// A decoded blob: the panels plus the source digest recorded at build
/// time, kept so an attach site can verify the blob against the live
/// operand before serving from it.
#[derive(Clone, Debug)]
pub struct StoreBlob<T: Scalar> {
    /// The reconstructed pre-packed operand, interchangeable with a
    /// live [`PrepackedB::try_build`] product.
    pub panels: Arc<PrepackedB<T>>,
    /// FNV-1a digest of the unpadded `op(B)` elements (tile-walk
    /// order) the panels were packed from.
    pub source_digest: u64,
}

impl<T: Scalar> StoreBlob<T> {
    /// Whether `op(b)` (under `trans`) still carries the element bits
    /// the blob was packed from. Streams the matrix read-only — no
    /// packing, no `packed_b_bytes` — and records a telemetry
    /// `verifies` / `verify_failures` tick.
    #[must_use]
    pub fn verify_source(&self, b: &MatrixView<'_, T>, trans: Transpose) -> bool {
        let geom = self.panels.geometry();
        let (k, n) = trans.apply_dims(b.rows(), b.cols());
        let ok = (k, n, trans) == (geom.k, geom.n, geom.trans)
            && matrix_digest(b, trans, geom.kc, geom.nc) == self.source_digest;
        crate::telemetry::store_verify(ok);
        ok
    }
}

/// Digest of the unpadded `op(B)` elements a panel source was packed
/// from, read back out of the packed slivers in tile-walk order.
#[must_use]
pub fn source_digest<T: Scalar, P: PanelSource<T>>(src: &P) -> u64 {
    let geom = src.geometry();
    let mut h = FNV_OFFSET;
    for (jj, kk, nc_eff, kc_eff) in geom.tiles() {
        let panel = src.panel(jj, kk);
        let buf = panel.buf();
        for c in 0..nc_eff {
            let s = c / geom.nr;
            let base = s * geom.nr * kc_eff + c % geom.nr;
            for r in 0..kc_eff {
                h = fnv1a_u64(h, buf[base + r * geom.nr].to_bits64());
            }
        }
    }
    h
}

/// The same digest computed by streaming a live matrix — `op(b)(kk+r,
/// jj+c)` over the tile walk — without packing anything. Must equal
/// [`source_digest`] of panels built from the same operand.
#[must_use]
pub fn matrix_digest<T: Scalar>(
    b: &MatrixView<'_, T>,
    trans: Transpose,
    kc: usize,
    nc: usize,
) -> u64 {
    let (k, n) = trans.apply_dims(b.rows(), b.cols());
    let geom = PanelGeometry {
        k,
        n,
        trans,
        kc,
        nc,
        nr: 1, // nr does not enter the digest walk
    };
    let mut h = FNV_OFFSET;
    for (jj, kk, nc_eff, kc_eff) in geom.tiles() {
        for c in 0..nc_eff {
            for r in 0..kc_eff {
                let v = match trans {
                    Transpose::No => b.get(kk + r, jj + c),
                    Transpose::Yes => b.get(jj + c, kk + r),
                };
                h = fnv1a_u64(h, v.to_bits64());
            }
        }
    }
    h
}

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[off..off + 4]);
    u32::from_le_bytes(b)
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Checksum of a fully assembled blob: every byte except the checksum
/// field itself.
fn blob_checksum(blob: &[u8]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &blob[..CHECKSUM_OFF]);
    h = fnv1a(h, &blob[CHECKSUM_OFF + 8..]);
    h
}

/// Serialize a panel source into a self-validating blob. Works for any
/// [`PanelSource`] — the encoder never touches the source matrix, so
/// packing offline and serializing are one pass.
#[must_use]
pub fn encode<T: Scalar, P: PanelSource<T>>(src: &P) -> Vec<u8> {
    let geom = src.geometry();
    let payload_elems = geom.total_elems();
    let payload_len = payload_elems * T::BYTES;
    let mut blob = vec![0u8; HEADER_LEN + payload_len];
    blob[..8].copy_from_slice(&MAGIC);
    put_u32(&mut blob, 8, LAYOUT_VERSION);
    put_u32(&mut blob, 12, T::DTYPE_CODE);
    put_u64(&mut blob, 16, geom.k as u64);
    put_u64(&mut blob, 24, geom.n as u64);
    put_u32(
        &mut blob,
        32,
        match geom.trans {
            Transpose::No => 0,
            Transpose::Yes => 1,
        },
    );
    put_u32(&mut blob, 36, geom.nr as u32);
    put_u32(&mut blob, 40, geom.kc as u32);
    put_u32(&mut blob, 44, geom.nc as u32);
    put_u64(&mut blob, 48, payload_len as u64);
    put_u64(&mut blob, 56, source_digest(src));
    let mut off = HEADER_LEN;
    for (jj, kk, _, _) in geom.tiles() {
        for &v in src.panel(jj, kk).buf() {
            let bits = v.to_bits64().to_le_bytes();
            blob[off..off + T::BYTES].copy_from_slice(&bits[..T::BYTES]);
            off += T::BYTES;
        }
    }
    debug_assert_eq!(off, blob.len());
    let sum = blob_checksum(&blob);
    put_u64(&mut blob, CHECKSUM_OFF, sum);
    blob
}

/// Validate and reconstruct a blob. Every rejection is a typed
/// [`GemmError::BadStore`]; the checks run header → checksum →
/// geometry → panel assembly, so no panel is ever built from bytes
/// that failed an earlier check. Telemetry records a `loads` or
/// `load_failures` tick per call.
pub fn decode<T: Scalar>(blob: &[u8]) -> Result<StoreBlob<T>, GemmError> {
    let r = decode_inner(blob);
    match &r {
        Ok(b) => crate::telemetry::store_load(b.panels.bytes() as u64),
        Err(_) => crate::telemetry::store_load_failure(),
    }
    r
}

fn decode_inner<T: Scalar>(blob: &[u8]) -> Result<StoreBlob<T>, GemmError> {
    if blob.len() < HEADER_LEN {
        return Err(GemmError::BadStore("blob shorter than the 128-byte header"));
    }
    if blob[..8] != MAGIC {
        return Err(GemmError::BadStore("bad magic (not a dgemm-store blob)"));
    }
    if get_u32(blob, 8) != LAYOUT_VERSION {
        return Err(GemmError::BadStore("unsupported layout version"));
    }
    if get_u32(blob, 12) != T::DTYPE_CODE {
        return Err(GemmError::BadStore(
            "blob dtype mismatches the requested element type",
        ));
    }
    // Checksum before any structural interpretation: a blob that fails
    // here is corrupt no matter how plausible its fields look.
    if get_u64(blob, CHECKSUM_OFF) != blob_checksum(blob) {
        return Err(GemmError::BadStore("checksum mismatch (blob is corrupt)"));
    }
    if blob[72..HEADER_LEN].iter().any(|&b| b != 0) {
        return Err(GemmError::BadStore("reserved header bytes are not zero"));
    }
    let k = usize::try_from(get_u64(blob, 16))
        .map_err(|_| GemmError::BadStore("k overflows this platform"))?;
    let n = usize::try_from(get_u64(blob, 24))
        .map_err(|_| GemmError::BadStore("n overflows this platform"))?;
    let trans = match get_u32(blob, 32) {
        0 => Transpose::No,
        1 => Transpose::Yes,
        _ => return Err(GemmError::BadStore("bad transpose flag")),
    };
    let nr = get_u32(blob, 36) as usize;
    let kc = get_u32(blob, 40) as usize;
    let nc = get_u32(blob, 44) as usize;
    let geom = PanelGeometry {
        k,
        n,
        trans,
        kc,
        nc,
        nr,
    };
    if geom.validate().is_err() {
        return Err(GemmError::BadStore("blob blocking geometry is zero"));
    }
    let payload_len = get_u64(blob, 48);
    if payload_len != (blob.len() - HEADER_LEN) as u64 {
        return Err(GemmError::BadStore("payload length mismatches blob size"));
    }
    let expected = geom
        .total_elems()
        .checked_mul(T::BYTES)
        .ok_or(GemmError::BadStore("geometry overflows the payload size"))?;
    if payload_len != expected as u64 {
        return Err(GemmError::BadStore("payload length mismatches geometry"));
    }
    let mut off = HEADER_LEN;
    let mut panels = Vec::with_capacity(geom.tile_count());
    for (_, _, nc_eff, kc_eff) in geom.tiles() {
        let elems = geom.panel_elems(nc_eff, kc_eff);
        let mut buf = Vec::new();
        if buf.try_reserve(elems).is_err() {
            return Err(GemmError::AllocFailure {
                what: "store panel",
            });
        }
        let end = off + elems * T::BYTES;
        buf.extend(blob[off..end].chunks_exact(T::BYTES).map(|c| {
            let mut bits = [0u8; 8];
            bits[..T::BYTES].copy_from_slice(c);
            T::from_bits64(u64::from_le_bytes(bits))
        }));
        off = end;
        panels.push(Arc::new(PackedB::from_layout(nr, kc_eff, nc_eff, buf)?));
    }
    let panels = Arc::new(PrepackedB::from_panels(geom, panels)?);
    Ok(StoreBlob {
        panels,
        source_digest: get_u64(blob, 56),
    })
}

/// Write a panel source to `path` (atomically: temp file + rename, so
/// a reader never observes a half-written blob).
pub fn save<T: Scalar, P: PanelSource<T>>(path: &Path, src: &P) -> std::io::Result<()> {
    let blob = encode(src);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &blob)?;
    std::fs::rename(&tmp, path)
}

/// Read and validate a blob from `path`. I/O failures surface as
/// [`GemmError::BadStore`] too — to a warm-start path an unreadable
/// blob and a corrupt one warrant the same fallback (pack live).
pub fn load<T: Scalar>(path: &Path) -> Result<StoreBlob<T>, GemmError> {
    let blob = std::fs::read(path).map_err(|_| {
        crate::telemetry::store_load_failure();
        GemmError::BadStore("blob unreadable (missing file or I/O error)")
    })?;
    decode(&blob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn build(k: usize, n: usize, trans: Transpose, nr: usize, kc: usize, nc: usize) -> PrepackedB {
        let (rows, cols) = match trans {
            Transpose::No => (k, n),
            Transpose::Yes => (n, k),
        };
        let b: Matrix = Matrix::random(rows, cols, 7);
        PrepackedB::try_build(&b.view(), trans, nr, kc, nc).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for trans in [Transpose::No, Transpose::Yes] {
            let live = build(37, 29, trans, 6, 16, 12);
            let blob = encode(&live);
            let loaded = decode::<f64>(&blob).unwrap();
            assert!(loaded.panels.matches(37, 29, trans, 6, 16, 12));
            assert_eq!(loaded.panels.tiles(), live.tiles());
            for (jj, kk, _, _) in live.geometry().tiles() {
                assert_eq!(loaded.panels.panel(jj, kk).buf(), live.panel(jj, kk).buf());
            }
            assert_eq!(loaded.source_digest, source_digest(&live));
        }
    }

    #[test]
    fn digests_agree_between_panels_and_matrix() {
        for trans in [Transpose::No, Transpose::Yes] {
            let (rows, cols) = match trans {
                Transpose::No => (23, 31),
                Transpose::Yes => (31, 23),
            };
            let b: Matrix = Matrix::random(rows, cols, 3);
            let pp = PrepackedB::try_build(&b.view(), trans, 6, 8, 10).unwrap();
            assert_eq!(source_digest(&pp), matrix_digest(&b.view(), trans, 8, 10));
        }
    }

    #[test]
    fn wrong_dtype_is_typed() {
        let live = build(8, 8, Transpose::No, 4, 4, 4);
        let blob = encode(&live);
        assert!(matches!(decode::<f32>(&blob), Err(GemmError::BadStore(_))));
    }

    #[test]
    fn truncation_and_magic_are_typed() {
        let live = build(16, 12, Transpose::No, 6, 8, 8);
        let blob = encode(&live);
        for len in [0, 7, HEADER_LEN - 1, HEADER_LEN, blob.len() - 1] {
            assert!(
                matches!(decode::<f64>(&blob[..len]), Err(GemmError::BadStore(_))),
                "truncation to {len} must be typed"
            );
        }
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert!(matches!(decode::<f64>(&bad), Err(GemmError::BadStore(_))));
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let live = build(10, 9, Transpose::No, 4, 6, 5);
        let blob = encode(&live);
        // exhaustive over this small blob: header fields, reserved pad,
        // checksum itself, payload
        for pos in 0..blob.len() {
            let mut bad = blob.clone();
            bad[pos] ^= 0x01;
            assert!(
                matches!(decode::<f64>(&bad), Err(GemmError::BadStore(_))),
                "flip at byte {pos} must be rejected"
            );
        }
    }

    #[test]
    fn save_load_roundtrip_and_missing_file() {
        let live = build(20, 14, Transpose::No, 6, 8, 8);
        let dir = std::env::temp_dir().join(format!("dgemm-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.dgemmpb");
        save(&path, &live).unwrap();
        let loaded = load::<f64>(&path).unwrap();
        assert_eq!(loaded.source_digest, source_digest(&live));
        assert!(matches!(
            load::<f64>(&dir.join("absent.dgemmpb")),
            Err(GemmError::BadStore(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_source_detects_mutation() {
        let b: Matrix = Matrix::random(18, 15, 9);
        let pp = PrepackedB::try_build(&b.view(), Transpose::No, 6, 8, 8).unwrap();
        let blob = decode::<f64>(&encode(&pp)).unwrap();
        assert!(blob.verify_source(&b.view(), Transpose::No));
        let mut m = b.clone();
        m.set(3, 4, -123.0);
        assert!(!blob.verify_source(&m.view(), Transpose::No));
        assert!(!blob.verify_source(&b.view(), Transpose::Yes));
    }
}
