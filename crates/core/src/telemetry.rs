//! Zero-overhead telemetry: per-thread counters, phase spans and
//! model-vs-measured attribution (DESIGN.md §11).
//!
//! The paper's method is *attribution*: its model
//! `T ≤ Fμ + (1+κ)Wπ·ψ(γ)` predicts where cycles go. This module makes
//! the runtime report where they actually went, in three tiers:
//!
//! 1. **Counters** — per-thread monotone totals: FLOPs retired, bytes
//!    packed (A and B separately), GEBP blocks executed, caller steals,
//!    arena hits vs fresh allocations. Recorded at the single choke
//!    points of each quantity ([`crate::gebp::gebp`] for FLOPs and
//!    blocks, [`crate::pack`] for bytes), so totals are exact to the
//!    last operation for every runtime (Serial/Scoped/Pool).
//! 2. **Phase spans** — monotonic-clock timings of pack-A, pack-B,
//!    GEBP compute, barrier wait, epoch watchdog settling and serial
//!    recovery, tagged with the current (GEPP iteration, `mc`-block)
//!    context and mirrored into a bounded per-thread ring buffer
//!    (overwrite-oldest, [`TraceEvent`]). The hot path touches only
//!    thread-owned atomics: no allocation, no locks.
//! 3. **Derived attribution** — [`GemmReport`] turns a [`Snapshot`]
//!    into achieved GFLOPS, achieved γ = F/W, pack/compute/wait
//!    fractions, and compares them against
//!    `perfmodel::model::{time_bound, perf_lower_bound}` for the same
//!    blocking, flagging runs whose measured efficiency falls below the
//!    model's lower bound (requires `DGEMM_PEAK_GFLOPS` to anchor the
//!    peak).
//!
//! ## Feature gating
//!
//! Recording sites are compiled under the `telemetry` cargo feature (on
//! by default). With the feature disabled every recording function is
//! an `#[inline(always)]` no-op and [`SpanGuard`] is a zero-sized type,
//! so the hot paths carry literally no telemetry code. The *pool
//! lifecycle* counters ([`RuntimeSnapshot`]: tasks, epochs, deaths,
//! respawns, spawn failures, faults contained, watchdog timeouts) are
//! always compiled — `pool::status()` sources them and must work in
//! every build.
//!
//! ## Semantics worth knowing
//!
//! - Counters count **work performed**, not unique data: fault recovery
//!   replays packing and compute, so a contained fault inflates byte
//!   and FLOP totals by the replayed work (exactly the cost the
//!   operator wants to see).
//! - Packed-byte totals are **buffer bytes** including the zero padding
//!   to `mr`/`nr` sliver boundaries — the same quantity `pack.rs`
//!   allocates and the kernels stream.
//! - [`reset`] zeroes the per-thread counters/spans/rings but *not* the
//!   lifetime runtime counters: `pool::status()` reports totals since
//!   process start.
//! - A thread's lane is recycled after the thread exits; totals are
//!   preserved (they describe the process, not the OS thread).
//!
//! Env control: `DGEMM_TELEMETRY=summary|json|off` selects what
//! [`emit`] prints to stderr (default `off`).

#![forbid(unsafe_code)]

pub use perfmodel::cacheblock::BlockSizes;

use perfmodel::model::{
    efficiency_lower_bound, perf_lower_bound, time_bound, MachineCosts, OverlapFactor,
};
use perfmodel::ratio::GebpTraffic;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of distinct phases (the length of [`Phase::ALL`]).
pub const PHASES: usize = 6;

/// The instrumented phases of a GEMM call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Packing an `mc×kc` block of A into sliver layout.
    PackA,
    /// Packing a `kc×nc` panel of B into sliver layout.
    PackB,
    /// GEBP compute (layers 4–7) on packed data.
    Compute,
    /// Caller parked at the epoch barrier waiting for worker dones.
    Barrier,
    /// Settling an epoch after the watchdog deadline expired.
    Watchdog,
    /// Serial bit-identical recovery of a faulted block.
    Recovery,
}

impl Phase {
    /// Every phase, in schema order.
    pub const ALL: [Phase; PHASES] = [
        Phase::PackA,
        Phase::PackB,
        Phase::Compute,
        Phase::Barrier,
        Phase::Watchdog,
        Phase::Recovery,
    ];

    /// Stable lowercase label (used by the JSON schema).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::PackA => "pack_a",
            Phase::PackB => "pack_b",
            Phase::Compute => "compute",
            Phase::Barrier => "barrier",
            Phase::Watchdog => "watchdog",
            Phase::Recovery => "recovery",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Phase::PackA => 0,
            Phase::PackB => 1,
            Phase::Compute => 2,
            Phase::Barrier => 3,
            Phase::Watchdog => 4,
            Phase::Recovery => 5,
        }
    }
}

// ---------------------------------------------------------------------
// Always-on pool lifecycle counters.
//
// These existed as fields of `WorkerPool` before this module; they live
// here now so `pool::stats()` / `pool::status()` and the telemetry
// snapshot read one counter system. They are deliberately *outside* the
// `telemetry` feature: the fault-tolerance observability must survive a
// no-default-features build.
// ---------------------------------------------------------------------

pub(crate) struct RuntimeCounters {
    /// Jobs enqueued over the pool's lifetime.
    pub(crate) tasks: AtomicU64,
    /// Epochs scheduled dynamically (workers race per `mc`-block).
    pub(crate) dynamic_epochs: AtomicU64,
    /// Epochs that fell back to static contiguous-band assignment.
    pub(crate) static_epochs: AtomicU64,
    /// Workers that exited their loop.
    pub(crate) deaths: AtomicU64,
    /// Replacement workers spawned for dead ones.
    pub(crate) respawns: AtomicU64,
    /// Worker spawn attempts that failed.
    pub(crate) spawn_failures: AtomicU64,
    /// Blocks recomputed serially after a worker panic or loss.
    pub(crate) faults_contained: AtomicU64,
    /// Epochs abandoned at the watchdog deadline.
    pub(crate) timeouts: AtomicU64,
    /// Dispatch decisions that chose the serial runtime.
    pub(crate) dispatch_serial: AtomicU64,
    /// Dispatch decisions that chose the pool runtime.
    pub(crate) dispatch_pool: AtomicU64,
    /// Dispatch decisions whose chosen runtime measured slower than
    /// the alternative's calibrated prediction (model mispredicts).
    pub(crate) dispatch_mispredicts: AtomicU64,
    /// Epochs scheduled as a 2-D grid (`n_split > 1` column chunks).
    pub(crate) grid_epochs: AtomicU64,
}

pub(crate) static RT: RuntimeCounters = RuntimeCounters {
    tasks: AtomicU64::new(0),
    dynamic_epochs: AtomicU64::new(0),
    static_epochs: AtomicU64::new(0),
    deaths: AtomicU64::new(0),
    respawns: AtomicU64::new(0),
    spawn_failures: AtomicU64::new(0),
    faults_contained: AtomicU64::new(0),
    timeouts: AtomicU64::new(0),
    dispatch_serial: AtomicU64::new(0),
    dispatch_pool: AtomicU64::new(0),
    dispatch_mispredicts: AtomicU64::new(0),
    grid_epochs: AtomicU64::new(0),
};

// ---------------------------------------------------------------------
// Always-on pack-cache counters.
//
// Like `RT`, these stay outside the `telemetry` feature: the cache-
// semantics tests pin hit/miss/evict accounting under
// `--no-default-features` too. Unlike `RT` they are *interval*
// counters: [`reset`] zeroes them, so a measured region's cache
// behavior reads out directly.
// ---------------------------------------------------------------------

pub(crate) struct CacheCounters {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) invalidations: AtomicU64,
    pub(crate) bytes_saved: AtomicU64,
}

pub(crate) static PACK_CACHE: CacheCounters = CacheCounters {
    hits: AtomicU64::new(0),
    misses: AtomicU64::new(0),
    evictions: AtomicU64::new(0),
    invalidations: AtomicU64::new(0),
    bytes_saved: AtomicU64::new(0),
};

pub(crate) fn cache_hit(bytes_saved: u64) {
    PACK_CACHE.hits.fetch_add(1, Ordering::Relaxed);
    PACK_CACHE
        .bytes_saved
        .fetch_add(bytes_saved, Ordering::Relaxed);
}

pub(crate) fn cache_miss() {
    PACK_CACHE.misses.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn cache_evict(n: u64) {
    PACK_CACHE.evictions.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn cache_invalidate(n: u64) {
    PACK_CACHE.invalidations.fetch_add(n, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Always-on service-layer counters.
//
// Process-wide totals across every `crate::service::GemmService`
// instance (each service also keeps per-instance copies for its own
// scrapeable snapshot). Like `RT` they survive a no-default-features
// build and are never zeroed by [`reset`]: the serving robustness
// contract — every admitted request resolves exactly once — is audited
// against these.
// ---------------------------------------------------------------------

pub(crate) struct ServiceCounters {
    pub(crate) admitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) shed_overload: AtomicU64,
    pub(crate) shed_quota: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) deadline_misses: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) coalesced_batches: AtomicU64,
    pub(crate) coalesced_requests: AtomicU64,
    pub(crate) panics_contained: AtomicU64,
}

impl ServiceCounters {
    /// A zeroed counter block (`const` so it also backs the `SVC`
    /// static and per-service-instance mirrors).
    pub(crate) const fn new() -> ServiceCounters {
        ServiceCounters {
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_quota: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            coalesced_batches: AtomicU64::new(0),
            coalesced_requests: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
        }
    }
}

pub(crate) static SVC: ServiceCounters = ServiceCounters::new();

// ---------------------------------------------------------------------
// Always-on weight-store counters.
//
// Process-wide totals for the on-disk pre-packed weight store
// ([`crate::store`], DESIGN.md §17). Like `SVC` they survive a
// no-default-features build and are never zeroed by [`reset`]: a
// fleet audits warm-start health (every boot should load, verify and
// attach; load_failures > 0 means corrupt blobs on disk) against
// process-lifetime totals.
// ---------------------------------------------------------------------

pub(crate) struct StoreCounters {
    pub(crate) loads: AtomicU64,
    pub(crate) load_failures: AtomicU64,
    pub(crate) verifies: AtomicU64,
    pub(crate) verify_failures: AtomicU64,
    pub(crate) attaches: AtomicU64,
    pub(crate) bytes_loaded: AtomicU64,
}

pub(crate) static STORE: StoreCounters = StoreCounters {
    loads: AtomicU64::new(0),
    load_failures: AtomicU64::new(0),
    verifies: AtomicU64::new(0),
    verify_failures: AtomicU64::new(0),
    attaches: AtomicU64::new(0),
    bytes_loaded: AtomicU64::new(0),
};

pub(crate) fn store_load(bytes: u64) {
    STORE.loads.fetch_add(1, Ordering::Relaxed);
    STORE.bytes_loaded.fetch_add(bytes, Ordering::Relaxed);
}

pub(crate) fn store_load_failure() {
    STORE.load_failures.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn store_verify(ok: bool) {
    STORE.verifies.fetch_add(1, Ordering::Relaxed);
    if !ok {
        STORE.verify_failures.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn store_attach() {
    STORE.attaches.fetch_add(1, Ordering::Relaxed);
}

/// Weight-store activity since process start (see [`crate::store`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Blobs decoded successfully (header + checksum validated).
    pub loads: u64,
    /// Blob decodes rejected with [`crate::GemmError::BadStore`].
    pub load_failures: u64,
    /// Source-digest verifications performed at attach time.
    pub verifies: u64,
    /// Verifications whose digest did not match the live operand.
    pub verify_failures: u64,
    /// Loaded blobs seeded into a [`crate::prepack::PackCache`].
    pub attaches: u64,
    /// Total payload bytes of successfully decoded blobs.
    pub bytes_loaded: u64,
}

fn store_snapshot() -> StoreSnapshot {
    StoreSnapshot {
        loads: STORE.loads.load(Ordering::Relaxed),
        load_failures: STORE.load_failures.load(Ordering::Relaxed),
        verifies: STORE.verifies.load(Ordering::Relaxed),
        verify_failures: STORE.verify_failures.load(Ordering::Relaxed),
        attaches: STORE.attaches.load(Ordering::Relaxed),
        bytes_loaded: STORE.bytes_loaded.load(Ordering::Relaxed),
    }
}

/// Service-layer activity since process start, across every
/// [`crate::service::GemmService`] instance (see DESIGN.md §15).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Requests accepted past admission control.
    pub admitted: u64,
    /// Admitted requests resolved with a successful result.
    pub completed: u64,
    /// Requests shed at admission because the queue was full (or
    /// health-shrunk).
    pub shed_overload: u64,
    /// Requests shed at admission by a tenant's queue quota.
    pub shed_quota: u64,
    /// Requests resolved with [`crate::service::ServiceError::Rejected`]
    /// (shutdown, cancellation, invalid shapes, exhausted retries).
    pub rejected: u64,
    /// Requests resolved with `DeadlineExceeded`.
    pub deadline_misses: u64,
    /// Execution retries after a recoverable pool fault.
    pub retries: u64,
    /// Request groups executed serially because a shard was unhealthy
    /// (graceful degradation), plus watchdog-recovered epochs served.
    pub degraded: u64,
    /// Coalesced `batch` executions (group size ≥ 2).
    pub coalesced_batches: u64,
    /// Requests served through a coalesced batch.
    pub coalesced_requests: u64,
    /// Service-layer panics contained by the scheduler's catch_unwind.
    pub panics_contained: u64,
}

fn service_snapshot() -> ServiceSnapshot {
    ServiceSnapshot {
        admitted: SVC.admitted.load(Ordering::Relaxed),
        completed: SVC.completed.load(Ordering::Relaxed),
        shed_overload: SVC.shed_overload.load(Ordering::Relaxed),
        shed_quota: SVC.shed_quota.load(Ordering::Relaxed),
        rejected: SVC.rejected.load(Ordering::Relaxed),
        deadline_misses: SVC.deadline_misses.load(Ordering::Relaxed),
        retries: SVC.retries.load(Ordering::Relaxed),
        degraded: SVC.degraded.load(Ordering::Relaxed),
        coalesced_batches: SVC.coalesced_batches.load(Ordering::Relaxed),
        coalesced_requests: SVC.coalesced_requests.load(Ordering::Relaxed),
        panics_contained: SVC.panics_contained.load(Ordering::Relaxed),
    }
}

/// Pack-cache activity since the last [`reset`] (process start if
/// never reset), across every per-type [`crate::prepack::PackCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups served from a cached pre-pack.
    pub hits: u64,
    /// Lookups that packed fresh panels (or failed to allocate them).
    pub misses: u64,
    /// Entries evicted to respect a capacity bound.
    pub evictions: u64,
    /// Entries dropped by `invalidate` / `bump_generation`.
    pub invalidations: u64,
    /// Packed-B bytes whose re-packing the cache avoided.
    pub bytes_saved: u64,
}

fn cache_snapshot() -> CacheSnapshot {
    CacheSnapshot {
        hits: PACK_CACHE.hits.load(Ordering::Relaxed),
        misses: PACK_CACHE.misses.load(Ordering::Relaxed),
        evictions: PACK_CACHE.evictions.load(Ordering::Relaxed),
        invalidations: PACK_CACHE.invalidations.load(Ordering::Relaxed),
        bytes_saved: PACK_CACHE.bytes_saved.load(Ordering::Relaxed),
    }
}

fn cache_reset() {
    PACK_CACHE.hits.store(0, Ordering::Relaxed);
    PACK_CACHE.misses.store(0, Ordering::Relaxed);
    PACK_CACHE.evictions.store(0, Ordering::Relaxed);
    PACK_CACHE.invalidations.store(0, Ordering::Relaxed);
    PACK_CACHE.bytes_saved.store(0, Ordering::Relaxed);
}

/// Pool-runtime lifecycle totals **since process start** ([`reset`]
/// does not touch them; `pool::status()` is defined in these terms).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeSnapshot {
    /// Jobs enqueued over the pool's lifetime.
    pub tasks: u64,
    /// Epochs scheduled dynamically (workers race per `mc`-block).
    pub dynamic_epochs: u64,
    /// Epochs that fell back to static contiguous-band assignment.
    pub static_epochs: u64,
    /// Workers that exited their loop.
    pub deaths: u64,
    /// Replacement workers spawned for dead ones.
    pub respawns: u64,
    /// Worker spawn attempts that failed.
    pub spawn_failures: u64,
    /// Blocks recomputed serially after a worker panic or loss.
    pub faults_contained: u64,
    /// Epochs abandoned at the watchdog deadline (watchdog fires).
    pub timeouts: u64,
    /// Dispatch decisions that chose the serial runtime
    /// (see [`crate::dispatch`]).
    pub dispatch_serial: u64,
    /// Dispatch decisions that chose the pool runtime.
    pub dispatch_pool: u64,
    /// Dispatch decisions whose chosen runtime measured slower than
    /// the alternative's calibrated prediction (model mispredicts).
    pub dispatch_mispredicts: u64,
    /// Epochs scheduled as a 2-D grid (`n_split > 1` column chunks).
    pub grid_epochs: u64,
}

impl RuntimeSnapshot {
    /// Layer-3 epochs served by the pool (dynamic + static).
    #[must_use]
    pub fn epochs_served(&self) -> u64 {
        self.dynamic_epochs + self.static_epochs
    }
}

fn runtime_snapshot() -> RuntimeSnapshot {
    RuntimeSnapshot {
        tasks: RT.tasks.load(Ordering::Relaxed),
        dynamic_epochs: RT.dynamic_epochs.load(Ordering::Relaxed),
        static_epochs: RT.static_epochs.load(Ordering::Relaxed),
        deaths: RT.deaths.load(Ordering::Relaxed),
        respawns: RT.respawns.load(Ordering::Relaxed),
        spawn_failures: RT.spawn_failures.load(Ordering::Relaxed),
        faults_contained: RT.faults_contained.load(Ordering::Relaxed),
        timeouts: RT.timeouts.load(Ordering::Relaxed),
        dispatch_serial: RT.dispatch_serial.load(Ordering::Relaxed),
        dispatch_pool: RT.dispatch_pool.load(Ordering::Relaxed),
        dispatch_mispredicts: RT.dispatch_mispredicts.load(Ordering::Relaxed),
        grid_epochs: RT.grid_epochs.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Public snapshot types.
// ---------------------------------------------------------------------

/// One recorded span from a thread's bounded ring buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which phase the span timed.
    pub phase: Phase,
    /// GEPP iteration (the `(jj, kk)` epoch sequence number) current
    /// when the span closed; 0 if never set on this thread.
    pub gepp: u64,
    /// First row of the `mc`-block current when the span closed.
    pub block_row0: u64,
    /// First column (within the `jj` panel) of the grid cell current
    /// when the span closed; 0 in 1-D (M-band) mode.
    pub block_col0: u64,
    /// Span start, nanoseconds on the process-wide monotonic clock.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Telemetry totals of one recording lane (≈ one thread; lanes are
/// recycled when threads exit, so a lane accumulates the totals of
/// every thread that occupied it since the last [`reset`]).
#[derive(Clone, Debug, Default)]
pub struct ThreadSnapshot {
    /// Thread name of the most recent occupant (e.g. `dgemm-pool-3`).
    pub name: String,
    /// Useful FLOPs retired (`2·mc·nc·kc` per GEBP, unpadded).
    pub flops: u64,
    /// Bytes written into packed-A buffers (padded sliver layout).
    pub packed_a_bytes: u64,
    /// Bytes written into packed-B buffers (padded sliver layout).
    pub packed_b_bytes: u64,
    /// GEBP block invocations executed on this lane.
    pub blocks: u64,
    /// Queued jobs this lane ran while parked at an epoch barrier.
    pub steals: u64,
    /// Arena buffer requests served from the free list.
    pub arena_hits: u64,
    /// Arena buffer requests that constructed a fresh buffer.
    pub arena_fresh: u64,
    /// Accumulated nanoseconds per phase, indexed as [`Phase::ALL`].
    pub phase_ns: [u64; PHASES],
    /// Completed spans per phase, indexed as [`Phase::ALL`].
    pub phase_hits: [u64; PHASES],
    /// The surviving tail of the span ring buffer, oldest first.
    pub trace: Vec<TraceEvent>,
}

impl ThreadSnapshot {
    /// Accumulated nanoseconds in `phase`.
    #[must_use]
    pub fn phase_time(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }

    /// `(pack, compute, wait)` fractions of this lane's accounted time
    /// (pack-A + pack-B + compute + barrier; watchdog/recovery nest the
    /// other phases and are excluded from the denominator). `None` when
    /// the lane recorded no time.
    #[must_use]
    pub fn fractions(&self) -> Option<(f64, f64, f64)> {
        let pack = self.phase_time(Phase::PackA) + self.phase_time(Phase::PackB);
        let compute = self.phase_time(Phase::Compute);
        let wait = self.phase_time(Phase::Barrier);
        let denom = pack + compute + wait;
        if denom == 0 {
            return None;
        }
        let d = denom as f64;
        Some((pack as f64 / d, compute as f64 / d, wait as f64 / d))
    }
}

/// A point-in-time copy of every telemetry counter: per-lane totals
/// plus the always-on pool lifecycle counters. Obtain with
/// [`snapshot`]; aggregate with the `total_*` helpers.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// One entry per recording lane (empty when the `telemetry` feature
    /// is disabled).
    pub threads: Vec<ThreadSnapshot>,
    /// Pool lifecycle totals since process start.
    pub runtime: RuntimeSnapshot,
    /// Pack-cache activity since the last [`reset`].
    pub cache: CacheSnapshot,
    /// Service-layer totals since process start.
    pub service: ServiceSnapshot,
    /// Weight-store totals since process start.
    pub store: StoreSnapshot,
}

impl Snapshot {
    /// FLOPs retired across all lanes.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.threads.iter().map(|t| t.flops).sum()
    }

    /// Packed-A bytes across all lanes.
    #[must_use]
    pub fn total_packed_a_bytes(&self) -> u64 {
        self.threads.iter().map(|t| t.packed_a_bytes).sum()
    }

    /// Packed-B bytes across all lanes.
    #[must_use]
    pub fn total_packed_b_bytes(&self) -> u64 {
        self.threads.iter().map(|t| t.packed_b_bytes).sum()
    }

    /// GEBP blocks executed across all lanes.
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        self.threads.iter().map(|t| t.blocks).sum()
    }

    /// Barrier-wait steals across all lanes.
    #[must_use]
    pub fn total_steals(&self) -> u64 {
        self.threads.iter().map(|t| t.steals).sum()
    }

    /// Arena free-list hits across all lanes.
    #[must_use]
    pub fn total_arena_hits(&self) -> u64 {
        self.threads.iter().map(|t| t.arena_hits).sum()
    }

    /// Fresh arena buffer constructions across all lanes.
    #[must_use]
    pub fn total_arena_fresh(&self) -> u64 {
        self.threads.iter().map(|t| t.arena_fresh).sum()
    }

    /// Accumulated nanoseconds in `phase` across all lanes.
    #[must_use]
    pub fn total_phase_ns(&self, phase: Phase) -> u64 {
        self.threads.iter().map(|t| t.phase_time(phase)).sum()
    }
}

/// Whether recording sites are compiled in (the `telemetry` feature).
#[must_use]
pub fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// Copy every counter, span total and trace ring into a [`Snapshot`].
///
/// Reads are relaxed: a snapshot taken while GEMMs are in flight is a
/// consistent-enough view (each counter is individually monotone), and
/// one taken with the library quiescent is exact.
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot {
        threads: record::thread_snapshots(),
        runtime: runtime_snapshot(),
        cache: cache_snapshot(),
        service: service_snapshot(),
        store: store_snapshot(),
    }
}

/// Zero the per-thread counters, span totals, trace rings and the
/// pack-cache interval counters ([`CacheSnapshot`]).
///
/// The pool lifecycle counters ([`RuntimeSnapshot`]) are *not* reset:
/// `pool::status()` reports totals since process start. Call before a
/// measured region; pair with [`snapshot`] after it.
pub fn reset() {
    record::reset_slots();
    cache_reset();
}

// ---------------------------------------------------------------------
// Recording primitives (feature-gated hot path).
// ---------------------------------------------------------------------

pub(crate) use record::{
    add_flops, add_packed_a_bytes, add_packed_b_bytes, count_arena_fresh, count_arena_hit,
    count_block, count_steal, set_block, set_cell, set_gepp, span,
};

#[cfg(feature = "telemetry")]
mod record {
    use super::{Phase, ThreadSnapshot, TraceEvent, PHASES};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, PoisonError};

    /// Spans kept per thread; older entries are overwritten. 1024 spans
    /// cover several full GEPP sweeps of a large GEMM (4 spans per
    /// block-epoch) while bounding memory at ~40 KiB per lane.
    const RING_LEN: usize = 1024;

    #[derive(Default)]
    struct RingEntry {
        /// `Phase::index() + 1`; 0 = empty.
        phase1: AtomicU64,
        gepp: AtomicU64,
        block_row0: AtomicU64,
        block_col0: AtomicU64,
        start_ns: AtomicU64,
        dur_ns: AtomicU64,
    }

    pub(super) struct Slot {
        name: Mutex<String>,
        flops: AtomicU64,
        packed_a_bytes: AtomicU64,
        packed_b_bytes: AtomicU64,
        blocks: AtomicU64,
        steals: AtomicU64,
        arena_hits: AtomicU64,
        arena_fresh: AtomicU64,
        phase_ns: [AtomicU64; PHASES],
        phase_hits: [AtomicU64; PHASES],
        /// Current GEPP iteration / grid-cell context (owner-written).
        gepp: AtomicU64,
        block_row0: AtomicU64,
        block_col0: AtomicU64,
        /// Next ring index (monotone; wraps modulo `RING_LEN`).
        head: AtomicU64,
        ring: Vec<RingEntry>,
    }

    impl Slot {
        fn new(name: String) -> Self {
            Slot {
                name: Mutex::new(name),
                flops: AtomicU64::new(0),
                packed_a_bytes: AtomicU64::new(0),
                packed_b_bytes: AtomicU64::new(0),
                blocks: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                arena_hits: AtomicU64::new(0),
                arena_fresh: AtomicU64::new(0),
                phase_ns: Default::default(),
                phase_hits: Default::default(),
                gepp: AtomicU64::new(0),
                block_row0: AtomicU64::new(0),
                block_col0: AtomicU64::new(0),
                head: AtomicU64::new(0),
                ring: (0..RING_LEN).map(|_| RingEntry::default()).collect(),
            }
        }

        fn zero(&self) {
            self.flops.store(0, Ordering::Relaxed);
            self.packed_a_bytes.store(0, Ordering::Relaxed);
            self.packed_b_bytes.store(0, Ordering::Relaxed);
            self.blocks.store(0, Ordering::Relaxed);
            self.steals.store(0, Ordering::Relaxed);
            self.arena_hits.store(0, Ordering::Relaxed);
            self.arena_fresh.store(0, Ordering::Relaxed);
            for p in &self.phase_ns {
                p.store(0, Ordering::Relaxed);
            }
            for p in &self.phase_hits {
                p.store(0, Ordering::Relaxed);
            }
            self.gepp.store(0, Ordering::Relaxed);
            self.block_row0.store(0, Ordering::Relaxed);
            self.block_col0.store(0, Ordering::Relaxed);
            self.head.store(0, Ordering::Relaxed);
            for e in &self.ring {
                e.phase1.store(0, Ordering::Relaxed);
            }
        }
    }

    #[derive(Default)]
    struct Registry {
        slots: Vec<Arc<Slot>>,
        /// Lanes whose occupant thread exited, available for reuse so
        /// short-lived threads (the Scoped runtime spawns per GEPP)
        /// don't grow the registry without bound.
        free: Vec<usize>,
    }

    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        slots: Vec::new(),
        free: Vec::new(),
    });

    /// Process-wide monotonic clock origin for span timestamps.
    /// Shares [`crate::trace::now_ns`]'s epoch so bridged phase spans
    /// and request lifecycle spans live on one timeline.
    fn now_ns() -> u64 {
        crate::trace::now_ns()
    }

    struct Handle {
        slot: Arc<Slot>,
        lane: usize,
    }

    impl Drop for Handle {
        fn drop(&mut self) {
            let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
            reg.free.push(self.lane);
        }
    }

    fn acquire() -> Handle {
        let name = std::thread::current()
            .name()
            .map_or_else(|| "unnamed".to_owned(), str::to_owned);
        let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(lane) = reg.free.pop() {
            let slot = Arc::clone(&reg.slots[lane]);
            drop(reg);
            *slot.name.lock().unwrap_or_else(PoisonError::into_inner) = name;
            Handle { slot, lane }
        } else {
            let slot = Arc::new(Slot::new(name));
            let lane = reg.slots.len();
            reg.slots.push(Arc::clone(&slot));
            Handle { slot, lane }
        }
    }

    thread_local! {
        static HANDLE: RefCell<Option<Handle>> = const { RefCell::new(None) };
    }

    /// Run `f` on this thread's slot, acquiring a lane on first use.
    /// Silently skips recording during thread teardown (the TLS value
    /// may already be destroyed) — losing a span at exit beats aborting.
    #[inline]
    fn with_slot(f: impl FnOnce(&Slot)) {
        let _ = HANDLE.try_with(|cell| {
            if let Ok(mut handle) = cell.try_borrow_mut() {
                f(&handle.get_or_insert_with(acquire).slot);
            }
        });
    }

    #[inline]
    pub(crate) fn add_flops(n: u64) {
        with_slot(|s| {
            s.flops.fetch_add(n, Ordering::Relaxed);
        });
    }

    #[inline]
    pub(crate) fn add_packed_a_bytes(n: u64) {
        with_slot(|s| {
            s.packed_a_bytes.fetch_add(n, Ordering::Relaxed);
        });
    }

    #[inline]
    pub(crate) fn add_packed_b_bytes(n: u64) {
        with_slot(|s| {
            s.packed_b_bytes.fetch_add(n, Ordering::Relaxed);
        });
    }

    /// One GEBP block retired: `n` flops and the block count, in a
    /// single lane access (this is the hottest recording site).
    #[inline]
    pub(crate) fn count_block(n: u64) {
        with_slot(|s| {
            s.flops.fetch_add(n, Ordering::Relaxed);
            s.blocks.fetch_add(1, Ordering::Relaxed);
        });
    }

    #[inline]
    pub(crate) fn count_steal() {
        with_slot(|s| {
            s.steals.fetch_add(1, Ordering::Relaxed);
        });
    }

    #[inline]
    pub(crate) fn count_arena_hit() {
        with_slot(|s| {
            s.arena_hits.fetch_add(1, Ordering::Relaxed);
        });
    }

    #[inline]
    pub(crate) fn count_arena_fresh() {
        with_slot(|s| {
            s.arena_fresh.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Tag subsequent spans with the current GEPP iteration (the
    /// `(jj, kk)` epoch sequence number).
    #[inline]
    pub(crate) fn set_gepp(seq: u64) {
        with_slot(|s| s.gepp.store(seq, Ordering::Relaxed));
    }

    /// Tag subsequent spans with the current `mc`-block's first row
    /// (1-D schedules: the cell is the whole panel width).
    #[inline]
    pub(crate) fn set_block(row0: usize) {
        set_cell(row0, 0);
    }

    /// Tag subsequent spans with the current grid cell: the `mc`-block's
    /// first row and the cell's first column within its `jj` panel.
    #[inline]
    pub(crate) fn set_cell(row0: usize, col0: usize) {
        with_slot(|s| {
            s.block_row0.store(row0 as u64, Ordering::Relaxed);
            s.block_col0.store(col0 as u64, Ordering::Relaxed);
        });
    }

    /// RAII phase timer: created at phase entry, records on drop.
    #[must_use]
    pub(crate) struct SpanGuard {
        phase: Phase,
        start: u64,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let end = now_ns();
            let dur = end.saturating_sub(self.start);
            // Request-scoped bridge: if this thread currently carries a
            // service trace context, the span also lands on that
            // request's trace (one thread-local read when it doesn't).
            crate::trace::bridge_phase(self.phase.index(), self.start, dur);
            with_slot(|s| {
                let idx = self.phase.index();
                s.phase_ns[idx].fetch_add(dur, Ordering::Relaxed);
                s.phase_hits[idx].fetch_add(1, Ordering::Relaxed);
                let head = s.head.fetch_add(1, Ordering::Relaxed);
                let e = &s.ring[(head as usize) % RING_LEN];
                e.gepp
                    .store(s.gepp.load(Ordering::Relaxed), Ordering::Relaxed);
                e.block_row0
                    .store(s.block_row0.load(Ordering::Relaxed), Ordering::Relaxed);
                e.block_col0
                    .store(s.block_col0.load(Ordering::Relaxed), Ordering::Relaxed);
                e.start_ns.store(self.start, Ordering::Relaxed);
                e.dur_ns.store(dur, Ordering::Relaxed);
                e.phase1.store(idx as u64 + 1, Ordering::Relaxed);
            });
        }
    }

    /// Open a phase span on the calling thread.
    #[inline]
    pub(crate) fn span(phase: Phase) -> SpanGuard {
        SpanGuard {
            phase,
            start: now_ns(),
        }
    }

    pub(super) fn thread_snapshots() -> Vec<ThreadSnapshot> {
        let slots: Vec<Arc<Slot>> = {
            let reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
            reg.slots.clone()
        };
        slots
            .iter()
            .map(|s| {
                let mut trace: Vec<TraceEvent> = s
                    .ring
                    .iter()
                    .filter_map(|e| {
                        let phase1 = e.phase1.load(Ordering::Relaxed);
                        let phase = *Phase::ALL.get((phase1 as usize).checked_sub(1)?)?;
                        Some(TraceEvent {
                            phase,
                            gepp: e.gepp.load(Ordering::Relaxed),
                            block_row0: e.block_row0.load(Ordering::Relaxed),
                            block_col0: e.block_col0.load(Ordering::Relaxed),
                            start_ns: e.start_ns.load(Ordering::Relaxed),
                            dur_ns: e.dur_ns.load(Ordering::Relaxed),
                        })
                    })
                    .collect();
                trace.sort_by_key(|e| e.start_ns);
                ThreadSnapshot {
                    name: s
                        .name
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone(),
                    flops: s.flops.load(Ordering::Relaxed),
                    packed_a_bytes: s.packed_a_bytes.load(Ordering::Relaxed),
                    packed_b_bytes: s.packed_b_bytes.load(Ordering::Relaxed),
                    blocks: s.blocks.load(Ordering::Relaxed),
                    steals: s.steals.load(Ordering::Relaxed),
                    arena_hits: s.arena_hits.load(Ordering::Relaxed),
                    arena_fresh: s.arena_fresh.load(Ordering::Relaxed),
                    phase_ns: std::array::from_fn(|i| s.phase_ns[i].load(Ordering::Relaxed)),
                    phase_hits: std::array::from_fn(|i| s.phase_hits[i].load(Ordering::Relaxed)),
                    trace,
                }
            })
            .collect()
    }

    pub(super) fn reset_slots() {
        let slots: Vec<Arc<Slot>> = {
            let reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
            reg.slots.clone()
        };
        for slot in slots {
            slot.zero();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn ring_overwrites_oldest() {
            // More spans than RING_LEN on one thread: the ring holds the
            // newest RING_LEN, totals hold everything.
            super::super::reset();
            for _ in 0..RING_LEN + 64 {
                drop(span(Phase::Compute));
            }
            let snaps = thread_snapshots();
            let me = snaps
                .iter()
                .find(|t| t.phase_hits[Phase::Compute.index()] >= (RING_LEN + 64) as u64)
                .expect("this thread's lane");
            assert!(me.trace.len() <= RING_LEN);
            assert!(!me.trace.is_empty());
        }

        #[test]
        fn spans_carry_context() {
            set_gepp(7);
            set_cell(112, 48);
            drop(span(Phase::PackA));
            let snaps = thread_snapshots();
            assert!(snaps
                .iter()
                .any(|t| t.trace.iter().any(|e| e.phase == Phase::PackA
                    && e.gepp == 7
                    && e.block_row0 == 112
                    && e.block_col0 == 48)));
            // set_block is the 1-D shorthand: it must clear the column.
            set_block(24);
            drop(span(Phase::PackA));
            let snaps = thread_snapshots();
            assert!(snaps.iter().any(|t| t
                .trace
                .iter()
                .any(|e| e.block_row0 == 24 && e.block_col0 == 0)));
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod record {
    //! No-op recording: every site compiles to nothing.
    use super::{Phase, ThreadSnapshot};

    #[inline(always)]
    pub(crate) fn add_flops(_n: u64) {}
    #[inline(always)]
    pub(crate) fn add_packed_a_bytes(_n: u64) {}
    #[inline(always)]
    pub(crate) fn add_packed_b_bytes(_n: u64) {}
    #[inline(always)]
    pub(crate) fn count_block(_n: u64) {}
    #[inline(always)]
    pub(crate) fn count_steal() {}
    #[inline(always)]
    pub(crate) fn count_arena_hit() {}
    #[inline(always)]
    pub(crate) fn count_arena_fresh() {}
    #[inline(always)]
    pub(crate) fn set_gepp(_seq: u64) {}
    #[inline(always)]
    pub(crate) fn set_block(_row0: usize) {}
    #[inline(always)]
    pub(crate) fn set_cell(_row0: usize, _col0: usize) {}

    /// Zero-sized stand-in for the enabled build's RAII timer.
    pub(crate) struct SpanGuard;

    #[inline(always)]
    pub(crate) fn span(_phase: Phase) -> SpanGuard {
        SpanGuard
    }

    pub(super) fn thread_snapshots() -> Vec<ThreadSnapshot> {
        Vec::new()
    }

    pub(super) fn reset_slots() {}

    #[cfg(test)]
    mod tests {
        #[test]
        fn disabled_span_guard_is_zero_sized() {
            assert_eq!(core::mem::size_of::<super::SpanGuard>(), 0);
        }
    }
}

// ---------------------------------------------------------------------
// Derived attribution.
// ---------------------------------------------------------------------

/// Calibrated overlap-factor slope for the paper's machine — the
/// `ψ(γ) = 1/(1 + c·γ)` family `ext_model_validation` fits.
const PSI_C: f64 = 0.4;

/// Attribution of one measured run: achieved GFLOPS and γ from the
/// counters, pack/compute/wait split from the spans, and the
/// `perfmodel` predictions for the same blocking next to them.
#[derive(Clone, Debug)]
pub struct GemmReport {
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// How many identical GEMM calls the measured interval covered.
    pub calls: u64,
    /// Configured parallel degree.
    pub threads: usize,
    /// Measured wall-clock seconds for all `calls`.
    pub elapsed_s: f64,
    /// FLOPs: counted when telemetry recorded any, else `2·m·n·k·calls`.
    pub flops: u64,
    /// Whether `flops` came from counters (false = analytic fallback).
    pub flops_counted: bool,
    /// Achieved GFLOPS over the measured interval.
    pub gflops: f64,
    /// Counted packed-A bytes.
    pub packed_a_bytes: u64,
    /// Counted packed-B bytes.
    pub packed_b_bytes: u64,
    /// Pack-cache hits over the interval.
    pub pack_cache_hits: u64,
    /// Pack-cache misses over the interval.
    pub pack_cache_misses: u64,
    /// Packed-B bytes the cache kept off the packing path: hits serve
    /// already-packed panels, so `packed_b_bytes` shrinks by exactly
    /// this much relative to the uncached run.
    pub pack_b_bytes_saved: u64,
    /// Achieved γ = F/W: counted FLOPs per packed word actually moved
    /// through the packing paths. `None` without byte counts.
    pub gamma_measured: Option<f64>,
    /// The model's exact GEBP γ for the configured blocking
    /// (`GebpTraffic::gamma`, eq. (16) numerics).
    pub gamma_model: f64,
    /// Fraction of accounted time spent packing (A + B), all lanes.
    pub pack_frac: f64,
    /// Fraction of accounted time in GEBP compute, all lanes.
    pub compute_frac: f64,
    /// Fraction of accounted time parked at epoch barriers, all lanes.
    pub wait_frac: f64,
    /// Equation (4) time bound for the counted F and packed W, in
    /// cycles (MachineCosts::xgene_cycles units).
    pub model_time_cycles: f64,
    /// Equation (6) performance lower bound at `gamma_model`, in flops
    /// per cycle.
    pub model_flops_per_cycle: f64,
    /// Equation (6) efficiency lower bound (fraction of peak) at
    /// `gamma_model`.
    pub model_efficiency_bound: f64,
    /// `gflops / DGEMM_PEAK_GFLOPS` when that env var is set.
    pub measured_efficiency: Option<f64>,
    /// `Some(true)` when measured efficiency fell below the model's
    /// lower bound — the run left model-promised performance on the
    /// table. Requires `DGEMM_PEAK_GFLOPS`.
    pub below_model_bound: Option<bool>,
}

impl GemmReport {
    /// Build the attribution report for a measured interval.
    ///
    /// `dims` is one call's `(m, n, k)`; `calls` how many identical
    /// calls ran between [`reset`] and [`snapshot`]; `elapsed` the
    /// wall-clock for all of them; `blocks` the blocking in effect
    /// (source of the model γ).
    #[must_use]
    pub fn from_run(
        dims: (usize, usize, usize),
        calls: u64,
        threads: usize,
        elapsed: Duration,
        blocks: &BlockSizes,
        snap: &Snapshot,
    ) -> GemmReport {
        let (m, n, k) = dims;
        let elapsed_s = elapsed.as_secs_f64();
        let counted = snap.total_flops();
        let flops_counted = counted > 0;
        let flops = if flops_counted {
            counted
        } else {
            2 * (m as u64) * (n as u64) * (k as u64) * calls
        };
        let gflops = if elapsed_s > 0.0 {
            flops as f64 / elapsed_s / 1e9
        } else {
            0.0
        };

        let packed_a_bytes = snap.total_packed_a_bytes();
        let packed_b_bytes = snap.total_packed_b_bytes();
        // γ is computed from the packed words *actually moved*: cache
        // hits skip the PackB choke point entirely, so an amortized
        // stream reports the higher effective γ the cache buys.
        let packed_words = (packed_a_bytes + packed_b_bytes) as f64 / 8.0;
        let gamma_measured =
            (flops_counted && packed_words > 0.0).then(|| flops as f64 / packed_words);

        let BlockSizes {
            mr, nr, kc, mc, nc, ..
        } = *blocks;
        let gamma_model = GebpTraffic::gamma(mr, nr, kc, mc.min(m.max(1)), nc.min(n.max(1)));

        let pack = snap.total_phase_ns(Phase::PackA) + snap.total_phase_ns(Phase::PackB);
        let compute = snap.total_phase_ns(Phase::Compute);
        let wait = snap.total_phase_ns(Phase::Barrier);
        let denom = (pack + compute + wait) as f64;
        let (pack_frac, compute_frac, wait_frac) = if denom > 0.0 {
            (
                pack as f64 / denom,
                compute as f64 / denom,
                wait as f64 / denom,
            )
        } else {
            (0.0, 0.0, 0.0)
        };

        let costs = MachineCosts::xgene_cycles();
        let psi = OverlapFactor::Rational { c: PSI_C };
        let model_time_cycles = time_bound(flops as f64, packed_words, &costs, &psi);
        let (model_flops_per_cycle, model_efficiency_bound) = if gamma_model > 0.0 {
            (
                perf_lower_bound(gamma_model, &costs, &psi),
                efficiency_lower_bound(gamma_model, &costs, &psi),
            )
        } else {
            (0.0, 0.0)
        };

        let peak_gflops = std::env::var("DGEMM_PEAK_GFLOPS")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|p| *p > 0.0);
        let measured_efficiency = peak_gflops.map(|p| gflops / p);
        let below_model_bound = measured_efficiency.map(|e| e < model_efficiency_bound);

        GemmReport {
            m,
            n,
            k,
            calls,
            threads,
            elapsed_s,
            flops,
            flops_counted,
            gflops,
            packed_a_bytes,
            packed_b_bytes,
            pack_cache_hits: snap.cache.hits,
            pack_cache_misses: snap.cache.misses,
            pack_b_bytes_saved: snap.cache.bytes_saved,
            gamma_measured,
            gamma_model,
            pack_frac,
            compute_frac,
            wait_frac,
            model_time_cycles,
            model_flops_per_cycle,
            model_efficiency_bound,
            measured_efficiency,
            below_model_bound,
        }
    }

    /// Achieved fraction of the model's eq. (6) performance lower bound
    /// at a nominal clock: `gflops / (model_flops_per_cycle ×
    /// nominal_ghz)`. The autotuner's score (DESIGN.md §14): unlike raw
    /// GFLOPS it is comparable *across blockings*, because each
    /// candidate is measured against the bound its own γ promises — a
    /// candidate that is fast only because its bound is loose scores
    /// lower than one extracting everything its blocking allows.
    /// Returns 0 when the bound or clock is degenerate.
    #[must_use]
    pub fn achieved_vs_bound(&self, nominal_ghz: f64) -> f64 {
        let bound_gflops = self.model_flops_per_cycle * nominal_ghz;
        if bound_gflops > 0.0 && bound_gflops.is_finite() {
            self.gflops / bound_gflops
        } else {
            0.0
        }
    }

    /// One-line human summary: GFLOPS, γ (measured vs model) and the
    /// pack/compute/wait split.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let gamma = self
            .gamma_measured
            .map_or_else(|| "n/a".to_owned(), |g| format!("{g:.2}"));
        let eff = match (self.measured_efficiency, self.below_model_bound) {
            (Some(e), Some(true)) => format!(
                " | eff {:.1}% < model bound {:.1}% (BELOW MODEL BOUND)",
                e * 100.0,
                self.model_efficiency_bound * 100.0
            ),
            (Some(e), _) => format!(
                " | eff {:.1}% >= model bound {:.1}%",
                e * 100.0,
                self.model_efficiency_bound * 100.0
            ),
            _ => format!(
                " | model eff bound {:.1}%",
                self.model_efficiency_bound * 100.0
            ),
        };
        let cache = if self.pack_cache_hits + self.pack_cache_misses > 0 {
            format!(
                " | cache {}h/{}m saved {} B",
                self.pack_cache_hits, self.pack_cache_misses, self.pack_b_bytes_saved
            )
        } else {
            String::new()
        };
        format!(
            "telemetry: {}x{}x{} x{} t{} | {:.2} GFLOPS | gamma {} (model {:.2}) | pack {:.1}% compute {:.1}% wait {:.1}%{}{}",
            self.m,
            self.n,
            self.k,
            self.calls,
            self.threads,
            self.gflops,
            gamma,
            self.gamma_model,
            self.pack_frac * 100.0,
            self.compute_frac * 100.0,
            self.wait_frac * 100.0,
            cache,
            eff,
        )
    }

    /// Schema-stable JSON (`"schema": "dgemm-telem-v1"`), one object.
    ///
    /// Keys are emitted in a fixed order; absent measurements are
    /// `null`. `crates/bench` writes one of these per bench group into
    /// `results/TELEM_*.json`.
    #[must_use]
    pub fn to_json(&self, snap: &Snapshot) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map_or_else(|| "null".to_owned(), |x| format!("{x:.6}"))
        }
        fn opt_bool(v: Option<bool>) -> String {
            v.map_or_else(|| "null".to_owned(), |b| b.to_string())
        }
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        let mut threads_json = String::new();
        for (i, t) in snap.threads.iter().enumerate() {
            if i > 0 {
                threads_json.push(',');
            }
            threads_json.push_str(&format!(
                "{{\"name\":\"{}\",\"flops\":{},\"packed_a_bytes\":{},\"packed_b_bytes\":{},\
                 \"blocks\":{},\"steals\":{},\"arena_hits\":{},\"arena_fresh\":{},{}}}",
                esc(&t.name),
                t.flops,
                t.packed_a_bytes,
                t.packed_b_bytes,
                t.blocks,
                t.steals,
                t.arena_hits,
                t.arena_fresh,
                Phase::ALL
                    .iter()
                    .map(|p| format!("\"{}_ns\":{}", p.label(), t.phase_time(*p)))
                    .collect::<Vec<_>>()
                    .join(","),
            ));
        }
        let rt = &snap.runtime;
        let cc = &snap.cache;
        let sv = &snap.service;
        format!(
            "{{\"schema\":\"dgemm-telem-v1\",\"m\":{},\"n\":{},\"k\":{},\"calls\":{},\
             \"threads\":{},\"elapsed_s\":{:.6},\"flops\":{},\"flops_counted\":{},\
             \"gflops\":{:.6},\"packed_a_bytes\":{},\"packed_b_bytes\":{},\
             \"pack_b_bytes_saved\":{},\
             \"gamma_measured\":{},\"gamma_model\":{:.6},\"pack_frac\":{:.6},\
             \"compute_frac\":{:.6},\"wait_frac\":{:.6},\"model_time_cycles\":{:.3},\
             \"model_flops_per_cycle\":{:.6},\"model_efficiency_bound\":{:.6},\
             \"measured_efficiency\":{},\"below_model_bound\":{},\
             \"pack_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"invalidations\":{},\"bytes_saved\":{}}},\
             \"runtime\":{{\"tasks\":{},\"dynamic_epochs\":{},\"static_epochs\":{},\
             \"deaths\":{},\"respawns\":{},\"spawn_failures\":{},\"faults_contained\":{},\
             \"timeouts\":{},\"dispatch_serial\":{},\"dispatch_pool\":{},\
             \"dispatch_mispredicts\":{},\"grid_epochs\":{}}},\
             \"service\":{{\"admitted\":{},\"completed\":{},\"shed_overload\":{},\
             \"shed_quota\":{},\"rejected\":{},\"deadline_misses\":{},\"retries\":{},\
             \"degraded\":{},\"coalesced_batches\":{},\"coalesced_requests\":{},\
             \"panics_contained\":{}}},\"threads_detail\":[{}]}}",
            self.m,
            self.n,
            self.k,
            self.calls,
            self.threads,
            self.elapsed_s,
            self.flops,
            self.flops_counted,
            self.gflops,
            self.packed_a_bytes,
            self.packed_b_bytes,
            self.pack_b_bytes_saved,
            opt(self.gamma_measured),
            self.gamma_model,
            self.pack_frac,
            self.compute_frac,
            self.wait_frac,
            self.model_time_cycles,
            self.model_flops_per_cycle,
            self.model_efficiency_bound,
            opt(self.measured_efficiency),
            opt_bool(self.below_model_bound),
            cc.hits,
            cc.misses,
            cc.evictions,
            cc.invalidations,
            cc.bytes_saved,
            rt.tasks,
            rt.dynamic_epochs,
            rt.static_epochs,
            rt.deaths,
            rt.respawns,
            rt.spawn_failures,
            rt.faults_contained,
            rt.timeouts,
            rt.dispatch_serial,
            rt.dispatch_pool,
            rt.dispatch_mispredicts,
            rt.grid_epochs,
            sv.admitted,
            sv.completed,
            sv.shed_overload,
            sv.shed_quota,
            sv.rejected,
            sv.deadline_misses,
            sv.retries,
            sv.degraded,
            sv.coalesced_batches,
            sv.coalesced_requests,
            sv.panics_contained,
            threads_json,
        )
    }
}

/// What [`emit`] prints, from `DGEMM_TELEMETRY`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Print nothing (the default).
    #[default]
    Off,
    /// Print [`GemmReport::summary_line`] to stderr.
    Summary,
    /// Print [`GemmReport::to_json`] to stderr.
    Json,
}

/// Parse `DGEMM_TELEMETRY` (`summary` | `json` | anything else = off).
#[must_use]
pub fn mode_from_env() -> TelemetryMode {
    match std::env::var("DGEMM_TELEMETRY") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "summary" => TelemetryMode::Summary,
            "json" => TelemetryMode::Json,
            _ => TelemetryMode::Off,
        },
        Err(_) => TelemetryMode::Off,
    }
}

/// Print `report` to stderr in the mode `DGEMM_TELEMETRY` selects
/// (no-op when off/unset). Library code never prints unprompted; this
/// is the explicit faucet examples and benches open.
pub fn emit(report: &GemmReport, snap: &Snapshot) {
    match mode_from_env() {
        TelemetryMode::Off => {}
        TelemetryMode::Summary => eprintln!("{}", report.summary_line()),
        TelemetryMode::Json => eprintln!("{}", report.to_json(snap)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_and_indices_are_stable() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::PackA.label(), "pack_a");
        assert_eq!(Phase::Barrier.label(), "barrier");
    }

    #[test]
    fn report_falls_back_to_analytic_flops() {
        let snap = Snapshot::default();
        let blocks = BlockSizes::custom(8, 6, 64, 24, 48);
        let r = GemmReport::from_run(
            (32, 32, 32),
            4,
            2,
            Duration::from_millis(10),
            &blocks,
            &snap,
        );
        assert!(!r.flops_counted);
        assert_eq!(r.flops, 2 * 32 * 32 * 32 * 4);
        assert!(r.gflops > 0.0);
        assert!(r.gamma_measured.is_none());
        assert!(r.gamma_model > 0.0);
        let line = r.summary_line();
        assert!(line.contains("GFLOPS"), "{line}");
        let json = r.to_json(&snap);
        assert!(json.starts_with("{\"schema\":\"dgemm-telem-v1\""), "{json}");
        assert!(json.contains("\"gamma_measured\":null"), "{json}");
    }

    #[test]
    fn json_escapes_thread_names() {
        let mut snap = Snapshot::default();
        snap.threads.push(ThreadSnapshot {
            name: "we\"ird\\name".to_owned(),
            ..ThreadSnapshot::default()
        });
        let blocks = BlockSizes::custom(8, 6, 64, 24, 48);
        let r = GemmReport::from_run((8, 8, 8), 1, 1, Duration::from_millis(1), &blocks, &snap);
        let json = r.to_json(&snap);
        assert!(json.contains("we\\\"ird\\\\name"), "{json}");
    }

    #[test]
    fn mode_parsing() {
        // Exercise the match arms directly (env mutation races with
        // other tests; auto_config_reads_environment owns that risk).
        assert_eq!(TelemetryMode::default(), TelemetryMode::Off);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn enabled_reports_feature() {
        assert!(enabled());
    }
}
