//! Shape-adaptive runtime dispatch (DESIGN.md §13).
//!
//! Layer 3's schedule used to be fixed by [`crate::gemm::GemmConfig`]
//! alone: `Parallelism::Pool(p)` always ran the pool over M-bands, no
//! matter the shape. That loses to serial exactly where the pre-packed
//! cache shines — skinny-m/fat-n GEMMs have one or two M-bands and tiny
//! epochs, so the barrier overhead swamps the parallel compute. This
//! module decides, per `gemm()` call:
//!
//! 1. **runtime** — Serial or Pool — by comparing the analytic
//!    predictions of `perfmodel::model` eq. (4) ([`model::time_bound`])
//!    and its pooled extension ([`model::pooled_time_bound`]: epoch
//!    barriers + per-cell task costs on top of divided compute);
//! 2. **grid geometry** — the column split `n_split` handed to
//!    [`crate::pool::gemm_pooled`], so shapes with too few mc-row
//!    blocks parallelize over N instead (2-D `(mc × nc)` task grid);
//! 3. **calibration** — the model is a bound, not a stopwatch, so each
//!    runtime keeps an EWMA ratio of measured/predicted time from past
//!    calls (live telemetry) and predictions are scaled by it before
//!    the comparison.
//!
//! The decision is overridable per call via
//! [`crate::gemm::GemmConfig::with_dispatch`] and process-wide via
//! `DGEMM_DISPATCH=serial|pool|auto` (read by
//! [`crate::gemm::GemmConfig::auto`]); the default [`DispatchMode::Fixed`]
//! keeps the configured [`Parallelism`] untouched, bit-for-bit and
//! overhead-free. Every decision is auditable:
//! [`crate::pool::status`] surfaces the most recent one as
//! `last_dispatch`.

#![forbid(unsafe_code)]

use crate::pool::Parallelism;
use crate::telemetry::RT;
use perfmodel::cacheblock::BlockSizes;
use perfmodel::model::{pooled_time_bound, time_bound, MachineCosts, OverlapFactor, PoolOverheads};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// How the dispatcher treats one GEMM call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DispatchMode {
    /// No dispatch: run exactly the configured [`Parallelism`] with the
    /// historical 1-D M-band schedule. The default — zero overhead,
    /// bit-for-bit the pre-dispatch behavior.
    #[default]
    Fixed,
    /// Force the serial runtime regardless of the configured degree.
    Serial,
    /// Force the pool runtime (with the dispatcher's 2-D grid), even
    /// where the model predicts serial would win.
    Pool,
    /// Pick the runtime per call from the cost model + calibration,
    /// with the serial fallback whenever the grid is too coarse to
    /// occupy the workers.
    Auto,
}

impl DispatchMode {
    /// Parse `DGEMM_DISPATCH`: absent/`fixed` keeps the configured
    /// runtime, `serial`/`pool` force one, `auto` enables the cost
    /// model; anything else is a typed error.
    pub fn from_env() -> Result<Self, crate::GemmError> {
        match std::env::var("DGEMM_DISPATCH") {
            Ok(v) => match v.trim() {
                "serial" => Ok(DispatchMode::Serial),
                "pool" => Ok(DispatchMode::Pool),
                "auto" => Ok(DispatchMode::Auto),
                "" | "fixed" => Ok(DispatchMode::Fixed),
                _ => Err(crate::GemmError::BadConfig(
                    "DGEMM_DISPATCH must be serial|pool|auto|fixed",
                )),
            },
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(crate::GemmError::BadConfig("DGEMM_DISPATCH is not unicode"))
            }
            Err(std::env::VarError::NotPresent) => Ok(DispatchMode::Fixed),
        }
    }
}

/// One dispatch decision: the shape it was made for, the runtime and
/// grid it chose, and the calibrated predictions behind the choice.
/// `measured_ms` is filled in after the call completes, so operators
/// can audit predicted-vs-measured through `pool::status()`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DispatchDecision {
    /// Rows of `op(A)` / C.
    pub m: usize,
    /// Columns of `op(B)` / C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Batch entries sharing B (1 for a plain GEMM).
    pub batch: usize,
    /// The runtime chosen: [`Parallelism::Serial`] or
    /// [`Parallelism::Pool`] with the dispatched degree.
    pub runtime: Parallelism,
    /// mc-row tasks per epoch across the batch (the 1-D grid size).
    pub m_tasks: usize,
    /// Column-wise grid factor handed to the pool (1 = M-bands only).
    pub n_split: usize,
    /// Calibrated predicted serial time, milliseconds.
    pub predicted_serial_ms: f64,
    /// Calibrated predicted pooled time, milliseconds.
    pub predicted_pool_ms: f64,
    /// Wall-clock of the call that ran under this decision.
    pub measured_ms: Option<f64>,
    /// The runtime was forced ([`DispatchMode::Serial`] /
    /// [`DispatchMode::Pool`]) rather than model-chosen.
    pub forced: bool,
}

/// Nominal clock of the paper machine, used only to express the model's
/// cycle counts in milliseconds; the EWMA calibration absorbs any real
/// clock difference.
const NOMINAL_GHZ: f64 = 2.4;

/// EWMA smoothing factor for the measured/predicted ratio.
const EWMA_ALPHA: f64 = 0.3;

/// Calibration ratio clamp: one pathological measurement (a paused VM,
/// a cold cache) must not pin the dispatcher to one runtime forever.
const CAL_MIN: f64 = 0.05;
const CAL_MAX: f64 = 20.0;

/// Hysteresis in the Auto comparison: the pooled prediction must beat
/// serial by this factor before the pool is chosen. Serial is the safe
/// default — the model is a *bound* and the single EWMA ratio cannot
/// capture per-shape error, so near-ties would otherwise oscillate
/// (each runtime's calibration only updates while it is the one
/// running) and small shapes would flap between a 3.3 ms serial walk
/// and a 4.5 ms pooled one. A genuine pool win (compute divided over
/// p workers) clears 15% with room to spare.
const POOL_MARGIN: f64 = 1.15;

/// Per-update bound on how far one measurement can move the EWMA: the
/// incoming measured/raw ratio is clamped to within this factor of the
/// current ratio. A single scheduler stall can measure 20× the model
/// (observed on oversubscribed CI hosts) and would otherwise yank the
/// calibration so far that the dispatcher flips runtimes off one
/// outlier; with the clamp, only a *sustained* shift moves it far.
const RATIO_STEP_MAX: f64 = 2.0;

/// Each recorded call also relaxes the runtime that did *not* run
/// toward the neutral prior of 1.0 by this factor. Without it a
/// noise-inflated ratio is frozen the moment its runtime stops being
/// chosen — the dispatcher gets captured by the other runtime forever,
/// because only the running runtime's calibration ever updates.
const IDLE_DECAY: f64 = 0.05;

const F64_ONE_BITS: u64 = 0x3FF0_0000_0000_0000;

/// Per-runtime measured/predicted EWMA ratios (f64 bits): [serial, pool].
static CALIBRATION: [AtomicU64; 2] = [AtomicU64::new(F64_ONE_BITS), AtomicU64::new(F64_ONE_BITS)];

/// Serializes every test that reads or writes the `DGEMM_*` environment
/// variables: `GemmConfig::auto()` now reads `DGEMM_DISPATCH`, so the
/// parser test here and the `auto()` test in [`crate::gemm`] would race
/// without a shared lock.
#[cfg(test)]
pub(crate) fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn last_cell() -> &'static Mutex<Option<DispatchDecision>> {
    static LAST: OnceLock<Mutex<Option<DispatchDecision>>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

fn cycles_to_ms(cycles: f64) -> f64 {
    cycles / (NOMINAL_GHZ * 1e6)
}

fn calibration(pool: bool) -> f64 {
    f64::from_bits(CALIBRATION[usize::from(pool)].load(Ordering::Relaxed))
}

/// The current per-runtime EWMA calibration ratios `(serial, pool)` —
/// measured/model time, 1.0 = the model is exact. Read by the autotuner
/// so a tuning run can persist what the dispatcher learned
/// (DESIGN.md §14).
#[must_use]
pub fn calibration_ratios() -> (f64, f64) {
    (calibration(false), calibration(true))
}

/// Seed the per-runtime EWMA calibration ratios from a persisted tuning
/// DB, so dispatch predictions are accurate from the first call of a new
/// process instead of re-learning from the 1.0 prior. Non-finite or
/// non-positive values are ignored; accepted values are clamped to the
/// same `[CAL_MIN, CAL_MAX]` range the live EWMA obeys. Subsequent
/// [`record`] updates keep adapting from the seeded point.
pub fn seed_calibration_ratios(serial: f64, pool: f64) {
    for (idx, v) in [(0usize, serial), (1usize, pool)] {
        if v.is_finite() && v > 0.0 {
            CALIBRATION[idx].store(v.clamp(CAL_MIN, CAL_MAX).to_bits(), Ordering::Relaxed);
        }
    }
}

/// The most recent dispatch decision made in this process (`None` until
/// a non-[`DispatchMode::Fixed`] GEMM runs). Surfaced by
/// [`crate::pool::status`] as `last_dispatch`.
#[must_use]
pub fn last_decision() -> Option<DispatchDecision> {
    *last_cell().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Decide runtime and grid geometry for one call.
///
/// `degree` is the configured parallel degree ([`Parallelism::degree`]),
/// `cached` whether a [`crate::prepack::PrepackedB`] will serve B (its
/// pack traffic then costs nothing per call). Must not be called with
/// [`DispatchMode::Fixed`] — Fixed means "no decision".
#[allow(clippy::too_many_arguments)]
pub(crate) fn decide(
    mode: DispatchMode,
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
    blocks: &BlockSizes,
    nr: usize,
    degree: usize,
    cached: bool,
) -> DispatchDecision {
    debug_assert!(mode != DispatchMode::Fixed, "Fixed means no dispatch");
    let (kc, mc, nc) = (blocks.kc.max(1), blocks.mc.max(1), blocks.nc.max(1));
    let degree = degree.max(1);
    let batch = batch.max(1);

    // Grid geometry: split over N only when M-bands alone cannot give
    // every worker two cells to race for (dynamic-scheduling slack).
    let m_tasks = m.div_ceil(mc) * batch;
    let slivers = nc.min(n.max(1)).div_ceil(nr.max(1)).max(1);
    let n_split = if m_tasks >= 2 * degree {
        1
    } else {
        (2 * degree).div_ceil(m_tasks).min(slivers)
    };
    let cells = m_tasks * n_split;

    // Model inputs, in the units of perfmodel::model (flops, words,
    // cycles). A repacks once per jj panel (and once per column chunk
    // on the grid — each cell owns its packed-A copy); B packs once
    // per epoch unless cached; the pool additionally stages C in/out.
    let jj_panels = n.div_ceil(nc);
    let epochs = jj_panels * k.div_ceil(kc);
    let f = 2.0 * (m * n * k * batch) as f64;
    let w_a = (m * k * jj_panels * batch) as f64;
    let w_b = if cached { 0.0 } else { (k * n) as f64 };
    let costs = MachineCosts::xgene_cycles();
    let psi = OverlapFactor::Rational { c: 0.4 };
    let overheads = PoolOverheads::xgene_cycles();
    let serial_cycles = time_bound(f, w_a + w_b, &costs, &psi);
    let w_caller = w_a * n_split as f64 + w_b + 2.0 * (m * n * batch) as f64;
    let pool_cycles = pooled_time_bound(
        f,
        w_caller,
        degree,
        epochs as f64,
        (cells * epochs) as f64,
        &costs,
        &psi,
        &overheads,
    );
    let predicted_serial_ms = cycles_to_ms(serial_cycles) * calibration(false);
    let predicted_pool_ms = cycles_to_ms(pool_cycles) * calibration(true);

    let (runtime, forced) = match mode {
        DispatchMode::Serial => (Parallelism::Serial, true),
        DispatchMode::Pool => (Parallelism::Pool(degree), true),
        // Auto: serial when the pool cannot help (one participant), when
        // the grid is too coarse to occupy the workers (the medium-shape
        // fallback), or unless the calibrated model predicts a pooled
        // win clearing the hysteresis margin.
        DispatchMode::Auto | DispatchMode::Fixed => {
            if degree <= 1
                || cells < 2 * degree
                || predicted_serial_ms <= predicted_pool_ms * POOL_MARGIN
            {
                (Parallelism::Serial, false)
            } else {
                (Parallelism::Pool(degree), false)
            }
        }
    };
    match runtime {
        Parallelism::Serial => RT.dispatch_serial.fetch_add(1, Ordering::Relaxed),
        _ => RT.dispatch_pool.fetch_add(1, Ordering::Relaxed),
    };

    DispatchDecision {
        m,
        n,
        k,
        batch,
        runtime,
        m_tasks,
        n_split,
        predicted_serial_ms,
        predicted_pool_ms,
        measured_ms: None,
        forced,
    }
}

/// Close the loop on a decision: record the measured wall-clock, update
/// the chosen runtime's EWMA calibration ratio, and publish the
/// decision for [`last_decision`] / `pool::status()`.
pub(crate) fn record(mut decision: DispatchDecision, elapsed: Duration) {
    let measured = elapsed.as_secs_f64() * 1e3;
    decision.measured_ms = Some(measured);
    let pool = matches!(decision.runtime, Parallelism::Pool(_));
    let predicted = if pool {
        decision.predicted_pool_ms
    } else {
        decision.predicted_serial_ms
    };
    // Mispredict accounting: the model chose this runtime, yet the
    // measured time exceeded what it predicted for the *other* one —
    // the choice was contradicted by the measurement. Forced decisions
    // carry no prediction claim, so they are excluded.
    let alt_predicted = if pool {
        decision.predicted_serial_ms
    } else {
        decision.predicted_pool_ms
    };
    if !decision.forced
        && measured.is_finite()
        && alt_predicted.is_finite()
        && measured > alt_predicted
    {
        RT.dispatch_mispredicts.fetch_add(1, Ordering::Relaxed);
    }
    let prev = calibration(pool);
    // `predicted` already carries `prev`; divide it back out so the
    // ratio tracks measured/raw-model, not a compounding feedback loop.
    let raw = predicted / prev;
    if raw.is_finite() && raw > 0.0 && measured.is_finite() && measured > 0.0 {
        let ratio = (measured / raw).clamp(prev / RATIO_STEP_MAX, prev * RATIO_STEP_MAX);
        let next = (prev + EWMA_ALPHA * (ratio - prev)).clamp(CAL_MIN, CAL_MAX);
        CALIBRATION[usize::from(pool)].store(next.to_bits(), Ordering::Relaxed);
        // The runtime that did not run cannot defend its ratio, so bleed
        // it toward the prior; a stale estimate then decays within tens
        // of calls instead of capturing the dispatcher permanently.
        let other = usize::from(!pool);
        let other_prev = f64::from_bits(CALIBRATION[other].load(Ordering::Relaxed));
        let other_next = (other_prev + IDLE_DECAY * (1.0 - other_prev)).clamp(CAL_MIN, CAL_MAX);
        CALIBRATION[other].store(other_next.to_bits(), Ordering::Relaxed);
    }
    *last_cell().lock().unwrap_or_else(PoisonError::into_inner) = Some(decision);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(kc: usize, mc: usize, nc: usize) -> BlockSizes {
        BlockSizes::custom(8, 6, kc, mc, nc)
    }

    #[test]
    fn skinny_cached_stream_dispatches_serial() {
        // The PR-4 weight-reuse shape: 8×256×256 with B cached, blocks
        // 64×24×48 — 24 epochs of ~8 µs compute each. The model must
        // see the barrier overhead and keep it serial.
        let b = blocks(64, 24, 48);
        let d = decide(DispatchMode::Auto, 8, 256, 256, 1, &b, 6, 4, true);
        assert_eq!(d.runtime, Parallelism::Serial);
        assert!(!d.forced);
        assert!(d.predicted_pool_ms > d.predicted_serial_ms);
    }

    #[test]
    fn coarse_grid_falls_back_to_serial() {
        // n too narrow to split (one sliver) and a single M-band: the
        // grid cannot occupy 8 workers, so auto must go serial without
        // consulting the model.
        let b = blocks(256, 64, 1792);
        let d = decide(DispatchMode::Auto, 48, 6, 4096, 1, &b, 6, 8, false);
        assert_eq!(d.runtime, Parallelism::Serial);
        assert_eq!(d.n_split, 1, "one sliver cannot split");
        assert!(d.m_tasks * d.n_split < 2 * 8);
    }

    #[test]
    fn skinny_m_gets_a_column_grid() {
        // Few M-bands but a wide N: the dispatcher must manufacture
        // enough cells by splitting columns, and big-k compute must
        // make the pool worth it.
        let b = blocks(512, 24, 1792);
        let d = decide(DispatchMode::Auto, 48, 4096, 4096, 1, &b, 6, 8, false);
        assert_eq!(d.m_tasks, 2);
        assert!(d.n_split >= 8, "2 bands × split must reach 2×8 cells");
        assert_eq!(d.runtime, Parallelism::Pool(8));
    }

    #[test]
    fn square_pooled_shape_keeps_m_bands() {
        // 1024³ on 8 threads: plenty of M-bands, no column split, pool
        // wins in the model.
        let b = blocks(512, 24, 1792);
        let d = decide(DispatchMode::Auto, 1024, 1024, 1024, 1, &b, 6, 8, false);
        assert_eq!(d.n_split, 1);
        assert_eq!(d.runtime, Parallelism::Pool(8));
    }

    #[test]
    fn forced_modes_override_the_model() {
        let b = blocks(64, 24, 48);
        // Forced pool on a shape auto would run serially.
        let d = decide(DispatchMode::Pool, 8, 256, 256, 1, &b, 6, 4, true);
        assert_eq!(d.runtime, Parallelism::Pool(4));
        assert!(d.forced);
        assert!(d.n_split > 1, "forced pool still gets the 2-D grid");
        // Forced serial on a shape auto would pool.
        let b = blocks(512, 24, 1792);
        let d = decide(DispatchMode::Serial, 1024, 1024, 1024, 1, &b, 6, 8, false);
        assert_eq!(d.runtime, Parallelism::Serial);
        assert!(d.forced);
    }

    #[test]
    fn single_thread_never_pools() {
        let b = blocks(512, 24, 1792);
        let d = decide(DispatchMode::Auto, 1024, 1024, 1024, 1, &b, 6, 1, false);
        assert_eq!(d.runtime, Parallelism::Serial);
    }

    #[test]
    fn record_publishes_and_calibrates() {
        let b = blocks(512, 24, 1792);
        let d = decide(DispatchMode::Serial, 64, 64, 64, 1, &b, 6, 1, false);
        let before = calibration(false);
        record(d, Duration::from_micros(500));
        let last = last_decision().expect("decision published");
        assert_eq!((last.m, last.n, last.k), (64, 64, 64));
        let measured = last.measured_ms.expect("measurement recorded");
        assert!((measured - 0.5).abs() < 1e-9);
        let after = calibration(false);
        assert!((CAL_MIN..=CAL_MAX).contains(&after));
        // The ratio moved toward measured/raw (only guaranteed to move
        // when it was not already clamped at the measured ratio).
        assert!(after != before || before == CAL_MIN || before == CAL_MAX);
    }

    #[test]
    fn seeding_clamps_and_rejects_junk() {
        // Other tests (and record()) mutate the global calibration
        // concurrently, so assert only interleaving-independent
        // properties: every write path clamps into [CAL_MIN, CAL_MAX],
        // and junk values never escape that range.
        seed_calibration_ratios(1000.0, 1e-9);
        let (s, p) = calibration_ratios();
        assert!((CAL_MIN..=CAL_MAX).contains(&s));
        assert!((CAL_MIN..=CAL_MAX).contains(&p));
        seed_calibration_ratios(f64::NAN, -3.0);
        let (s, p) = calibration_ratios();
        assert!((CAL_MIN..=CAL_MAX).contains(&s));
        assert!((CAL_MIN..=CAL_MAX).contains(&p));
        // restore the neutral prior for whoever runs next
        seed_calibration_ratios(1.0, 1.0);
    }

    #[test]
    fn env_parsing_matches_contract() {
        // Uses the same single-body pattern as gemm.rs env tests: all
        // DGEMM_DISPATCH cases in one test, since env reads race across
        // parallel test threads. gemm.rs owns testing auto(); this
        // covers only the parser.
        let _env = env_lock();
        std::env::remove_var("DGEMM_DISPATCH");
        assert_eq!(DispatchMode::from_env().unwrap(), DispatchMode::Fixed);
        for (v, want) in [
            ("serial", DispatchMode::Serial),
            ("pool", DispatchMode::Pool),
            ("auto", DispatchMode::Auto),
            ("fixed", DispatchMode::Fixed),
            ("", DispatchMode::Fixed),
            (" auto ", DispatchMode::Auto),
        ] {
            std::env::set_var("DGEMM_DISPATCH", v);
            assert_eq!(DispatchMode::from_env().unwrap(), want, "value {v:?}");
        }
        for bad in ["parallel", "2", "on"] {
            std::env::set_var("DGEMM_DISPATCH", bad);
            assert!(DispatchMode::from_env().is_err(), "accepted {bad:?}");
        }
        std::env::remove_var("DGEMM_DISPATCH");
    }
}
