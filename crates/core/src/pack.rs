//! Packing (Figure 3): rearranging blocks of A and panels of B into the
//! contiguous sliver layouts the register kernel streams through.
//!
//! - **A** (an `mc×kc` block of `op(A)`) is packed into `⌈mc/mr⌉` slivers
//!   of `mr` rows; within a sliver the `mr` elements of each of the `kc`
//!   columns are contiguous. Ragged bottom slivers are zero-padded to
//!   `mr`, so the register kernel never needs an M-edge case.
//! - **B** (a `kc×nc` panel of `op(B)`) is packed into `⌈nc/nr⌉` slivers
//!   of `nr` columns; within a sliver the `nr` elements of each of the
//!   `kc` rows are contiguous, zero-padded to `nr`.
//!
//! Transposition is folded into packing (reading `op(X)` element-wise
//! costs the same strided traversal either way), so the compute layers
//! never see transpose flags.

#![forbid(unsafe_code)]

use crate::matrix::MatrixView;
use crate::scalar::Scalar;
use crate::{GemmError, Transpose};
use std::sync::{Mutex, PoisonError};

/// A packed `mc×kc` block of A in `mr`-sliver layout.
#[derive(Clone, Debug)]
pub struct PackedA<T: Scalar = f64> {
    buf: Vec<T>,
    mc: usize,
    kc: usize,
    mr: usize,
}

impl<T: Scalar> PackedA<T> {
    /// Empty buffer to be filled by [`PackedA::pack`]; reusable across
    /// blocks (no reallocation once grown).
    #[must_use]
    pub fn new(mr: usize) -> Self {
        PackedA {
            buf: Vec::new(),
            mc: 0,
            kc: 0,
            mr,
        }
    }

    /// Pack rows `i0..i0+mc`, columns `k0..k0+kc` of `op(a)`.
    pub fn pack(
        &mut self,
        a: &MatrixView<'_, T>,
        trans: Transpose,
        i0: usize,
        k0: usize,
        mc: usize,
        kc: usize,
    ) {
        // Single telemetry site for A: `try_pack` and every degraded
        // chunk path land here. Bytes are the padded sliver buffer —
        // exactly what the kernels stream.
        let _span = crate::telemetry::span(crate::telemetry::Phase::PackA);
        let mr = self.mr;
        self.mc = mc;
        self.kc = kc;
        let slivers = mc.div_ceil(mr);
        self.buf.clear();
        self.buf.resize(slivers * mr * kc, T::ZERO);
        crate::telemetry::add_packed_a_bytes((self.buf.len() * core::mem::size_of::<T>()) as u64);
        for s in 0..slivers {
            let row_base = s * mr;
            let rows = mr.min(mc - row_base);
            let sliver = &mut self.buf[s * mr * kc..(s + 1) * mr * kc];
            match trans {
                Transpose::No => {
                    // op(A)(i, k) = A(i, k): copy column segments
                    for k in 0..kc {
                        let src = a.col(k0 + k);
                        let dst = &mut sliver[k * mr..k * mr + rows];
                        dst.copy_from_slice(&src[i0 + row_base..i0 + row_base + rows]);
                    }
                }
                Transpose::Yes => {
                    // op(A)(i, k) = A(k, i): strided gather
                    for k in 0..kc {
                        for r in 0..rows {
                            sliver[k * mr + r] = a.get(k0 + k, i0 + row_base + r);
                        }
                    }
                }
            }
            // padding rows are already zero from resize
            if rows < mr {
                for k in 0..kc {
                    for r in rows..mr {
                        sliver[k * mr + r] = T::ZERO;
                    }
                }
            }
        }
    }

    /// Fallible sibling of [`PackedA::pack`]: grows the buffer with
    /// `try_reserve` and reports [`GemmError::AllocFailure`] instead of
    /// aborting the process when memory is exhausted. On error the
    /// buffer is left empty (the allocation, if any, is retained).
    pub fn try_pack(
        &mut self,
        a: &MatrixView<'_, T>,
        trans: Transpose,
        i0: usize,
        k0: usize,
        mc: usize,
        kc: usize,
    ) -> Result<(), GemmError> {
        let needed = mc.div_ceil(self.mr) * self.mr * kc;
        self.buf.clear();
        if crate::faults::fail_alloc() || self.buf.try_reserve(needed).is_err() {
            return Err(GemmError::AllocFailure { what: "packed A" });
        }
        // capacity is in hand: the resize inside `pack` cannot allocate
        self.pack(a, trans, i0, k0, mc, kc);
        Ok(())
    }

    /// Re-aim a recycled buffer at a (possibly different) kernel's
    /// sliver height, keeping the allocation. The buffer is empty until
    /// the next [`PackedA::pack`].
    pub fn retarget(&mut self, mr: usize) {
        self.mr = mr;
        self.mc = 0;
        self.kc = 0;
        self.buf.clear();
    }

    /// The sliver-major packed buffer.
    #[must_use]
    pub fn buf(&self) -> &[T] {
        &self.buf
    }

    /// One `mr×kc` sliver.
    #[must_use]
    pub fn sliver(&self, s: usize) -> &[T] {
        &self.buf[s * self.mr * self.kc..(s + 1) * self.mr * self.kc]
    }

    /// Number of slivers (`⌈mc/mr⌉`).
    #[must_use]
    pub fn slivers(&self) -> usize {
        self.mc.div_ceil(self.mr)
    }

    /// Unpadded rows currently packed.
    #[must_use]
    pub fn mc(&self) -> usize {
        self.mc
    }

    /// Depth currently packed.
    #[must_use]
    pub fn kc(&self) -> usize {
        self.kc
    }

    /// Sliver height.
    #[must_use]
    pub fn mr(&self) -> usize {
        self.mr
    }
}

/// A packed `kc×nc` panel of B in `nr`-sliver layout.
#[derive(Clone, Debug)]
pub struct PackedB<T: Scalar = f64> {
    buf: Vec<T>,
    kc: usize,
    nc: usize,
    nr: usize,
}

impl<T: Scalar> PackedB<T> {
    /// Empty buffer to be filled by [`PackedB::pack`].
    #[must_use]
    pub fn new(nr: usize) -> Self {
        PackedB {
            buf: Vec::new(),
            kc: 0,
            nc: 0,
            nr,
        }
    }

    /// Pack rows `k0..k0+kc`, columns `j0..j0+nc` of `op(b)`.
    pub fn pack(
        &mut self,
        b: &MatrixView<'_, T>,
        trans: Transpose,
        k0: usize,
        j0: usize,
        kc: usize,
        nc: usize,
    ) {
        self.pack_parallel(b, trans, k0, j0, kc, nc, 1);
    }

    /// Like [`PackedB::pack`], but with the slivers packed cooperatively
    /// by up to `threads` OS threads — how OpenBLAS amortizes the B-panel
    /// packing across the team instead of serializing it before layer 3.
    /// Slivers are disjoint regions of the buffer, so the split is safe
    /// by construction.
    ///
    /// This is the single choke point through which *every* B element
    /// enters packed form — `pack`, `try_pack`, and the pre-packed tiles
    /// of [`crate::prepack::PrepackedB`] all funnel here — so the PackB
    /// telemetry span and `packed_b_bytes` counter below account for all
    /// packing work in the process. A pack-cache hit re-uses tiles built
    /// here earlier and therefore records *zero* additional B bytes,
    /// which is exactly how the telemetry exposes the cache's savings.
    #[allow(clippy::too_many_arguments)] // pack site mirrors the BLAS call
    pub fn pack_parallel(
        &mut self,
        b: &MatrixView<'_, T>,
        trans: Transpose,
        k0: usize,
        j0: usize,
        kc: usize,
        nc: usize,
        threads: usize,
    ) {
        // Single telemetry site for B: `pack` delegates here, so serial
        // and cooperative packs record once, on the calling thread.
        let _span = crate::telemetry::span(crate::telemetry::Phase::PackB);
        let nr = self.nr;
        self.kc = kc;
        self.nc = nc;
        let slivers = nc.div_ceil(nr);
        self.buf.clear();
        self.buf.resize(slivers * nr * kc, T::ZERO);
        crate::telemetry::add_packed_b_bytes((self.buf.len() * core::mem::size_of::<T>()) as u64);
        if kc == 0 || slivers == 0 {
            return;
        }

        let pack_one = |s: usize, sliver: &mut [T]| {
            let col_base = s * nr;
            let cols = nr.min(nc - col_base);
            match trans {
                Transpose::No => {
                    // op(B)(k, j) = B(k, j): row-of-sliver gather
                    for c in 0..cols {
                        let src = b.col(j0 + col_base + c);
                        for k in 0..kc {
                            sliver[k * nr + c] = src[k0 + k];
                        }
                    }
                }
                Transpose::Yes => {
                    // op(B)(k, j) = B(j, k): columns of B become rows
                    for k in 0..kc {
                        let src = b.col(k0 + k);
                        let dst = &mut sliver[k * nr..k * nr + cols];
                        dst.copy_from_slice(&src[j0 + col_base..j0 + col_base + cols]);
                    }
                }
            }
        };

        let workers = threads.max(1).min(slivers.max(1));
        if workers <= 1 || slivers < 2 {
            for (s, sliver) in self.buf.chunks_mut(nr * kc).enumerate() {
                pack_one(s, sliver);
            }
            return;
        }
        // Hand each worker a contiguous run of whole slivers. Chunks sit
        // in take-once cells so that when an OS thread cannot be spawned
        // (resource exhaustion, or injected), the caller packs that
        // chunk itself instead of panicking — same output either way.
        let per = slivers.div_ceil(workers);
        type Cell<'c, T> = Mutex<Option<(usize, &'c mut [T])>>;
        let cells: Vec<Cell<'_, T>> = self
            .buf
            .chunks_mut(per * nr * kc)
            .enumerate()
            .map(|(w, chunk)| Mutex::new(Some((w, chunk))))
            .collect();
        let pack_chunk = |w: usize, chunk: &mut [T]| {
            for (i, sliver) in chunk.chunks_mut(nr * kc).enumerate() {
                pack_one(w * per + i, sliver);
            }
        };
        std::thread::scope(|scope| {
            let mut orphaned = Vec::new();
            for cell in &cells {
                let pack_chunk = &pack_chunk;
                let work = move || {
                    let taken = cell.lock().unwrap_or_else(PoisonError::into_inner).take();
                    if let Some((w, chunk)) = taken {
                        pack_chunk(w, chunk);
                    }
                };
                if crate::faults::fail_spawn()
                    || std::thread::Builder::new()
                        .spawn_scoped(scope, work)
                        .is_err()
                {
                    orphaned.push(cell);
                }
            }
            for cell in orphaned {
                let taken = cell.lock().unwrap_or_else(PoisonError::into_inner).take();
                if let Some((w, chunk)) = taken {
                    pack_chunk(w, chunk);
                }
            }
        });
    }

    /// Fallible sibling of [`PackedB::pack`]: grows the buffer with
    /// `try_reserve` and reports [`GemmError::AllocFailure`] instead of
    /// aborting the process when memory is exhausted. On error the
    /// buffer is left empty (the allocation, if any, is retained).
    pub fn try_pack(
        &mut self,
        b: &MatrixView<'_, T>,
        trans: Transpose,
        k0: usize,
        j0: usize,
        kc: usize,
        nc: usize,
    ) -> Result<(), GemmError> {
        let needed = nc.div_ceil(self.nr) * self.nr * kc;
        self.buf.clear();
        if crate::faults::fail_alloc() || self.buf.try_reserve(needed).is_err() {
            return Err(GemmError::AllocFailure { what: "packed B" });
        }
        self.pack(b, trans, k0, j0, kc, nc);
        Ok(())
    }

    /// Adopt an already-laid-out sliver buffer — the *construction-free*
    /// constructor that makes a panel loaded from the on-disk weight
    /// store (DESIGN.md §17) interchangeable with a live pack. The
    /// buffer must be in exactly the layout [`PackedB::pack`] produces
    /// for a `kc×nc` panel at sliver width `nr`: `⌈nc/nr⌉` slivers of
    /// `nr*kc` elements, ragged edge zero-padded. Only the length is
    /// checkable here; content validity is the store's checksum's job.
    ///
    /// Deliberately does **not** record `packed_b_bytes` telemetry: no
    /// element was gathered from a source matrix, which is precisely
    /// the zero-pack-cost property the warm-start bench asserts.
    pub fn from_layout(nr: usize, kc: usize, nc: usize, buf: Vec<T>) -> Result<Self, GemmError> {
        if nr == 0 {
            return Err(GemmError::BadStore("panel sliver width nr is zero"));
        }
        if buf.len() != nc.div_ceil(nr) * nr * kc {
            return Err(GemmError::BadStore(
                "panel buffer length mismatches geometry",
            ));
        }
        Ok(PackedB { buf, kc, nc, nr })
    }

    /// Re-aim a recycled buffer at a (possibly different) kernel's
    /// sliver width, keeping the allocation. The buffer is empty until
    /// the next [`PackedB::pack`].
    pub fn retarget(&mut self, nr: usize) {
        self.nr = nr;
        self.kc = 0;
        self.nc = 0;
        self.buf.clear();
    }

    /// The sliver-major packed buffer.
    #[must_use]
    pub fn buf(&self) -> &[T] {
        &self.buf
    }

    /// One `kc×nr` sliver.
    #[must_use]
    pub fn sliver(&self, s: usize) -> &[T] {
        &self.buf[s * self.nr * self.kc..(s + 1) * self.nr * self.kc]
    }

    /// Number of slivers (`⌈nc/nr⌉`).
    #[must_use]
    pub fn slivers(&self) -> usize {
        self.nc.div_ceil(self.nr)
    }

    /// Depth currently packed.
    #[must_use]
    pub fn kc(&self) -> usize {
        self.kc
    }

    /// Unpadded columns currently packed.
    #[must_use]
    pub fn nc(&self) -> usize {
        self.nc
    }

    /// Sliver width.
    #[must_use]
    pub fn nr(&self) -> usize {
        self.nr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn pack_a_exact_multiple() {
        // 4x3 block, mr = 2 -> 2 slivers of 2x3
        let a = Matrix::from_fn(4, 3, |i, k| (i * 10 + k) as f64);
        let mut p = PackedA::new(2);
        p.pack(&a.view(), Transpose::No, 0, 0, 4, 3);
        assert_eq!(p.slivers(), 2);
        // sliver 0: columns of rows 0-1: [00,10, 01,11, 02,12]
        assert_eq!(p.sliver(0), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        // sliver 1: rows 2-3
        assert_eq!(p.sliver(1), &[20.0, 30.0, 21.0, 31.0, 22.0, 32.0]);
    }

    #[test]
    fn pack_a_ragged_padded_with_zeros() {
        let a = Matrix::from_fn(3, 2, |i, k| (i + 1) as f64 * (k + 1) as f64);
        let mut p = PackedA::new(2);
        p.pack(&a.view(), Transpose::No, 0, 0, 3, 2);
        assert_eq!(p.slivers(), 2);
        // last sliver has row 2 then a zero pad
        assert_eq!(p.sliver(1), &[3.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn pack_a_transposed_equals_pack_of_transpose() {
        let a: Matrix = Matrix::random(7, 9, 1);
        let at = a.transposed();
        let mut p1 = PackedA::new(4);
        let mut p2 = PackedA::new(4);
        // op(A) = A^T is 9x7; take block rows 2..8, cols 1..6
        p1.pack(&a.view(), Transpose::Yes, 2, 1, 6, 5);
        p2.pack(&at.view(), Transpose::No, 2, 1, 6, 5);
        assert_eq!(p1.buf(), p2.buf());
    }

    #[test]
    fn pack_b_exact_multiple() {
        // 3x4 panel, nr = 2 -> 2 slivers of 3x2
        let b = Matrix::from_fn(3, 4, |k, j| (k * 10 + j) as f64);
        let mut p = PackedB::new(2);
        p.pack(&b.view(), Transpose::No, 0, 0, 3, 4);
        assert_eq!(p.slivers(), 2);
        // sliver 0: rows of cols 0-1: [00,01, 10,11, 20,21]
        assert_eq!(p.sliver(0), &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        assert_eq!(p.sliver(1), &[2.0, 3.0, 12.0, 13.0, 22.0, 23.0]);
    }

    #[test]
    fn pack_b_ragged_padded_with_zeros() {
        let b = Matrix::from_fn(2, 3, |k, j| (k * 10 + j + 1) as f64);
        let mut p = PackedB::new(2);
        p.pack(&b.view(), Transpose::No, 0, 0, 2, 3);
        // second sliver holds only column 2, padded
        assert_eq!(p.sliver(1), &[3.0, 0.0, 13.0, 0.0]);
    }

    #[test]
    fn pack_b_transposed_equals_pack_of_transpose() {
        let b: Matrix = Matrix::random(9, 7, 2);
        let bt = b.transposed();
        let mut p1 = PackedB::new(6);
        let mut p2 = PackedB::new(6);
        // op(B) = B^T is 7x9
        p1.pack(&b.view(), Transpose::Yes, 1, 2, 5, 7);
        p2.pack(&bt.view(), Transpose::No, 1, 2, 5, 7);
        assert_eq!(p1.buf(), p2.buf());
    }

    #[test]
    fn pack_offsets_select_the_right_block() {
        let a = Matrix::from_fn(10, 10, |i, k| (i * 100 + k) as f64);
        let mut p = PackedA::new(3);
        p.pack(&a.view(), Transpose::No, 4, 7, 3, 2);
        // single sliver: rows 4-6 of columns 7-8
        assert_eq!(p.sliver(0), &[407.0, 507.0, 607.0, 408.0, 508.0, 608.0]);
    }

    #[test]
    fn buffers_reusable_across_packs() {
        let a: Matrix = Matrix::random(64, 64, 3);
        let mut p = PackedA::new(8);
        p.pack(&a.view(), Transpose::No, 0, 0, 64, 64);
        let first = p.buf().to_vec();
        p.pack(&a.view(), Transpose::No, 0, 0, 32, 16);
        assert_eq!(p.buf().len(), 32 * 16);
        p.pack(&a.view(), Transpose::No, 0, 0, 64, 64);
        assert_eq!(p.buf(), &first[..]);
    }

    #[test]
    fn parallel_pack_matches_serial() {
        let b: Matrix = Matrix::random(100, 90, 5);
        for (kc, nc) in [(64usize, 60usize), (37, 41), (100, 90), (1, 1)] {
            let mut serial = PackedB::new(6);
            serial.pack(&b.view(), Transpose::No, 0, 0, kc, nc);
            for threads in [2usize, 3, 8] {
                let mut par = PackedB::new(6);
                par.pack_parallel(&b.view(), Transpose::No, 0, 0, kc, nc, threads);
                assert_eq!(serial.buf(), par.buf(), "kc={kc} nc={nc} t={threads}");
            }
        }
        // transposed path too
        let mut serial = PackedB::new(4);
        serial.pack(&b.view(), Transpose::Yes, 2, 3, 50, 70);
        let mut par = PackedB::new(4);
        par.pack_parallel(&b.view(), Transpose::Yes, 2, 3, 50, 70, 4);
        assert_eq!(serial.buf(), par.buf());
    }

    #[test]
    fn zero_sized_packs() {
        let a: Matrix = Matrix::zeros(4, 4);
        let mut p = PackedA::new(4);
        p.pack(&a.view(), Transpose::No, 0, 0, 0, 4);
        assert_eq!(p.slivers(), 0);
        let mut q = PackedB::new(4);
        q.pack(&a.view(), Transpose::No, 0, 0, 4, 0);
        assert_eq!(q.slivers(), 0);
    }
}
