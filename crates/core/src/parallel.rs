//! Layer-3 parallelization (Section IV-C, Figure 9).
//!
//! The loop over `mc`-blocks of A (layer 3) is parallelized: every thread
//! packs and multiplies its own `mc×kc` block of A while **all threads
//! share the same packed `kc×nc` panel of B** — the strategy of \[15\] that
//! maximizes locality in the shared L3, where the B panel lives. Threads
//! update disjoint row bands of C, which [`TileMut::split_rows`] expresses
//! safely.
//!
//! This module holds the serial layer-3 walk ([`run_layer3`]), the
//! static band partitioner ([`partition_rows`]) and the legacy
//! spawn-per-GEPP parallel path ([`run_layer3_scoped`]). The default
//! parallel path now lives in [`crate::pool`]: a persistent worker pool
//! that schedules `mc`-blocks dynamically and recycles every packing
//! buffer, with this module's static bands as its even-split fallback.

#![forbid(unsafe_code)]

use crate::matrix::MatrixView;
use crate::microkernel::KernelSet;
use crate::pack::{PackedA, PackedB};
use crate::scalar::Scalar;
use crate::tile::TileMut;
use crate::Transpose;
use std::sync::{Mutex, PoisonError};

/// Split `m` rows into at most `threads` contiguous bands of whole
/// `unit`-row blocks (the register-block height `mr`, so no thread ever
/// splits a sliver), balanced to within one block. Returns
/// `(start, len)` pairs; fewer bands than `threads` when there are fewer
/// blocks.
#[must_use]
pub fn partition_rows(m: usize, unit: usize, threads: usize) -> Vec<(usize, usize)> {
    assert!(unit > 0 && threads > 0);
    let mc = unit;
    let blocks = m.div_ceil(mc);
    let workers = threads.min(blocks).max(1);
    if blocks == 0 {
        return Vec::new();
    }
    let mut bands = Vec::with_capacity(workers);
    let per = blocks / workers;
    let extra = blocks % workers;
    let mut block = 0usize;
    for t in 0..workers {
        let nblocks = per + usize::from(t < extra);
        let start = block * mc;
        let end = ((block + nblocks) * mc).min(m);
        bands.push((start, end - start));
        block += nblocks;
    }
    bands
}

/// Parameters of one (jj, kk) macro-iteration, shared by all bands.
#[derive(Clone, Copy)]
pub struct Layer3Params<'a, T: Scalar = f64, K = crate::microkernel::MicroKernelKind> {
    /// The full stored A operand (packing reads from it directly).
    pub a: &'a MatrixView<'a, T>,
    /// Transposition of A, folded into packing.
    pub transa: Transpose,
    /// Current depth offset `kk` into the columns of `op(A)`.
    pub kk: usize,
    /// Effective depth of this macro-iteration.
    pub kc_eff: usize,
    /// Scaling of the product.
    pub alpha: T,
    /// Register kernel to run.
    pub kernel: K,
    /// L2 block height `mc`.
    pub mc: usize,
}

/// Run layer 3 serially over the whole M dimension on the calling
/// thread. `c_panel` is the `m × nc_eff` band of C this macro-iteration
/// updates; `packed_b` is the shared packed panel of B; `pa` is the
/// caller's (arena-recycled) packed-A buffer, reused across every
/// `mc`-block, macro-iteration and GEMM call so the steady-state serial
/// path allocates nothing.
pub fn run_layer3<T: Scalar, K: KernelSet<T>>(
    params: Layer3Params<'_, T, K>,
    packed_b: &PackedB<T>,
    c_panel: TileMut<'_, T>,
    pa: &mut PackedA<T>,
) {
    if c_panel.rows() == 0 || packed_b.nc() == 0 {
        return;
    }
    band(params, packed_b, 0, c_panel, pa);
}

/// The original spawn-per-GEPP parallel path: one `thread::scope` of up
/// to `threads` threads per macro-iteration, each allocating its own
/// packed-A buffer. Kept as the baseline behind
/// [`crate::pool::Parallelism::Scoped`] so the persistent pool's
/// amortization is measurable against it
/// (`crates/bench/benches/pool_overhead.rs`).
pub fn run_layer3_scoped<T: Scalar, K: KernelSet<T>>(
    params: Layer3Params<'_, T, K>,
    packed_b: &PackedB<T>,
    c_panel: TileMut<'_, T>,
    threads: usize,
) {
    let m = c_panel.rows();
    if m == 0 || packed_b.nc() == 0 {
        return;
    }
    if threads <= 1 || m <= params.mc {
        let mut pa = PackedA::new(params.kernel.mr());
        band(params, packed_b, 0, c_panel, &mut pa);
        return;
    }
    // partition at mr granularity: best balance while keeping whole
    // slivers per thread (each band still walks its rows in mc blocks)
    let bands = partition_rows(m, params.kernel.mr(), threads);
    let tiles = c_panel.split_rows(&bands);
    // Each band lives in a take-once cell: `Builder::spawn_scoped` drops
    // its closure on failure, so the band must not be owned by the
    // closure — whoever takes the cell (spawned thread or the caller
    // below) computes it, and a failed spawn degrades to inline
    // execution instead of losing the band or panicking.
    type Cell<'c, T> = Mutex<Option<(usize, TileMut<'c, T>)>>;
    let cells: Vec<Cell<'_, T>> = bands
        .iter()
        .zip(tiles)
        .map(|(&(start, _), tile)| Mutex::new(Some((start, tile))))
        .collect();
    // Carry the caller's request-trace context onto the scoped band
    // threads so bridged pack/compute phase spans attribute to the
    // request that caused them (DESIGN.md §16), matching the persistent
    // pool's `submit_run` propagation.
    let trace_ctx = crate::trace::capture();
    std::thread::scope(|scope| {
        let mut orphaned = Vec::new();
        for cell in &cells {
            let work = || {
                let _trace = crate::trace::adopt(trace_ctx.clone());
                let taken = cell.lock().unwrap_or_else(PoisonError::into_inner).take();
                if let Some((start, tile)) = taken {
                    let mut pa = PackedA::new(params.kernel.mr());
                    band(params, packed_b, start, tile, &mut pa);
                }
            };
            if crate::faults::fail_spawn()
                || std::thread::Builder::new()
                    .spawn_scoped(scope, work)
                    .is_err()
            {
                orphaned.push(cell);
            }
        }
        let mut pa = PackedA::new(params.kernel.mr());
        for cell in orphaned {
            let taken = cell.lock().unwrap_or_else(PoisonError::into_inner).take();
            if let Some((start, tile)) = taken {
                band(params, packed_b, start, tile, &mut pa);
            }
        }
    });
}

/// Process one contiguous row band: rows `row0 .. row0 + tile.rows()` of
/// `op(A)`, writing into `tile` (whose row 0 corresponds to `row0`).
fn band<T: Scalar, K: KernelSet<T>>(
    params: Layer3Params<'_, T, K>,
    packed_b: &PackedB<T>,
    row0: usize,
    mut tile: TileMut<'_, T>,
    pa: &mut PackedA<T>,
) {
    let rows = tile.rows();
    let nc_eff = packed_b.nc();
    let mut ii = 0usize;
    while ii < rows {
        let mc_eff = params.mc.min(rows - ii);
        crate::telemetry::set_block(row0 + ii);
        pa.pack(
            params.a,
            params.transa,
            row0 + ii,
            params.kk,
            mc_eff,
            params.kc_eff,
        );
        let mut sub = tile.sub_tile(ii, 0, mc_eff, nc_eff);
        crate::gebp::gebp(params.kernel, params.alpha, pa, packed_b, &mut sub);
        ii += mc_eff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_exact_blocks() {
        // 8 blocks of 24 rows over 4 threads: 2 blocks each
        let bands = partition_rows(192, 24, 4);
        assert_eq!(bands, vec![(0, 48), (48, 48), (96, 48), (144, 48)]);
    }

    #[test]
    fn partition_uneven_blocks() {
        // 5 blocks over 2 threads: 3 + 2
        let bands = partition_rows(5 * 16, 16, 2);
        assert_eq!(bands, vec![(0, 48), (48, 32)]);
    }

    #[test]
    fn partition_mr_granularity_balances_well() {
        // 2560 rows at mr=8 over 8 threads: exactly 320 each
        let bands = partition_rows(2560, 8, 8);
        assert_eq!(bands.len(), 8);
        assert!(bands.iter().all(|&(_, l)| l == 320));
    }

    #[test]
    fn partition_ragged_tail() {
        // 100 rows, unit 24 -> blocks of 24,24,24,24,4; 3 threads: 2/2/1
        let bands = partition_rows(100, 24, 3);
        assert_eq!(bands, vec![(0, 48), (48, 48), (96, 4)]);
        let total: usize = bands.iter().map(|b| b.1).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn partition_more_threads_than_blocks() {
        let bands = partition_rows(30, 24, 8);
        assert_eq!(bands.len(), 2);
        assert_eq!(bands, vec![(0, 24), (24, 6)]);
    }

    #[test]
    fn partition_covers_everything_disjointly() {
        for m in [1, 7, 24, 100, 513] {
            for mc in [8, 24, 56] {
                for threads in [1, 2, 3, 8] {
                    let bands = partition_rows(m, mc, threads);
                    let mut next = 0;
                    for (s, l) in bands {
                        assert_eq!(s, next);
                        assert!(l > 0);
                        next = s + l;
                    }
                    assert_eq!(next, m);
                }
            }
        }
    }
}
