//! Deterministic fault injection for the pool runtime.
//!
//! Compiled under the `fault-injection` feature, this module lets tests
//! install a [`FaultPlan`] describing *which* failure to provoke and
//! *when* (the nth occurrence of the corresponding injection site).
//! Four sites exist, matching the failure model in DESIGN.md §10:
//!
//! | site | hook | effect when fired |
//! |------|------|-------------------|
//! | job execution | `panic_in_job` | the GEBP job panics mid-epoch |
//! | job execution | `slow_job_delay` | the job sleeps past the watchdog deadline (pool threads only) |
//! | worker spawn  | `fail_spawn` | `thread::Builder::spawn` is treated as failed |
//! | buffer growth | `fail_alloc` | `try_reserve` is treated as failed |
//! | service queue | `service_stall_delay` | the service scheduler stalls before executing a group |
//! | service batch | `panic_in_service` | a coalesced-batch execution panics at the service layer |
//!
//! A further pseudo-site, `take_worker_kill`, makes a worker exit its
//! loop *after* completing a task — simulating a cleanly dead thread
//! (the respawn path) without losing in-flight work.
//!
//! The two `service_*` sites target the admission-controlled service
//! layer (DESIGN.md §15): a stalled scheduler exercises queued-request
//! deadlines firing while work is pending, and a service-level panic
//! exercises the retry/degrade ladder above the pool's own
//! containment. [`FaultPlan::from_seed`] keeps its historical 5-fault
//! pool mapping (the property suite's seeds stay meaningful);
//! [`FaultPlan::from_seed_service`] sweeps all seven sites and is what
//! the chaos-soak suite drives through `DGEMM_FAULT_SEED`.
//!
//! Occurrence counters are global atomics, so plans are deterministic
//! for a fixed interleaving of calls: "fail the 3rd allocation" always
//! fails the 3rd allocation. Plans can also be derived from a seed
//! ([`FaultPlan::from_seed`]) or from `DGEMM_FAULT_SEED` in the
//! environment ([`install_from_env`]), which is how the property suite
//! explores the fault space reproducibly.
//!
//! With the feature disabled every hook is an inline no-op, so the
//! production pool runtime carries zero overhead (verified by the
//! `pool_steady_state` suite and the `pool_overhead` bench).

#![forbid(unsafe_code)]

#[cfg(feature = "fault-injection")]
pub use enabled::*;

#[cfg(feature = "fault-injection")]
mod enabled {
    use crate::trace::{self, HealthEventKind};
    use crate::util::SplitMix64;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, PoisonError};
    use std::time::Duration;

    /// Fires an injection site on occurrences `nth .. nth + count`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Trigger {
        /// Zero-based occurrence index of the first firing.
        pub nth: u64,
        /// How many consecutive occurrences fire.
        pub count: u64,
    }

    impl Trigger {
        /// Fire exactly once, on occurrence `nth`.
        #[must_use]
        pub fn once(nth: u64) -> Self {
            Trigger { nth, count: 1 }
        }

        pub(crate) fn hits(self, occurrence: u64) -> bool {
            occurrence >= self.nth && occurrence - self.nth < self.count
        }
    }

    /// Which faults to inject and when.
    ///
    /// `None` sites never fire. Install with [`install`]; remove with
    /// [`clear`]. Installing (or clearing) resets all occurrence
    /// counters, so each installed plan observes a fresh numbering.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct FaultPlan {
        /// Panic inside a pool job (a GEBP block run).
        pub worker_panic: Option<Trigger>,
        /// Delay a pool job by the given duration (fires only on pool
        /// worker threads, never on the help-draining caller).
        pub slow_worker: Option<(Trigger, Duration)>,
        /// Report worker-thread spawn as failed.
        pub spawn_fail: Option<Trigger>,
        /// Report buffer allocation (`try_reserve`) as failed.
        pub alloc_fail: Option<Trigger>,
        /// Make a worker exit its loop after finishing a task.
        pub worker_kill: Option<Trigger>,
        /// Stall the service scheduler for the given duration before it
        /// executes a request group (queued deadlines keep ticking).
        pub service_stall: Option<(Trigger, Duration)>,
        /// Panic inside the service layer's batch execution (above the
        /// pool's own containment).
        pub service_panic: Option<Trigger>,
    }

    impl FaultPlan {
        /// Derive a single-fault plan deterministically from a seed.
        ///
        /// The fault kind, occurrence index, and (for slow workers) the
        /// delay all come from a `SplitMix64` stream, so one `u64`
        /// reproduces the exact failure. Used by the property suite to
        /// sweep the fault space.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            let mut rng = SplitMix64::new(seed);
            let nth = rng.next_u64() % 4;
            let mut plan = FaultPlan::default();
            match rng.next_u64() % 5 {
                0 => plan.worker_panic = Some(Trigger::once(nth)),
                1 => {
                    let delay = Duration::from_millis(40 + rng.next_u64() % 40);
                    plan.slow_worker = Some((Trigger::once(nth), delay));
                }
                2 => {
                    plan.spawn_fail = Some(Trigger {
                        nth: 0,
                        count: nth + 1,
                    })
                }
                3 => plan.alloc_fail = Some(Trigger::once(nth)),
                _ => plan.worker_kill = Some(Trigger::once(nth)),
            }
            plan
        }

        /// [`FaultPlan::from_seed`] extended over the service-layer
        /// sites: seeds map onto all seven faults. Used by the
        /// chaos-soak suite so one `DGEMM_FAULT_SEED` sweep covers pool
        /// faults *and* scheduler stalls / service-level panics.
        #[must_use]
        pub fn from_seed_service(seed: u64) -> Self {
            let mut rng = SplitMix64::new(seed);
            let nth = rng.next_u64() % 4;
            let mut plan = FaultPlan::default();
            match rng.next_u64() % 7 {
                0 => plan.worker_panic = Some(Trigger::once(nth)),
                1 => {
                    let delay = Duration::from_millis(40 + rng.next_u64() % 40);
                    plan.slow_worker = Some((Trigger::once(nth), delay));
                }
                2 => {
                    plan.spawn_fail = Some(Trigger {
                        nth: 0,
                        count: nth + 1,
                    })
                }
                3 => plan.alloc_fail = Some(Trigger::once(nth)),
                4 => plan.worker_kill = Some(Trigger::once(nth)),
                5 => {
                    let delay = Duration::from_millis(20 + rng.next_u64() % 60);
                    plan.service_stall = Some((Trigger::once(nth % 2), delay));
                }
                _ => plan.service_panic = Some(Trigger::once(nth)),
            }
            plan
        }
    }

    static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
    static PANIC_HITS: AtomicU64 = AtomicU64::new(0);
    static SLOW_HITS: AtomicU64 = AtomicU64::new(0);
    static SPAWN_HITS: AtomicU64 = AtomicU64::new(0);
    static ALLOC_HITS: AtomicU64 = AtomicU64::new(0);
    static KILL_HITS: AtomicU64 = AtomicU64::new(0);
    static SERVICE_STALL_HITS: AtomicU64 = AtomicU64::new(0);
    static SERVICE_PANIC_HITS: AtomicU64 = AtomicU64::new(0);

    fn reset_counters() {
        PANIC_HITS.store(0, Ordering::SeqCst);
        SLOW_HITS.store(0, Ordering::SeqCst);
        SPAWN_HITS.store(0, Ordering::SeqCst);
        ALLOC_HITS.store(0, Ordering::SeqCst);
        KILL_HITS.store(0, Ordering::SeqCst);
        SERVICE_STALL_HITS.store(0, Ordering::SeqCst);
        SERVICE_PANIC_HITS.store(0, Ordering::SeqCst);
    }

    /// Install a plan, resetting all occurrence counters.
    ///
    /// Fault state is process-global (the pool under test is), so tests
    /// that install plans must serialize against each other.
    pub fn install(plan: FaultPlan) {
        let mut guard = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
        reset_counters();
        *guard = Some(plan);
    }

    /// Remove any installed plan and reset counters.
    pub fn clear() {
        let mut guard = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
        reset_counters();
        *guard = None;
    }

    /// Install the plan seeded by `DGEMM_FAULT_SEED`, if set and valid.
    ///
    /// Returns the seed on success so harnesses can log it.
    pub fn install_from_env() -> Option<u64> {
        let seed: u64 = std::env::var("DGEMM_FAULT_SEED")
            .ok()?
            .trim()
            .parse()
            .ok()?;
        install(FaultPlan::from_seed(seed));
        Some(seed)
    }

    fn plan() -> Option<FaultPlan> {
        *PLAN.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fired(counter: &AtomicU64, trigger: Option<Trigger>) -> bool {
        let Some(trigger) = trigger else { return false };
        let occurrence = counter.fetch_add(1, Ordering::SeqCst);
        trigger.hits(occurrence)
    }

    /// Journal a fired injection site so chaos runs can correlate the
    /// observed failure with its cause (DESIGN.md §16). The trace ID is
    /// whatever request context is current on this thread (0 when the
    /// site fires outside any request, e.g. spawn during pool bring-up).
    fn injected(site: &'static str) {
        trace::health_event(HealthEventKind::FaultInjected, trace::current_id(), 0, site);
    }

    fn on_pool_thread() -> bool {
        std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("dgemm-pool-"))
    }

    /// Injection site: start of a pool job. Panics when the plan says so.
    pub(crate) fn panic_in_job() {
        if fired(&PANIC_HITS, plan().and_then(|p| p.worker_panic)) {
            injected("worker_panic");
            panic!("injected worker panic (dgemm fault-injection)");
        }
    }

    /// Injection site: start of a pool job on a worker thread. Sleeps
    /// past the watchdog deadline when the plan says so.
    pub(crate) fn slow_job_delay() {
        let Some((trigger, delay)) = plan().and_then(|p| p.slow_worker) else {
            return;
        };
        if on_pool_thread() && fired(&SLOW_HITS, Some(trigger)) {
            injected("slow_worker");
            std::thread::sleep(delay);
        }
    }

    /// Injection site: worker-thread spawn. `true` = pretend it failed.
    pub(crate) fn fail_spawn() -> bool {
        let hit = fired(&SPAWN_HITS, plan().and_then(|p| p.spawn_fail));
        if hit {
            injected("spawn_fail");
        }
        hit
    }

    /// Injection site: buffer `try_reserve`. `true` = pretend it failed.
    pub(crate) fn fail_alloc() -> bool {
        let hit = fired(&ALLOC_HITS, plan().and_then(|p| p.alloc_fail));
        if hit {
            injected("alloc_fail");
        }
        hit
    }

    /// Injection site: end of a worker's task loop iteration. `true` =
    /// the worker should exit (simulated death; respawn path).
    pub(crate) fn take_worker_kill() -> bool {
        let hit = fired(&KILL_HITS, plan().and_then(|p| p.worker_kill));
        if hit {
            injected("worker_kill");
        }
        hit
    }

    /// Injection site: service scheduler about to execute a request
    /// group. Sleeps when the plan says so (queue stall).
    pub(crate) fn service_stall_delay() {
        let Some((trigger, delay)) = plan().and_then(|p| p.service_stall) else {
            return;
        };
        if fired(&SERVICE_STALL_HITS, Some(trigger)) {
            injected("service_stall");
            std::thread::sleep(delay);
        }
    }

    /// Injection site: inside the service layer's batch execution.
    /// Panics when the plan says so (contained by the service's own
    /// `catch_unwind`, exercising its retry/degrade ladder).
    pub(crate) fn panic_in_service() {
        if fired(&SERVICE_PANIC_HITS, plan().and_then(|p| p.service_panic)) {
            injected("service_panic");
            panic!("injected service-layer panic (dgemm fault-injection)");
        }
    }
}

#[cfg(not(feature = "fault-injection"))]
mod disabled {
    /// No-op injection hooks: the production build pays nothing.
    #[inline(always)]
    pub(crate) fn panic_in_job() {}
    #[inline(always)]
    pub(crate) fn slow_job_delay() {}
    #[inline(always)]
    pub(crate) fn fail_spawn() -> bool {
        false
    }
    #[inline(always)]
    pub(crate) fn fail_alloc() -> bool {
        false
    }
    #[inline(always)]
    pub(crate) fn take_worker_kill() -> bool {
        false
    }
    #[inline(always)]
    pub(crate) fn service_stall_delay() {}
    #[inline(always)]
    pub(crate) fn panic_in_service() {}
}

#[cfg(not(feature = "fault-injection"))]
pub(crate) use disabled::*;

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn triggers_fire_on_their_window() {
        let t = Trigger { nth: 2, count: 2 };
        assert!(!t.hits(0));
        assert!(!t.hits(1));
        assert!(t.hits(2));
        assert!(t.hits(3));
        assert!(!t.hits(4));
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        for seed in 0..64 {
            let a = format!("{:?}", FaultPlan::from_seed(seed));
            let b = format!("{:?}", FaultPlan::from_seed(seed));
            assert_eq!(a, b);
        }
    }

    fn armed_sites(p: &FaultPlan) -> usize {
        usize::from(p.worker_panic.is_some())
            + usize::from(p.slow_worker.is_some())
            + usize::from(p.spawn_fail.is_some())
            + usize::from(p.alloc_fail.is_some())
            + usize::from(p.worker_kill.is_some())
            + usize::from(p.service_stall.is_some())
            + usize::from(p.service_panic.is_some())
    }

    #[test]
    fn every_seed_selects_exactly_one_fault() {
        for seed in 0..256 {
            let p = FaultPlan::from_seed(seed);
            assert_eq!(armed_sites(&p), 1, "seed {seed}: {p:?}");
            // The pool-only generator never arms a service site.
            assert!(p.service_stall.is_none() && p.service_panic.is_none());
        }
    }

    #[test]
    fn service_seeds_cover_all_sites_exactly_once_each() {
        let mut service_armed = 0usize;
        for seed in 0..256 {
            let p = FaultPlan::from_seed_service(seed);
            assert_eq!(armed_sites(&p), 1, "seed {seed}: {p:?}");
            service_armed +=
                usize::from(p.service_stall.is_some()) + usize::from(p.service_panic.is_some());
        }
        assert!(service_armed > 0, "service sites never drawn in 256 seeds");
    }
}
