//! Property sweep over the seeded fault space (`fault-injection`
//! feature only): for every seed, [`dgemm_core::faults::FaultPlan::from_seed`]
//! arms exactly one failure — worker panic, stalled worker, spawn
//! failure, allocation failure, or worker death — and the pooled GEMM
//! must either return `Ok` with a result **bit-identical** to the
//! serial oracle, or a typed [`dgemm_core::GemmError`]. Never a hang,
//! an abort, or silent corruption. After the plan is cleared the same
//! pool must immediately serve an exact result again.
//!
//! A seed can also be supplied externally (`DGEMM_FAULT_SEED=n cargo
//! test -p dgemm-core --features fault-injection seeded_run_from_env`)
//! to replay one failure in isolation.

#![cfg(feature = "fault-injection")]

use std::sync::Mutex;
use std::time::Duration;

use dgemm_core::faults::{self, FaultPlan};
use dgemm_core::gemm::{try_gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::Parallelism;
use dgemm_core::{GemmError, Transpose};

static LOCK: Mutex<()> = Mutex::new(());

const M: usize = 97;
const N: usize = 54;
const K: usize = 50;

fn cfg(par: Parallelism) -> GemmConfig {
    GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1)
        .with_blocks(24, 16, 18)
        .with_parallelism(par)
        // Short watchdog so seeded slow-worker stalls (40-80 ms) trip it
        // instead of merely slowing the suite down.
        .with_epoch_timeout(Some(Duration::from_millis(20)))
}

fn run(par: Parallelism, c: &mut Matrix) -> Result<(), GemmError> {
    let a = Matrix::random(M, K, 11);
    let b = Matrix::random(K, N, 12);
    try_gemm(
        Transpose::No,
        Transpose::No,
        1.25,
        &a.view(),
        &b.view(),
        -0.5,
        &mut c.view_mut(),
        &cfg(par),
    )
}

fn check_seed(seed: u64, want: &Matrix) {
    faults::install(FaultPlan::from_seed(seed));
    let mut c = Matrix::random(M, N, 13);
    let result = run(Parallelism::Pool(4), &mut c);
    faults::clear();

    match result {
        // Contained fault (or one that never fired): the result must be
        // indistinguishable from the serial path.
        Ok(()) => assert_eq!(
            c.max_abs_diff(want),
            0.0,
            "seed {seed}: Ok result must be bit-identical to the serial oracle"
        ),
        // The watchdog fired, but every missing block was recomputed
        // from C before the error was reported — still exact.
        Err(GemmError::EpochTimeout { .. }) => assert_eq!(
            c.max_abs_diff(want),
            0.0,
            "seed {seed}: timeout recovery must leave C exact"
        ),
        // Any other failure must at least be a typed, displayable error
        // (the process neither hung nor aborted to get here).
        Err(e) => {
            let _ = e.to_string();
        }
    }

    // The pool must come back healthy: an immediate healthy call on the
    // same process-global pool is exact.
    let mut c = Matrix::random(M, N, 13);
    run(Parallelism::Pool(4), &mut c).unwrap_or_else(|e| {
        panic!("seed {seed}: healthy call after clearing the plan failed: {e}")
    });
    assert_eq!(
        c.max_abs_diff(want),
        0.0,
        "seed {seed}: pool must serve exact results once the fault is cleared"
    );
}

#[test]
fn every_seeded_fault_is_contained_or_typed() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    let mut want = Matrix::random(M, N, 13);
    run(Parallelism::Serial, &mut want).expect("serial oracle");

    for seed in 0..48 {
        check_seed(seed, &want);
    }
    // Drain any worker still sleeping from a slow-worker seed so later
    // suites see a quiet pool.
    std::thread::sleep(Duration::from_millis(100));
}

#[test]
fn seeded_run_from_env() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    let Some(seed) = faults::install_from_env() else {
        return; // DGEMM_FAULT_SEED not set: nothing to replay
    };
    faults::clear();
    let mut want = Matrix::random(M, N, 13);
    run(Parallelism::Serial, &mut want).expect("serial oracle");
    check_seed(seed, &want);
}
