//! Property-based tests of the DGEMM stack: for arbitrary shapes,
//! scalars, transposes, kernels and (deliberately hostile) block sizes,
//! the blocked implementation must match the naive oracle; packing must
//! be a faithful relayout; algebraic identities of GEMM must hold.

use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pack::{PackedA, PackedB};
use dgemm_core::reference::naive_gemm;
use dgemm_core::util::gemm_tolerance;
use dgemm_core::{Parallelism, Transpose};
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = MicroKernelKind> {
    prop::sample::select(MicroKernelKind::ALL.to_vec())
}

fn transpose_strategy() -> impl Strategy<Value = Transpose> {
    prop::bool::ANY.prop_map(|b| if b { Transpose::Yes } else { Transpose::No })
}

fn dims(t: Transpose, rows: usize, cols: usize) -> (usize, usize) {
    match t {
        Transpose::No => (rows, cols),
        Transpose::Yes => (cols, rows),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The central contract: blocked == naive for any configuration.
    #[test]
    fn gemm_matches_oracle(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        kind in kernel_strategy(),
        ta in transpose_strategy(),
        tb in transpose_strategy(),
        alpha in -2.0f64..2.0,
        beta in prop::sample::select(vec![0.0f64, 1.0, -0.75]),
        threads in 1usize..4,
        kc in 3usize..40,
        mc_mult in 1usize..4,
        nc_mult in 1usize..5,
        seed in 0u64..1000,
    ) {
        let (ar, ac) = dims(ta, m, k);
        let (br, bc) = dims(tb, k, n);
        let a = Matrix::random(ar, ac, seed);
        let b = Matrix::random(br, bc, seed + 1);
        let c0 = Matrix::random(m, n, seed + 2);

        let mut want = c0.clone();
        naive_gemm(ta, tb, alpha, &a.view(), &b.view(), beta, &mut want.view_mut());

        let mut got = c0.clone();
        let mut cfg = GemmConfig::for_kernel(kind, 1);
        cfg.parallelism = Parallelism::from_threads(threads);
        cfg = cfg.with_blocks(kc, kind.mr() * mc_mult, kind.nr() * nc_mult);
        gemm(ta, tb, alpha, &a.view(), &b.view(), beta, &mut got.view_mut(), &cfg);

        let err = got.max_abs_diff(&want);
        prop_assert!(err < gemm_tolerance(k, 4.0), "err {err}");
    }

    /// Packing A is a relayout: every source element appears at its
    /// sliver position, padding is zero.
    #[test]
    fn pack_a_is_faithful(
        mc in 1usize..40,
        kc in 1usize..40,
        mr in prop::sample::select(vec![2usize, 4, 5, 8]),
        seed in 0u64..1000,
    ) {
        let a: Matrix = Matrix::random(mc, kc, seed);
        let mut p = PackedA::new(mr);
        p.pack(&a.view(), Transpose::No, 0, 0, mc, kc);
        for s in 0..p.slivers() {
            let sliver = p.sliver(s);
            for k in 0..kc {
                for r in 0..mr {
                    let i = s * mr + r;
                    let got = sliver[k * mr + r];
                    if i < mc {
                        prop_assert_eq!(got, a.get(i, k));
                    } else {
                        prop_assert_eq!(got, 0.0);
                    }
                }
            }
        }
    }

    /// Packing B likewise.
    #[test]
    fn pack_b_is_faithful(
        kc in 1usize..40,
        nc in 1usize..40,
        nr in prop::sample::select(vec![2usize, 4, 5, 6]),
        seed in 0u64..1000,
    ) {
        let b: Matrix = Matrix::random(kc, nc, seed);
        let mut p = PackedB::new(nr);
        p.pack(&b.view(), Transpose::No, 0, 0, kc, nc);
        for s in 0..p.slivers() {
            let sliver = p.sliver(s);
            for k in 0..kc {
                for c in 0..nr {
                    let j = s * nr + c;
                    let got = sliver[k * nr + c];
                    if j < nc {
                        prop_assert_eq!(got, b.get(k, j));
                    } else {
                        prop_assert_eq!(got, 0.0);
                    }
                }
            }
        }
    }

    /// α-linearity: gemm(α, A, B, 0, C) == α · gemm(1, A, B, 0, C).
    #[test]
    fn gemm_alpha_linear(
        n in 1usize..32,
        alpha in -3.0f64..3.0,
        seed in 0u64..1000,
    ) {
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let cfg = GemmConfig::default().with_blocks(16, 16, 12);
        let mut c1 = Matrix::zeros(n, n);
        gemm(Transpose::No, Transpose::No, alpha, &a.view(), &b.view(), 0.0, &mut c1.view_mut(), &cfg);
        let mut c2 = Matrix::zeros(n, n);
        gemm(Transpose::No, Transpose::No, 1.0, &a.view(), &b.view(), 0.0, &mut c2.view_mut(), &cfg);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((c1.get(i, j) - alpha * c2.get(i, j)).abs() < 1e-10);
            }
        }
    }

    /// Transpose identity: (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn gemm_transpose_identity(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let cfg = GemmConfig::default().with_blocks(8, 8, 6);
        let mut ab = Matrix::zeros(m, n);
        gemm(Transpose::No, Transpose::No, 1.0, &a.view(), &b.view(), 0.0, &mut ab.view_mut(), &cfg);
        // Bᵀ·Aᵀ computed with the transpose flags
        let mut btat = Matrix::zeros(n, m);
        gemm(Transpose::Yes, Transpose::Yes, 1.0, &b.view(), &a.view(), 0.0, &mut btat.view_mut(), &cfg);
        let tol = gemm_tolerance(k, 1.0);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((ab.get(i, j) - btat.get(j, i)).abs() < tol);
            }
        }
    }

    /// β-only path: α = 0 (or k = 0) never reads A/B garbage and scales
    /// C exactly.
    #[test]
    fn gemm_beta_only(
        m in 1usize..24,
        n in 1usize..24,
        beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let a = Matrix::random(m, 7, seed);
        let b = Matrix::random(7, n, seed + 1);
        let c0 = Matrix::random(m, n, seed + 2);
        let mut c = c0.clone();
        gemm(
            Transpose::No,
            Transpose::No,
            0.0,
            &a.view(),
            &b.view(),
            beta,
            &mut c.view_mut(),
            &GemmConfig::default(),
        );
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(c.get(i, j), beta * c0.get(i, j));
            }
        }
    }
}
