//! Integration tests for the closed-loop autotuner (DESIGN.md §14):
//! the persistent tuning DB round-trips through disk, corrupt or
//! stale-version DBs degrade silently to the analytic defaults, a
//! populated DB drives `GemmConfig::auto()`'s blocking selection, and a
//! tuned blocking stays bitwise identical across every runtime.
//!
//! Environment-touching tests in this binary serialize on a local lock
//! (each one restores the variables it sets); the pure-DB and
//! bit-identity tests don't need it.

use dgemm_core::autotune::{self, AutotuneMode, HostCalibration, TuneDb, TuneEntry, TuneOptions};
use dgemm_core::dispatch::DispatchMode;
use dgemm_core::gemm::{try_gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::reference::naive_gemm;
use dgemm_core::util::gemm_tolerance;
use dgemm_core::{Parallelism, Transpose};
use perfmodel::tuning::ShapeClass;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Serialize the tests that mutate `DGEMM_*` environment variables.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dgemm-autotune-it-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

fn entry_for(class: &ShapeClass, kc: usize, mc: usize, nc: usize) -> TuneEntry {
    TuneEntry {
        cpu: autotune::cpu_id().to_owned(),
        dtype: "f64".to_owned(),
        class: class.label(),
        mr: 8,
        nr: 6,
        kc,
        mc,
        nc,
        runtime: "serial".to_owned(),
        threads: 1,
        gflops: 10.0,
        untuned_gflops: 9.0,
        achieved_vs_bound: 0.5,
        candidates: 7,
        tuned_at: 1_700_000_000,
        version: autotune::LIB_VERSION.to_owned(),
    }
}

/// Oracle check: `cfg` computes the right answer for a modest problem.
fn assert_correct(cfg: &GemmConfig, m: usize, n: usize, k: usize) {
    let a = Matrix::random(m, k, 11);
    let b = Matrix::random(k, n, 12);
    let mut want = Matrix::zeros(m, n);
    naive_gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &b.view(),
        0.0,
        &mut want.view_mut(),
    );
    let mut got = Matrix::zeros(m, n);
    try_gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &b.view(),
        0.0,
        &mut got.view_mut(),
        cfg,
    )
    .expect("gemm must succeed");
    let err = got.max_abs_diff(&want);
    let tol = gemm_tolerance(k, 1.0);
    assert!(err <= tol, "err {err} > tol {tol}");
}

#[test]
fn db_round_trips_through_disk() {
    let path = scratch("roundtrip.json");
    let _ = std::fs::remove_file(&path);
    let mut db = TuneDb::default();
    let class = ShapeClass::of(512, 512, 512);
    db.upsert(entry_for(&class, 384, 48, 960));
    db.upsert_host(HostCalibration {
        cpu: autotune::cpu_id().to_owned(),
        serial_cal: 1.5,
        pool_cal: 0.75,
    });
    autotune::store_db(&path, &db).expect("store");
    autotune::invalidate_db_cache();
    let back = autotune::load_db(&path);
    assert_eq!(back, db);
    // and again purely through the in-memory cache
    assert_eq!(autotune::load_db(&path), db);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_and_stale_dbs_fall_back_without_panic() {
    let _guard = env_lock();
    for (name, contents) in [
        ("corrupt.json", "{\"schema\": \"dgemm-tu"),
        ("binary.json", "\u{0}\u{1}\u{2}junk"),
        (
            "stale.json",
            "{\"schema\":\"dgemm-tune-v0\",\"hosts\":[],\"entries\":[]}",
        ),
    ] {
        let path = scratch(name);
        std::fs::write(&path, contents).expect("write scratch db");
        autotune::invalidate_db_cache();
        std::env::set_var("DGEMM_TUNE_DB", &path);
        std::env::set_var("DGEMM_AUTOTUNE", "read");
        std::env::remove_var("DGEMM_NUM_THREADS");
        // auto() parses the env fine (the path is well-formed), the DB
        // contents silently degrade to the analytic blocking …
        let cfg = GemmConfig::auto().expect("auto with unreadable DB");
        assert_eq!(cfg.autotune, AutotuneMode::Read);
        let tuned = autotune::tuned_f64(&cfg, 96, 96, 96);
        assert_eq!(tuned.blocks.label(), cfg.blocks.label(), "{name}");
        // … and GEMM still computes the right answer.
        assert_correct(&cfg, 96, 64, 48);
        let _ = std::fs::remove_file(&path);
    }
    std::env::remove_var("DGEMM_TUNE_DB");
    std::env::remove_var("DGEMM_AUTOTUNE");
}

#[test]
fn malformed_autotune_env_is_a_typed_error() {
    let _guard = env_lock();
    std::env::remove_var("DGEMM_NUM_THREADS");
    std::env::set_var("DGEMM_AUTOTUNE", "sometimes");
    assert!(GemmConfig::auto().is_err());
    std::env::set_var("DGEMM_AUTOTUNE", "read");
    std::env::set_var("DGEMM_TUNE_DB", "");
    assert!(GemmConfig::auto().is_err());
    std::env::set_var("DGEMM_TUNE_DB", "/tmp/fine.json");
    std::env::set_var("DGEMM_AUTOTUNE_BUDGET", "zero");
    assert!(GemmConfig::auto().is_err());
    std::env::remove_var("DGEMM_AUTOTUNE_BUDGET");
    std::env::set_var("DGEMM_TUNE_MAX_AGE_DAYS", "fortnight");
    assert!(GemmConfig::auto().is_err());
    std::env::remove_var("DGEMM_TUNE_MAX_AGE_DAYS");
    assert!(GemmConfig::auto().is_ok());
    std::env::remove_var("DGEMM_AUTOTUNE");
    std::env::remove_var("DGEMM_TUNE_DB");
}

#[test]
fn populated_db_drives_auto_config_selection() {
    let _guard = env_lock();
    let path = scratch("selected.json");
    let _ = std::fs::remove_file(&path);
    let class = ShapeClass::of(200, 200, 200);
    // A distinctive (but valid) blocking no analytic solve produces.
    let mut db = TuneDb::default();
    db.upsert(entry_for(&class, 96, 40, 126));
    autotune::store_db(&path, &db).expect("store");
    autotune::invalidate_db_cache();

    std::env::set_var("DGEMM_TUNE_DB", &path);
    std::env::set_var("DGEMM_AUTOTUNE", "read");
    std::env::remove_var("DGEMM_NUM_THREADS");
    let cfg = GemmConfig::auto().expect("auto");
    // The stored winner is selected for shapes in its class …
    let tuned = autotune::tuned_f64(&cfg, 200, 200, 200);
    assert_eq!(tuned.blocks.label(), "8x6x96x40x126");
    assert_eq!(tuned.kernel, MicroKernelKind::Mk8x6);
    assert_eq!(
        tuned.parallelism,
        Parallelism::Serial,
        "stored runtime applied"
    );
    // … but an explicit dispatch mode keeps runtime authority.
    let dispatched = cfg.with_dispatch(DispatchMode::Auto);
    let tuned2 = autotune::tuned_f64(&dispatched, 200, 200, 200);
    assert_eq!(tuned2.blocks.label(), "8x6x96x40x126");
    assert_eq!(tuned2.parallelism, cfg.parallelism);
    // … other classes fall through to the analytic blocking.
    let other = autotune::tuned_f64(&cfg, 2500, 2500, 2500);
    assert_eq!(other.blocks.label(), cfg.blocks.label());
    // And the tuned path computes the right answer end to end.
    assert_correct(&cfg, 200, 200, 200);
    std::env::remove_var("DGEMM_TUNE_DB");
    std::env::remove_var("DGEMM_AUTOTUNE");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn full_mode_tunes_persists_and_rereads() {
    let _guard = env_lock();
    let path = scratch("full-loop.json");
    let _ = std::fs::remove_file(&path);
    autotune::invalidate_db_cache();
    std::env::set_var("DGEMM_TUNE_DB", &path);
    // Drive the sweep through the public API (explicitly, with a tiny
    // budget — the transparent Full-mode path shares this code and is
    // exercised per-process by the CI smoke job).
    let class = ShapeClass::of(64, 64, 64);
    let opts = TuneOptions { budget: 3, reps: 1 };
    let entry = autotune::tune_and_store_f64(&path, MicroKernelKind::Mk8x6, 1, class, &opts)
        .expect("sweep produced a winner");
    assert!(entry.candidates <= 3);
    assert!(entry.gflops >= entry.untuned_gflops - 1e-12);
    // The DB on disk now feeds a fresh Read-mode config.
    autotune::invalidate_db_cache();
    std::env::set_var("DGEMM_AUTOTUNE", "read");
    std::env::remove_var("DGEMM_NUM_THREADS");
    let cfg = GemmConfig::auto().expect("auto");
    let tuned = autotune::tuned_f64(&cfg, 64, 64, 64);
    assert_eq!(tuned.blocks.label(), entry.blocks().label());
    // Calibration ratios were persisted alongside the winner.
    let db = autotune::load_db(&path);
    assert!(db.host(autotune::cpu_id()).is_some());
    std::env::remove_var("DGEMM_TUNE_DB");
    std::env::remove_var("DGEMM_AUTOTUNE");
    let _ = std::fs::remove_file(&path);
}

/// The first Full-mode miss of a shape class must not stall the caller
/// behind a multi-second sweep: it serves the analytic config
/// immediately and runs the sweep on a warm-up thread; once the winner
/// lands in the DB, subsequent calls of the class serve it.
#[test]
fn full_mode_first_miss_tunes_in_the_background() {
    let _guard = env_lock();
    let path = scratch("background.json");
    let _ = std::fs::remove_file(&path);
    autotune::invalidate_db_cache();
    std::env::set_var("DGEMM_TUNE_DB", &path);
    std::env::set_var("DGEMM_AUTOTUNE_BUDGET", "2");
    std::env::set_var("DGEMM_AUTOTUNE_REPS", "1");
    let mut cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1);
    cfg.autotune = AutotuneMode::Full;
    let first = autotune::tuned_f64(&cfg, 64, 64, 64);
    // Served analytically, unchanged: the sweep is off-thread.
    assert_eq!(first.blocks.label(), cfg.blocks.label());
    assert_eq!(first.kernel, cfg.kernel);
    autotune::wait_for_background_tuning();
    autotune::invalidate_db_cache();
    let class = ShapeClass::of(64, 64, 64);
    let entry = autotune::load_db(&path)
        .find(autotune::cpu_id(), "f64", &class.label())
        .cloned()
        .expect("background sweep persisted a winner");
    assert_eq!(entry.version, autotune::LIB_VERSION);
    assert!(entry.tuned_at > 0, "sweep stamps its wall-clock time");
    // The next call of the class picks the stored winner up.
    let second = autotune::tuned_f64(&cfg, 64, 64, 64);
    assert_eq!(second.blocks.label(), entry.blocks().label());
    std::env::remove_var("DGEMM_TUNE_DB");
    std::env::remove_var("DGEMM_AUTOTUNE_BUDGET");
    std::env::remove_var("DGEMM_AUTOTUNE_REPS");
    let _ = std::fs::remove_file(&path);
}

/// Entries older than `DGEMM_TUNE_MAX_AGE_DAYS` are a *miss* under
/// Full mode — the analytic config serves while a background sweep
/// re-tunes and re-stamps the class — but Read mode still applies the
/// stale winner (Read never measures; a dated winner beats the
/// untuned default).
#[test]
fn over_age_entries_retune_under_full_but_apply_under_read() {
    let _guard = env_lock();
    let path = scratch("age-expiry.json");
    let _ = std::fs::remove_file(&path);
    // A class no other Full-mode test touches: the per-process
    // first-attempt gate must still be open for it here.
    let class = ShapeClass::of(32, 32, 32);
    let stale = entry_for(&class, 96, 40, 126); // tuned_at ≈ Nov 2023
    let mut db = TuneDb::default();
    db.upsert(stale.clone());
    autotune::store_db(&path, &db).expect("store");
    autotune::invalidate_db_cache();
    std::env::set_var("DGEMM_TUNE_DB", &path);
    std::env::set_var("DGEMM_TUNE_MAX_AGE_DAYS", "30");
    std::env::set_var("DGEMM_AUTOTUNE_BUDGET", "2");
    std::env::set_var("DGEMM_AUTOTUNE_REPS", "1");

    // Read mode: the over-age entry still applies.
    let mut cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1);
    cfg.autotune = AutotuneMode::Read;
    let read = autotune::tuned_f64(&cfg, 32, 32, 32);
    assert_eq!(read.blocks.label(), "8x6x96x40x126");

    // Full mode: expired ⇒ miss ⇒ analytic now, re-tune off-thread.
    cfg.autotune = AutotuneMode::Full;
    let first = autotune::tuned_f64(&cfg, 32, 32, 32);
    assert_eq!(
        first.blocks.label(),
        cfg.blocks.label(),
        "analytic config serves while the re-tune runs"
    );
    autotune::wait_for_background_tuning();
    autotune::invalidate_db_cache();
    let entry = autotune::load_db(&path)
        .find(autotune::cpu_id(), "f64", &class.label())
        .cloned()
        .expect("re-tune persisted a fresh winner");
    assert!(entry.tuned_at > stale.tuned_at, "tuned_at was re-stamped");
    // The refreshed winner is inside the age window: the next Full-mode
    // call serves it instead of the analytic fallback.
    let second = autotune::tuned_f64(&cfg, 32, 32, 32);
    assert_eq!(second.blocks.label(), entry.blocks().label());

    std::env::remove_var("DGEMM_TUNE_DB");
    std::env::remove_var("DGEMM_TUNE_MAX_AGE_DAYS");
    std::env::remove_var("DGEMM_AUTOTUNE_BUDGET");
    std::env::remove_var("DGEMM_AUTOTUNE_REPS");
    let _ = std::fs::remove_file(&path);
}

/// A tuned blocking must preserve the bitwise cross-runtime contract:
/// for one fixed `(kernel, blocking)`, Serial, Scoped and Pool runs are
/// bit-identical (the `(jj, kk)` epoch walk fixes accumulation order).
#[test]
fn tuned_blocking_is_bitwise_identical_across_runtimes() {
    let (m, n, k) = (150, 90, 130);
    let a = Matrix::random(m, k, 21);
    let b = Matrix::random(k, n, 22);
    let c0: Matrix<f64> = Matrix::random(m, n, 23);
    // a "tuned" blocking the analytic solver would not pick
    let base = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1).with_blocks(96, 40, 126);
    let mut reference: Option<Matrix<f64>> = None;
    for runtime in [
        Parallelism::Serial,
        Parallelism::Scoped(3),
        Parallelism::Pool(4),
    ] {
        let cfg = base.with_parallelism(runtime);
        let mut got = c0.clone();
        try_gemm(
            Transpose::No,
            Transpose::No,
            1.25,
            &a.view(),
            &b.view(),
            -0.5,
            &mut got.view_mut(),
            &cfg,
        )
        .expect("gemm");
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                assert_eq!(
                    want.max_abs_diff(&got),
                    0.0,
                    "runtime {runtime:?} diverged bitwise on the tuned blocking"
                );
            }
        }
    }
}
