//! Property tests for the telemetry layer: counters must be *exact*,
//! not approximate. FLOPs retired must equal `2·m·n·k` for every
//! runtime, and packed-byte counters must reproduce the padded-buffer
//! arithmetic of `pack.rs` (`ceil(mc/mr)·mr·kc` slivers of A,
//! `ceil(nc/nr)·nr·kc` slivers of B) summed over the exact macro-loop
//! decomposition each runtime performs.
//!
//! Telemetry counters are process-global, so every test serializes on
//! one lock and starts from `telemetry::reset()`.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::Parallelism;
use dgemm_core::telemetry;
use dgemm_core::Transpose;

/// Serialize tests touching the global counters; reset before each.
fn lock_and_reset() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    telemetry::reset();
    guard
}

const KIND: MicroKernelKind = MicroKernelKind::Mk8x6;
const MR: usize = 8;
const NR: usize = 6;
const KC: usize = 20;
const MC: usize = 24;
const NC: usize = 16;

fn cfg(par: Parallelism) -> GemmConfig {
    GemmConfig::for_kernel(KIND, 1)
        .with_blocks(KC, MC, NC)
        .with_parallelism(par)
}

fn run(par: Parallelism, m: usize, n: usize, k: usize) {
    let a = Matrix::random(m, k, 11);
    let b = Matrix::random(k, n, 12);
    let mut c = Matrix::zeros(m, n);
    gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &b.view(),
        0.0,
        &mut c.view_mut(),
        &cfg(par),
    );
}

/// Expected exact counters for one GEMM, replicating the macro loops:
/// `jj` over `nc` panels, `kk` over `kc` depths, then `mc` blocks of A
/// walked within each row band (`bands` is `[(0, m)]` for the serial
/// and pooled decompositions, `partition_rows` for the scoped one).
/// Returns `(flops, a_bytes, b_bytes, blocks)`.
fn expected(n: usize, k: usize, bands: &[(usize, usize)]) -> (u64, u64, u64, u64) {
    let w = core::mem::size_of::<f64>() as u64;
    let (mut flops, mut a_bytes, mut b_bytes, mut blocks) = (0u64, 0u64, 0u64, 0u64);
    let mut jj = 0;
    while jj < n {
        let nc_eff = NC.min(n - jj);
        let mut kk = 0;
        while kk < k {
            let kc_eff = KC.min(k - kk);
            b_bytes += (nc_eff.div_ceil(NR) * NR * kc_eff) as u64 * w;
            for &(_, len) in bands {
                let mut ii = 0;
                while ii < len {
                    let mc_eff = MC.min(len - ii);
                    a_bytes += (mc_eff.div_ceil(MR) * MR * kc_eff) as u64 * w;
                    flops += 2 * (mc_eff * nc_eff * kc_eff) as u64;
                    blocks += 1;
                    ii += mc_eff;
                }
            }
            kk += kc_eff;
        }
        jj += nc_eff;
    }
    (flops, a_bytes, b_bytes, blocks)
}

#[cfg(feature = "telemetry")]
mod enabled {
    use super::*;
    use dgemm_core::parallel::partition_rows;
    use dgemm_core::telemetry::{BlockSizes, GemmReport, Phase, TelemetryMode};

    fn check(par: Parallelism, bands: &[(usize, usize)], m: usize, n: usize, k: usize) {
        run(par, m, n, k);
        let snap = telemetry::snapshot();
        let (flops, a_bytes, b_bytes, blocks) = expected(n, k, bands);
        assert_eq!(
            flops,
            2 * (m * n * k) as u64,
            "band decomposition must cover mnk"
        );
        assert_eq!(snap.total_flops(), flops, "{par:?} {m}x{n}x{k}: flops");
        assert_eq!(
            snap.total_packed_a_bytes(),
            a_bytes,
            "{par:?} {m}x{n}x{k}: packed-A bytes"
        );
        assert_eq!(
            snap.total_packed_b_bytes(),
            b_bytes,
            "{par:?} {m}x{n}x{k}: packed-B bytes"
        );
        assert_eq!(
            snap.total_blocks(),
            blocks,
            "{par:?} {m}x{n}x{k}: gebp blocks"
        );
    }

    #[test]
    fn serial_counters_are_exact() {
        for (m, n, k) in [
            (64, 48, 40),
            (130, 70, 50),
            (13, 7, 9),
            (24, 16, 20),
            (1, 1, 1),
        ] {
            let _g = lock_and_reset();
            check(Parallelism::Serial, &[(0, m)], m, n, k);
        }
    }

    #[test]
    fn scoped_counters_are_exact() {
        // m > mc so run_layer3_scoped actually partitions into bands.
        for (m, n, k) in [(130, 70, 50), (96, 33, 41)] {
            let _g = lock_and_reset();
            let bands = partition_rows(m, MR, 3);
            check(Parallelism::Scoped(3), &bands, m, n, k);
        }
    }

    #[test]
    fn pooled_counters_are_exact() {
        // The pooled driver stages the same mc-block decomposition as
        // the serial walk (one slot per block over the whole M range).
        for (m, n, k) in [(130, 70, 50), (96, 33, 41)] {
            let _g = lock_and_reset();
            check(Parallelism::Pool(3), &[(0, m)], m, n, k);
        }
    }

    #[test]
    fn pooled_512_report_attributes_the_run() {
        let _g = lock_and_reset();
        let (m, n, k) = (512, 512, 512);
        let t0 = std::time::Instant::now();
        run(Parallelism::Pool(4), m, n, k);
        let elapsed = t0.elapsed();

        let snap = telemetry::snapshot();
        assert_eq!(snap.total_flops(), 2 * (m * n * k) as u64);

        // Every lane that recorded time must account for exactly 1.0
        // across pack/compute/wait.
        let mut active = 0;
        for t in &snap.threads {
            if let Some((p, c, w)) = t.fractions() {
                active += 1;
                assert!(
                    (p + c + w - 1.0).abs() < 1e-9,
                    "lane {} fractions sum to {}",
                    t.name,
                    p + c + w
                );
            }
        }
        assert!(active > 0, "a pooled 512^3 run must record spans");
        assert!(snap.total_phase_ns(Phase::Compute) > 0);

        let blocks = BlockSizes::custom(MR, NR, KC, MC, NC);
        let report = GemmReport::from_run((m, n, k), 1, 4, elapsed, &blocks, &snap);
        assert!(report.flops_counted, "counted flops must win over analytic");
        assert_eq!(report.flops, 2 * (m * n * k) as u64);
        assert!(report.gflops > 0.0);
        assert!(report.gamma_measured.is_some());
        assert!(report.gamma_model > 0.0);
        assert!((report.pack_frac + report.compute_frac + report.wait_frac - 1.0).abs() < 1e-9);

        // Both emission modes produce well-formed output for this run.
        let line = report.summary_line();
        assert!(
            line.contains("GFLOPS") && line.contains("512x512x512"),
            "{line}"
        );
        let json = report.to_json(&snap);
        assert!(json.starts_with("{\"schema\":\"dgemm-telem-v1\""), "{json}");
        assert!(json.contains("\"runtime\":{") && json.contains("\"threads_detail\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        // And the env faucet selects them (emit itself prints to stderr).
        std::env::set_var("DGEMM_TELEMETRY", "summary");
        assert_eq!(telemetry::mode_from_env(), TelemetryMode::Summary);
        telemetry::emit(&report, &snap);
        std::env::set_var("DGEMM_TELEMETRY", "json");
        assert_eq!(telemetry::mode_from_env(), TelemetryMode::Json);
        telemetry::emit(&report, &snap);
        std::env::remove_var("DGEMM_TELEMETRY");
        assert_eq!(telemetry::mode_from_env(), TelemetryMode::Off);
    }

    #[test]
    fn reset_zeroes_lanes_but_not_runtime_counters() {
        let _g = lock_and_reset();
        run(Parallelism::Pool(3), 96, 48, 40);
        let before = telemetry::snapshot();
        assert!(before.total_flops() > 0);
        assert!(before.runtime.tasks > 0, "pooled run must enqueue tasks");

        telemetry::reset();
        let after = telemetry::snapshot();
        assert_eq!(after.total_flops(), 0);
        assert_eq!(after.total_packed_a_bytes(), 0);
        assert_eq!(after.total_blocks(), 0);
        assert!(after.threads.iter().all(|t| t.trace.is_empty()));
        // Lifecycle counters survive: pool::status() reports since
        // process start.
        assert_eq!(after.runtime, before.runtime);
        let status = dgemm_core::pool::status();
        assert_eq!(status.epochs_served, after.runtime.epochs_served());
        assert_eq!(status.timeouts, after.runtime.timeouts);
    }
}

#[cfg(not(feature = "telemetry"))]
mod disabled {
    use super::*;
    use dgemm_core::telemetry::BlockSizes;
    use dgemm_core::telemetry::GemmReport;
    use std::time::Duration;

    #[test]
    fn recording_is_compiled_out_but_runtime_counters_remain() {
        let _g = lock_and_reset();
        assert!(!telemetry::enabled());
        run(Parallelism::Pool(3), 96, 48, 40);
        let snap = telemetry::snapshot();
        // No lanes, no counts: every recording site is a no-op.
        assert!(snap.threads.is_empty());
        assert_eq!(snap.total_flops(), 0);
        assert_eq!(snap.total_packed_a_bytes(), 0);
        // But the always-on pool lifecycle counters still work.
        assert!(snap.runtime.tasks > 0);
        assert!(snap.runtime.epochs_served() > 0);
        let status = dgemm_core::pool::status();
        assert_eq!(status.epochs_served, snap.runtime.epochs_served());

        // GemmReport falls back to the analytic FLOP count.
        let blocks = BlockSizes::custom(MR, NR, KC, MC, NC);
        let report =
            GemmReport::from_run((96, 48, 40), 1, 3, Duration::from_millis(5), &blocks, &snap);
        assert!(!report.flops_counted);
        assert_eq!(report.flops, 2 * 96 * 48 * 40);
        // The expected-counter arithmetic stays callable (and nonzero)
        // so enabling the feature changes measurements, not the suite.
        let (flops, ..) = expected(48, 40, &[(0, 96)]);
        assert_eq!(flops, 2 * 96 * 48 * 40);
    }
}
