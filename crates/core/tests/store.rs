//! Store-conformance battery (DESIGN.md §17): the serialized weight
//! format must round-trip *bit-identically* — a loaded blob is
//! interchangeable with a live [`PrepackedB::try_build`] behind the
//! [`PanelSource`] seam — and every malformed blob must fail *typed*
//! ([`GemmError::BadStore`]): never a panic, never a wrong result.
//!
//! Four layers of evidence:
//!
//! 1. **Round-trip properties** — arbitrary geometry, dtype and
//!    transpose: encode → decode reproduces every panel bit for bit,
//!    the source digest agrees between packed slivers and a streaming
//!    read of the live matrix, and re-encoding the loaded panels
//!    reproduces the original blob byte for byte.
//! 2. **GEMM transparency** — a decoded blob seeded into the pack
//!    cache serves Serial/Scoped/Pool runs bit-identical to the serial
//!    uncached baseline (the conformance contract extends to loaded
//!    panels).
//! 3. **Corruption battery** — a seeded fuzzer over byte flips,
//!    truncations and extensions: ≥ 64 mutations, all rejected with
//!    `BadStore`.
//! 4. **Warm start** — with a populated store the first call packs
//!    zero B bytes (telemetry lane proof), the service attaches blobs
//!    at boot + first request, and a generation bump forces a
//!    re-attach (the failover story).

use dgemm_core::gemm::{gemm, try_gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::PoolScalar;
use dgemm_core::prepack::{PackCache, PrepackedB};
use dgemm_core::service::{GemmService, ServiceConfig};
use dgemm_core::store;
use dgemm_core::{GemmError, Parallelism, Transpose};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

const RUNTIMES: [Parallelism; 3] = [
    Parallelism::Serial,
    Parallelism::Scoped(3),
    Parallelism::Pool(4),
];

fn stored_dims(t: Transpose, rows: usize, cols: usize) -> (usize, usize) {
    match t {
        Transpose::No => (rows, cols),
        Transpose::Yes => (cols, rows),
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dgemm-store-it-{}-{name}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// The seeded generator driving the corruption battery (same
/// SplitMix64 recurrence [`Matrix::random`] uses — deterministic and
/// dependency-free).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Assert every panel of `loaded` is bit-identical to `live`'s.
fn assert_panels_bit_identical(live: &PrepackedB, loaded: &PrepackedB) {
    let geom = live.geometry();
    for (jj, kk, _, _) in geom.tiles() {
        let (lp, dp) = (live.panel(jj, kk), loaded.panel(jj, kk));
        assert_eq!(lp.buf().len(), dp.buf().len(), "panel ({jj},{kk}) length");
        for (i, (a, b)) in lp.buf().iter().zip(dp.buf()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "panel ({jj},{kk}) element {i} differs"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary geometry and transpose: build → encode → decode is
    /// the identity on panels, digests agree between the packed and
    /// streaming computations, and encode is injective back to the
    /// same bytes.
    #[test]
    fn any_geometry_roundtrips_bit_identically(
        k in 0usize..48,
        n in 0usize..48,
        nr in 1usize..13,
        kc in 1usize..20,
        nc in 1usize..25,
        tb in prop::bool::ANY.prop_map(|b| if b { Transpose::Yes } else { Transpose::No }),
        seed in 0u64..10_000,
    ) {
        let (br, bc) = stored_dims(tb, k, n);
        let b = Matrix::random(br, bc, seed);
        let live = PrepackedB::try_build(&b.view(), tb, nr, kc, nc).unwrap();
        let blob = store::encode(&live);
        let loaded = store::decode::<f64>(&blob).unwrap();

        prop_assert!(loaded.panels.matches(k, n, tb, nr, kc, nc));
        assert_panels_bit_identical(&live, &loaded.panels);
        prop_assert_eq!(loaded.source_digest, store::source_digest(&live));
        prop_assert_eq!(
            loaded.source_digest,
            store::matrix_digest(&b.view(), tb, kc, nc),
            "streaming digest of the live matrix must match the blob"
        );
        prop_assert!(loaded.verify_source(&b.view(), tb));
        prop_assert_eq!(store::encode(&*loaded.panels), blob, "re-encode is byte-stable");
    }

    /// The f32 lane of the same property (dtype axis): the format is
    /// generic over [`Scalar`], and a blob written as f32 only decodes
    /// as f32.
    #[test]
    fn f32_blobs_roundtrip_and_reject_dtype_skew(
        k in 0usize..32,
        n in 0usize..32,
        nr in 1usize..13,
        kc in 1usize..16,
        nc in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let b = Matrix::<f32>::random(k, n, seed);
        let live = PrepackedB::<f32>::try_build(&b.view(), Transpose::No, nr, kc, nc).unwrap();
        let blob = store::encode(&live);
        let loaded = store::decode::<f32>(&blob).unwrap();
        let geom = live.geometry();
        for (jj, kk, _, _) in geom.tiles() {
            let (lp, dp) = (live.panel(jj, kk), loaded.panels.panel(jj, kk));
            prop_assert!(lp
                .buf()
                .iter()
                .zip(dp.buf())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        prop_assert!(loaded.verify_source(&b.view(), Transpose::No));
        let skew = store::decode::<f64>(&blob).expect_err("f32 blob must not decode as f64");
        prop_assert!(matches!(skew, GemmError::BadStore(_)));
    }

    /// A decoded blob seeded into the global pack cache serves every
    /// runtime bit-identical to the serial *uncached* (live-packed)
    /// baseline, across arbitrary shapes, transposes and alpha.
    #[test]
    fn loaded_panels_serve_gemm_bit_identically(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        kind in prop::sample::select(MicroKernelKind::ALL.to_vec()),
        tb in prop::bool::ANY.prop_map(|b| if b { Transpose::Yes } else { Transpose::No }),
        alpha in prop_oneof![
            Just(1.0f64),
            Just(-1.0f64),
            (-25i64..25).prop_map(|q| q as f64 / 10.0),
        ],
        kc in 3usize..24,
        nc_mult in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let nr = kind.nr();
        let nc = nr * nc_mult;
        let (br, bc) = stored_dims(tb, k, n);
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(br, bc, seed + 1);
        let c0 = Matrix::random(m, n, seed + 2);

        let cfg0 = GemmConfig::for_kernel(kind, 1)
            .with_blocks(kc, 2 * kind.mr(), nc)
            .with_pack_cache(false);
        let mut base = c0.clone();
        try_gemm(
            Transpose::No, tb, alpha, &a.view(), &b.view(), -0.5,
            &mut base.view_mut(), &cfg0,
        ).unwrap();

        let live = PrepackedB::try_build(&b.view(), tb, nr, kc, nc).unwrap();
        let loaded = store::decode::<f64>(&store::encode(&live)).unwrap();
        f64::pack_cache()
            .insert_prepacked(&b.view(), tb, loaded.panels)
            .unwrap();

        let mut runs = Vec::new();
        for par in RUNTIMES {
            let cfg = cfg0.with_parallelism(par).with_pack_cache(true);
            let mut c = c0.clone();
            try_gemm(
                Transpose::No, tb, alpha, &a.view(), &b.view(), -0.5,
                &mut c.view_mut(), &cfg,
            ).unwrap();
            runs.push((par, c));
        }
        f64::pack_cache().invalidate(&b.view());
        for (par, c) in runs {
            prop_assert_eq!(
                c.view().data(), base.view().data(),
                "{:?} on loaded panels diverges from live-packed serial", par
            );
        }
    }
}

/// Seeded fuzzer over the whole blob: random byte flips (header and
/// payload), truncations and junk extensions — ≥ 64 mutations, every
/// one rejected with a typed [`GemmError::BadStore`], no panics.
#[test]
fn corruption_battery_is_typed_and_panic_free() {
    let b: Matrix = Matrix::random(37, 29, 4242);
    let live = PrepackedB::try_build(&b.view(), Transpose::No, 6, 9, 14).unwrap();
    let blob = store::encode(&live);
    let mut rng = SplitMix64(0x5eed_0123_4567_89ab);
    let mut mutations = 0usize;
    for i in 0..96 {
        let mut bad = blob.clone();
        match i % 4 {
            // Byte flip anywhere: the checksum covers every byte of
            // the blob (including the header outside its own field).
            0 => {
                let pos = rng.below(bad.len());
                bad[pos] ^= (rng.next() as u8) | 1;
            }
            // Header-targeted flip: magic, version, dtype, geometry,
            // lengths, digest, checksum, reserved pad.
            1 => {
                let pos = rng.below(store::HEADER_LEN);
                bad[pos] ^= (rng.next() as u8) | 1;
            }
            // Truncation to any strictly shorter length.
            2 => {
                bad.truncate(rng.below(bad.len()));
            }
            // Junk appended past the declared payload.
            _ => {
                bad.extend(std::iter::repeat_n(0xA5, 1 + rng.below(64)));
            }
        }
        let err = store::decode::<f64>(&bad).expect_err("mutated blob must be rejected");
        assert!(
            matches!(err, GemmError::BadStore(_)),
            "mutation {i} produced a non-store error: {err}"
        );
        mutations += 1;
    }
    assert!(mutations >= 64, "battery must cover at least 64 mutations");
}

/// Targeted header skews hit their specific diagnostics (check order
/// is part of the format contract: magic before version before dtype
/// before checksum).
#[test]
fn header_skews_are_diagnosed_specifically() {
    let b: Matrix = Matrix::random(11, 13, 77);
    let live = PrepackedB::try_build(&b.view(), Transpose::No, 4, 5, 6).unwrap();
    let blob = store::encode(&live);
    let msg = |bad: &[u8]| -> &'static str {
        match store::decode::<f64>(bad) {
            Err(GemmError::BadStore(m)) => m,
            other => panic!("expected BadStore, got {other:?}"),
        }
    };

    let mut bad = blob.clone();
    bad[0] ^= 0xFF; // magic
    assert!(msg(&bad).contains("magic"), "{}", msg(&bad));

    let mut bad = blob.clone();
    bad[8] = 9; // layout version
    assert!(msg(&bad).contains("layout version"), "{}", msg(&bad));

    let mut bad = blob.clone();
    bad[12] = 7; // dtype
    assert!(msg(&bad).contains("dtype"), "{}", msg(&bad));

    let mut bad = blob.clone();
    bad[store::HEADER_LEN] ^= 0x01; // first payload byte
    assert!(msg(&bad).contains("checksum"), "{}", msg(&bad));

    let bad = &blob[..store::HEADER_LEN - 1];
    assert!(msg(bad).contains("header"), "{}", msg(bad));
}

/// With the cache pre-seeded from a blob, a serial GEMM packs **zero**
/// B bytes — proven on a dedicated telemetry lane (this thread's
/// name), then cross-checked by an uncached run that does pack.
#[test]
fn warm_start_packs_zero_b_bytes() {
    std::thread::Builder::new()
        .name("store-warm-lane".into())
        .spawn(|| {
            let kind = MicroKernelKind::Mk8x6;
            let (kc, nc) = (12, 2 * kind.nr());
            let (m, n, k) = (48, 36, 30);
            let a = Matrix::random(m, k, 601);
            let b = Matrix::random(k, n, 602);
            let live = PrepackedB::try_build(&b.view(), Transpose::No, kind.nr(), kc, nc)
                .expect("live pack");
            let loaded = store::decode::<f64>(&store::encode(&live)).expect("decode");
            f64::pack_cache()
                .insert_prepacked(&b.view(), Transpose::No, loaded.panels)
                .expect("attach");

            // This lane's packed-B total (None with telemetry off).
            let lane_bytes = || -> Option<u64> {
                let snap = dgemm_core::telemetry::snapshot();
                if snap.threads.is_empty() {
                    return None;
                }
                Some(
                    snap.threads
                        .iter()
                        .filter(|t| t.name == "store-warm-lane")
                        .map(|t| t.packed_b_bytes)
                        .sum(),
                )
            };

            let cfg = GemmConfig::for_kernel(kind, 1)
                .with_blocks(kc, 2 * kind.mr(), nc)
                .with_parallelism(Parallelism::Serial)
                .with_pack_cache(true);
            let before = lane_bytes();
            let mut c = Matrix::zeros(m, n);
            try_gemm(
                Transpose::No,
                Transpose::No,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut c.view_mut(),
                &cfg,
            )
            .expect("warm gemm");
            let warm = lane_bytes();
            if let (Some(b0), Some(b1)) = (before, warm) {
                assert_eq!(b1, b0, "warm start must pack zero B bytes");
            }

            // Sanity: the same problem uncached *does* pack on this lane
            // (the instrumentation is live, the zero above is real).
            let mut c2 = Matrix::zeros(m, n);
            try_gemm(
                Transpose::No,
                Transpose::No,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut c2.view_mut(),
                &cfg.with_pack_cache(false),
            )
            .expect("cold gemm");
            let cold = lane_bytes();
            if let (Some(b1), Some(b2)) = (warm, cold) {
                assert!(b2 > b1, "uncached run must record packed B bytes");
            }
            assert_eq!(
                c.view().data(),
                c2.view().data(),
                "warm and cold bits agree"
            );
            f64::pack_cache().invalidate(&b.view());
        })
        .expect("spawn lane thread")
        .join()
        .expect("lane thread");
}

/// A generation bump (pool restart / explicit invalidation) orphans
/// the attached blob; re-attaching the same panels restores the warm
/// path — the service's failover sequence, driven here through the
/// public cache API.
#[test]
fn generation_bump_forces_reattach_like_failover() {
    let cache = PackCache::<f64>::new();
    let b = Matrix::random(20, 15, 7);
    let live = PrepackedB::try_build(&b.view(), Transpose::No, 6, 8, 12).unwrap();
    let loaded = store::decode::<f64>(&store::encode(&live)).unwrap();

    cache
        .insert_prepacked(&b.view(), Transpose::No, Arc::clone(&loaded.panels))
        .unwrap();
    assert!(cache.contains(&b.view(), Transpose::No, 6, 8, 12));
    let got = cache
        .get_or_pack(&b.view(), Transpose::No, 6, 8, 12)
        .expect("hit");
    assert!(
        Arc::ptr_eq(&got, &loaded.panels),
        "lookup must return the attached blob, not a fresh pack"
    );

    cache.bump_generation();
    assert!(
        !cache.contains(&b.view(), Transpose::No, 6, 8, 12),
        "a generation bump must orphan the attached blob"
    );
    cache
        .insert_prepacked(&b.view(), Transpose::No, Arc::clone(&loaded.panels))
        .unwrap();
    assert!(cache.contains(&b.view(), Transpose::No, 6, 8, 12));
}

/// Attaching panels that don't cover `op(B)` is a typed error, and a
/// blob's source verification detects a mutated weight matrix.
#[test]
fn mismatched_attach_and_source_skew_are_typed() {
    let cache = PackCache::<f64>::new();
    let b = Matrix::random(20, 15, 8);
    let other = Matrix::random(21, 15, 9);
    let live = PrepackedB::try_build(&other.view(), Transpose::No, 6, 8, 12).unwrap();
    let loaded = store::decode::<f64>(&store::encode(&live)).unwrap();
    let err = cache
        .insert_prepacked(&b.view(), Transpose::No, Arc::clone(&loaded.panels))
        .expect_err("wrong-shape attach must fail");
    assert!(matches!(err, GemmError::BadStore(_)));

    let mut mutated = other.clone();
    mutated.set(3, 4, -123.0);
    assert!(!loaded.verify_source(&mutated.view(), Transpose::No));
    assert!(loaded.verify_source(&other.view(), Transpose::No));
}

/// End-to-end service warm start: blobs load onto the shelf at boot
/// (corrupt ones counted and skipped), the first request against the
/// stored weight attaches instead of packing, results stay
/// bit-identical to direct GEMM, and the store counters surface in
/// `status_json` and `/metrics`.
#[test]
fn service_warm_starts_from_weight_store() {
    let dir = scratch_dir("svc");
    let gemm_cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1);
    let (m, n, k) = (24, 30, 40);
    let b = Arc::new(Matrix::random(k, n, 5001));
    let pre = PrepackedB::from_matrix(&gemm_cfg, &b.view()).expect("prepack");
    store::save(&dir.join("w0.dgemm"), &pre).expect("save blob");
    std::fs::write(dir.join("z-junk.dgemm"), b"definitely not a blob").expect("junk");

    let svc = GemmService::new(ServiceConfig {
        weight_store: Some(dir.clone()),
        gemm: gemm_cfg,
        ..ServiceConfig::default()
    });
    let boot = svc.status_json();
    assert!(
        boot.contains("\"store\":{\"configured\":true,\"shelf\":1,\"loads\":1,\"load_failures\":1,\"attaches\":0"),
        "boot status must show the shelf: {boot}"
    );

    let a = Arc::new(Matrix::random(m, k, 5002));
    let got = svc
        .submit(
            "warm-tenant",
            1.0,
            Arc::clone(&a),
            Transpose::No,
            Arc::clone(&b),
        )
        .expect("admitted")
        .wait()
        .expect("served");
    let mut want = Matrix::zeros(m, n);
    gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &b.view(),
        0.0,
        &mut want.view_mut(),
        &gemm_cfg,
    );
    assert_eq!(got.as_slice(), want.as_slice(), "warm result bit-identical");

    let after = svc.status_json();
    assert!(
        after.contains("\"load_failures\":1,\"attaches\":1"),
        "first request must attach the shelved blob: {after}"
    );
    let metrics = svc.metrics_text();
    assert!(metrics.contains("dgemm_store_loads_total"));
    assert!(metrics.contains("dgemm_store_shelf_entries 1"));

    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a configured store the service boots cold and reports so.
#[test]
fn unconfigured_store_reports_cold() {
    let svc = GemmService::new(ServiceConfig {
        gemm: GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1),
        ..ServiceConfig::default()
    });
    let status = svc.status_json();
    assert!(
        status.contains("\"store\":{\"configured\":false,\"shelf\":0,\"loads\":0,\"load_failures\":0,\"attaches\":0"),
        "cold boot status: {status}"
    );
}

/// `save` + `load` over a real directory round-trips, and a missing
/// path is a typed error — the loader never panics on I/O.
#[test]
fn save_and_load_roundtrip_on_disk() {
    let dir = scratch_dir("disk");
    let b = Matrix::random(19, 23, 31);
    let live = PrepackedB::try_build(&b.view(), Transpose::No, 6, 7, 13).unwrap();
    let path = dir.join("weights.dgemm");
    store::save(&path, &live).expect("save");
    let loaded = store::load::<f64>(&path).expect("load");
    assert_panels_bit_identical(&live, &loaded.panels);
    assert!(loaded.verify_source(&b.view(), Transpose::No));

    let missing = store::load::<f64>(&dir.join("nope.dgemm")).expect_err("missing file");
    assert!(matches!(missing, GemmError::BadStore(_)));
    let _ = std::fs::remove_dir_all(&dir);
}
