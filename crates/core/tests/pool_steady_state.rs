//! Steady-state acceptance for the pooled runtime, in its own test
//! binary so the process-wide runtime counters are deterministic: after
//! a warm-up call, repeated GEMMs must spawn **zero** new worker threads
//! and allocate **zero** new packing buffers — thread creation and
//! arena growth are one-time costs.

use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::{Parallelism, PoolScalar, WorkerPool};
use dgemm_core::telemetry;
use dgemm_core::Transpose;

fn run(par: Parallelism, m: usize, n: usize, k: usize) -> Matrix {
    let a = Matrix::random(m, k, 3);
    let b = Matrix::random(k, n, 4);
    let mut c = Matrix::zeros(m, n);
    let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1)
        .with_blocks(24, 16, 18)
        .with_parallelism(par);
    gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &b.view(),
        0.0,
        &mut c.view_mut(),
        &cfg,
    );
    c
}

/// Fresh packing-buffer allocations on this caller thread so far (the
/// pooled driver packs on the caller; workers only consume owned slots).
fn fresh() -> u64 {
    f64::with_arena(|arena| arena.fresh_buffers())
}

#[test]
fn no_spawns_and_no_allocations_after_warmup() {
    let (m, n, k) = (130, 70, 60);

    // -- warm-up: first pooled call may spawn workers and grow the arena
    let want = run(Parallelism::Serial, m, n, k);
    let first = run(Parallelism::Pool(4), m, n, k);
    assert_eq!(first.max_abs_diff(&want), 0.0);

    let workers0 = WorkerPool::global().workers();
    let rt0 = telemetry::snapshot().runtime;
    let fresh0 = fresh();
    assert!(fresh0 > 0, "warm-up must have populated the arena");

    // -- steady state: same shape, then smaller shapes (which need no
    // more slots than the warm-up), across both runtimes
    for _ in 0..6 {
        assert_eq!(run(Parallelism::Pool(4), m, n, k).max_abs_diff(&want), 0.0);
        run(Parallelism::Serial, m / 2, n / 2, k);
        run(Parallelism::Pool(3), m / 2 + 1, n / 3, k / 2);
    }

    let rt = telemetry::snapshot().runtime;
    assert_eq!(
        WorkerPool::global().workers(),
        workers0,
        "steady-state GEMMs must not spawn threads"
    );
    assert_eq!(
        fresh(),
        fresh0,
        "steady-state GEMMs must not allocate packing buffers"
    );
    assert!(
        rt.tasks > rt0.tasks,
        "pooled work must flow through the shared queue"
    );
    assert!(rt.epochs_served() > 0, "layer-3 epochs must be counted");

    // The deprecated shim must stay consistent with the counters it
    // wraps (it is the compatibility surface for older callers).
    #[allow(deprecated)]
    {
        let shim = dgemm_core::pool::stats();
        let now = telemetry::snapshot().runtime;
        assert_eq!(shim.workers, WorkerPool::global().workers());
        assert_eq!(shim.dynamic_epochs, now.dynamic_epochs);
        assert_eq!(shim.static_epochs, now.static_epochs);
        assert!(shim.tasks >= rt.tasks);
    }
}
