//! Fault-recovery acceptance for the pooled runtime, compiled only with
//! the `fault-injection` feature (`cargo test -p dgemm-core --features
//! fault-injection`). Each scenario provokes one concrete failure —
//! worker panic, worker death, spawn failure, allocation failure — and
//! asserts the contract from DESIGN.md §10: the result is bit-identical
//! to the serial oracle (or a typed error), the fault is visible in
//! [`dgemm_core::pool::status`], and the pool serves subsequent calls at
//! full capacity.
//!
//! Fault plans and the pool are process-global, so every test holds
//! `LOCK` for its whole body.

#![cfg(feature = "fault-injection")]

use std::sync::Mutex;
use std::time::{Duration, Instant};

use dgemm_core::faults::{self, FaultPlan, Trigger};
use dgemm_core::gemm::{try_gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::{status, Parallelism, PoolScalar};
use dgemm_core::Transpose;

static LOCK: Mutex<()> = Mutex::new(());

const M: usize = 130;
const N: usize = 70;
const K: usize = 60;

fn cfg(par: Parallelism) -> GemmConfig {
    GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1)
        .with_blocks(24, 16, 18)
        .with_parallelism(par)
}

fn run(par: Parallelism) -> Result<Matrix, dgemm_core::GemmError> {
    let a = Matrix::random(M, K, 3);
    let b = Matrix::random(K, N, 4);
    let mut c = Matrix::random(M, N, 5);
    try_gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &b.view(),
        0.5,
        &mut c.view_mut(),
        &cfg(par),
    )?;
    Ok(c)
}

fn oracle() -> Matrix {
    faults::clear();
    run(Parallelism::Serial).expect("serial path has no fault hooks")
}

/// Wait (bounded) for an asynchronous pool-side counter change.
fn wait_until(mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

#[test]
fn worker_panic_is_contained_and_result_is_bitwise_exact() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let want = oracle();

    // Warm the pool so the panic lands on a real worker thread.
    assert_eq!(run(Parallelism::Pool(4)).unwrap().max_abs_diff(&want), 0.0);
    let contained0 = status().faults_contained;

    faults::install(FaultPlan {
        worker_panic: Some(Trigger::once(1)),
        ..FaultPlan::default()
    });
    let got = run(Parallelism::Pool(4)).expect("single panic must be contained");
    faults::clear();

    assert_eq!(
        got.max_abs_diff(&want),
        0.0,
        "recovered block must replay the exact serial accumulation order"
    );
    assert!(
        status().faults_contained > contained0,
        "the contained panic must be visible in the pool health counters"
    );

    // Stream continues at full capacity afterwards.
    for _ in 0..3 {
        assert_eq!(run(Parallelism::Pool(4)).unwrap().max_abs_diff(&want), 0.0);
    }
}

#[test]
fn dead_worker_is_respawned_before_the_next_epoch() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let want = oracle();

    assert_eq!(run(Parallelism::Pool(4)).unwrap().max_abs_diff(&want), 0.0);
    let before = status();

    // Kill one worker after it completes a task: a clean thread death.
    faults::install(FaultPlan {
        worker_kill: Some(Trigger::once(0)),
        ..FaultPlan::default()
    });
    assert_eq!(run(Parallelism::Pool(4)).unwrap().max_abs_diff(&want), 0.0);
    faults::clear();

    assert!(
        wait_until(|| status().deaths > before.deaths),
        "the killed worker must be observed as dead"
    );

    // The next pooled call's health check respawns it.
    assert_eq!(run(Parallelism::Pool(4)).unwrap().max_abs_diff(&want), 0.0);
    let after = status();
    assert!(
        after.respawns > before.respawns,
        "ensure_workers must replace the dead worker (respawns {} -> {})",
        before.respawns,
        after.respawns
    );
    assert!(
        after.workers_alive >= before.workers_alive,
        "the pool must be back at full capacity ({} -> {})",
        before.workers_alive,
        after.workers_alive
    );
}

#[test]
fn spawn_failure_degrades_to_caller_execution() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let want = oracle();
    let failures0 = status().spawn_failures;

    // Fail every spawn attempt for the whole call: if the pool is cold
    // this exercises the no-workers path (caller drains the queue); if
    // it is warm the plan simply never fires. Either way the result must
    // be exact. Ask for more workers than are alive so at least one
    // spawn is attempted.
    faults::install(FaultPlan {
        spawn_fail: Some(Trigger {
            nth: 0,
            count: u64::MAX,
        }),
        ..FaultPlan::default()
    });
    let alive = status().workers_alive;
    let got = run(Parallelism::Pool(alive + 3)).expect("spawn failure is not an error");
    faults::clear();

    assert_eq!(got.max_abs_diff(&want), 0.0);
    assert!(
        status().spawn_failures > failures0,
        "the failed spawn must be counted"
    );

    // With the plan cleared, growth works again.
    assert_eq!(
        run(Parallelism::Pool(alive + 3))
            .unwrap()
            .max_abs_diff(&want),
        0.0
    );
}

#[test]
fn allocation_failure_degrades_gracefully() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let want = oracle();

    // Fail one allocation at each successive site: staging, packed-A,
    // packed-B. Every call must still produce the exact result (serial
    // tail, chunked inline compute, or inline epoch).
    for nth in 0..6 {
        faults::install(FaultPlan {
            alloc_fail: Some(Trigger::once(nth)),
            ..FaultPlan::default()
        });
        let got = run(Parallelism::Pool(4))
            .unwrap_or_else(|e| panic!("alloc fault #{nth} must degrade, got {e}"));
        assert_eq!(
            got.max_abs_diff(&want),
            0.0,
            "alloc fault #{nth} must not change the result"
        );
    }
    faults::clear();
    assert_eq!(run(Parallelism::Pool(4)).unwrap().max_abs_diff(&want), 0.0);
}

/// A worker panic during an epoch served from a *cached* pre-packed
/// panel: containment must replay the block bit-identically (the
/// recovery path re-packs from the original B view, independent of the
/// cache), and the fault must neither evict nor invalidate the cache
/// entry — the panels are immutable and blameless.
#[test]
fn worker_panic_on_cached_panel_preserves_the_entry() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let want = oracle();
    let cache = f64::pack_cache();

    // Stable operands across calls: the cache keys on B's address.
    let a = Matrix::random(M, K, 3);
    let b = Matrix::random(K, N, 4);
    cache.invalidate(&b.view());
    let cached = cfg(Parallelism::Pool(4)).with_pack_cache(true);
    let run_cached = || -> Result<Matrix, dgemm_core::GemmError> {
        let mut c = Matrix::random(M, N, 5);
        try_gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.5,
            &mut c.view_mut(),
            &cached,
        )?;
        Ok(c)
    };

    // Warm both the pool and the cache (first call misses + inserts).
    assert_eq!(run_cached().unwrap().max_abs_diff(&want), 0.0);
    let len0 = cache.len();
    let s0 = cache.stats();
    assert!(len0 >= 1, "warm call must have inserted the entry");
    let contained0 = status().faults_contained;

    faults::install(FaultPlan {
        worker_panic: Some(Trigger::once(1)),
        ..FaultPlan::default()
    });
    let got = run_cached().expect("a panic on a cached-panel epoch must be contained");
    faults::clear();

    assert_eq!(
        got.max_abs_diff(&want),
        0.0,
        "the recovered block must replay the exact serial accumulation order"
    );
    assert!(
        status().faults_contained > contained0,
        "the contained panic must be visible in the pool health counters"
    );
    let s1 = cache.stats();
    assert_eq!(cache.len(), len0, "the fault must not evict the entry");
    assert_eq!(s1.evictions, s0.evictions);
    assert_eq!(s1.invalidations, s0.invalidations);
    assert!(
        s1.hits > s0.hits,
        "the faulted call still served from cache"
    );

    // The cached stream continues, hitting and exact.
    for _ in 0..3 {
        assert_eq!(run_cached().unwrap().max_abs_diff(&want), 0.0);
    }
    assert!(cache.stats().hits >= s1.hits + 3);
    cache.invalidate(&b.view());
}

#[test]
fn slow_worker_trips_the_watchdog_but_c_is_recovered() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let want = oracle();

    // Warm the pool so a worker thread (not the help-draining caller)
    // picks up jobs and can stall.
    assert_eq!(run(Parallelism::Pool(4)).unwrap().max_abs_diff(&want), 0.0);

    faults::install(FaultPlan {
        slow_worker: Some((Trigger::once(0), Duration::from_millis(200))),
        ..FaultPlan::default()
    });
    let a = Matrix::random(M, K, 3);
    let b = Matrix::random(K, N, 4);
    let mut c = Matrix::random(M, N, 5);
    let cfg = cfg(Parallelism::Pool(4)).with_epoch_timeout(Some(Duration::from_millis(25)));
    let result = try_gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &b.view(),
        0.5,
        &mut c.view_mut(),
        &cfg,
    );
    faults::clear();

    // The watchdog either fired (timeout reported, missing blocks
    // recomputed serially) or the stall was absorbed by help-draining;
    // in both cases C holds the exact product.
    match result {
        Ok(()) => {}
        Err(dgemm_core::GemmError::EpochTimeout { missing_blocks, .. }) => {
            assert!(missing_blocks > 0, "a timeout must name its lost blocks");
        }
        Err(e) => panic!("unexpected error from a slow worker: {e}"),
    }
    assert_eq!(
        c.max_abs_diff(&want),
        0.0,
        "every block must be recovered bit-identically after a stall"
    );

    // Let the stalled worker wake up, then confirm the stream continues.
    std::thread::sleep(Duration::from_millis(250));
    for _ in 0..3 {
        assert_eq!(run(Parallelism::Pool(4)).unwrap().max_abs_diff(&want), 0.0);
    }
}
