//! Cross-runtime conformance suite: one differential oracle, every
//! execution configuration.
//!
//! Every case is run through the full matrix of
//! `{Serial, Scoped, Pool} × {pack cache off, pack cache on}` (and, in
//! the property test, every register kernel) and must satisfy two
//! contracts simultaneously:
//!
//! 1. **Accuracy** — within `gemm_tolerance` of the naive triple-loop
//!    oracle ([`naive_gemm`]).
//! 2. **Bitwise determinism** — bit-identical to the serial, uncached
//!    run. The layered algorithm fixes each C element's accumulation
//!    order by the `(jj, kk)` epoch walk, and the pre-packed cache
//!    builds its tiles with the same packing code, so neither threading
//!    nor caching may change a single bit.
//!
//! The β = 0 rule gets special care throughout: BLAS semantics are
//! *overwrite*, not *scale* — a NaN or Inf in the stale C must never
//! leak into the result. The oracle itself is evaluated on a zeroed C
//! when β = 0 so the comparison can't be poisoned either.
//!
//! The CI conformance matrix re-runs this binary under
//! `DGEMM_NUM_THREADS ∈ {1, 2, 8}` and with default / no-default /
//! fault-injection features; [`auto_config_conforms_in_this_environment`]
//! is the case that picks those env knobs up.

use dgemm_core::dispatch::DispatchMode;
use dgemm_core::gemm::{try_gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::PoolScalar;
use dgemm_core::prepack::PrepackedB;
use dgemm_core::reference::naive_gemm;
use dgemm_core::store;
use dgemm_core::util::gemm_tolerance;
use dgemm_core::{Parallelism, Transpose};
use proptest::prelude::*;

/// The runtime sweep: serial, scoped threads, and the persistent pool
/// (4 workers so `blocks % workers != 0` shows up on most shapes).
const RUNTIMES: [Parallelism; 3] = [
    Parallelism::Serial,
    Parallelism::Scoped(3),
    Parallelism::Pool(4),
];

fn stored_dims(t: Transpose, rows: usize, cols: usize) -> (usize, usize) {
    match t {
        Transpose::No => (rows, cols),
        Transpose::Yes => (cols, rows),
    }
}

/// Run one problem through every `runtime × caching` combination and
/// assert accuracy against the oracle plus bitwise equality with the
/// serial uncached baseline. Cache entries created for `b` are
/// invalidated before returning (coherence contract: the matrix is
/// about to be freed).
#[allow(clippy::too_many_arguments)]
fn check_all_runtimes(
    kind: MicroKernelKind,
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    beta: f64,
    a: &Matrix,
    b: &Matrix,
    c0: &Matrix,
    blocks: Option<(usize, usize, usize)>,
    k: usize,
) {
    let (m, n) = (c0.rows(), c0.cols());

    // β = 0 is overwrite, not scale: evaluate the oracle on a zeroed C
    // so stale NaN/Inf can't reach it through the β·C term.
    let mut want = if beta == 0.0 {
        Matrix::zeros(m, n)
    } else {
        c0.clone()
    };
    naive_gemm(
        ta,
        tb,
        alpha,
        &a.view(),
        &b.view(),
        beta,
        &mut want.view_mut(),
    );
    let tol = gemm_tolerance(k, 4.0);

    let mut baseline: Option<Matrix> = None;
    for par in RUNTIMES {
        for cached in [false, true] {
            let mut cfg = GemmConfig::for_kernel(kind, 1)
                .with_parallelism(par)
                .with_pack_cache(cached);
            if let Some((kc, mc, nc)) = blocks {
                cfg = cfg.with_blocks(kc, mc, nc);
            }
            let mut c = c0.clone();
            try_gemm(
                ta,
                tb,
                alpha,
                &a.view(),
                &b.view(),
                beta,
                &mut c.view_mut(),
                &cfg,
            )
            .unwrap_or_else(|e| panic!("{par:?} cached={cached}: {e}"));

            for j in 0..n {
                for i in 0..m {
                    let (got, oracle) = (c.get(i, j), want.get(i, j));
                    assert!(
                        got.is_finite(),
                        "{kind:?} {par:?} cached={cached} ({m}x{n}x{k}): \
                         non-finite C[{i},{j}] = {got}"
                    );
                    assert!(
                        (got - oracle).abs() <= tol,
                        "{kind:?} {par:?} cached={cached} ({m}x{n}x{k}): \
                         C[{i},{j}] = {got} vs oracle {oracle} (tol {tol})"
                    );
                }
            }
            match &baseline {
                None => baseline = Some(c),
                Some(base) => assert_eq!(
                    c.view().data(),
                    base.view().data(),
                    "{kind:?} {par:?} cached={cached} ({m}x{n}x{k}): \
                     not bit-identical to serial uncached"
                ),
            }
        }
    }
    f64::pack_cache().invalidate(&b.view());
}

/// Random-operand wrapper around [`check_all_runtimes`].
#[allow(clippy::too_many_arguments)]
fn check_random(
    kind: MicroKernelKind,
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    beta: f64,
    (m, n, k): (usize, usize, usize),
    blocks: Option<(usize, usize, usize)>,
    seed: u64,
) {
    let (ar, ac) = stored_dims(ta, m, k);
    let (br, bc) = stored_dims(tb, k, n);
    let a = Matrix::random(ar, ac, seed);
    let b = Matrix::random(br, bc, seed + 1);
    let c0 = Matrix::random(m, n, seed + 2);
    check_all_runtimes(kind, ta, tb, alpha, beta, &a, &b, &c0, blocks, k);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central differential property: arbitrary shape, kernel,
    /// transposes, scalars and (deliberately hostile) blocking — every
    /// runtime, cached and uncached, matches the oracle and the serial
    /// uncached bits.
    #[test]
    fn every_configuration_matches_the_oracle(
        m in 1usize..40,
        n in 1usize..40,
        k in 0usize..40,
        kind in prop::sample::select(MicroKernelKind::ALL.to_vec()),
        ta in prop::bool::ANY.prop_map(|b| if b { Transpose::Yes } else { Transpose::No }),
        tb in prop::bool::ANY.prop_map(|b| if b { Transpose::Yes } else { Transpose::No }),
        alpha in prop_oneof![
            Just(0.0f64),
            Just(1.0f64),
            Just(-1.0f64),
            (-25i64..25).prop_map(|q| q as f64 / 10.0),
        ],
        beta in prop_oneof![
            Just(0.0f64),
            Just(1.0f64),
            Just(-1.0f64),
            (-17i64..17).prop_map(|q| q as f64 / 10.0),
        ],
        kc in 3usize..36,
        mc_mult in 1usize..4,
        nc_mult in 1usize..5,
        seed in 0u64..10_000,
    ) {
        check_random(
            kind,
            ta,
            tb,
            alpha,
            beta,
            (m, n, k),
            Some((kc, kind.mr() * mc_mult, kind.nr() * nc_mult)),
            seed,
        );
    }
}

/// m, n and k each one past / one short of the register and cache
/// granularities: every remainder path (ragged sliver, partial kc, odd
/// band) for every kernel.
#[test]
fn remainder_shapes_conform() {
    for kind in MicroKernelKind::ALL {
        let (mr, nr) = (kind.mr(), kind.nr());
        let kc = 16;
        for (m, n, k) in [
            (2 * mr + 3, 3 * nr + 1, kc + 7),
            (mr + 1, nr + 1, kc - 1),
            (3 * mr - 1, 2 * nr - 1, 2 * kc + 1),
        ] {
            check_random(
                kind,
                Transpose::No,
                Transpose::No,
                1.5,
                -0.5,
                (m, n, k),
                Some((kc, 2 * mr, 2 * nr)),
                11 + m as u64,
            );
        }
    }
}

/// m strictly below mr: the whole matrix is one ragged sliver.
#[test]
fn m_smaller_than_register_tile_conforms() {
    for kind in MicroKernelKind::ALL {
        for m in [1, kind.mr() - 1] {
            check_random(
                kind,
                Transpose::No,
                Transpose::Yes,
                -1.0,
                1.0,
                (m, 3 * kind.nr() + 2, 19),
                Some((8, kind.mr(), 2 * kind.nr())),
                23 + m as u64,
            );
        }
    }
}

/// k = 0 is a pure β-scale: no packing, no kernel call — and with β = 0
/// it must *overwrite*, scrubbing stale NaN/Inf from C.
#[test]
fn k_zero_is_pure_beta_scale() {
    // finite C, β ≠ 0: exact scale
    check_random(
        MicroKernelKind::Mk8x6,
        Transpose::No,
        Transpose::No,
        1.0,
        2.0,
        (17, 13, 0),
        None,
        31,
    );

    // poisoned C, β = 0: every runtime must produce exact zeros
    let a = Matrix::zeros(9, 0);
    let b = Matrix::zeros(0, 7);
    let c0 = Matrix::from_fn(9, 7, |i, j| {
        if (i + j) % 3 == 0 {
            f64::NAN
        } else {
            f64::INFINITY
        }
    });
    for par in RUNTIMES {
        for cached in [false, true] {
            let cfg = GemmConfig::default()
                .with_parallelism(par)
                .with_pack_cache(cached);
            let mut c = c0.clone();
            try_gemm(
                Transpose::No,
                Transpose::No,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut c.view_mut(),
                &cfg,
            )
            .unwrap();
            for j in 0..7 {
                for i in 0..9 {
                    assert_eq!(
                        c.get(i, j),
                        0.0,
                        "{par:?} cached={cached}: stale C leaked through k=0, beta=0"
                    );
                }
            }
        }
    }
    f64::pack_cache().invalidate(&b.view());
}

/// β = 0 with k > 0: the product must fully overwrite a NaN/Inf-filled
/// C on every runtime, cached or not.
#[test]
fn beta_zero_overwrites_poisoned_c() {
    let (m, n, k) = (21, 18, 15);
    let a = Matrix::random(m, k, 41);
    let b = Matrix::random(k, n, 42);
    let c0 = Matrix::from_fn(m, n, |i, j| {
        if (i ^ j) & 1 == 0 {
            f64::NAN
        } else {
            -f64::INFINITY
        }
    });
    check_all_runtimes(
        MicroKernelKind::Mk8x6,
        Transpose::No,
        Transpose::No,
        1.25,
        0.0,
        &a,
        &b,
        &c0,
        Some((8, 16, 12)),
        k,
    );
}

/// n = 1: GEMV-shaped problems exercise the narrowest possible B panel
/// (one ragged nr-sliver per tile).
#[test]
fn single_column_conforms() {
    for kind in MicroKernelKind::ALL {
        check_random(
            kind,
            Transpose::No,
            Transpose::No,
            2.0,
            0.5,
            (3 * kind.mr() + 1, 1, 27),
            Some((10, 2 * kind.mr(), kind.nr())),
            53,
        );
    }
}

/// mc > m and the whole problem inside a single kc×nc tile: the
/// analytic (default) blocking on a matrix far smaller than its design
/// point, where layer 3 has exactly one block.
#[test]
fn blocking_larger_than_problem_conforms() {
    // default blocks are kc=512, mc=56, nc=1920 — all exceed the shape
    check_random(
        MicroKernelKind::Mk8x6,
        Transpose::No,
        Transpose::No,
        1.0,
        1.0,
        (40, 33, 25),
        None,
        61,
    );
    check_random(
        MicroKernelKind::Mk8x4,
        Transpose::Yes,
        Transpose::Yes,
        -0.75,
        0.25,
        (13, 29, 31),
        None,
        67,
    );
}

/// Zero-sized problems: m = 0 and n = 0 are no-ops that must not touch
/// the (empty) C or crash any runtime.
#[test]
fn empty_dimensions_conform() {
    check_random(
        MicroKernelKind::Mk8x6,
        Transpose::No,
        Transpose::No,
        1.0,
        0.0,
        (0, 11, 7),
        None,
        71,
    );
    check_random(
        MicroKernelKind::Mk8x6,
        Transpose::No,
        Transpose::No,
        1.0,
        0.0,
        (11, 0, 7),
        None,
        73,
    );
}

/// α = 0 never reads A or B (which here are NaN-poisoned): the result
/// is exactly β·C on every runtime.
#[test]
fn alpha_zero_never_reads_operands() {
    let (m, n, k) = (12, 10, 8);
    let a = Matrix::from_fn(m, k, |_, _| f64::NAN);
    let b = Matrix::from_fn(k, n, |_, _| f64::NAN);
    let c0 = Matrix::random(m, n, 83);
    for par in RUNTIMES {
        for cached in [false, true] {
            let cfg = GemmConfig::default()
                .with_parallelism(par)
                .with_pack_cache(cached);
            let mut c = c0.clone();
            try_gemm(
                Transpose::No,
                Transpose::No,
                0.0,
                &a.view(),
                &b.view(),
                -0.5,
                &mut c.view_mut(),
                &cfg,
            )
            .unwrap();
            for j in 0..n {
                for i in 0..m {
                    assert_eq!(c.get(i, j), -0.5 * c0.get(i, j), "{par:?} cached={cached}");
                }
            }
        }
    }
    f64::pack_cache().invalidate(&b.view());
}

/// Store-loaded panels vs live packing, through the full oracle: for
/// every kernel, a B pre-packed → serialized → decoded → seeded into
/// the global pack cache must leave every `runtime × caching` run
/// accurate against the naive oracle and bit-identical to the serial
/// uncached (live-packing) baseline — a blob from disk is
/// indistinguishable from panels packed this instant. Ragged edges
/// included: `n % nc != 0`, `n % nr != 0`, `k % kc != 0`.
#[test]
fn store_loaded_panels_conform() {
    for (kind, tb) in [
        (MicroKernelKind::Mk8x6, Transpose::No),
        (MicroKernelKind::Mk8x4, Transpose::Yes),
        (MicroKernelKind::Mk4x4, Transpose::No),
    ] {
        let (mr, nr) = (kind.mr(), kind.nr());
        let kc = 16;
        let nc = 2 * nr;
        let (m, n, k) = (2 * mr + 3, nc + nr + 1, kc + 7);
        let (br, bc) = stored_dims(tb, k, n);
        let a = Matrix::random(m, k, 141);
        let b = Matrix::random(br, bc, 142);
        let c0 = Matrix::random(m, n, 143);

        // Live pack → blob → decode → seed the cache the cached runs use.
        let live = PrepackedB::try_build(&b.view(), tb, nr, kc, nc).expect("live pack");
        let loaded = store::decode::<f64>(&store::encode(&live)).expect("roundtrip");
        f64::pack_cache()
            .insert_prepacked(&b.view(), tb, loaded.panels)
            .expect("attach");

        // check_all_runtimes' cached legs now consume the loaded blob;
        // its uncached legs pack live — one oracle over both, plus the
        // trailing invalidate cleanup.
        check_all_runtimes(
            kind,
            Transpose::No,
            tb,
            1.25,
            -0.5,
            &a,
            &b,
            &c0,
            Some((kc, 2 * mr, nc)),
            k,
        );
    }
}

/// Shape-adaptive dispatch must never change results. Every mode —
/// `Fixed` (historical 1-D M-bands), forced `Serial`, forced `Pool`
/// (which runs the 2-D `(mc × nc)` task grid), and the cost-model
/// `Auto` pick — must be bit-identical to the serial uncached run, for
/// every kernel, cached and uncached, on shapes where `m % mc != 0`
/// AND `n % nc != 0` AND `n % nr != 0`: ragged trailing M-band, ragged
/// trailing `jj` panel, and a ragged trailing sliver *inside* the grid
/// cells all at once.
#[test]
fn dispatch_modes_conform_on_ragged_grid_cells() {
    for kind in MicroKernelKind::ALL {
        let (mr, nr) = (kind.mr(), kind.nr());
        let (kc, mc, nc) = (16, 2 * mr, 4 * nr);
        let (m, n, k) = (2 * mc + 3, nc + 2 * nr + 1, kc + 7);
        assert!(m % mc != 0 && n % nc != 0 && n % nr != 0);
        let a = Matrix::random(m, k, 131);
        let b = Matrix::random(k, n, 132);
        let c0 = Matrix::random(m, n, 133);

        // serial uncached bitwise reference
        let mut base = c0.clone();
        let serial = GemmConfig::for_kernel(kind, 1).with_blocks(kc, mc, nc);
        try_gemm(
            Transpose::No,
            Transpose::No,
            1.25,
            &a.view(),
            &b.view(),
            -0.5,
            &mut base.view_mut(),
            &serial,
        )
        .unwrap();

        for cached in [false, true] {
            for mode in [
                DispatchMode::Fixed,
                DispatchMode::Serial,
                DispatchMode::Pool,
                DispatchMode::Auto,
            ] {
                let cfg = GemmConfig::for_kernel(kind, 1)
                    .with_blocks(kc, mc, nc)
                    .with_parallelism(Parallelism::Pool(4))
                    .with_pack_cache(cached)
                    .with_dispatch(mode);
                let mut c = c0.clone();
                try_gemm(
                    Transpose::No,
                    Transpose::No,
                    1.25,
                    &a.view(),
                    &b.view(),
                    -0.5,
                    &mut c.view_mut(),
                    &cfg,
                )
                .unwrap_or_else(|e| panic!("{kind:?} {mode:?} cached={cached}: {e}"));
                assert_eq!(
                    c.view().data(),
                    base.view().data(),
                    "{kind:?} {mode:?} cached={cached} ({m}x{n}x{k}): \
                     dispatch diverges bitwise from serial uncached"
                );

                // forced pool on this shape must actually run the 2-D
                // grid (3 M-bands < 2×4 workers forces a column split);
                // tolerate a concurrent test overwriting last_dispatch.
                if mode == DispatchMode::Pool {
                    let status = dgemm_core::pool::status();
                    let d = status.last_dispatch.expect("decision published");
                    if (d.m, d.n, d.k) == (m, n, k) {
                        assert!(d.forced);
                        assert!(d.n_split >= 2, "forced pool skipped the grid: {d:?}");
                    }
                }
            }
        }
        f64::pack_cache().invalidate(&b.view());
    }
}

/// The environment-driven configuration (what the CI conformance and
/// dispatch matrices vary: `DGEMM_NUM_THREADS`, `DGEMM_PACK_CACHE`,
/// `DGEMM_DISPATCH`) conforms on a shape large enough to engage
/// several layer-3 blocks.
#[test]
fn auto_config_conforms_in_this_environment() {
    let cfg = GemmConfig::auto().expect("auto config must parse in CI environments");
    let (m, n, k) = (97, 64, 51);
    let a = Matrix::random(m, k, 91);
    let b = Matrix::random(k, n, 92);
    let c0 = Matrix::random(m, n, 93);

    let mut want = c0.clone();
    naive_gemm(
        Transpose::No,
        Transpose::No,
        1.5,
        &a.view(),
        &b.view(),
        -0.25,
        &mut want.view_mut(),
    );

    // the serial uncached reference for bitwise comparison
    let serial = cfg
        .with_parallelism(Parallelism::Serial)
        .with_pack_cache(false);
    let mut base = c0.clone();
    try_gemm(
        Transpose::No,
        Transpose::No,
        1.5,
        &a.view(),
        &b.view(),
        -0.25,
        &mut base.view_mut(),
        &serial,
    )
    .unwrap();

    let mut got = c0.clone();
    try_gemm(
        Transpose::No,
        Transpose::No,
        1.5,
        &a.view(),
        &b.view(),
        -0.25,
        &mut got.view_mut(),
        &cfg,
    )
    .unwrap();

    assert!(got.max_abs_diff(&want) <= gemm_tolerance(k, 4.0));
    assert_eq!(
        got.view().data(),
        base.view().data(),
        "auto() configuration (threads={}, cache={}) diverges bitwise from serial",
        cfg.threads(),
        cfg.pack_cache
    );
    if cfg.pack_cache {
        f64::pack_cache().invalidate(&b.view());
    }
}
