//! Chaos soak for the serving layer (`fault-injection` feature only).
//!
//! For every seed, [`FaultPlan::from_seed_service`] arms exactly one
//! fault across the seven sites — the five pool-level ones (worker
//! panic, stalled worker, spawn failure, allocation failure, worker
//! death) plus the two service-level ones (queue stall, coalesced-batch
//! panic) — and a concurrent multi-tenant load is driven through a
//! [`GemmService`]. The gate, the same one CI's chaos-soak job holds:
//!
//! * **No lost responses** — every admitted request resolves exactly
//!   once (every ticket's `wait` returns).
//! * **No incorrect responses** — every `Ok` result is bit-identical
//!   to the direct serial `gemm()` oracle; every failure is a typed
//!   [`ServiceError`]. Never a hang, an abort, or silent corruption.
//! * **Recovery** — after the plan is cleared, the same service serves
//!   an exact result immediately.
//!
//! Replay one seed in isolation with
//! `DGEMM_FAULT_SEED=n cargo test -p dgemm-core --features
//! fault-injection --test service_chaos seeded_service_run_from_env`.

#![cfg(feature = "fault-injection")]

use dgemm_core::faults::{self, FaultPlan};
use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::Parallelism;
use dgemm_core::service::{GemmService, ServiceConfig, ServiceError};
use dgemm_core::Transpose;
use std::sync::{Arc, Mutex};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

const M: usize = 97;
const N: usize = 54;
const K: usize = 50;
const TENANTS: usize = 3;
const PER_TENANT: usize = 4;

/// Small blocks (many tasks per epoch, so block-level faults actually
/// fire) and a short watchdog (so seeded stalls trip it rather than
/// merely slowing the suite).
fn gemm_cfg() -> GemmConfig {
    GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1)
        .with_blocks(24, 16, 18)
        .with_parallelism(Parallelism::Pool(4))
        .with_epoch_timeout(Some(Duration::from_millis(20)))
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        queue_limit: 64,
        coalesce: 4,
        cache_entries: 4,
        unhealthy_cooldown: Duration::from_millis(50),
        gemm: gemm_cfg(),
        ..ServiceConfig::default()
    }
}

fn a_mat(tenant: usize, i: usize) -> Matrix {
    Matrix::random(M, K, 1000 + (tenant * PER_TENANT + i) as u64)
}

fn b_mat(tenant: usize) -> Matrix {
    Matrix::random(K, N, 2000 + tenant as u64)
}

/// Serial oracle under the identical kernel/blocking — bit-identical to
/// anything the service legitimately serves.
fn oracle(tenant: usize, i: usize) -> Matrix {
    let a = a_mat(tenant, i);
    let b = b_mat(tenant);
    let mut c = Matrix::zeros(M, N);
    let serial = gemm_cfg().with_parallelism(Parallelism::Serial);
    gemm(
        Transpose::No,
        Transpose::No,
        1.25,
        &a.view(),
        &b.view(),
        0.0,
        &mut c.view_mut(),
        &serial,
    );
    c
}

/// Drive the multi-tenant load against `svc` and audit every outcome.
/// Returns how many requests resolved `Ok`.
fn drive_and_audit(svc: &GemmService, seed: u64, oracles: &[Vec<Matrix>]) -> usize {
    // Submit concurrently from one thread per tenant — admission, the
    // queue and the per-tenant quotas are exercised under contention.
    let tickets: Vec<Vec<_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|t| {
                let svc = &*svc;
                scope.spawn(move || {
                    let b = Arc::new(b_mat(t));
                    (0..PER_TENANT)
                        .map(|i| {
                            let a = Arc::new(a_mat(t, i));
                            // One request per tenant races a short
                            // deadline against the injected stall; the
                            // rest are unbounded.
                            let deadline = (i == PER_TENANT - 1).then(|| Duration::from_millis(15));
                            svc.submit_with_deadline(
                                &format!("tenant-{t}"),
                                1.25,
                                a,
                                Transpose::No,
                                Arc::clone(&b),
                                deadline,
                            )
                            .expect("the bound is far above the offered load")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter"))
            .collect()
    });

    // Every ticket resolves exactly once: `wait` returning *is* the
    // no-lost-responses gate (a hang here fails the suite's timeout).
    let mut served = 0;
    for (t, tenant_tickets) in tickets.into_iter().enumerate() {
        for (i, ticket) in tenant_tickets.into_iter().enumerate() {
            match ticket.wait() {
                Ok(c) => {
                    assert_eq!(
                        c.as_slice(),
                        oracles[t][i].as_slice(),
                        "seed {seed}: served result for tenant {t} req {i} must be bit-identical"
                    );
                    served += 1;
                }
                Err(e @ (ServiceError::DeadlineExceeded { .. } | ServiceError::Rejected(_))) => {
                    let _ = e.to_string(); // typed and displayable
                }
                Err(e @ ServiceError::Overloaded { .. }) => {
                    panic!("seed {seed}: admitted request resolved Overloaded: {e}")
                }
            }
        }
    }
    served
}

fn check_seed(seed: u64, oracles: &[Vec<Matrix>]) {
    faults::install(FaultPlan::from_seed_service(seed));
    let svc = GemmService::new(service_cfg());
    drive_and_audit(&svc, seed, oracles);
    faults::clear();

    // Recovery: with the plan cleared, the same service instance
    // (same shard, possibly just quarantined) serves exactly.
    let a = Arc::new(a_mat(0, 0));
    let b = Arc::new(b_mat(0));
    let got = svc
        .submit("tenant-0", 1.25, a, Transpose::No, b)
        .expect("healthy admission")
        .wait()
        .unwrap_or_else(|e| panic!("seed {seed}: healthy call after clearing failed: {e}"));
    assert_eq!(
        got.as_slice(),
        oracles[0][0].as_slice(),
        "seed {seed}: service must serve exact results once the fault is cleared"
    );
    svc.shutdown();
}

fn all_oracles() -> Vec<Vec<Matrix>> {
    (0..TENANTS)
        .map(|t| (0..PER_TENANT).map(|i| oracle(t, i)).collect())
        .collect()
}

#[test]
fn every_seeded_service_fault_keeps_the_exactly_once_contract() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    let oracles = all_oracles();
    for seed in 0..42 {
        check_seed(seed, &oracles);
    }
    // Let any injected stall drain before other suites run.
    std::thread::sleep(Duration::from_millis(100));
}

/// A healthy (fault-free) service under the same concurrent load sheds
/// nothing and serves everything — the bounded-shed-rate half of the
/// CI gate.
#[test]
fn healthy_service_serves_the_full_load_without_shedding() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    let oracles = all_oracles();
    let svc = GemmService::new(ServiceConfig {
        deadline: None,
        ..service_cfg()
    });
    // No deadlines in the healthy sweep: drive_and_audit's short-fuse
    // request may still miss under scheduler jitter, so allow it, but
    // everything else must be served.
    let served = drive_and_audit(&svc, u64::MAX, &oracles);
    assert!(
        served >= TENANTS * (PER_TENANT - 1),
        "healthy pool served only {served}/{} requests",
        TENANTS * PER_TENANT
    );
    let status = svc.status_json();
    assert!(status.contains("\"shed_overload\":0"), "{status}");
    assert!(status.contains("\"shed_quota\":0"), "{status}");
}

/// Replay a single seed supplied via `DGEMM_FAULT_SEED` (the CI
/// chaos-soak job sweeps this).
#[test]
fn seeded_service_run_from_env() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    let seed = match std::env::var("DGEMM_FAULT_SEED") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(s) => s,
            Err(_) => return,
        },
        Err(_) => return, // not set: nothing to replay
    };
    faults::clear();
    let oracles = all_oracles();
    check_seed(seed, &oracles);
}
