//! Behavioural contract of the admission-controlled serving layer
//! (DESIGN.md §15): served results are bit-identical to direct
//! [`dgemm_core::gemm::gemm`], overload and quota sheds are typed and
//! immediate, deadlines and cancellation resolve with typed errors,
//! same-weight requests coalesce into one shared-`op(B)` batch, and a
//! shutdown drains every admitted request to a resolution.
//!
//! Timing in these tests never decides *correctness* — it only widens
//! the window in which the scheduler is provably busy (a deliberately
//! large serial request) so that queue-buildup behaviour is
//! deterministic to observe.

use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::service::{GemmService, ServiceConfig, ServiceError};
use dgemm_core::Transpose;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// The kernel/blocking every test (and its serial reference) runs
/// under, so the cross-runtime bitwise contract applies.
fn gemm_cfg() -> GemmConfig {
    GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1)
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        gemm: gemm_cfg(),
        ..ServiceConfig::default()
    }
}

/// Serial oracle: `alpha · A · op(B)` with the same kernel and blocking
/// the service executes under — bit-identical by the runtime contract.
fn reference(alpha: f64, a: &Matrix, transb: Transpose, b: &Matrix) -> Matrix {
    let (_, n) = transb.apply_dims(b.rows(), b.cols());
    let mut c = Matrix::zeros(a.rows(), n);
    gemm(
        Transpose::No,
        transb,
        alpha,
        &a.view(),
        &b.view(),
        0.0,
        &mut c.view_mut(),
        &gemm_cfg(),
    );
    c
}

/// Start a service and park its scheduler on a deliberately large
/// serial multiplication, so follow-up submissions provably queue.
fn occupy(svc: &GemmService) -> dgemm_core::service::Ticket {
    let a = Arc::new(Matrix::random(600, 600, 901));
    let b = Arc::new(Matrix::random(600, 600, 902));
    let t = svc
        .submit("busy-filler", 1.0, a, Transpose::No, b)
        .expect("filler admitted");
    // Give the scheduler time to dequeue the filler; it then computes
    // for tens of milliseconds while the test enqueues behind it.
    std::thread::sleep(Duration::from_millis(30));
    t
}

#[test]
fn served_results_are_bit_identical_to_direct_gemm() {
    let svc = GemmService::new(service_cfg());
    for (i, (m, n, k, alpha, transb)) in [
        (64, 48, 32, 1.0, Transpose::No),
        (33, 65, 17, -0.5, Transpose::No),
        (80, 24, 56, 2.25, Transpose::Yes),
        (1, 1, 1, 3.0, Transpose::No),
    ]
    .into_iter()
    .enumerate()
    {
        let a = Arc::new(Matrix::random(m, k, 100 + i as u64));
        let b = match transb {
            Transpose::No => Arc::new(Matrix::random(k, n, 200 + i as u64)),
            Transpose::Yes => Arc::new(Matrix::random(n, k, 200 + i as u64)),
        };
        let got = svc
            .submit(
                &format!("tenant-{i}"),
                alpha,
                Arc::clone(&a),
                transb,
                Arc::clone(&b),
            )
            .expect("admitted")
            .wait()
            .expect("served");
        let want = reference(alpha, &a, transb, &b);
        assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "case {i} must be bit-identical"
        );
    }
}

#[test]
fn queue_overflow_sheds_with_typed_overloaded() {
    let cfg = ServiceConfig {
        queue_limit: 4,
        coalesce: 1,
        ..service_cfg()
    };
    let svc = GemmService::new(cfg);
    let filler = occupy(&svc);
    let a = Arc::new(Matrix::random(8, 8, 1));
    let b = Arc::new(Matrix::random(8, 8, 2));
    let mut tickets = Vec::new();
    for _ in 0..4 {
        tickets.push(
            svc.submit("t", 1.0, Arc::clone(&a), Transpose::No, Arc::clone(&b))
                .expect("within the bound"),
        );
    }
    match svc.submit("t2", 1.0, Arc::clone(&a), Transpose::No, Arc::clone(&b)) {
        Err(ServiceError::Overloaded { queue_depth, limit }) => {
            assert_eq!(limit, 4);
            assert_eq!(queue_depth, 4);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Shedding lost nothing that was admitted: every ticket resolves
    // with the exact result.
    let want = reference(1.0, &a, Transpose::No, &b);
    filler.wait().expect("filler served");
    for t in tickets {
        assert_eq!(t.wait().expect("served").as_slice(), want.as_slice());
    }
    let status = svc.status_json();
    assert!(status.contains("\"shed_overload\":1"), "{status}");
}

#[test]
fn tenant_quota_sheds_independently_of_other_tenants() {
    let cfg = ServiceConfig {
        tenant_quota: 2,
        coalesce: 1,
        ..service_cfg()
    };
    let svc = GemmService::new(cfg);
    let filler = occupy(&svc);
    let a = Arc::new(Matrix::random(8, 8, 1));
    let b = Arc::new(Matrix::random(8, 8, 2));
    let t1 = svc
        .submit("greedy", 1.0, Arc::clone(&a), Transpose::No, Arc::clone(&b))
        .expect("1st");
    let t2 = svc
        .submit("greedy", 1.0, Arc::clone(&a), Transpose::No, Arc::clone(&b))
        .expect("2nd");
    match svc.submit("greedy", 1.0, Arc::clone(&a), Transpose::No, Arc::clone(&b)) {
        Err(ServiceError::Overloaded { queue_depth, limit }) => {
            assert_eq!((queue_depth, limit), (2, 2));
        }
        other => panic!("expected quota shed, got {other:?}"),
    }
    // Another tenant is unaffected by greedy's quota.
    let t3 = svc
        .submit("modest", 1.0, Arc::clone(&a), Transpose::No, Arc::clone(&b))
        .expect("other tenant admitted");
    let want = reference(1.0, &a, Transpose::No, &b);
    for t in [filler, t1, t2, t3] {
        t.wait().expect("served");
    }
    let status = svc.status_json();
    assert!(status.contains("\"shed_quota\":1"), "{status}");
    let _ = want;
}

#[test]
fn expired_deadline_resolves_as_deadline_exceeded() {
    let svc = GemmService::new(service_cfg());
    let filler = occupy(&svc);
    let a = Arc::new(Matrix::random(8, 8, 1));
    let b = Arc::new(Matrix::random(8, 8, 2));
    let t = svc
        .submit_with_deadline(
            "t",
            1.0,
            a,
            Transpose::No,
            b,
            Some(Duration::from_millis(1)),
        )
        .expect("admitted");
    assert_eq!(
        t.wait(),
        Err(ServiceError::DeadlineExceeded { budget_ms: 1 }),
        "queued past its deadline behind the filler"
    );
    filler.wait().expect("filler served");
    let status = svc.status_json();
    assert!(status.contains("\"deadline_misses\":1"), "{status}");
}

#[test]
fn cancelled_ticket_resolves_rejected() {
    let svc = GemmService::new(service_cfg());
    let filler = occupy(&svc);
    let a = Arc::new(Matrix::random(8, 8, 1));
    let b = Arc::new(Matrix::random(8, 8, 2));
    let t = svc.submit("t", 1.0, a, Transpose::No, b).expect("admitted");
    t.cancel();
    assert_eq!(t.wait(), Err(ServiceError::Rejected("cancelled by caller")));
    filler.wait().expect("filler served");
}

#[test]
fn same_weight_requests_coalesce_into_one_shared_b_batch() {
    let svc = GemmService::new(service_cfg());
    let filler = occupy(&svc);
    let a_mats: Vec<Arc<Matrix>> = (0..4)
        .map(|i| Arc::new(Matrix::random(24, 16, 300 + i)))
        .collect();
    let b = Arc::new(Matrix::random(16, 40, 310));
    let tickets: Vec<_> = a_mats
        .iter()
        .map(|a| {
            svc.submit(
                "coalesce-me",
                1.5,
                Arc::clone(a),
                Transpose::No,
                Arc::clone(&b),
            )
            .expect("admitted")
        })
        .collect();
    filler.wait().expect("filler served");
    for (a, t) in a_mats.iter().zip(tickets) {
        let want = reference(1.5, a, Transpose::No, &b);
        assert_eq!(t.wait().expect("served").as_slice(), want.as_slice());
    }
    let status = svc.status_json();
    assert!(status.contains("\"coalesced_batches\":1"), "{status}");
    assert!(status.contains("\"coalesced_requests\":4"), "{status}");
}

#[test]
fn shutdown_drains_every_admitted_request() {
    let svc = GemmService::new(service_cfg());
    let filler = occupy(&svc);
    let a = Arc::new(Matrix::random(16, 16, 1));
    let b = Arc::new(Matrix::random(16, 16, 2));
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            svc.submit(
                &format!("t{}", i % 3),
                1.0,
                Arc::clone(&a),
                Transpose::No,
                Arc::clone(&b),
            )
            .expect("admitted")
        })
        .collect();
    svc.shutdown();
    // Shutdown returned only after the drain: everything admitted has
    // its exact answer waiting.
    let want = reference(1.0, &a, Transpose::No, &b);
    filler.wait().expect("filler served");
    for t in tickets {
        assert_eq!(
            t.wait().expect("served despite shutdown").as_slice(),
            want.as_slice()
        );
    }
}

#[test]
fn invalid_shapes_are_rejected_at_admission() {
    let svc = GemmService::new(service_cfg());
    let a = Arc::new(Matrix::random(8, 9, 1));
    let b = Arc::new(Matrix::random(8, 8, 2)); // op(B) has 8 rows ≠ 9
    assert_eq!(
        svc.submit("t", 1.0, a, Transpose::No, b).err(),
        Some(ServiceError::Rejected(
            "inner dimensions of A and op(B) disagree"
        ))
    );
    let empty = Arc::new(Matrix::zeros(0, 0));
    assert_eq!(
        svc.submit("t", 1.0, Arc::clone(&empty), Transpose::No, empty)
            .err(),
        Some(ServiceError::Rejected("empty matrix dimensions"))
    );
}

#[test]
fn healthy_pool_serves_a_stream_without_shedding() {
    let svc = GemmService::new(service_cfg());
    let b = Arc::new(Matrix::random(32, 32, 7));
    for i in 0..20 {
        let a = Arc::new(Matrix::random(32, 32, 500 + i));
        let got = svc
            .submit("stream", 1.0, Arc::clone(&a), Transpose::No, Arc::clone(&b))
            .expect("healthy pool admits")
            .wait()
            .expect("healthy pool serves");
        let want = reference(1.0, &a, Transpose::No, &b);
        assert_eq!(got.as_slice(), want.as_slice());
    }
    let status = svc.status_json();
    assert!(status.contains("\"schema\":\"dgemm-telem-v1\""), "{status}");
    assert!(status.contains("\"shed_overload\":0"), "{status}");
    assert!(status.contains("\"shed_quota\":0"), "{status}");
    assert!(status.contains("\"completed\":20"), "{status}");
    assert!(status.contains("\"queue_depth\":0"), "{status}");
}

#[test]
fn service_config_parses_and_rejects_env() {
    let _guard = env_lock();
    for v in [
        "DGEMM_SERVICE_QUEUE",
        "DGEMM_SERVICE_TENANT_QUOTA",
        "DGEMM_SERVICE_DEADLINE_MS",
        "DGEMM_SERVICE_SHARDS",
        "DGEMM_SERVICE_RETRIES",
        "DGEMM_SERVICE_COALESCE",
        "DGEMM_SERVICE_CACHE_ENTRIES",
    ] {
        std::env::remove_var(v);
    }
    let cfg = ServiceConfig::from_env().expect("defaults");
    assert_eq!(cfg.queue_limit, 256);
    assert_eq!(cfg.tenant_quota, 256);
    assert_eq!(cfg.deadline, None);
    std::env::set_var("DGEMM_SERVICE_QUEUE", "32");
    std::env::set_var("DGEMM_SERVICE_DEADLINE_MS", "250");
    std::env::set_var("DGEMM_SERVICE_SHARDS", "2");
    std::env::set_var("DGEMM_SERVICE_COALESCE", "4");
    let cfg = ServiceConfig::from_env().expect("parses");
    assert_eq!(cfg.queue_limit, 32);
    assert_eq!(cfg.tenant_quota, 32, "quota defaults to the queue bound");
    assert_eq!(cfg.deadline, Some(Duration::from_millis(250)));
    assert_eq!(cfg.shards, 2);
    assert_eq!(cfg.coalesce, 4);
    std::env::set_var("DGEMM_SERVICE_QUEUE", "banana");
    assert!(
        ServiceConfig::from_env().is_err(),
        "garbage is a typed error"
    );
    std::env::set_var("DGEMM_SERVICE_QUEUE", "0");
    assert!(
        ServiceConfig::from_env().is_err(),
        "zero bound is a typed error"
    );
    for v in [
        "DGEMM_SERVICE_QUEUE",
        "DGEMM_SERVICE_DEADLINE_MS",
        "DGEMM_SERVICE_SHARDS",
        "DGEMM_SERVICE_COALESCE",
    ] {
        std::env::remove_var(v);
    }
}

#[test]
fn dedicated_shards_serve_bit_identically_to_the_global_pool() {
    let sharded = GemmService::new(ServiceConfig {
        shards: 2,
        ..service_cfg()
    });
    let global = GemmService::new(ServiceConfig {
        shards: 0,
        ..service_cfg()
    });
    let a = Arc::new(Matrix::random(96, 64, 41));
    let b = Arc::new(Matrix::random(64, 72, 42));
    let want = reference(1.0, &a, Transpose::No, &b);
    for svc in [&sharded, &global] {
        let got = svc
            .submit("t", 1.0, Arc::clone(&a), Transpose::No, Arc::clone(&b))
            .expect("admitted")
            .wait()
            .expect("served");
        assert_eq!(got.as_slice(), want.as_slice());
    }
}
