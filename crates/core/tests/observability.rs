//! Golden-schema contract of the observability surface (DESIGN.md §16):
//! the `/metrics` body passes a Prometheus text-exposition grammar
//! check (typed families, monotone cumulative buckets, `_sum`/`_count`
//! consistency), the `/status` body is syntactically valid
//! `dgemm-telem-v1` JSON with every schema field present, the log2
//! latency histograms are bucket-exact against a recomputation, and a
//! served request's trace chain covers its lifecycle.
//!
//! Everything here runs with the `trace` feature on or off: the
//! histogram/journal surface is always compiled, and the
//! ring-dependent assertions guard on [`trace::enabled`].

use dgemm_core::gemm::GemmConfig;
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::service::{GemmService, ServiceConfig, ServiceError};
use dgemm_core::trace::{self, HealthEventKind, LatencyHistogram, TraceKind, HIST_BUCKETS};
use dgemm_core::util::SplitMix64;
use dgemm_core::Transpose;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        gemm: GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1),
        ..ServiceConfig::default()
    }
}

/// Push a small mixed-tenant workload through `svc`; returns the ticket
/// IDs in submission order.
fn run_workload(svc: &GemmService) -> Vec<u64> {
    let b = Arc::new(Matrix::random(48, 64, 2));
    let mut ids = Vec::new();
    let mut tickets = Vec::new();
    for i in 0..10u64 {
        let a = Arc::new(Matrix::random(32, 48, 100 + i));
        let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
        let t = svc
            .submit(tenant, 1.0, a, Transpose::No, Arc::clone(&b))
            .expect("healthy service admits the workload");
        ids.push(t.id());
        tickets.push(t);
    }
    for t in tickets {
        t.wait().expect("healthy service serves the workload");
    }
    ids
}

// ---------------------------------------------------------------------
// Prometheus text-exposition grammar.
// ---------------------------------------------------------------------

/// One parsed sample line: metric name, sorted labels, value.
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

/// Parse a `name{label="v",...} value` line; panics (with the line)
/// on anything the exposition grammar would reject.
fn parse_sample(line: &str) -> Sample {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("sample without value: {line:?}"));
    let value: f64 = value
        .parse()
        .unwrap_or_else(|_| panic!("unparseable sample value: {line:?}"));
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels.to_string(), BTreeMap::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set: {line:?}"));
            let mut labels = BTreeMap::new();
            for pair in body.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .unwrap_or_else(|| panic!("label without '=': {line:?}"));
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .unwrap_or_else(|| panic!("unquoted label value: {line:?}"));
                assert!(
                    !k.is_empty() && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "bad label name in {line:?}"
                );
                labels.insert(k.to_string(), v.to_string());
            }
            (name.to_string(), labels)
        }
    };
    assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && name.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_'),
        "bad metric name: {line:?}"
    );
    Sample {
        name,
        labels,
        value,
    }
}

/// The family a sample belongs to: histogram samples strip their
/// `_bucket`/`_sum`/`_count` suffix iff the stripped base is a declared
/// histogram family.
fn family_of<'n>(name: &'n str, types: &BTreeMap<String, String>) -> &'n str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

#[test]
fn metrics_text_passes_exposition_grammar() {
    let svc = GemmService::new(service_cfg());
    run_workload(&svc);
    let text = svc.metrics_text();
    assert!(text.ends_with('\n'), "exposition must end with a newline");

    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (fam, ty) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("bad TYPE line: {line:?}"));
            assert!(
                ["counter", "gauge", "histogram"].contains(&ty),
                "unknown TYPE: {line:?}"
            );
            assert!(
                types.insert(fam.to_string(), ty.to_string()).is_none(),
                "duplicate TYPE for {fam}"
            );
        } else {
            assert!(!line.starts_with('#'), "non-TYPE comment: {line:?}");
            samples.push(parse_sample(line));
        }
    }

    // Every sample belongs to a declared family; counters are
    // non-negative integers.
    for s in &samples {
        let fam = family_of(&s.name, &types);
        let ty = types
            .get(fam)
            .unwrap_or_else(|| panic!("sample {} has no # TYPE header", s.name));
        if ty == "counter" {
            assert!(
                s.value >= 0.0 && s.value.fract() == 0.0,
                "counter {} not a non-negative integer: {}",
                s.name,
                s.value
            );
        }
    }

    // The workload must have produced at least the service counters and
    // one histogram family.
    assert!(types.contains_key("dgemm_service_admitted_total"));
    assert_eq!(
        types
            .get("dgemm_request_total_latency_us")
            .map(String::as_str),
        Some("histogram"),
        "served workload must expose the total-latency histogram"
    );

    // Histogram internal consistency, per (family, series-labels):
    // cumulative buckets monotone in le, +Inf present and equal to
    // _count, _sum present.
    for (fam, ty) in &types {
        if ty != "histogram" {
            continue;
        }
        let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new(); // labels -> (le, cum)
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        let mut sums: BTreeMap<String, f64> = BTreeMap::new();
        for s in &samples {
            let mut labels = s.labels.clone();
            let le = labels.remove("le");
            let key = format!("{labels:?}");
            if s.name == format!("{fam}_bucket") {
                let le = le.unwrap_or_else(|| panic!("{fam}_bucket without le"));
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap_or_else(|_| panic!("bad le: {le:?}"))
                };
                series.entry(key).or_default().push((le, s.value));
            } else if s.name == format!("{fam}_count") {
                counts.insert(key, s.value);
            } else if s.name == format!("{fam}_sum") {
                sums.insert(key, s.value);
            }
        }
        assert!(
            !series.is_empty(),
            "declared histogram {fam} has no buckets"
        );
        for (key, buckets) in &series {
            assert!(
                buckets.windows(2).all(|w| w[0].0 < w[1].0),
                "{fam}{key}: le not strictly increasing"
            );
            assert!(
                buckets.windows(2).all(|w| w[0].1 <= w[1].1),
                "{fam}{key}: cumulative buckets not monotone"
            );
            let (last_le, inf_cum) = *buckets.last().expect("non-empty");
            assert!(last_le.is_infinite(), "{fam}{key}: missing +Inf bucket");
            assert_eq!(
                counts.get(key),
                Some(&inf_cum),
                "{fam}{key}: _count disagrees with the +Inf bucket"
            );
            assert!(sums.contains_key(key), "{fam}{key}: missing _sum");
        }
    }
    svc.shutdown();
}

// ---------------------------------------------------------------------
// /status JSON schema.
// ---------------------------------------------------------------------

/// Minimal recursive-descent JSON syntax checker: consumes one value,
/// returns the rest. Panics (with offset context) on invalid JSON.
fn skip_json(s: &str) -> &str {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next().map(|(_, c)| c) {
        Some('{') => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix('}') {
                return r;
            }
            loop {
                rest = rest.trim_start();
                assert!(
                    rest.starts_with('"'),
                    "object key must be a string: {rest:.40?}"
                );
                rest = skip_json(rest).trim_start();
                rest = rest
                    .strip_prefix(':')
                    .unwrap_or_else(|| panic!("missing ':' in object: {rest:.40?}"));
                rest = skip_json(rest).trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r;
                } else {
                    return rest
                        .strip_prefix('}')
                        .unwrap_or_else(|| panic!("unterminated object: {rest:.40?}"));
                }
            }
        }
        Some('[') => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix(']') {
                return r;
            }
            loop {
                rest = skip_json(rest).trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r;
                } else {
                    return rest
                        .strip_prefix(']')
                        .unwrap_or_else(|| panic!("unterminated array: {rest:.40?}"));
                }
            }
        }
        Some('"') => {
            let mut escaped = false;
            for (i, c) in chars {
                match c {
                    _ if escaped => escaped = false,
                    '\\' => escaped = true,
                    '"' => return &s[i + 1..],
                    _ => {}
                }
            }
            panic!("unterminated string: {s:.40?}");
        }
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(s.len());
            s[..end]
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad number: {s:.40?}"));
            &s[end..]
        }
        _ => {
            for lit in ["true", "false", "null"] {
                if let Some(rest) = s.strip_prefix(lit) {
                    return rest;
                }
            }
            panic!("unexpected JSON token: {s:.40?}");
        }
    }
}

fn assert_valid_json(doc: &str) {
    let rest = skip_json(doc);
    assert!(
        rest.trim().is_empty(),
        "trailing garbage after JSON: {rest:.40?}"
    );
}

/// Extract the integer following `"field":` (first occurrence).
fn json_u64_field(doc: &str, field: &str) -> u64 {
    let pat = format!("\"{field}\":");
    let at = doc
        .find(&pat)
        .unwrap_or_else(|| panic!("status_json missing {field}: {doc}"));
    doc[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{field} is not an integer"))
}

#[test]
fn status_json_is_valid_and_carries_the_schema() {
    let svc = GemmService::new(service_cfg());
    run_workload(&svc);
    let doc = svc.status_json();
    assert_valid_json(&doc);
    assert!(doc.starts_with("{\"schema\":\"dgemm-telem-v1\",\"kind\":\"service\""));
    for field in [
        "\"queue_depth\":",
        "\"queue_limit\":",
        "\"effective_queue_limit\":",
        "\"shutdown\":",
        "\"snapshot_seq\":",
        "\"uptime_ms\":",
        "\"dispatch_mispredicts\":",
        "\"counters\":{",
        "\"admitted\":",
        "\"completed\":",
        "\"tenants\":[",
        "\"shards\":[",
        "\"histograms\":[",
        "\"events\":[",
    ] {
        assert!(doc.contains(field), "status_json missing {field}: {doc}");
    }
    // Served requests must surface in the histogram section (the
    // always-compiled side of the observability surface).
    assert!(
        doc.contains("\"metric\":\"total\""),
        "served workload produced no total-latency histogram row: {doc}"
    );

    // Staleness signals: seq strictly monotone per snapshot, uptime
    // monotone.
    let (seq0, up0) = (
        json_u64_field(&doc, "snapshot_seq"),
        json_u64_field(&doc, "uptime_ms"),
    );
    let doc2 = svc.status_json();
    assert_valid_json(&doc2);
    let (seq1, up1) = (
        json_u64_field(&doc2, "snapshot_seq"),
        json_u64_field(&doc2, "uptime_ms"),
    );
    assert!(
        seq1 > seq0,
        "snapshot_seq must be monotone: {seq0} -> {seq1}"
    );
    assert!(up1 >= up0, "uptime_ms must be monotone: {up0} -> {up1}");
    svc.shutdown();
}

// ---------------------------------------------------------------------
// Histogram exactness.
// ---------------------------------------------------------------------

#[test]
fn histogram_is_bucket_exact_against_recomputation() {
    let hist = LatencyHistogram::new();
    let mut rng = SplitMix64::new(0xB0B);
    let mut expected = [0u64; HIST_BUCKETS];
    let mut expected_overflow = 0u64;
    let mut expected_sum = 0u64;
    let mut values = Vec::new();
    for i in 0..10_000u64 {
        // Mixed magnitudes: sub-µs, mid-range, and past the top edge.
        let v = match i % 4 {
            0 => rng.next_u64() % 4,
            1 => rng.next_u64() % 5_000,
            2 => rng.next_u64() % 300_000_000,
            _ => (1u64 << 28) + rng.next_u64() % (1u64 << 36),
        };
        values.push(v);
        hist.record_us(v);
        expected_sum += v;
        let idx = LatencyHistogram::bucket_index(v);
        if idx >= HIST_BUCKETS {
            expected_overflow += 1;
        } else {
            expected[idx] += 1;
            // The log2 invariant: v fits the bucket's (prev, edge] range.
            let edge = LatencyHistogram::bucket_edge(idx);
            assert!(v <= edge, "{v} above its bucket edge {edge}");
            if idx > 0 {
                assert!(v > edge / 2, "{v} below bucket {idx}'s lower edge");
            }
        }
    }
    assert_eq!(hist.bucket_counts(), expected);
    assert_eq!(hist.overflow_count(), expected_overflow);
    assert_eq!(hist.count(), 10_000);
    assert_eq!(hist.sum_us(), expected_sum);

    // Quantiles: ordered, and each is an upper bound for at least its
    // fraction of the recorded values (the bucket-edge estimator).
    values.sort_unstable();
    let p50 = hist
        .quantile_us(0.50)
        .expect("most values are finite, so p50 exists");
    let below = values.iter().filter(|&&v| v <= p50).count();
    assert!(
        below * 2 >= values.len(),
        "p50 {p50} covers only {below}/{} values",
        values.len()
    );
    if let Some(p90) = hist.quantile_us(0.90) {
        assert!(p50 <= p90, "quantiles out of order: p50 {p50} > p90 {p90}");
    }
}

// ---------------------------------------------------------------------
// Trace chains and the health journal.
// ---------------------------------------------------------------------

#[test]
fn trace_chain_covers_the_ticket_lifecycle() {
    if !trace::enabled() || trace::mode() == trace::TraceMode::Off {
        return; // `trace` feature off / DGEMM_TRACE=off: ring is empty.
    }
    let svc = GemmService::new(service_cfg());
    // Large enough that compute dominates the bridged span accounting.
    let a = Arc::new(Matrix::random(200, 200, 7));
    let b = Arc::new(Matrix::random(200, 200, 8));
    let t = svc
        .submit("traced", 1.0, a, Transpose::No, b)
        .expect("admitted");
    let id = t.id();
    t.wait().expect("served");
    let chain = svc.trace_of(id);
    for kind in [
        TraceKind::Submitted,
        TraceKind::Admitted,
        TraceKind::Queued,
        TraceKind::Dispatched,
        TraceKind::Executed,
        TraceKind::Resolved,
    ] {
        assert!(
            chain.iter().any(|e| e.kind == kind),
            "trace {id} missing {kind:?}: {chain:?}"
        );
    }
    assert!(
        chain.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
        "trace {id} not monotone: {chain:?}"
    );
    let at = |kind| chain.iter().find(|e| e.kind == kind).expect("present");
    let submitted = at(TraceKind::Submitted).start_ns;
    let resolved = at(TraceKind::Resolved).start_ns;
    let covered = at(TraceKind::Queued).dur_ns + at(TraceKind::Executed).dur_ns;
    let latency = resolved.saturating_sub(submitted);
    assert!(latency > 0, "resolved before submitted?");
    assert!(
        covered as f64 >= 0.95 * latency as f64,
        "lifecycle spans cover {covered} of {latency} ns (< 95%)"
    );

    // The chrome-trace export renders the chain with its labels.
    let json = trace::chrome_trace_json(&chain);
    assert_valid_json(&json);
    assert!(json.contains("\"name\":\"queued\""), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    svc.shutdown();
}

#[test]
fn sheds_land_in_the_health_journal_with_trace_ids() {
    // `None` = journal empty at test start (seqs start at 0, so a 0
    // sentinel would wrongly exclude the very first event).
    let watermark = trace::health_events().last().map(|e| e.seq);
    let svc = GemmService::new(ServiceConfig {
        tenant_quota: 1,
        ..service_cfg()
    });
    // Park the scheduler on a big request so follow-ups provably queue.
    let busy = svc
        .submit(
            "filler",
            1.0,
            Arc::new(Matrix::random(600, 600, 31)),
            Transpose::No,
            Arc::new(Matrix::random(600, 600, 32)),
        )
        .expect("filler admitted");
    std::thread::sleep(Duration::from_millis(30));
    let a = Arc::new(Matrix::random(16, 16, 33));
    let b = Arc::new(Matrix::random(16, 16, 34));
    let first = svc
        .submit(
            "quota-tenant",
            1.0,
            Arc::clone(&a),
            Transpose::No,
            Arc::clone(&b),
        )
        .expect("first fits the quota");
    let mut shed_count = 0usize;
    for _ in 0..3 {
        match svc.submit(
            "quota-tenant",
            1.0,
            Arc::clone(&a),
            Transpose::No,
            Arc::clone(&b),
        ) {
            Err(ServiceError::Overloaded { .. }) => shed_count += 1,
            other => panic!("expected quota shed, got {other:?}"),
        }
    }
    let events = trace::health_events();
    let sheds: Vec<_> = events
        .iter()
        .filter(|e| watermark.is_none_or(|w| e.seq > w) && e.kind == HealthEventKind::Shed)
        .filter(|e| e.cause.contains("quota"))
        .collect();
    assert!(
        sheds.len() >= shed_count,
        "journal lost quota sheds: {} < {shed_count}",
        sheds.len(),
    );
    // Trace IDs are always assigned at admission (feature-independent),
    // so every shed entry is attributable.
    assert!(
        sheds.iter().all(|e| e.trace != 0),
        "shed journal entries must carry trace IDs: {sheds:?}"
    );
    busy.wait().expect("filler serves");
    first.wait().expect("first quota request serves");
    svc.shutdown();
}
