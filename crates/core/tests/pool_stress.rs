//! Concurrency stress for the persistent worker pool: many caller
//! threads hammer the one process-wide pool with small GEMMs, and every
//! result must be *bit-identical* to the serial walk — the pool never
//! changes any element's accumulation order, it only reorders disjoint
//! `mc`-block updates.

use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::pool::Parallelism;
use dgemm_core::Transpose;
use proptest::prelude::*;

/// Compute `C := α·A·B + β·C` under the given runtime.
fn run(
    par: Parallelism,
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
    blocks: (usize, usize, usize),
) -> Matrix {
    let a = Matrix::random(m, k, seed);
    let b = Matrix::random(k, n, seed + 1);
    let mut c = Matrix::random(m, n, seed + 2);
    let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 1)
        .with_blocks(blocks.0, blocks.1, blocks.2)
        .with_parallelism(par);
    gemm(
        Transpose::No,
        Transpose::No,
        1.5,
        &a.view(),
        &b.view(),
        -0.25,
        &mut c.view_mut(),
        &cfg,
    );
    c
}

/// Many caller threads sharing the one global pool, each issuing a
/// stream of small GEMMs. Every pooled result must equal the serial
/// result exactly, under contention, for every caller.
#[test]
fn concurrent_callers_share_one_pool() {
    const CALLERS: usize = 8;
    const REPS: usize = 12;
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|t| {
                scope.spawn(move || {
                    let mut bad = Vec::new();
                    for r in 0..REPS {
                        let seed = (t * REPS + r) as u64;
                        // shapes vary per caller/rep to stagger epochs
                        let m = 16 + 9 * t + r;
                        let n = 10 + 5 * ((t + r) % 4);
                        let k = 8 + 7 * (r % 5);
                        let want = run(Parallelism::Serial, m, n, k, seed, (24, 16, 18));
                        let got = run(Parallelism::Pool(4), m, n, k, seed, (24, 16, 18));
                        if got.max_abs_diff(&want) != 0.0 {
                            bad.push(format!("caller {t} rep {r}: {m}x{n}x{k} diverged"));
                        }
                    }
                    bad
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stress caller panicked"))
            .collect()
    });
    assert!(errors.is_empty(), "{errors:?}");
}

/// A caller with a degree far above the machine's core count still
/// completes and agrees with serial (callers help drain the queue, so
/// over-subscription can stall nothing).
#[test]
fn oversubscribed_degree_completes() {
    let want = run(Parallelism::Serial, 150, 90, 64, 77, (32, 16, 24));
    let got = run(Parallelism::Pool(64), 150, 90, 64, 77, (32, 16, 24));
    assert_eq!(got.max_abs_diff(&want), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: pooled output is bit-identical to `threads = 1` for
    /// arbitrary ragged shapes, degrees and (hostile) block sizes.
    #[test]
    fn pooled_bit_identical_to_serial(
        m in 1usize..80,
        n in 1usize..60,
        k in 1usize..50,
        degree in 2usize..7,
        kc in 4usize..40,
        mc_mult in 1usize..4,
        nc_mult in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let mr = MicroKernelKind::Mk8x6.mr();
        let nr = MicroKernelKind::Mk8x6.nr();
        let blocks = (kc, mr * mc_mult, nr * nc_mult);
        let want = run(Parallelism::Serial, m, n, k, seed, blocks);
        let got = run(Parallelism::Pool(degree), m, n, k, seed, blocks);
        prop_assert_eq!(got.max_abs_diff(&want), 0.0);
    }
}
