//! Semantics of the pre-packed-B cache: exact accounting, the LRU
//! capacity bound, the coherence contract (stale-by-design until
//! invalidated), and concurrent sharing.
//!
//! Every test that touches the process-wide `f64` cache or the global
//! telemetry counters takes [`LOCK`] first: the accounting assertions
//! here are *exact*, which is only meaningful when no other test is
//! moving the counters concurrently. (The per-instance tests on local
//! [`PackCache`]s still take it, because local caches mirror their
//! events into the same global telemetry counters.)

use std::sync::Mutex;

use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::pool::PoolScalar;
use dgemm_core::prepack::{CacheStats, PackCache};
use dgemm_core::telemetry;
use dgemm_core::{Parallelism, Transpose};

/// Serializes every test in this binary (see module docs).
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small cached configuration (serial: the runtime is irrelevant to
/// the accounting, and serial keeps the counters deterministic).
fn cached_cfg() -> GemmConfig {
    GemmConfig::default()
        .with_blocks(8, 16, 12)
        .with_pack_cache(true)
}

fn run_gemm(a: &Matrix, b: &Matrix, c0: &Matrix, cfg: &GemmConfig) -> Matrix {
    let mut c = c0.clone();
    gemm(
        Transpose::No,
        Transpose::No,
        1.5,
        &a.view(),
        &b.view(),
        -0.5,
        &mut c.view_mut(),
        cfg,
    );
    c
}

fn stats_delta(after: CacheStats, before: CacheStats) -> (u64, u64, u64, u64, u64) {
    (
        after.hits - before.hits,
        after.misses - before.misses,
        after.evictions - before.evictions,
        after.invalidations - before.invalidations,
        after.bytes_saved - before.bytes_saved,
    )
}

/// The transparent GEMM path moves the per-cache stats and the global
/// telemetry counters in lockstep, one lookup per call: miss on first
/// use, hit on every repeat, invalidation on cleanup.
#[test]
fn gemm_accounting_matches_telemetry_exactly() {
    let _g = lock();
    let cache = f64::pack_cache();
    let a = Matrix::random(24, 20, 1);
    let b = Matrix::random(20, 22, 2);
    let c0 = Matrix::random(24, 22, 3);
    cache.invalidate(&b.view()); // scrub any aliased leftover

    telemetry::reset();
    let s0 = cache.stats();
    let t0 = telemetry::snapshot().cache;
    assert_eq!(t0, Default::default(), "reset() must zero cache counters");

    let cfg = cached_cfg();
    run_gemm(&a, &b, &c0, &cfg); // miss + insert
    run_gemm(&a, &b, &c0, &cfg); // hit
    run_gemm(&a, &b, &c0, &cfg); // hit
    let removed = cache.invalidate(&b.view());
    assert_eq!(removed, 1, "exactly the one entry for b");

    let (hits, misses, evictions, invalidations, bytes_saved) = stats_delta(cache.stats(), s0);
    assert_eq!((hits, misses), (2, 1));
    assert_eq!(evictions, 0);
    assert_eq!(invalidations, 1);
    assert!(bytes_saved > 0, "hits must bank the re-pack they avoided");

    let t = telemetry::snapshot().cache;
    assert_eq!(
        (
            t.hits,
            t.misses,
            t.evictions,
            t.invalidations,
            t.bytes_saved
        ),
        (hits, misses, evictions, invalidations, bytes_saved),
        "global telemetry must mirror the per-cache stats exactly"
    );
}

/// A local cache under churn never exceeds its byte capacity, evicts
/// strictly least-recently-used, and mirrors each eviction into the
/// global telemetry counters.
#[test]
fn lru_bound_holds_under_churn() {
    let _g = lock();
    telemetry::reset();

    // size one entry, then allow three of them
    let probe: Matrix = Matrix::random(16, 12, 10);
    let sizer: PackCache = PackCache::new();
    let entry_bytes = sizer
        .get_or_pack(&probe.view(), Transpose::No, 6, 8, 8)
        .unwrap()
        .bytes();
    let cache: PackCache = PackCache::with_capacity(3 * entry_bytes);

    // keep the matrices alive so no address is ever reused mid-test
    let mats: Vec<Matrix> = (0..12).map(|i| Matrix::random(16, 12, 100 + i)).collect();
    for m in &mats {
        cache
            .get_or_pack(&m.view(), Transpose::No, 6, 8, 8)
            .unwrap();
        assert!(
            cache.bytes() <= cache.capacity(),
            "capacity bound violated: {} > {}",
            cache.bytes(),
            cache.capacity()
        );
        assert!(cache.len() <= 3);
    }
    assert_eq!(cache.len(), 3);
    let s = cache.stats();
    assert_eq!(s.misses, 12);
    assert_eq!(s.evictions, 9, "12 inserts into 3 slots evict 9");

    // LRU order: the survivors are exactly the three most recent...
    for (i, m) in mats.iter().enumerate().skip(9) {
        let before = cache.stats().hits;
        cache
            .get_or_pack(&m.view(), Transpose::No, 6, 8, 8)
            .unwrap();
        assert!(
            cache.stats().hits > before,
            "entry {i} should have survived"
        );
    }
    // ...and an early entry is long gone (probing it re-packs)
    let before = cache.stats().misses;
    cache
        .get_or_pack(&mats[0].view(), Transpose::No, 6, 8, 8)
        .unwrap();
    assert_eq!(
        cache.stats().misses,
        before + 1,
        "entry 0 should be evicted"
    );

    let t = telemetry::snapshot().cache;
    assert!(t.evictions >= 9, "local evictions must reach telemetry");
}

/// The documented staleness rule, exercised through the aliasing that
/// motivates it: mutating B in place leaves the entry stale by design;
/// `invalidate` (same pointer) forces the re-pack.
#[test]
fn mutated_b_is_stale_until_invalidated() {
    let _g = lock();
    let cache = f64::pack_cache();
    let a = Matrix::random(20, 16, 20);
    let mut b = Matrix::random(16, 18, 21);
    let c0 = Matrix::random(20, 18, 22);
    cache.invalidate(&b.view());

    let cfg = cached_cfg();
    let uncached_cfg = cfg.with_pack_cache(false);

    let before = run_gemm(&a, &b, &c0, &cfg); // packs + caches b
    b.set(0, 0, b.get(0, 0) + 100.0); // in-place mutation, same pointer

    let fresh = run_gemm(&a, &b, &c0, &uncached_cfg);
    let stale = run_gemm(&a, &b, &c0, &cfg);
    assert_eq!(
        stale.view().data(),
        before.view().data(),
        "without invalidation the cache must serve the old panels"
    );
    assert!(
        stale.max_abs_diff(&fresh) > 1.0,
        "test is vacuous: mutation did not change the product"
    );

    assert_eq!(cache.invalidate(&b.view()), 1);
    let repacked = run_gemm(&a, &b, &c0, &cfg);
    assert_eq!(
        repacked.view().data(),
        fresh.view().data(),
        "after invalidation the re-pack must see the mutation"
    );
    cache.invalidate(&b.view());
}

/// `bump_generation` is the coarse hammer: every entry (any operand)
/// drops at once, and old entries can never match again.
#[test]
fn generation_bump_forces_repack_of_everything() {
    let _g = lock();
    let cache = f64::pack_cache();
    let a = Matrix::random(18, 14, 30);
    let b1 = Matrix::random(14, 15, 31);
    let b2 = Matrix::random(14, 15, 32);
    let c0 = Matrix::random(18, 15, 33);

    let cfg = cached_cfg();
    run_gemm(&a, &b1, &c0, &cfg);
    run_gemm(&a, &b2, &c0, &cfg);

    let gen0 = cache.generation();
    let s0 = cache.stats();
    cache.bump_generation();
    assert_eq!(cache.generation(), gen0 + 1);
    assert!(cache.is_empty(), "generation bump must drop every entry");
    assert_eq!(
        cache.stats().invalidations - s0.invalidations,
        2,
        "both entries count as invalidated"
    );

    // next use is a miss (re-pack), not a resurrected stale hit
    let m0 = cache.stats().misses;
    run_gemm(&a, &b1, &c0, &cfg);
    assert_eq!(cache.stats().misses - m0, 1);
    cache.invalidate(&b1.view());
    cache.invalidate(&b2.view());
}

/// N concurrent GEMMs against one weight matrix: the first lookup
/// packs (under the cache lock), the other N−1 hit and share the same
/// panels — and every result is bit-identical to the uncached serial
/// run.
#[test]
fn concurrent_gemms_share_one_entry_bit_identically() {
    let _g = lock();
    let cache = f64::pack_cache();
    let threads = 4;
    let a = Matrix::random(40, 32, 40);
    let b = Matrix::random(32, 36, 41);
    let c0 = Matrix::random(40, 36, 42);
    cache.invalidate(&b.view());

    let cfg = cached_cfg();
    let want = run_gemm(&a, &b, &c0, &cfg.with_pack_cache(false));

    let s0 = cache.stats();
    let results: Vec<Matrix> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| scope.spawn(|| run_gemm(&a, &b, &c0, &cfg)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &results {
        assert_eq!(
            r.view().data(),
            want.view().data(),
            "cached concurrent result diverges bitwise from uncached serial"
        );
    }
    let (hits, misses, ..) = stats_delta(cache.stats(), s0);
    assert_eq!(
        (hits, misses),
        (threads as u64 - 1, 1),
        "packing under the cache lock must dedup concurrent misses"
    );
    cache.invalidate(&b.view());
}

/// The cache is opt-in: a default configuration moves no cache counter
/// and inserts no entry.
#[test]
fn disabled_by_default_moves_nothing() {
    let _g = lock();
    let cache = f64::pack_cache();
    let a = Matrix::random(20, 16, 50);
    let b = Matrix::random(16, 18, 51);
    let c0 = Matrix::random(20, 18, 52);

    telemetry::reset();
    let s0 = cache.stats();
    let len0 = cache.len();
    for par in [
        Parallelism::Serial,
        Parallelism::Scoped(2),
        Parallelism::Pool(2),
    ] {
        run_gemm(&a, &b, &c0, &GemmConfig::default().with_parallelism(par));
    }
    assert_eq!(cache.stats(), s0);
    assert_eq!(cache.len(), len0);
    assert_eq!(telemetry::snapshot().cache, Default::default());
}
