//! Model-based property tests of the set-associative cache: the
//! optimized implementation must agree, access for access, with a naive
//! reference model (per-set recency lists).

use armsim::cache::{AccessKind, SetAssocCache};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A deliberately simple reference: each set is a recency-ordered deque
/// of (line, dirty), most recent first.
struct RefCache {
    sets: Vec<VecDeque<(u64, bool)>>,
    ways: usize,
    line_bits: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(size: usize, ways: usize, line: usize) -> Self {
        let sets = size / (ways * line);
        RefCache {
            sets: (0..sets).map(|_| VecDeque::new()).collect(),
            ways,
            line_bits: line.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_bits) & self.set_mask) as usize
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_bits
    }

    /// Probe + touch; returns hit.
    fn access(&mut self, addr: u64, write: bool) -> bool {
        let set = self.set_of(addr);
        let line = self.line_of(addr);
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&(l, _)| l == line) {
            let (l, d) = q.remove(pos).unwrap();
            q.push_front((l, d || write));
            true
        } else {
            false
        }
    }

    /// Insert; returns the evicted line's base address if dirty.
    fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        let set = self.set_of(addr);
        let line = self.line_of(addr);
        let ways = self.ways;
        let line_bits = self.line_bits;
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&(l, _)| l == line) {
            let (l, d) = q.remove(pos).unwrap();
            q.push_front((l, d || dirty));
            return None;
        }
        let mut wb = None;
        if q.len() == ways {
            let (l, d) = q.pop_back().unwrap();
            if d {
                wb = Some(l << line_bits);
            }
        }
        q.push_front((line, dirty));
        wb
    }
}

#[derive(Clone, Debug)]
enum Op {
    Read(u64),
    Write(u64),
    Fill(u64, bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // small address space so sets conflict heavily
    let addr = (0u64..64).prop_map(|x| x * 64);
    prop_oneof![
        addr.clone().prop_map(Op::Read),
        addr.clone().prop_map(Op::Write),
        (addr, prop::bool::ANY).prop_map(|(a, d)| Op::Fill(a, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every access and fill agrees with the reference model, including
    /// hit/miss outcomes, eviction choices and write-back addresses.
    #[test]
    fn cache_agrees_with_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..400),
        ways in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        // 8 sets x ways x 64B lines
        let size = 8 * ways * 64;
        let mut cache = SetAssocCache::new(size, ways, 64);
        let mut reference = RefCache::new(size, ways, 64);
        for op in &ops {
            match *op {
                Op::Read(a) => {
                    let got = cache.access(a, AccessKind::Read);
                    let want = reference.access(a, false);
                    prop_assert_eq!(got, want, "read {:#x}", a);
                }
                Op::Write(a) => {
                    let got = cache.access(a, AccessKind::Write);
                    let want = reference.access(a, true);
                    prop_assert_eq!(got, want, "write {:#x}", a);
                }
                Op::Fill(a, d) => {
                    let got = cache.fill(a, d);
                    let want = reference.fill(a, d);
                    prop_assert_eq!(got, want, "fill {:#x}", a);
                }
            }
        }
        // final residency agrees for every line in the space
        for line in 0u64..64 {
            let addr = line * 64;
            prop_assert_eq!(
                cache.contains(addr),
                reference.access(addr, false),
                "final residency of {:#x}",
                addr
            );
            // (reference.access touches; contains doesn't — only do one
            // comparison pass, which this is)
        }
    }

    /// Statistics identities: hits + misses == accesses, per kind.
    #[test]
    fn stats_identities(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut cache = SetAssocCache::new(2048, 2, 64);
        for op in &ops {
            match *op {
                Op::Read(a) => { cache.access(a, AccessKind::Read); }
                Op::Write(a) => { cache.access(a, AccessKind::Write); }
                Op::Fill(a, d) => { cache.fill(a, d); }
            }
        }
        let s = cache.stats();
        prop_assert!(s.read_hits <= s.reads);
        prop_assert!(s.write_hits <= s.writes);
        prop_assert!(s.writebacks <= s.evictions);
        prop_assert!(s.read_miss_rate() >= 0.0 && s.read_miss_rate() <= 1.0);
    }
}
