//! Hierarchy walk logic shared by the single-core and multi-core models:
//! demand accesses, inclusive fills, dirty write-back propagation and the
//! `PLDL1KEEP`/`PLDL2KEEP` prefetch semantics of Section IV-B.

use crate::cache::{AccessKind, SetAssocCache};
use crate::isa::PrfOp;

/// The level that satisfied an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// L2 (module-shared) cache.
    L2,
    /// L3 (chip-shared) cache.
    L3,
    /// Main memory.
    Mem,
}

/// Load-to-use latencies per level, in core cycles.
#[derive(Clone, Copy, Debug)]
pub struct LatencyConfig {
    /// L1 hit.
    pub l1: u64,
    /// L2 hit.
    pub l2: u64,
    /// L3 hit.
    pub l3: u64,
    /// Memory access.
    pub mem: u64,
}

impl Default for LatencyConfig {
    /// Representative latencies for the paper's SoC class (X-Gene 1:
    /// ~4-cycle L1, low-teens L2, ~40-cycle L3, ~160-cycle DRAM).
    fn default() -> Self {
        LatencyConfig {
            l1: 4,
            l2: 14,
            l3: 45,
            mem: 160,
        }
    }
}

impl LatencyConfig {
    /// Latency of a load satisfied at `level`.
    #[must_use]
    pub fn for_level(&self, level: HitLevel) -> u64 {
        match level {
            HitLevel::L1 => self.l1,
            HitLevel::L2 => self.l2,
            HitLevel::L3 => self.l3,
            HitLevel::Mem => self.mem,
        }
    }
}

/// Walk a demand access through `l1 → l2 → l3 → memory`, performing
/// inclusive fills on the way back and propagating dirty evictions to the
/// next level. Returns the satisfying level.
pub fn demand_access(
    l1: &mut SetAssocCache,
    l2: &mut SetAssocCache,
    l3: &mut SetAssocCache,
    addr: u64,
    kind: AccessKind,
) -> HitLevel {
    debug_assert!(kind != AccessKind::Prefetch, "use prefetch()");
    let write = kind == AccessKind::Write;
    if l1.access(addr, kind) {
        return HitLevel::L1;
    }
    let level = if l2.access(addr, kind) {
        HitLevel::L2
    } else if l3.access(addr, kind) {
        // fill L2 from L3
        if let Some(wb) = l2.fill(addr, false) {
            l3.fill(wb, true);
        }
        HitLevel::L3
    } else {
        // from memory: fill L3 then L2 (dirty L3 evictions go to DRAM,
        // which has no state to model)
        let _ = l3.fill(addr, false);
        if let Some(wb) = l2.fill(addr, false) {
            l3.fill(wb, true);
        }
        HitLevel::Mem
    };
    // fill L1; the line is dirty immediately for write-allocate stores
    if let Some(wb) = l1.fill(addr, write) {
        l2.fill(wb, true);
    }
    level
}

/// Software prefetch: `PLDL1KEEP` pulls the line to L1 (and below, for
/// inclusion), `PLDL2KEEP` to L2, `PLDL3KEEP` to L3.
///
/// Returns `Some(level)` — the level the line was *transferred from* —
/// when the prefetch actually moved data, or `None` when the line was
/// already at (or above) its target level. The caller charges transfer
/// bandwidth accordingly: prefetching hides latency, not bandwidth.
pub fn prefetch(
    l1: &mut SetAssocCache,
    l2: &mut SetAssocCache,
    l3: &mut SetAssocCache,
    addr: u64,
    op: PrfOp,
) -> Option<HitLevel> {
    match op {
        PrfOp::Pldl1Keep => {
            if l1.access(addr, AccessKind::Prefetch) {
                return None;
            }
            let found = if l2.contains(addr) {
                HitLevel::L2
            } else if l3.contains(addr) {
                HitLevel::L3
            } else {
                HitLevel::Mem
            };
            let _ = l3.fill(addr, false);
            if let Some(wb) = l2.fill(addr, false) {
                l3.fill(wb, true);
            }
            if let Some(wb) = l1.fill(addr, false) {
                l2.fill(wb, true);
            }
            Some(found)
        }
        PrfOp::Pldl2Keep => {
            if l2.access(addr, AccessKind::Prefetch) {
                return None;
            }
            let found = if l3.contains(addr) {
                HitLevel::L3
            } else {
                HitLevel::Mem
            };
            let _ = l3.fill(addr, false);
            if let Some(wb) = l2.fill(addr, false) {
                l3.fill(wb, true);
            }
            Some(found)
        }
        PrfOp::Pldl3Keep => {
            if l3.access(addr, AccessKind::Prefetch) {
                return None;
            }
            let _ = l3.fill(addr, false);
            Some(HitLevel::Mem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels() -> (SetAssocCache, SetAssocCache, SetAssocCache) {
        (
            SetAssocCache::new(1024, 2, 64),  // 8 sets
            SetAssocCache::new(4096, 4, 64),  // 16 sets
            SetAssocCache::new(16384, 4, 64), // 64 sets
        )
    }

    #[test]
    fn cold_miss_fills_all_levels() {
        let (mut l1, mut l2, mut l3) = levels();
        assert_eq!(
            demand_access(&mut l1, &mut l2, &mut l3, 0x4000, AccessKind::Read),
            HitLevel::Mem
        );
        assert!(l1.contains(0x4000));
        assert!(l2.contains(0x4000));
        assert!(l3.contains(0x4000));
        assert_eq!(
            demand_access(&mut l1, &mut l2, &mut l3, 0x4008, AccessKind::Read),
            HitLevel::L1
        );
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let (mut l1, mut l2, mut l3) = levels();
        // L1: 8 sets x 64B: addresses 512B apart share a set; 3 fills
        // overflow 2 ways
        for a in [0x0000u64, 0x2000, 0x4000] {
            demand_access(&mut l1, &mut l2, &mut l3, a, AccessKind::Read);
        }
        assert!(!l1.contains(0x0000), "evicted from L1");
        assert_eq!(
            demand_access(&mut l1, &mut l2, &mut l3, 0x0000, AccessKind::Read),
            HitLevel::L2,
            "still resident in the larger L2"
        );
    }

    #[test]
    fn dirty_l1_eviction_dirties_l2() {
        let (mut l1, mut l2, mut l3) = levels();
        demand_access(&mut l1, &mut l2, &mut l3, 0x0000, AccessKind::Write);
        // push 0x0000 out of L1 (same-set fills)
        demand_access(&mut l1, &mut l2, &mut l3, 0x2000, AccessKind::Read);
        demand_access(&mut l1, &mut l2, &mut l3, 0x4000, AccessKind::Read);
        assert!(!l1.contains(0x0000));
        assert!(l2.contains(0x0000), "written-back into L2");
        // and L2 must consider it dirty: evicting it from L2 reports a
        // write-back. Force by filling its L2 set (16 sets x 64B -> 1KB
        // stride) with 4 ways + 1.
        let mut wbs = 0;
        for i in 1..=4u64 {
            if l2.fill(i * 0x400 * 16, false).is_some() {
                wbs += 1;
            }
        }
        assert!(wbs > 0, "dirty line eventually written back from L2");
    }

    #[test]
    fn prefetch_l1keep_promotes_to_l1() {
        let (mut l1, mut l2, mut l3) = levels();
        let found = prefetch(&mut l1, &mut l2, &mut l3, 0x8000, PrfOp::Pldl1Keep);
        assert_eq!(found, Some(HitLevel::Mem));
        assert!(l1.contains(0x8000));
        // demand read is now an L1 hit — the paper's A-stream goal
        assert_eq!(
            demand_access(&mut l1, &mut l2, &mut l3, 0x8000, AccessKind::Read),
            HitLevel::L1
        );
    }

    #[test]
    fn prefetch_l2keep_stops_at_l2() {
        let (mut l1, mut l2, mut l3) = levels();
        let found = prefetch(&mut l1, &mut l2, &mut l3, 0xA000, PrfOp::Pldl2Keep);
        assert_eq!(found, Some(HitLevel::Mem));
        assert!(!l1.contains(0xA000), "PLDL2KEEP must not pollute L1");
        assert!(l2.contains(0xA000));
        assert_eq!(
            demand_access(&mut l1, &mut l2, &mut l3, 0xA000, AccessKind::Read),
            HitLevel::L2
        );
    }

    #[test]
    fn repeated_prefetch_is_cheap_hit() {
        let (mut l1, mut l2, mut l3) = levels();
        prefetch(&mut l1, &mut l2, &mut l3, 0x40, PrfOp::Pldl1Keep);
        assert_eq!(
            prefetch(&mut l1, &mut l2, &mut l3, 0x40, PrfOp::Pldl1Keep),
            None,
            "already resident: no transfer"
        );
        assert_eq!(l1.stats().prefetch_hits, 1);
    }

    #[test]
    fn latency_config_ordering() {
        let lat = LatencyConfig::default();
        assert!(lat.l1 < lat.l2 && lat.l2 < lat.l3 && lat.l3 < lat.mem);
        assert_eq!(lat.for_level(HitLevel::L1), lat.l1);
        assert_eq!(lat.for_level(HitLevel::Mem), lat.mem);
    }
}
