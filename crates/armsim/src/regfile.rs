//! Architectural register files: 32 128-bit NEON registers (two `f64`
//! lanes each) and 31 64-bit general-purpose registers.

/// Register state of one simulated core.
#[derive(Clone, Debug)]
pub struct RegFile {
    v: [[f64; 2]; 32],
    x: [u64; 31],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// All-zero register file.
    #[must_use]
    pub fn new() -> Self {
        RegFile {
            v: [[0.0; 2]; 32],
            x: [0; 31],
        }
    }

    /// Read NEON register `r`.
    #[must_use]
    pub fn v(&self, r: u8) -> [f64; 2] {
        self.v[r as usize]
    }

    /// Write NEON register `r`.
    pub fn set_v(&mut self, r: u8, val: [f64; 2]) {
        self.v[r as usize] = val;
    }

    /// Read general register `r`.
    #[must_use]
    pub fn x(&self, r: u8) -> u64 {
        self.x[r as usize]
    }

    /// Write general register `r`.
    pub fn set_x(&mut self, r: u8, val: u64) {
        self.x[r as usize] = val;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut r = RegFile::new();
        r.set_v(31, [1.0, -2.0]);
        assert_eq!(r.v(31), [1.0, -2.0]);
        r.set_x(30, 0xdead_beef);
        assert_eq!(r.x(30), 0xdead_beef);
        assert_eq!(r.v(0), [0.0, 0.0]);
    }
}
