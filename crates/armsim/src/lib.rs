//! # armsim
//!
//! A parameterized model of the paper's 64-bit ARMv8 eight-core platform,
//! built because the reproduction runs on x86 hardware without ARMv8
//! silicon or its performance counters. It provides:
//!
//! - [`isa`] — the A64 subset the paper's GEBP kernels use (`ldr`/`str`
//!   q-form, `fmla v.2d` with lane addressing, `prfm`, address
//!   arithmetic), as typed IR with an assembly-text renderer.
//! - [`mem`] — a simple flat simulated memory with a bump allocator.
//! - [`regfile`] — the v0–v31 NEON and x0–x30 general register files.
//! - [`cache`] — a set-associative, LRU, write-back/write-allocate cache
//!   with full hit/miss/eviction statistics.
//! - [`hierarchy`] — the exact cache geometry of Figure 1 (32 KB 4-way
//!   L1D, 256 KB 16-way L2, 8 MB 16-way L3) with inclusive fills and
//!   `PLDL1KEEP`/`PLDL2KEEP` prefetch semantics.
//! - [`pipeline`] — an in-order-issue timing model of one core: four-wide
//!   dispatch, one NEON FMA pipe with a 2-cycle initiation interval
//!   (4.8 Gflops at 2.4 GHz, matching the paper), one load/store pipe,
//!   and vector-load write-backs stealing NEON register-file write-port
//!   cycles — the structural hazard that produces the paper's Table IV
//!   efficiency curve.
//! - [`core`] — a single simulated core: functional execution + timing +
//!   cache hierarchy, producing the counters the paper reads from `perf`
//!   (L1-dcache-loads, L1-dcache-load-misses, cycles).
//! - [`machine`] — the eight-core topology: per-core L1, per-module L2
//!   (two cores per module), shared L3, with trace interleaving for the
//!   multi-threaded experiments.
//! - [`tlb`] — a fully associative LRU data TLB (48 entries × 4 KB by
//!   default), supporting the TLB analysis the paper lists as future
//!   work.

//!
//! ## Quick example
//!
//! ```
//! use armsim::core::CoreSim;
//! use armsim::isa::Instr;
//!
//! // a tiny FMA stream at the Table IV setting (all loads hit L1)
//! let mut core = CoreSim::new(0, 1 << 16);
//! let stream: Vec<Instr> = (0..100)
//!     .map(|i| Instr::Fmla { vd: 8 + (i % 16), vn: 0, vm: 4, lane: Some(0) })
//!     .collect();
//! let report = core.run_perfect_l1(&stream, 4);
//! // one 2-lane FMA per 2 cycles = 2 flops/cycle peak
//! assert!(report.efficiency(2.0) > 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod core;
pub mod hierarchy;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod pipeline;
pub mod regfile;
pub mod tlb;
