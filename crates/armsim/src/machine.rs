//! The eight-core machine: per-core L1s, per-module L2s (two cores per
//! module, Figure 1), one shared L3, plus the trace-replay API the
//! evaluation harness uses for multi-threaded cache studies.

use crate::cache::{AccessKind, CacheStats, SetAssocCache};
use crate::hierarchy::{demand_access, prefetch, HitLevel, LatencyConfig};
use crate::isa::PrfOp;
use crate::tlb::{Tlb, TlbStats};
use perfmodel::MachineDesc;

/// One memory operation of an address trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Demand load.
    Read(u64),
    /// Demand store.
    Write(u64),
    /// Software prefetch.
    Prefetch(u64, PrfOp),
}

/// Per-level hit counts and total latency of a replayed trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Accesses satisfied by L1.
    pub l1_hits: u64,
    /// Accesses satisfied by L2.
    pub l2_hits: u64,
    /// Accesses satisfied by L3.
    pub l3_hits: u64,
    /// Accesses that went to memory.
    pub mem_accesses: u64,
    /// Total demand accesses.
    pub accesses: u64,
    /// Sum of per-access latencies (no overlap modelled here; the
    /// evaluation harness applies the paper's overlap factor).
    pub total_latency: u64,
    /// Prefetch transfers sourced from L2 (one line each).
    pub pf_from_l2: u64,
    /// Prefetch transfers sourced from L3.
    pub pf_from_l3: u64,
    /// Prefetch transfers sourced from memory.
    pub pf_from_mem: u64,
    /// Data-TLB misses (page walks) among demand accesses.
    pub tlb_misses: u64,
}

impl TraceReport {
    fn record(&mut self, level: HitLevel, lat: &LatencyConfig) {
        self.accesses += 1;
        self.total_latency += lat.for_level(level);
        match level {
            HitLevel::L1 => self.l1_hits += 1,
            HitLevel::L2 => self.l2_hits += 1,
            HitLevel::L3 => self.l3_hits += 1,
            HitLevel::Mem => self.mem_accesses += 1,
        }
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: &TraceReport) {
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.l3_hits += other.l3_hits;
        self.mem_accesses += other.mem_accesses;
        self.accesses += other.accesses;
        self.total_latency += other.total_latency;
        self.pf_from_l2 += other.pf_from_l2;
        self.pf_from_l3 += other.pf_from_l3;
        self.pf_from_mem += other.pf_from_mem;
        self.tlb_misses += other.tlb_misses;
    }
}

/// The simulated multi-core cache system.
#[derive(Clone, Debug)]
pub struct SimMachine {
    desc: MachineDesc,
    lat: LatencyConfig,
    l1s: Vec<SetAssocCache>,
    l2s: Vec<SetAssocCache>,
    l3: SetAssocCache,
    tlbs: Vec<Tlb>,
}

impl SimMachine {
    /// Build the machine described by `desc`.
    #[must_use]
    pub fn new(desc: MachineDesc, lat: LatencyConfig) -> Self {
        let l1s = (0..desc.cores)
            .map(|_| SetAssocCache::new(desc.l1.size, desc.l1.assoc, desc.l1.line))
            .collect();
        let l2s = (0..desc.modules())
            .map(|_| SetAssocCache::new(desc.l2.size, desc.l2.assoc, desc.l2.line))
            .collect();
        let l3 = SetAssocCache::new(desc.l3.size, desc.l3.assoc, desc.l3.line);
        let tlbs = (0..desc.cores).map(|_| Tlb::xgene_dtlb()).collect();
        SimMachine {
            desc,
            lat,
            l1s,
            l2s,
            l3,
            tlbs,
        }
    }

    /// The paper's platform with default latencies.
    #[must_use]
    pub fn xgene() -> Self {
        Self::new(MachineDesc::xgene(), LatencyConfig::default())
    }

    /// Machine description.
    #[must_use]
    pub fn desc(&self) -> &MachineDesc {
        &self.desc
    }

    /// Latency configuration.
    #[must_use]
    pub fn latencies(&self) -> &LatencyConfig {
        &self.lat
    }

    /// Module owning `core` (two cores per module on this machine).
    #[must_use]
    pub fn module_of(&self, core: usize) -> usize {
        core / self.desc.cores_per_module
    }

    /// One demand access from `core`; returns the satisfying level and
    /// its load-to-use latency. The core's data TLB is consulted first
    /// (its misses are counted; the walk penalty is the consumer's
    /// policy decision).
    pub fn access(&mut self, core: usize, addr: u64, kind: AccessKind) -> (HitLevel, u64) {
        let _ = self.tlbs[core].access(addr);
        let module = self.module_of(core);
        let level = demand_access(
            &mut self.l1s[core],
            &mut self.l2s[module],
            &mut self.l3,
            addr,
            kind,
        );
        (level, self.lat.for_level(level))
    }

    /// One software prefetch from `core`. Returns the source level when
    /// a transfer occurred.
    pub fn prefetch(&mut self, core: usize, addr: u64, op: PrfOp) -> Option<HitLevel> {
        let module = self.module_of(core);
        prefetch(
            &mut self.l1s[core],
            &mut self.l2s[module],
            &mut self.l3,
            addr,
            op,
        )
    }

    /// Replay a trace on one core.
    pub fn run_trace(&mut self, core: usize, trace: &[TraceOp]) -> TraceReport {
        let mut report = TraceReport::default();
        for &op in trace {
            self.step(core, op, &mut report);
        }
        report
    }

    fn step(&mut self, core: usize, op: TraceOp, report: &mut TraceReport) {
        match op {
            TraceOp::Read(a) => {
                if !self.tlbs[core].contains(a) {
                    report.tlb_misses += 1;
                }
                let (lvl, _) = self.access(core, a, AccessKind::Read);
                report.record(lvl, &self.lat);
            }
            TraceOp::Write(a) => {
                if !self.tlbs[core].contains(a) {
                    report.tlb_misses += 1;
                }
                let (lvl, _) = self.access(core, a, AccessKind::Write);
                report.record(lvl, &self.lat);
            }
            TraceOp::Prefetch(a, p) => match self.prefetch(core, a, p) {
                Some(HitLevel::L2) => report.pf_from_l2 += 1,
                Some(HitLevel::L3) => report.pf_from_l3 += 1,
                Some(HitLevel::Mem) => report.pf_from_mem += 1,
                _ => {}
            },
        }
    }

    /// Replay several per-core traces concurrently by round-robin
    /// interleaving `chunk` operations at a time — the approximation of
    /// simultaneous execution the multi-threaded cache experiments use.
    /// Returns one report per input trace.
    pub fn run_traces_interleaved(
        &mut self,
        traces: &[(usize, Vec<TraceOp>)],
        chunk: usize,
    ) -> Vec<TraceReport> {
        assert!(chunk > 0);
        let mut reports = vec![TraceReport::default(); traces.len()];
        let mut cursors = vec![0usize; traces.len()];
        loop {
            let mut progressed = false;
            for (t, (core, trace)) in traces.iter().enumerate() {
                let start = cursors[t];
                let end = (start + chunk).min(trace.len());
                for &op in &trace[start..end] {
                    self.step(*core, op, &mut reports[t]);
                }
                cursors[t] = end;
                progressed |= end > start;
            }
            if !progressed {
                break;
            }
        }
        reports
    }

    /// L1 counters of one core.
    #[must_use]
    pub fn l1_stats(&self, core: usize) -> &CacheStats {
        self.l1s[core].stats()
    }

    /// L2 counters of one module.
    #[must_use]
    pub fn l2_stats(&self, module: usize) -> &CacheStats {
        self.l2s[module].stats()
    }

    /// L3 counters.
    #[must_use]
    pub fn l3_stats(&self) -> &CacheStats {
        self.l3.stats()
    }

    /// Data-TLB counters of one core.
    #[must_use]
    pub fn tlb_stats(&self, core: usize) -> &TlbStats {
        self.tlbs[core].stats()
    }

    /// Zero all counters, keep contents.
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1s {
            c.reset_stats();
        }
        for c in &mut self.l2s {
            c.reset_stats();
        }
        self.l3.reset_stats();
        for t in &mut self.tlbs {
            t.reset_stats();
        }
    }

    /// Drop all cache contents and counters (cold machine).
    pub fn flush(&mut self) {
        for c in &mut self.l1s {
            c.flush();
        }
        for c in &mut self.l2s {
            c.flush();
        }
        self.l3.flush();
        for t in &mut self.tlbs {
            t.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matches_figure1() {
        let m = SimMachine::xgene();
        assert_eq!(m.l1s.len(), 8);
        assert_eq!(m.l2s.len(), 4);
        assert_eq!(m.module_of(0), 0);
        assert_eq!(m.module_of(1), 0);
        assert_eq!(m.module_of(2), 1);
        assert_eq!(m.module_of(7), 3);
    }

    #[test]
    fn cores_of_one_module_share_l2() {
        let mut m = SimMachine::xgene();
        // core 0 warms a line; core 1 (same module) should hit L2, core 2
        // (other module) should have to go to L3.
        m.access(0, 0x10000, AccessKind::Read);
        let (lvl1, _) = m.access(1, 0x10000, AccessKind::Read);
        assert_eq!(lvl1, HitLevel::L2);
        let (lvl2, _) = m.access(2, 0x10000, AccessKind::Read);
        assert_eq!(lvl2, HitLevel::L3);
    }

    #[test]
    fn l1s_are_private() {
        let mut m = SimMachine::xgene();
        m.access(0, 0x40, AccessKind::Read);
        let (lvl, _) = m.access(0, 0x40, AccessKind::Read);
        assert_eq!(lvl, HitLevel::L1);
        // another core's first touch cannot hit its own L1
        let (lvl, _) = m.access(3, 0x40, AccessKind::Read);
        assert_ne!(lvl, HitLevel::L1);
    }

    #[test]
    fn trace_report_counts() {
        let mut m = SimMachine::xgene();
        let trace = vec![
            TraceOp::Read(0x0),
            TraceOp::Read(0x8),
            TraceOp::Read(0x40),
            TraceOp::Write(0x40),
        ];
        let r = m.run_trace(0, &trace);
        assert_eq!(r.accesses, 4);
        assert_eq!(r.mem_accesses, 2); // two distinct lines, cold
        assert_eq!(r.l1_hits, 2);
        assert_eq!(
            r.total_latency,
            2 * m.latencies().mem + 2 * m.latencies().l1
        );
    }

    #[test]
    fn prefetch_in_trace_hides_miss() {
        let mut m = SimMachine::xgene();
        let r = m.run_trace(
            0,
            &[
                TraceOp::Prefetch(0x1000, PrfOp::Pldl1Keep),
                TraceOp::Read(0x1000),
            ],
        );
        assert_eq!(r.l1_hits, 1);
        assert_eq!(r.accesses, 1, "prefetches are not demand accesses");
    }

    #[test]
    fn interleaved_traces_contend_for_shared_l2() {
        let mut m = SimMachine::xgene();
        // Two cores of one module streaming disjoint buffers bigger than
        // half the L2 each: together they thrash the shared L2.
        let mk = |base: u64| -> Vec<TraceOp> {
            (0..4096u64).map(|i| TraceOp::Read(base + i * 64)).collect()
        };
        // pass 1 warms, pass 2 measures
        let t0 = mk(0x0010_0000);
        let t1 = mk(0x0100_0000);
        m.run_traces_interleaved(&[(0, t0.clone()), (1, t1.clone())], 8);
        m.reset_stats();
        let reports = m.run_traces_interleaved(&[(0, t0), (1, t1)], 8);
        // 4096 lines * 64B = 256KB each stream; two streams > 256KB L2:
        // most L2 probes must miss even after warming.
        let l2_hit_share = (reports[0].l2_hits + reports[1].l2_hits) as f64 / (2.0 * 4096.0);
        assert!(l2_hit_share < 0.5, "shared L2 cannot hold both streams");
    }

    #[test]
    fn single_core_reuses_l2_without_contention() {
        let mut m = SimMachine::xgene();
        // One core, one 128KB stream: fits L2 easily after warmup.
        let trace: Vec<TraceOp> = (0..2048u64)
            .map(|i| TraceOp::Read(0x10_0000 + i * 64))
            .collect();
        m.run_trace(0, &trace);
        // evict from tiny L1 with an unrelated stream
        let evict: Vec<TraceOp> = (0..1024u64)
            .map(|i| TraceOp::Read(0x200_0000 + i * 64))
            .collect();
        m.run_trace(0, &evict);
        m.reset_stats();
        let r = m.run_trace(0, &trace);
        assert!(
            r.l2_hits as f64 / r.accesses as f64 > 0.9,
            "stream must still be L2-resident: {r:?}"
        );
    }

    #[test]
    fn reset_and_flush() {
        let mut m = SimMachine::xgene();
        m.access(0, 0x40, AccessKind::Read);
        m.reset_stats();
        assert_eq!(m.l1_stats(0).reads, 0);
        let (lvl, _) = m.access(0, 0x40, AccessKind::Read);
        assert_eq!(lvl, HitLevel::L1, "contents survive reset_stats");
        m.flush();
        let (lvl, _) = m.access(0, 0x40, AccessKind::Read);
        assert_eq!(lvl, HitLevel::Mem, "flush drops contents");
    }
}
