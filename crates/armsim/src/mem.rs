//! Flat simulated data memory with a bump allocator.
//!
//! Addresses are plain `u64` byte offsets into one contiguous region —
//! enough for the kernel working sets (packed blocks, slivers and C
//! tiles), which top out well under the default 64 MB.

/// Simulated byte-addressable memory.
#[derive(Clone, Debug)]
pub struct SimMemory {
    data: Vec<u8>,
    brk: u64,
}

impl SimMemory {
    /// Memory of `size` bytes, zero-initialized. Allocation starts at 64
    /// (address 0 is kept unused to catch null-pointer style bugs).
    #[must_use]
    pub fn new(size: usize) -> Self {
        SimMemory {
            data: vec![0u8; size],
            brk: 64,
        }
    }

    /// Default memory: 64 MB.
    #[must_use]
    pub fn default_size() -> Self {
        Self::new(64 << 20)
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Bump-allocate `bytes` with the given power-of-two `align`; returns
    /// the base address.
    pub fn alloc(&mut self, bytes: usize, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.brk + align - 1) & !(align - 1);
        let end = base + bytes as u64;
        assert!(
            end <= self.data.len() as u64,
            "simulated memory exhausted: need {end}, have {}",
            self.data.len()
        );
        self.brk = end;
        base
    }

    /// Read one `f64`.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        let a = addr as usize;
        f64::from_le_bytes(self.data[a..a + 8].try_into().expect("8 bytes"))
    }

    /// Write one `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        let a = addr as usize;
        self.data[a..a + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a 128-bit register's worth: two consecutive `f64` lanes.
    #[must_use]
    pub fn read_q(&self, addr: u64) -> [f64; 2] {
        [self.read_f64(addr), self.read_f64(addr + 8)]
    }

    /// Write two consecutive `f64` lanes.
    pub fn write_q(&mut self, addr: u64, v: [f64; 2]) {
        self.write_f64(addr, v[0]);
        self.write_f64(addr + 8, v[1]);
    }

    /// Copy a slice of doubles into memory at `addr`.
    pub fn store_slice(&mut self, addr: u64, src: &[f64]) {
        for (i, &v) in src.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, v);
        }
    }

    /// Read `len` doubles starting at `addr`.
    #[must_use]
    pub fn load_slice(&self, addr: u64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| self.read_f64(addr + 8 * i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let mut m = SimMemory::new(1024);
        m.write_f64(64, -3.25);
        assert_eq!(m.read_f64(64), -3.25);
        m.write_q(128, [1.5, 2.5]);
        assert_eq!(m.read_q(128), [1.5, 2.5]);
    }

    #[test]
    fn alloc_respects_alignment_and_order() {
        let mut m = SimMemory::new(4096);
        let a = m.alloc(10, 64);
        let b = m.alloc(16, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert_ne!(a, 0, "address 0 reserved");
    }

    #[test]
    fn slices_roundtrip() {
        let mut m = SimMemory::new(4096);
        let base = m.alloc(8 * 5, 8);
        m.store_slice(base, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(m.load_slice(base, 5), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn overflow_detected() {
        let mut m = SimMemory::new(256);
        let _ = m.alloc(512, 8);
    }
}
