//! A set-associative cache with LRU replacement and
//! write-back/write-allocate policy — the building block of the paper's
//! three-level hierarchy.

/// Kind of a cache access, for statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load.
    Read,
    /// Demand store (write-allocate).
    Write,
    /// Software prefetch (never stalls; counted separately).
    Prefetch,
}

/// Hit/miss/eviction counters of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand loads observed.
    pub reads: u64,
    /// Demand loads that hit.
    pub read_hits: u64,
    /// Demand stores observed.
    pub writes: u64,
    /// Demand stores that hit.
    pub write_hits: u64,
    /// Prefetch probes observed.
    pub prefetches: u64,
    /// Prefetch probes that were already resident.
    pub prefetch_hits: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand misses (reads + writes).
    #[must_use]
    pub fn demand_misses(&self) -> u64 {
        (self.reads - self.read_hits) + (self.writes - self.write_hits)
    }

    /// Load misses only (the paper's `L1-dcache-load-misses`).
    #[must_use]
    pub fn read_misses(&self) -> u64 {
        self.reads - self.read_hits
    }

    /// Load miss rate in `[0, 1]`.
    #[must_use]
    pub fn read_miss_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses() as f64 / self.reads as f64
        }
    }
}

/// One set-associative cache level.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line: usize,
    line_bits: u32,
    // way-major state: index = set * ways + way
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    lru: Vec<u64>,
    stamp: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Cache of `size` bytes, `ways`-way associative, `line`-byte lines.
    /// All three must be powers of two with `size = sets·ways·line`.
    #[must_use]
    pub fn new(size: usize, ways: usize, line: usize) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(
            size.is_multiple_of(ways * line),
            "size must divide into sets"
        );
        let sets = size / (ways * line);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        SetAssocCache {
            sets,
            ways,
            line,
            line_bits: line.trailing_zeros(),
            tags: vec![0; sets * ways],
            valid: vec![false; sets * ways],
            dirty: vec![false; sets * ways],
            lru: vec![0; sets * ways],
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// Aligned line address of `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_bits << self.line_bits
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line_no = addr >> self.line_bits;
        (
            (line_no as usize) & (self.sets - 1),
            line_no >> self.sets.trailing_zeros(),
        )
    }

    /// Non-mutating residency probe.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        (0..self.ways).any(|w| {
            let i = set * self.ways + w;
            self.valid[i] && self.tags[i] == tag
        })
    }

    /// Probe for `addr`; on hit, touch LRU (and mark dirty for writes).
    /// Returns whether it hit. Statistics are updated. **No fill happens
    /// on a miss** — the hierarchy decides where fills go.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> bool {
        self.stamp += 1;
        let (set, tag) = self.set_and_tag(addr);
        let mut hit = false;
        for w in 0..self.ways {
            let i = set * self.ways + w;
            if self.valid[i] && self.tags[i] == tag {
                self.lru[i] = self.stamp;
                if kind == AccessKind::Write {
                    self.dirty[i] = true;
                }
                hit = true;
                break;
            }
        }
        match kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                if hit {
                    self.stats.read_hits += 1;
                }
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                if hit {
                    self.stats.write_hits += 1;
                }
            }
            AccessKind::Prefetch => {
                self.stats.prefetches += 1;
                if hit {
                    self.stats.prefetch_hits += 1;
                }
            }
        }
        hit
    }

    /// Insert the line containing `addr`, evicting the LRU way if the set
    /// is full. Returns the evicted line's address if it was dirty (needs
    /// write-back). `dirty` marks the incoming line dirty (write-allocate
    /// stores).
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        self.stamp += 1;
        let (set, tag) = self.set_and_tag(addr);
        // already resident? (races between access and fill don't occur in
        // this single-threaded model, but prefetch-after-fill does)
        for w in 0..self.ways {
            let i = set * self.ways + w;
            if self.valid[i] && self.tags[i] == tag {
                self.lru[i] = self.stamp;
                self.dirty[i] |= dirty;
                return None;
            }
        }
        // choose victim: first invalid way, else LRU
        let base = set * self.ways;
        let victim = (0..self.ways)
            .find(|&w| !self.valid[base + w])
            .unwrap_or_else(|| {
                (0..self.ways)
                    .min_by_key(|&w| self.lru[base + w])
                    .expect("ways > 0")
            });
        let i = base + victim;
        let mut writeback = None;
        if self.valid[i] {
            self.stats.evictions += 1;
            if self.dirty[i] {
                self.stats.writebacks += 1;
                let set_bits = self.sets.trailing_zeros();
                let line_no = (self.tags[i] << set_bits) | set as u64;
                writeback = Some(line_no << self.line_bits);
            }
        }
        self.tags[i] = tag;
        self.valid[i] = true;
        self.dirty[i] = dirty;
        self.lru[i] = self.stamp;
        writeback
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zero the counters (contents stay).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drop all contents and counters.
    pub fn flush(&mut self) {
        self.valid.fill(false);
        self.dirty.fill(false);
        self.lru.fill(0);
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512 B
        SetAssocCache::new(512, 2, 64)
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.sets(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.line_addr(0x1234), 0x1200);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, AccessKind::Read));
        c.fill(0x1000, false);
        assert!(c.access(0x1008, AccessKind::Read), "same line must hit");
        assert_eq!(c.stats().reads, 2);
        assert_eq!(c.stats().read_hits, 1);
        assert!((c.stats().read_miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // set 0 holds lines with addr bits [8:6] == 0: stride = sets*line = 256
        c.fill(0x0000, false);
        c.fill(0x0100, false);
        // touch 0x0000 so 0x0100 becomes LRU
        assert!(c.access(0x0000, AccessKind::Read));
        c.fill(0x0200, false); // evicts 0x0100
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x0100));
        assert!(c.contains(0x0200));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.fill(0x0000, true); // dirty
        c.fill(0x0100, false);
        let wb = c.fill(0x0200, false); // evicts LRU = 0x0000
        assert_eq!(wb, Some(0x0000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_marks_dirty() {
        let mut c = tiny();
        c.fill(0x0000, false);
        assert!(c.access(0x0000, AccessKind::Write));
        c.fill(0x0100, false);
        let wb = c.fill(0x0200, false);
        assert_eq!(wb, Some(0x0000), "written line must write back");
    }

    #[test]
    fn refill_existing_line_is_idempotent() {
        let mut c = tiny();
        c.fill(0x0000, false);
        assert_eq!(c.fill(0x0000, true), None);
        // but the dirty bit sticks
        c.fill(0x0100, false);
        assert_eq!(c.fill(0x0200, false), Some(0x0000));
    }

    #[test]
    fn prefetch_counted_separately() {
        let mut c = tiny();
        assert!(!c.access(0x40, AccessKind::Prefetch));
        c.fill(0x40, false);
        assert!(c.access(0x40, AccessKind::Prefetch));
        assert_eq!(c.stats().prefetches, 2);
        assert_eq!(c.stats().prefetch_hits, 1);
        assert_eq!(c.stats().reads, 0);
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = tiny();
        // different sets: line addresses 0x00, 0x40, 0x80, 0xC0
        for a in [0x00u64, 0x40, 0x80, 0xC0] {
            c.fill(a, false);
        }
        for a in [0x00u64, 0x40, 0x80, 0xC0] {
            assert!(c.contains(a));
        }
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn paper_l1_geometry_conflict_behaviour() {
        // 32 KB 4-way 64B: 128 sets; addresses 32KB/4 = 8 KB apart map to
        // the same set. Five such lines must overflow a 4-way set.
        let mut l1 = SetAssocCache::new(32 * 1024, 4, 64);
        assert_eq!(l1.sets(), 128);
        for i in 0..5u64 {
            l1.fill(i * 8192, false);
        }
        assert!(!l1.contains(0), "LRU way evicted on 5th conflicting fill");
        assert!(l1.contains(4 * 8192));
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = tiny();
        c.fill(0x0000, true);
        c.access(0x0000, AccessKind::Read);
        c.flush();
        assert!(!c.contains(0x0000));
        assert_eq!(c.stats().reads, 0);
    }
}
